// Privacy extension (paper §VII): recommendation quality under profile
// obfuscation — randomized response + entry suppression on the gossiped
// profile snapshots. Flags: --seed, --scale, --trials, --help.
#include <iostream>

#include "analysis/experiments.hpp"
#include "bench_main.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  const bench::BenchOptions options = bench::parse_options(argc, argv, 0.5, 1);
  if (options.help) return 0;
  analysis::print_ablation_privacy(std::cout, options.seed, options.scale,
                                   options.trials);
  return 0;
}
