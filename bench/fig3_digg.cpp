// Fig 3b/3e — F1 vs fanout and message cost (Digg).
// Reproduces the corresponding table/figure of the WhatsUp paper
// (IPDPS 2013); see DESIGN.md §3 and EXPERIMENTS.md for the
// paper-vs-measured record. Flags: --seed, --scale, --trials, --help.
#include <iostream>

#include "analysis/experiments.hpp"
#include "bench_main.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  const bench::BenchOptions options = bench::parse_options(argc, argv, 0.4, 1);
  if (options.help) return 0;
  analysis::print_fig3(std::cout, "digg", options.seed, options.scale, options.trials);
  return 0;
}
