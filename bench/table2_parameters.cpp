// Table II — the per-node parameter sheet of WhatsUp (paper §IV-D).
#include <iostream>

#include "analysis/experiments.hpp"
#include "bench_main.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  const bench::BenchOptions options = bench::parse_options(argc, argv, 1.0);
  if (options.help) return 0;
  analysis::print_table2(std::cout);
  return 0;
}
