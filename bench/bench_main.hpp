// Shared flag plumbing for the per-table/figure bench binaries.
#pragma once

#include <cstdint>
#include <iostream>

#include "common/flags.hpp"

namespace whatsup::bench {

struct BenchOptions {
  std::uint64_t seed = 42;
  double scale = 0.5;
  int trials = 1;
  bool help = false;
};

// Parses the common flags; `default_scale` is per-binary (sized so the
// whole bench directory sweeps in minutes; --scale=1 is paper scale).
inline BenchOptions parse_options(int argc, char** argv, double default_scale,
                                  int default_trials = 1) {
  Flags flags(argc, argv);
  BenchOptions options;
  options.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", 42, "root RNG seed"));
  options.scale =
      flags.get_double("scale", default_scale, "workload scale (1 = paper Table I)");
  options.trials = static_cast<int>(flags.get_int("trials", default_trials,
                                                  "number of seeds averaged"));
  options.help = flags.maybe_print_help(std::cout);
  for (const auto& unknown : flags.unknown_flags()) {
    std::cerr << "warning: unknown flag --" << unknown << "\n";
  }
  return options;
}

}  // namespace whatsup::bench
