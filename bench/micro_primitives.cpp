// Microbenchmarks of the hot kernels in the WhatsUp stack: similarity
// computation (the WUP clustering inner loop), view merges, item-profile
// aggregation, and the SCC analysis used by Fig. 4.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "gossip/view.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "profile/item_profile.hpp"
#include "profile/similarity.hpp"
#include "profile/snapshot.hpp"

// Global operator-new hook counting heap allocations, so the payload
// benchmarks can report `allocs_per_op` — the number the CoW + SBO work
// is meant to drive to zero on the news fan-out path. Bench binary only;
// the library itself is untouched.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::uint64_t allocs_now() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace whatsup {
namespace {

Profile random_profile(Rng& rng, std::size_t entries, ItemId universe) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) {
    p.set(rng.index(universe) + 1, static_cast<Cycle>(rng.index(50)),
          rng.bernoulli(0.5) ? 1.0 : 0.0);
  }
  return p;
}

// The production scoring loop of the WUP clustering protocol: a node scores
// its candidate descriptors every merge, but between merges at most a few
// candidate profiles actually changed. `use_memo=false` reproduces the
// pre-change behavior (every candidate rescored from scratch, the seed's
// BM_WupSimilarity cost per call); `use_memo=true` is the shipped path,
// where only the churned descriptor pays the kernel.
void run_wup_scoring(benchmark::State& state, bool use_memo) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kCandidates = 64;
  const Profile subject = random_profile(rng, size, 4 * size);
  std::vector<net::Descriptor> candidates;
  for (std::size_t i = 0; i < kCandidates; ++i) {
    candidates.push_back(
        net::make_descriptor(static_cast<NodeId>(i), 0, random_profile(rng, size, 4 * size)));
  }
  SimilarityMemo memo;
  for (auto _ : state) {
    // Gossip churn: one candidate re-rated an item since the last merge.
    net::Descriptor& churned = candidates[rng.index(kCandidates)];
    Profile fresh = churned.profile_ref();
    fresh.set(rng.index(4 * size) + 1, 0, rng.bernoulli(0.5) ? 1.0 : 0.0);
    churned = net::make_descriptor(churned.node, churned.timestamp(), fresh);
    double total = 0.0;
    for (const net::Descriptor& d : candidates) {
      total += use_memo
                   ? memo.score(Metric::kWup, subject, d.node, d.profile_ref())
                   : wup_similarity(subject, d.profile_ref());
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kCandidates);
}

void BM_WupSimilarity(benchmark::State& state) { run_wup_scoring(state, true); }
BENCHMARK(BM_WupSimilarity)->Arg(16)->Arg(64)->Arg(256);

void BM_WupSimilarityNoMemo(benchmark::State& state) { run_wup_scoring(state, false); }
BENCHMARK(BM_WupSimilarityNoMemo)->Arg(16)->Arg(64)->Arg(256);

// The raw pairwise kernel (one subject/candidate pair, fixed operands).
void BM_WupSimilarityKernel(benchmark::State& state) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile a = random_profile(rng, size, 4 * size);
  const Profile b = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wup_similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WupSimilarityKernel)->Arg(16)->Arg(64)->Arg(256);

void BM_CosineSimilarity(benchmark::State& state) {
  Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile a = random_profile(rng, size, 4 * size);
  const Profile b = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosine_similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CosineSimilarity)->Arg(16)->Arg(64)->Arg(256);

void BM_ProfileFold(benchmark::State& state) {
  Rng rng(3);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile user = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    Profile item;
    item.fold_profile(user);
    benchmark::DoNotOptimize(item);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileFold)->Arg(64)->Arg(256);

void BM_ViewMergeClosest(benchmark::State& state) {
  Rng rng(4);
  const auto n_candidates = static_cast<std::size_t>(state.range(0));
  const Profile own = random_profile(rng, 100, 400);
  std::vector<net::Descriptor> candidates;
  for (std::size_t i = 0; i < n_candidates; ++i) {
    candidates.push_back(
        net::make_descriptor(static_cast<NodeId>(i), 0, random_profile(rng, 100, 400)));
  }
  for (auto _ : state) {
    gossip::View view(20);
    view.assign_closest(candidates, own, Metric::kWup, rng);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * n_candidates);
}
BENCHMARK(BM_ViewMergeClosest)->Arg(30)->Arg(70)->Arg(150);

// The production merge path (ClusteringProtocol::merge): same selection,
// but scores flow through the per-protocol similarity memo.
void BM_ViewMergeClosestMemo(benchmark::State& state) {
  Rng rng(4);
  const auto n_candidates = static_cast<std::size_t>(state.range(0));
  const Profile own = random_profile(rng, 100, 400);
  std::vector<net::Descriptor> candidates;
  for (std::size_t i = 0; i < n_candidates; ++i) {
    candidates.push_back(
        net::make_descriptor(static_cast<NodeId>(i), 0, random_profile(rng, 100, 400)));
  }
  SimilarityMemo memo;
  for (auto _ : state) {
    gossip::View view(20);
    view.assign_closest(candidates, own, Metric::kWup, rng, &memo);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * n_candidates);
}
BENCHMARK(BM_ViewMergeClosestMemo)->Arg(30)->Arg(70)->Arg(150);

// Outgoing-descriptor materialization: seed behavior (deep copy per send)
// vs the shipped ProfileSnapshotCache (shared snapshot until the profile
// version changes).
void BM_DescriptorDeepCopy(benchmark::State& state) {
  Rng rng(8);
  const Profile profile = random_profile(rng, 60, 240);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_descriptor(1, 0, profile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DescriptorDeepCopy);

void BM_DescriptorSnapshotCache(benchmark::State& state) {
  Rng rng(8);
  const Profile profile = random_profile(rng, 60, 240);
  ProfileSnapshotCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_descriptor(1, 0, cache.get(profile)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DescriptorSnapshotCache);

// ---- Compact profile codec (profile/compact.hpp) --------------------------
//
// The storage layer under every descriptor: varint-delta encode of a
// profile into an interned record, and decode-on-demand into thread-local
// SoA scratch. The scratch ring caches by version, so the *_Materialize
// row alternates two generations to defeat the cache and pay the decode.
void BM_CompactEncode(benchmark::State& state) {
  Rng rng(8);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile profile = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompactProfile::encode(profile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompactEncode)->Arg(16)->Arg(64)->Arg(256);

void BM_CompactMaterialize(benchmark::State& state) {
  Rng rng(8);
  const auto size = static_cast<std::size_t>(state.range(0));
  // More generations than scratch slots: every materialize decodes.
  std::vector<ProfileHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(ProfileHandle::snapshot(random_profile(rng, size, 4 * size)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(handles[i % handles.size()].materialize().size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompactMaterialize)->Arg(16)->Arg(64)->Arg(256);

// ---- News payload replication (BEEP fan-out, §III) ------------------------
//
// Forwarding a liked item replicates the payload fLIKE times. Pre-PR the
// item profile was held by value (one deep copy per target); the shipped
// ItemProfileRef shares it copy-on-write (one refcount bump per target).
// `allocs_per_op` counts heap allocations per replicated fan-out.

constexpr int kNewsFanout = 10;  // the paper's fLIKE

// Pre-change behavior: the item profile deep-copied once per target.
void BM_NewsPayloadReplicateByValue(benchmark::State& state) {
  Rng rng(9);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile profile = random_profile(rng, size, 4 * size);
  const std::uint64_t before = allocs_now();
  for (auto _ : state) {
    for (int i = 0; i < kNewsFanout; ++i) {
      Profile copy = profile;
      benchmark::DoNotOptimize(copy);
    }
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_now() - before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * kNewsFanout);
}
BENCHMARK(BM_NewsPayloadReplicateByValue)->Arg(8)->Arg(64)->Arg(256);

// Shipped path: fLIKE copies of the payload bump one shared refcount.
void BM_NewsPayloadReplicateCoW(benchmark::State& state) {
  Rng rng(9);
  const auto size = static_cast<std::size_t>(state.range(0));
  net::NewsPayload news;
  news.item_profile = random_profile(rng, size, 4 * size);
  const std::uint64_t before = allocs_now();
  for (auto _ : state) {
    for (int i = 0; i < kNewsFanout; ++i) {
      net::NewsPayload copy = news;
      benchmark::DoNotOptimize(copy);
    }
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_now() - before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * kNewsFanout);
}
BENCHMARK(BM_NewsPayloadReplicateCoW)->Arg(8)->Arg(64)->Arg(256);

// One full BEEP hop on the shipped path: receive a payload that still
// shares its profile with the sender's copy, fold the user profile into
// it (the one CoW clone), run the no-op window purge, then replicate to
// the fan-out. This is the per-delivery cost handle_news + forward pay.
void BM_NewsHopForward(benchmark::State& state) {
  Rng rng(10);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile user = random_profile(rng, size, 4 * size);
  net::NewsPayload incoming;
  incoming.item_profile = random_profile(rng, size, 4 * size);
  const std::uint64_t before = allocs_now();
  for (auto _ : state) {
    net::NewsPayload news = incoming;        // delivery copy (shared)
    news.item_profile.fold_profile(user);    // CoW clone, then in-place
    news.item_profile.purge_older_than(0);   // no-op purge: no clone
    for (int i = 0; i < kNewsFanout; ++i) {
      net::NewsPayload copy = news;          // fan-out: refcount bumps
      benchmark::DoNotOptimize(copy);
    }
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_now() - before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NewsHopForward)->Arg(8)->Arg(64)->Arg(256);

void BM_MergeCandidates(benchmark::State& state) {
  Rng rng(5);
  std::vector<net::Descriptor> base, incoming;
  for (NodeId v = 0; v < 40; ++v) {
    base.push_back(net::Descriptor{v, static_cast<Cycle>(rng.index(100)), nullptr});
    incoming.push_back(
        net::Descriptor{v + 20, static_cast<Cycle>(rng.index(100)), nullptr});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::merge_candidates(base, incoming, 0));
  }
}
BENCHMARK(BM_MergeCandidates);

void BM_LargestScc(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Digraph g(n);
  // Overlay-like digraph: 20 random out-edges per node.
  for (NodeId v = 0; v < n; ++v) {
    for (int e = 0; e < 20; ++e) {
      g.add_edge(v, static_cast<NodeId>(rng.index(n)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::largest_scc_fraction(g));
  }
}
BENCHMARK(BM_LargestScc)->Arg(500)->Arg(3000);

}  // namespace
}  // namespace whatsup

BENCHMARK_MAIN();
