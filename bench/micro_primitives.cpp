// Microbenchmarks of the hot kernels in the WhatsUp stack: similarity
// computation (the WUP clustering inner loop), view merges, item-profile
// aggregation, and the SCC analysis used by Fig. 4.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "gossip/view.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "profile/similarity.hpp"
#include "profile/snapshot.hpp"

namespace whatsup {
namespace {

Profile random_profile(Rng& rng, std::size_t entries, ItemId universe) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) {
    p.set(rng.index(universe) + 1, static_cast<Cycle>(rng.index(50)),
          rng.bernoulli(0.5) ? 1.0 : 0.0);
  }
  return p;
}

// The production scoring loop of the WUP clustering protocol: a node scores
// its candidate descriptors every merge, but between merges at most a few
// candidate profiles actually changed. `use_memo=false` reproduces the
// pre-change behavior (every candidate rescored from scratch, the seed's
// BM_WupSimilarity cost per call); `use_memo=true` is the shipped path,
// where only the churned descriptor pays the kernel.
void run_wup_scoring(benchmark::State& state, bool use_memo) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kCandidates = 64;
  const Profile subject = random_profile(rng, size, 4 * size);
  std::vector<net::Descriptor> candidates;
  for (std::size_t i = 0; i < kCandidates; ++i) {
    candidates.push_back(
        net::make_descriptor(static_cast<NodeId>(i), 0, random_profile(rng, size, 4 * size)));
  }
  SimilarityMemo memo;
  for (auto _ : state) {
    // Gossip churn: one candidate re-rated an item since the last merge.
    net::Descriptor& churned = candidates[rng.index(kCandidates)];
    Profile fresh = churned.profile_ref();
    fresh.set(rng.index(4 * size) + 1, 0, rng.bernoulli(0.5) ? 1.0 : 0.0);
    churned.profile = std::make_shared<const Profile>(std::move(fresh));
    double total = 0.0;
    for (const net::Descriptor& d : candidates) {
      total += use_memo
                   ? memo.score(Metric::kWup, subject, d.node, d.profile_ref())
                   : wup_similarity(subject, d.profile_ref());
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kCandidates);
}

void BM_WupSimilarity(benchmark::State& state) { run_wup_scoring(state, true); }
BENCHMARK(BM_WupSimilarity)->Arg(16)->Arg(64)->Arg(256);

void BM_WupSimilarityNoMemo(benchmark::State& state) { run_wup_scoring(state, false); }
BENCHMARK(BM_WupSimilarityNoMemo)->Arg(16)->Arg(64)->Arg(256);

// The raw pairwise kernel (one subject/candidate pair, fixed operands).
void BM_WupSimilarityKernel(benchmark::State& state) {
  Rng rng(1);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile a = random_profile(rng, size, 4 * size);
  const Profile b = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wup_similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WupSimilarityKernel)->Arg(16)->Arg(64)->Arg(256);

void BM_CosineSimilarity(benchmark::State& state) {
  Rng rng(2);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile a = random_profile(rng, size, 4 * size);
  const Profile b = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosine_similarity(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CosineSimilarity)->Arg(16)->Arg(64)->Arg(256);

void BM_ProfileFold(benchmark::State& state) {
  Rng rng(3);
  const auto size = static_cast<std::size_t>(state.range(0));
  const Profile user = random_profile(rng, size, 4 * size);
  for (auto _ : state) {
    Profile item;
    item.fold_profile(user);
    benchmark::DoNotOptimize(item);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileFold)->Arg(64)->Arg(256);

void BM_ViewMergeClosest(benchmark::State& state) {
  Rng rng(4);
  const auto n_candidates = static_cast<std::size_t>(state.range(0));
  const Profile own = random_profile(rng, 100, 400);
  std::vector<net::Descriptor> candidates;
  for (std::size_t i = 0; i < n_candidates; ++i) {
    candidates.push_back(
        net::make_descriptor(static_cast<NodeId>(i), 0, random_profile(rng, 100, 400)));
  }
  for (auto _ : state) {
    gossip::View view(20);
    view.assign_closest(candidates, own, Metric::kWup, rng);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * n_candidates);
}
BENCHMARK(BM_ViewMergeClosest)->Arg(30)->Arg(70)->Arg(150);

// The production merge path (ClusteringProtocol::merge): same selection,
// but scores flow through the per-protocol similarity memo.
void BM_ViewMergeClosestMemo(benchmark::State& state) {
  Rng rng(4);
  const auto n_candidates = static_cast<std::size_t>(state.range(0));
  const Profile own = random_profile(rng, 100, 400);
  std::vector<net::Descriptor> candidates;
  for (std::size_t i = 0; i < n_candidates; ++i) {
    candidates.push_back(
        net::make_descriptor(static_cast<NodeId>(i), 0, random_profile(rng, 100, 400)));
  }
  SimilarityMemo memo;
  for (auto _ : state) {
    gossip::View view(20);
    view.assign_closest(candidates, own, Metric::kWup, rng, &memo);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * n_candidates);
}
BENCHMARK(BM_ViewMergeClosestMemo)->Arg(30)->Arg(70)->Arg(150);

// Outgoing-descriptor materialization: seed behavior (deep copy per send)
// vs the shipped ProfileSnapshotCache (shared snapshot until the profile
// version changes).
void BM_DescriptorDeepCopy(benchmark::State& state) {
  Rng rng(8);
  const Profile profile = random_profile(rng, 60, 240);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_descriptor(1, 0, profile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DescriptorDeepCopy);

void BM_DescriptorSnapshotCache(benchmark::State& state) {
  Rng rng(8);
  const Profile profile = random_profile(rng, 60, 240);
  ProfileSnapshotCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::make_descriptor(1, 0, cache.get(profile)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DescriptorSnapshotCache);

void BM_MergeCandidates(benchmark::State& state) {
  Rng rng(5);
  std::vector<net::Descriptor> base, incoming;
  for (NodeId v = 0; v < 40; ++v) {
    base.push_back(net::Descriptor{v, static_cast<Cycle>(rng.index(100)), nullptr});
    incoming.push_back(
        net::Descriptor{v + 20, static_cast<Cycle>(rng.index(100)), nullptr});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::merge_candidates(base, incoming, 0));
  }
}
BENCHMARK(BM_MergeCandidates);

void BM_LargestScc(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Digraph g(n);
  // Overlay-like digraph: 20 random out-edges per node.
  for (NodeId v = 0; v < n; ++v) {
    for (int e = 0; e < 20; ++e) {
      g.add_edge(v, static_cast<NodeId>(rng.index(n)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::largest_scc_fraction(g));
  }
}
BENCHMARK(BM_LargestScc)->Arg(500)->Arg(3000);

}  // namespace
}  // namespace whatsup

BENCHMARK_MAIN();
