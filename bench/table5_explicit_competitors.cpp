// Table V — WhatsUp vs Cascading and C-Pub/Sub.
// Reproduces the corresponding table/figure of the WhatsUp paper
// (IPDPS 2013); see DESIGN.md §3 and EXPERIMENTS.md for the
// paper-vs-measured record. Flags: --seed, --scale, --trials, --help.
#include <iostream>

#include "analysis/experiments.hpp"
#include "bench_main.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  const bench::BenchOptions options = bench::parse_options(argc, argv, 1.0, 1);
  if (options.help) return 0;
  analysis::print_table5(std::cout, options.seed, options.scale, options.trials);
  return 0;
}
