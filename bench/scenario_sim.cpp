// Scenario runner: loads a declarative .scn event timeline (src/scenario/),
// drives one full WhatsUp deployment under it, and prints the per-window
// metric table — recall/precision before/during/after each event — plus a
// trajectory fingerprint for reproducibility checks.
//
//   bench_scenario_sim --scenario scenarios/kitchen_sink.scn [--scale 0.5]
//       [--workload survey] [--seed N] [--fanout F] [--threads T]
//       [--shard-nodes W] [--partitions P] [--progress N]
//       [--stats-json F] [--stats-every N] [--trace F]
//
// Telemetry (src/obs/): --stats-json enables the stats registry and writes
// the per-cycle series plus the end-of-run snapshot; --trace captures
// WUP_TRACE_SCOPE spans as Chrome trace-event JSON; --progress prints a
// heartbeat to stderr. All three leave the trajectory fingerprint
// bit-identical (the obs determinism contract; CI's telemetry-smoke job
// diffs the fingerprints).
//
// The run is extended so the timeline's horizon always fits inside the
// publication+drain phases. Fixed-seed output is bit-identical for any
// --threads / --shard-nodes (the determinism suite pins this); the
// fingerprint line makes that easy to eyeball across invocations.
//
// --partitions P > 1 forks P lockstep worker processes over a socketpair
// mesh (bench/partition_launcher.hpp), each running one node fragment;
// per-window tables are skipped (workers hold partial metrics) but the
// trajectory fingerprint line is printed in the exact single-process
// format — the distributed-smoke CI job diffs the two.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "partition_launcher.hpp"
#include "scenario/scenario.hpp"

namespace {

// FNV-1a over the per-cycle tracker digests: one number that pins the
// whole measured trajectory (equal across --threads / --shard-nodes /
// --partitions).
void print_fingerprint(const std::vector<std::uint64_t>& cycle_digests) {
  std::uint64_t fingerprint = 0xcbf29ce484222325ULL;
  for (const std::uint64_t digest : cycle_digests) {
    for (int byte = 0; byte < 8; ++byte) {
      fingerprint ^= (digest >> (8 * byte)) & 0xff;
      fingerprint *= 0x100000001b3ULL;
    }
  }
  std::cout << "Trajectory fingerprint: " << std::hex << fingerprint << std::dec
            << " over " << cycle_digests.size() << " cycles\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const std::string spec_path =
      flags.get_string("scenario", "", "path to the .scn scenario spec (required)");
  const std::string workload_name =
      flags.get_string("workload", "survey", "workload: synthetic | digg | survey");
  const double scale = flags.get_double("scale", 0.5, "workload scale");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42, "RNG seed"));
  const int fanout = static_cast<int>(flags.get_int("fanout", 8, "BEEP fLIKE"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 1, "engine worker threads (0 = hardware concurrency)"));
  const auto shard_nodes = static_cast<std::size_t>(
      flags.get_int("shard-nodes", 0, "nodes per shard (0 = engine default)"));
  const auto partitions = static_cast<std::size_t>(flags.get_int(
      "partitions", 1, "worker processes (socket transport); 1 = in-process"));
  const auto progress = static_cast<Cycle>(
      flags.get_int("progress", 0, "heartbeat to stderr every N cycles (0 = off)"));
  const std::string stats_json = flags.get_string(
      "stats-json", "", "write per-cycle stats series + final snapshot to FILE");
  const auto stats_every = static_cast<Cycle>(flags.get_int(
      "stats-every", 1, "stats series sampling period in cycles"));
  const std::string trace_path = flags.get_string(
      "trace", "", "write Chrome trace-event JSON of WUP_TRACE_SCOPE spans to FILE");
  if (flags.maybe_print_help(std::cout)) return 0;
  if (spec_path.empty()) {
    std::cerr << "error: --scenario <file.scn> is required (see scenarios/)\n";
    return 1;
  }

  scenario::Timeline timeline;
  try {
    timeline = scenario::parse_file(spec_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const data::Workload workload =
      analysis::standard_workload(workload_name, seed, scale);

  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;
  config.shard_nodes = shard_nodes;
  config.collect_cycle_digests = true;
  config.scenario = timeline;
  config.fit_scenario_horizon();  // make sure every event fires

  config.observability.progress_every = progress;
  if (!stats_json.empty()) {
    config.observability.enable_stats = true;
    config.observability.stats_every = std::max<Cycle>(stats_every, 1);
  }
  if (config.observability.enabled()) obs::Registry::instance().reset();
  if (!trace_path.empty()) obs::trace_start();

  std::cout << "Scenario '" << timeline.name << "' (" << spec_path << "), "
            << timeline.events().size() << " events, horizon " << timeline.horizon()
            << ":\n";
  for (const scenario::Event& event : timeline.events()) {
    std::cout << "  " << scenario::to_spec_line(event) << '\n';
  }
  std::cout << "Workload " << workload.name << ": " << workload.num_users()
            << " users, " << workload.num_items() << " items"
            << (timeline.num_adversaries() > 0
                    ? " (+" + std::to_string(timeline.num_adversaries()) +
                          " adversary nodes, " +
                          std::to_string(timeline.num_spam_items()) + " spam items)"
                    : std::string())
            << "; " << config.total_cycles() << " cycles, threads=" << threads
            << (partitions > 1 ? ", partitions=" + std::to_string(partitions)
                               : std::string())
            << "\n\n";

  if (partitions > 1) {
    // Distributed mode: fork one worker per fragment, sum the partial
    // per-cycle digests, and print the fingerprint in the single-process
    // format. Score tables are skipped — each worker holds only its own
    // fragment's metrics. Stats/trace files are skipped too: the spans and
    // lanes live in the forked fragment processes, not here.
    if (!stats_json.empty() || !trace_path.empty()) {
      std::cerr << "note: --stats-json/--trace emit no files in partitioned "
                   "mode (telemetry lives in the fragment processes)\n";
    }
    std::cout.flush();  // children inherit the stream buffer
    const std::vector<std::uint64_t> digests = bench::run_partitioned(
        partitions, [&](sim::Transport& transport) {
          analysis::RunConfig worker_config = config;
          worker_config.partitions = static_cast<int>(partitions);
          worker_config.transport = &transport;
          return analysis::run_protocol(workload, worker_config).cycle_digests;
        });
    print_fingerprint(digests);
    return 0;
  }

  const analysis::RunResult result = analysis::run_protocol(workload, config);

  if (!trace_path.empty()) {
    obs::trace_stop();
    std::ofstream out(trace_path);
    const std::size_t events = obs::trace_write_json(out);
    std::cerr << "[trace] wrote " << events << " span(s) to " << trace_path
              << '\n';
  }
  if (!stats_json.empty()) {
    std::ofstream out(stats_json);
    obs::write_stats_json(out, result.stats_series, result.stats);
    std::cerr << "[stats] wrote " << result.stats_series.size()
              << " sample(s) to " << stats_json << '\n';
  }

  Table table({"Phase", "Cycles", "Items", "Precision", "Recall", "F1"});
  for (const metrics::WindowScores& ws : result.windows) {
    table.add_row({ws.window.label,
                   "[" + std::to_string(ws.window.begin) + ", " +
                       std::to_string(ws.window.end) + ")",
                   std::to_string(ws.scores.items), fixed(ws.scores.precision, 3),
                   fixed(ws.scores.recall, 3), fixed(ws.scores.f1, 3)});
  }
  table.print(std::cout, "Per-window scores around each event");

  std::cout << "\nOverall: precision=" << fixed(result.scores.precision, 3)
            << " recall=" << fixed(result.scores.recall, 3)
            << " f1=" << fixed(result.scores.f1, 3) << " over "
            << result.scores.items << " measured items\n";
  std::cout << "Traffic: " << result.news_messages << " news + "
            << result.gossip_messages << " gossip messages ("
            << fixed(result.msgs_per_user, 1) << " msgs/user)\n";

  print_fingerprint(result.cycle_digests);
  return 0;
}
