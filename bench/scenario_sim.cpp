// Scenario runner: loads a declarative .scn event timeline (src/scenario/),
// drives one full WhatsUp deployment under it, and prints the per-window
// metric table — recall/precision before/during/after each event — plus a
// trajectory fingerprint for reproducibility checks.
//
//   bench_scenario_sim --scenario scenarios/kitchen_sink.scn [--scale 0.5]
//       [--workload survey] [--seed N] [--fanout F] [--threads T]
//       [--shard-nodes W]
//
// The run is extended so the timeline's horizon always fits inside the
// publication+drain phases. Fixed-seed output is bit-identical for any
// --threads / --shard-nodes (the determinism suite pins this); the
// fingerprint line makes that easy to eyeball across invocations.
#include <algorithm>
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const std::string spec_path =
      flags.get_string("scenario", "", "path to the .scn scenario spec (required)");
  const std::string workload_name =
      flags.get_string("workload", "survey", "workload: synthetic | digg | survey");
  const double scale = flags.get_double("scale", 0.5, "workload scale");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42, "RNG seed"));
  const int fanout = static_cast<int>(flags.get_int("fanout", 8, "BEEP fLIKE"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 1, "engine worker threads (0 = hardware concurrency)"));
  const auto shard_nodes = static_cast<std::size_t>(
      flags.get_int("shard-nodes", 0, "nodes per shard (0 = engine default)"));
  if (flags.maybe_print_help(std::cout)) return 0;
  if (spec_path.empty()) {
    std::cerr << "error: --scenario <file.scn> is required (see scenarios/)\n";
    return 1;
  }

  scenario::Timeline timeline;
  try {
    timeline = scenario::parse_file(spec_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const data::Workload workload =
      analysis::standard_workload(workload_name, seed, scale);

  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;
  config.shard_nodes = shard_nodes;
  config.collect_cycle_digests = true;
  config.scenario = timeline;
  config.fit_scenario_horizon();  // make sure every event fires

  std::cout << "Scenario '" << timeline.name << "' (" << spec_path << "), "
            << timeline.events().size() << " events, horizon " << timeline.horizon()
            << ":\n";
  for (const scenario::Event& event : timeline.events()) {
    std::cout << "  " << scenario::to_spec_line(event) << '\n';
  }
  std::cout << "Workload " << workload.name << ": " << workload.num_users()
            << " users, " << workload.num_items() << " items"
            << (timeline.num_adversaries() > 0
                    ? " (+" + std::to_string(timeline.num_adversaries()) +
                          " adversary nodes, " +
                          std::to_string(timeline.num_spam_items()) + " spam items)"
                    : std::string())
            << "; " << config.total_cycles() << " cycles, threads=" << threads
            << "\n\n";

  const analysis::RunResult result = analysis::run_protocol(workload, config);

  Table table({"Phase", "Cycles", "Items", "Precision", "Recall", "F1"});
  for (const metrics::WindowScores& ws : result.windows) {
    table.add_row({ws.window.label,
                   "[" + std::to_string(ws.window.begin) + ", " +
                       std::to_string(ws.window.end) + ")",
                   std::to_string(ws.scores.items), fixed(ws.scores.precision, 3),
                   fixed(ws.scores.recall, 3), fixed(ws.scores.f1, 3)});
  }
  table.print(std::cout, "Per-window scores around each event");

  std::cout << "\nOverall: precision=" << fixed(result.scores.precision, 3)
            << " recall=" << fixed(result.scores.recall, 3)
            << " f1=" << fixed(result.scores.f1, 3) << " over "
            << result.scores.items << " measured items\n";
  std::cout << "Traffic: " << result.news_messages << " news + "
            << result.gossip_messages << " gossip messages ("
            << fixed(result.msgs_per_user, 1) << " msgs/user)\n";

  // FNV-1a over the per-cycle tracker digests: one number that pins the
  // whole measured trajectory (equal across --threads / --shard-nodes).
  std::uint64_t fingerprint = 0xcbf29ce484222325ULL;
  for (const std::uint64_t digest : result.cycle_digests) {
    for (int byte = 0; byte < 8; ++byte) {
      fingerprint ^= (digest >> (8 * byte)) & 0xff;
      fingerprint *= 0x100000001b3ULL;
    }
  }
  std::cout << "Trajectory fingerprint: " << std::hex << fingerprint << std::dec
            << " over " << result.cycle_digests.size() << " cycles\n";
  return 0;
}
