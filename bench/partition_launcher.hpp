// Forking launcher for fragment-partitioned bench runs.
//
// Spawns one worker process per fragment over a pre-built AF_UNIX
// socketpair mesh (sim/transport.hpp), runs the caller's workload in every
// worker — the calling process doubles as fragment 0 — and reduces the
// workers' per-cycle partial Tracker digests by summation (mod 2^64,
// Tracker::digest is commutative), which reproduces the single-process
// digest series exactly. Bench mains use this for --partitions N; the
// distributed-smoke CI job diffs the resulting trajectory fingerprint
// against a single-process run.
//
// fork() is only safe here because bench mains call this before creating
// any threads; each worker's engine builds its own pool post-fork.
#pragma once

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/transport.hpp"

namespace whatsup::bench {

namespace detail {

inline void write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("partition launcher: pipe write failed");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

inline void read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error(
          "partition launcher: worker pipe closed early (worker crashed?)");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace detail

// Runs `worker` once per fragment — fragment 0 in the calling process,
// fragments 1..partitions-1 in forked children — and returns the
// element-wise sum (mod 2^64) of the digest series every worker returns.
// All series must have equal length (they are per-cycle and the workers
// run in lockstep). Throws if a worker exits abnormally.
inline std::vector<std::uint64_t> run_partitioned(
    std::size_t partitions,
    const std::function<std::vector<std::uint64_t>(sim::Transport&)>& worker) {
  if (partitions <= 1) {
    sim::InProcessTransport transport;
    return worker(transport);
  }
  std::vector<std::vector<int>> mesh = sim::socketpair_mesh(partitions);
  std::vector<int> pipes(partitions, -1);  // parent's read end per child
  std::vector<pid_t> pids(partitions, -1);
  for (std::size_t w = 1; w < partitions; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("partition launcher: pipe failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("partition launcher: fork failed");
    if (pid == 0) {
      // Child = fragment w: keep only this fragment's mesh row and the
      // write end of its own result pipe.
      ::close(fds[0]);
      for (std::size_t i = 0; i < partitions; ++i) {
        if (i == w) continue;
        for (int fd : mesh[i]) {
          if (fd >= 0) ::close(fd);
        }
        if (pipes[i] >= 0) ::close(pipes[i]);
      }
      int status = 0;
      try {
        sim::SocketTransport transport(w, std::move(mesh[w]));
        const std::vector<std::uint64_t> series = worker(transport);
        const std::uint64_t count = series.size();
        detail::write_all(fds[1], &count, sizeof(count));
        detail::write_all(fds[1], series.data(), series.size() * sizeof(std::uint64_t));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker %zu: %s\n", w, e.what());
        status = 1;
      }
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);
    pipes[w] = fds[0];
    pids[w] = pid;
    // The parent no longer needs this child's mesh row.
    for (int& fd : mesh[w]) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }

  // Parent = fragment 0.
  std::vector<std::uint64_t> sum;
  {
    sim::SocketTransport transport(0, std::move(mesh[0]));
    sum = worker(transport);
  }
  for (std::size_t w = 1; w < partitions; ++w) {
    std::uint64_t count = 0;
    detail::read_all(pipes[w], &count, sizeof(count));
    std::vector<std::uint64_t> series(count);
    detail::read_all(pipes[w], series.data(), count * sizeof(std::uint64_t));
    ::close(pipes[w]);
    if (series.size() != sum.size()) {
      throw std::runtime_error("partition launcher: digest series length mismatch");
    }
    for (std::size_t c = 0; c < series.size(); ++c) sum[c] += series[c];
    int status = 0;
    if (::waitpid(pids[w], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      throw std::runtime_error("partition launcher: worker " + std::to_string(w) +
                               " exited abnormally");
    }
  }
  return sum;
}

}  // namespace whatsup::bench
