// Macro benchmark: a full WhatsUp deployment (RPS + WUP clustering + BEEP
// dissemination + metrics tracking) at simulator scale, reporting
// simulated gossip cycles per second. This is the number the ROADMAP's
// "as fast as the hardware allows" target tracks PR over PR; the micro
// kernels live in micro_primitives.cpp.
//
//   items_per_second == simulated cycles / second
//
// Scales: 500 nodes × 200 cycles (the BENCH_micro.json baseline) at
// worker-thread counts 1/4/8, a smaller CI-smoke configuration, and a
// 10k-node configuration exercising the sharded scheduler. Fixed-seed
// results are bit-identical across thread counts (the determinism suite
// asserts this); only the wall clock changes.
//
// Every row also reports memory counters read from /proc/self/status:
//   peak_rss_mb          VmHWM — peak resident set during THIS row (MiB)
//   peak_bytes_per_node  peak_rss_mb / nodes
//   mem_isolated         1 when the row's peak was isolated from earlier
//                        rows, 0 when it may carry an older high-water mark
// VmHWM is a process-lifetime high-water mark, so a sweep would otherwise
// attribute the largest earlier row to every later one (small fault-sweep
// rows used to inherit the 10k-node peak). Each row therefore resets the
// kernel's high-water mark first (writing "5" to /proc/self/clear_refs);
// where that interface is unavailable, the row re-runs once in a forked
// child and reports the child's own VmHWM.
//
// Flags (parsed before Google Benchmark's own):
//   --nodes=N     additionally register BM_WhatsUpSim_Custom at N nodes
//   --threads=N   thread count for the custom row (default: hardware
//                 concurrency)
//   --items=N     item count for the custom row (default: nodes/20, so
//                 large-node rows do not degenerate into an allocator
//                 benchmark — see BM_WhatsUpSim_10000n_50c)
//   --cycles=N    publication cycles for the custom row (default: 50)
//   --warmup=N    warmup cycles for the custom row (default: 5)
//   --drain=N     drain cycles for the custom row (default: 15) — the
//                 million-node CI smoke row shrinks warmup/drain so the
//                 run fits the job budget on one core
//   --spread=K    stagger each cycle's publication burst over the next K
//                 cycles (RunConfig::publish_spread) — de-synchronizes the
//                 storm that otherwise sets the peak-RSS envelope
//   --scenario=F  .scn event timeline applied to the custom row (implies
//                 the custom row at 500 nodes when --nodes is not given);
//                 see src/scenario/ and scenarios/
//   --partitions=P  run the custom row distributed: fork P lockstep worker
//                 processes over a socketpair mesh (bench/
//                 partition_launcher.hpp), each owning one node fragment.
//                 Reports simulated cycles/s of the whole partitioned run;
//                 memory counters then cover only fragment 0's process.
//   --progress=N  heartbeat to stderr every N cycles (cycles/s, ETA, RSS)
//   --stats-json=F  enable the obs stats registry for every row and write
//                 the last-run per-cycle series + final snapshot to F
//                 (in-process rows only; see src/obs/snapshot.hpp)
//   --stats-every=N sampling period of the series (default 1 cycle)
//   --trace=F     capture WUP_TRACE_SCOPE spans for the whole benchmark
//                 run and write Chrome trace-event JSON to F
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif
#ifdef __GLIBC__
#include <malloc.h>
#endif

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "partition_launcher.hpp"
#include "scenario/scenario.hpp"

namespace whatsup {
namespace {

// Reads an integer field (kiB) from /proc/self/status; 0 when the key or
// the file is unavailable (non-Linux).
std::size_t proc_status_kib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t value = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      value = std::strtoull(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

// Resets the kernel's peak-RSS high-water mark to the CURRENT resident set
// (echo 5 > /proc/self/clear_refs), so the next VmHWM read reflects this
// row, not whichever earlier row in the sweep was largest.
bool reset_peak_rss() {
  // Return freed-but-retained allocator pages to the kernel first: the
  // reset pins the high-water mark to the CURRENT resident set, and an
  // earlier row's drained heap would otherwise become this row's floor.
#ifdef __GLIBC__
  malloc_trim(0);
#endif
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return std::fclose(f) == 0 && ok;
}

// Fallback isolation when clear_refs is unavailable: run `body` once in a
// forked child and return the child's own VmHWM (KiB); 0 on failure.
std::size_t forked_peak_kib(const std::function<void()>& body) {
#ifdef __unix__
  int fds[2];
  if (pipe(fds) != 0) return 0;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return 0;
  }
  if (pid == 0) {
    close(fds[0]);
    body();
    const std::size_t kib = proc_status_kib("VmHWM");
    (void)!write(fds[1], &kib, sizeof(kib));
    _exit(0);
  }
  close(fds[1]);
  std::size_t kib = 0;
  if (read(fds[0], &kib, sizeof(kib)) != static_cast<ssize_t>(sizeof(kib))) kib = 0;
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return kib;
#else
  (void)body;
  return 0;
#endif
}

Cycle g_progress = 0;            // --progress=N heartbeat period (0 = off)
std::string g_stats_json;        // --stats-json=F (empty = stats off)
Cycle g_stats_every = 1;         // --stats-every=N series sampling period
std::string g_trace;             // --trace=F (empty = tracing off)

data::Workload macro_workload(std::size_t users, std::size_t items) {
  Rng rng(11);
  data::SurveyConfig config;
  config.base_users = users / 2;
  config.base_items = items / 2;
  config.replication = 2;
  return data::make_survey(config, rng);
}

void run_macro(benchmark::State& state, std::size_t users, std::size_t items,
               Cycle publish_cycles, unsigned threads,
               const scenario::Timeline* timeline = nullptr,
               const net::NetworkConfig* network = nullptr,
               bool reliability = false, Cycle warmup_cycles = 5,
               Cycle drain_cycles = 15, std::size_t partitions = 1,
               Cycle publish_spread = 0) {
  const data::Workload workload = macro_workload(users, items);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 8;
  config.seed = 3;
  config.warmup_cycles = warmup_cycles;
  config.publish_cycles = publish_cycles;
  config.drain_cycles = drain_cycles;
  config.measure_margin = 13;
  config.publish_spread = publish_spread;
  config.threads = threads;
  if (timeline != nullptr) {
    config.scenario = *timeline;
    config.fit_scenario_horizon();
  }
  if (network != nullptr) config.network = *network;
  if (reliability) {
    config.reliability.enabled = true;
    config.view_hygiene.max_age = 20;
    config.view_hygiene.suspicion_limit = 2;
  }
  config.observability.progress_every = g_progress;
  if (!g_stats_json.empty()) {
    config.observability.enable_stats = true;
    config.observability.stats_every = g_stats_every;
  }
  const auto total = static_cast<std::size_t>(config.total_cycles());
  // Isolate this row's memory counters from whatever ran before it.
  const bool reset_ok = reset_peak_rss();
  if (partitions > 1) {
    // Distributed row: each iteration forks partitions-1 workers over a
    // socketpair mesh and runs one node fragment per process (the bench
    // process doubles as fragment 0). fork() is safe here: run_protocol's
    // thread pool is joined before each iteration returns, so no threads
    // are live at fork time. Memory counters below cover only fragment 0.
    config.collect_cycle_digests = true;  // workers ship digest series back
    for (auto _ : state) {
      const std::vector<std::uint64_t> digests = bench::run_partitioned(
          partitions, [&](sim::Transport& transport) {
            analysis::RunConfig worker_config = config;
            worker_config.partitions = static_cast<int>(partitions);
            worker_config.transport = &transport;
            return analysis::run_protocol(workload, worker_config).cycle_digests;
          });
      benchmark::DoNotOptimize(digests.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * total));
    state.counters["nodes"] = static_cast<double>(workload.num_users());
    state.counters["cycles"] = static_cast<double>(total);
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["partitions"] = static_cast<double>(partitions);
    state.counters["mem_isolated"] = reset_ok ? 1.0 : 0.0;
    const double peak_kib = static_cast<double>(proc_status_kib("VmHWM"));
    state.counters["peak_rss_mb"] = peak_kib / 1024.0;
    state.counters["peak_bytes_per_node"] =
        peak_kib * 1024.0 / static_cast<double>(workload.num_users());
    return;
  }
  for (auto _ : state) {
    // Fresh counters per run so the emitted series/final snapshot describe
    // exactly one trajectory (cheap: memset over a few fixed-size lanes).
    if (config.observability.enabled()) obs::Registry::instance().reset();
    const analysis::RunResult result = analysis::run_protocol(workload, config);
    benchmark::DoNotOptimize(result.scores.f1);
    if (!g_stats_json.empty()) {
      // Overwritten per run: with several rows the file reflects the last
      // row executed (use --benchmark_filter to pick one).
      std::ofstream out(g_stats_json);
      obs::write_stats_json(out, result.stats_series, result.stats);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * total));
  state.counters["nodes"] = static_cast<double>(workload.num_users());
  state.counters["cycles"] = static_cast<double>(total);
  state.counters["threads"] = static_cast<double>(threads);
  double peak_kib = static_cast<double>(proc_status_kib("VmHWM"));
  bool isolated = reset_ok;
  if (!reset_ok) {
    // clear_refs unavailable: re-run once in a forked child and report the
    // child's own high-water mark.
    const std::size_t child_kib = forked_peak_kib([&] {
      const analysis::RunResult result = analysis::run_protocol(workload, config);
      benchmark::DoNotOptimize(result.scores.f1);
    });
    if (child_kib != 0) {
      peak_kib = static_cast<double>(child_kib);
      isolated = true;
    }
  }
  state.counters["mem_isolated"] = isolated ? 1.0 : 0.0;
  state.counters["peak_rss_mb"] = peak_kib / 1024.0;
  state.counters["peak_bytes_per_node"] =
      peak_kib * 1024.0 / static_cast<double>(workload.num_users());
}

void BM_WhatsUpSim_250n_100c(benchmark::State& state) {
  run_macro(state, 250, 250, 80, /*threads=*/1);
}

// The BENCH_micro.json baseline configuration: >= 500 nodes, >= 200
// cycles; state.range(0) = worker threads.
void BM_WhatsUpSim_500n_200c(benchmark::State& state) {
  run_macro(state, 500, 500, 180, static_cast<unsigned>(state.range(0)));
}

void BM_WhatsUpSim_1000n_200c(benchmark::State& state) {
  run_macro(state, 1000, 1000, 180, static_cast<unsigned>(state.range(0)));
}

// Fault-sweep rows: the baseline scale re-run under the fault-testbed
// presets with the ack/retransmit reliability layer and view hygiene
// enabled — what the fault model plus per-copy acks, retransmission
// queues and dedup logs cost in simulated cycles/s. state.range(0) =
// worker threads; the profile is baked into the row name.
void BM_WhatsUpSim_500n_200c_ModelNetFaults(benchmark::State& state) {
  const net::NetworkConfig network = net::NetworkConfig::modelnet_faults();
  run_macro(state, 500, 500, 180, static_cast<unsigned>(state.range(0)),
            /*timeline=*/nullptr, &network, /*reliability=*/true);
}

void BM_WhatsUpSim_500n_200c_PlanetLabFaults(benchmark::State& state) {
  const net::NetworkConfig network = net::NetworkConfig::planetlab_faults();
  run_macro(state, 500, 500, 180, static_cast<unsigned>(state.range(0)),
            /*timeline=*/nullptr, &network, /*reliability=*/true);
}

// Sharded-scheduler scaling row: 10k nodes (~160 shards). The item count
// is capped (not users/2): at 10k nodes a Table-I-ratio publication storm
// keeps millions of fat news payloads in flight per cycle, which
// benchmarks the allocator, not the scheduler.
void BM_WhatsUpSim_10000n_50c(benchmark::State& state) {
  run_macro(state, 10000, 500, 30, static_cast<unsigned>(state.range(0)));
}

// Storm-spread variant of the sharded row: the same calendar staggered
// over 8 cycles per burst. Tracks what de-synchronizing the publication
// storm buys in peak RSS (the gate watches peak_bytes_per_node; scores
// differ from the dense row — it is a different schedule — but stay
// deterministic for the fixed seed).
void BM_WhatsUpSim_10000n_50c_Spread8(benchmark::State& state) {
  run_macro(state, 10000, 500, 30, static_cast<unsigned>(state.range(0)),
            /*timeline=*/nullptr, /*network=*/nullptr, /*reliability=*/false,
            /*warmup_cycles=*/5, /*drain_cycles=*/15, /*partitions=*/1,
            /*publish_spread=*/8);
}

unsigned g_custom_threads = 0;  // 0 = hardware concurrency
std::size_t g_custom_nodes = 0;
std::size_t g_custom_items = 0;  // 0 = nodes/20 (capped-item default)
Cycle g_custom_cycles = 0;       // 0 = 50 publication cycles
Cycle g_custom_warmup = -1;      // <0 = default 5
Cycle g_custom_drain = -1;       // <0 = default 15
Cycle g_custom_spread = 0;       // publication-storm spreading window
std::size_t g_custom_partitions = 1;  // worker processes; 1 = in-process
std::string g_custom_scenario;   // .scn path; empty = plain run

void BM_WhatsUpSim_Custom(benchmark::State& state) {
  const unsigned threads = g_custom_threads != 0
                               ? g_custom_threads
                               : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t items = g_custom_items != 0
                                ? g_custom_items
                                : std::max<std::size_t>(g_custom_nodes / 20, 50);
  const Cycle publish = g_custom_cycles != 0 ? g_custom_cycles : 50;
  const Cycle warmup = g_custom_warmup >= 0 ? g_custom_warmup : 5;
  const Cycle drain = g_custom_drain >= 0 ? g_custom_drain : 15;
  if (!g_custom_scenario.empty()) {
    const scenario::Timeline timeline = scenario::parse_file(g_custom_scenario);
    run_macro(state, g_custom_nodes, items, publish, threads, &timeline,
              nullptr, false, warmup, drain, g_custom_partitions,
              g_custom_spread);
    return;
  }
  run_macro(state, g_custom_nodes, items, publish, threads, nullptr, nullptr,
            false, warmup, drain, g_custom_partitions, g_custom_spread);
}

// Consumes --nodes=/--threads=/--items=/--cycles= (also "--flag value"
// form) and compacts argv so Google Benchmark never sees them.
void parse_local_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const auto match = [&](const char* name, std::string& value) {
      const std::string prefix = std::string("--") + name;
      if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) return false;
      const char* rest = argv[i] + prefix.size();
      if (*rest == '=') {
        value = rest + 1;
        return true;
      }
      if (*rest == '\0' && i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      return false;
    };
    std::string value;
    if (match("nodes", value)) {
      g_custom_nodes = static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (match("threads", value)) {
      g_custom_threads = static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (match("items", value)) {
      g_custom_items = static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (match("cycles", value)) {
      g_custom_cycles = static_cast<Cycle>(std::strtol(value.c_str(), nullptr, 10));
    } else if (match("warmup", value)) {
      g_custom_warmup = static_cast<Cycle>(std::strtol(value.c_str(), nullptr, 10));
    } else if (match("drain", value)) {
      g_custom_drain = static_cast<Cycle>(std::strtol(value.c_str(), nullptr, 10));
    } else if (match("spread", value)) {
      g_custom_spread = static_cast<Cycle>(std::strtol(value.c_str(), nullptr, 10));
    } else if (match("partitions", value)) {
      g_custom_partitions = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10)));
    } else if (match("scenario", value)) {
      g_custom_scenario = value;
    } else if (match("progress", value)) {
      g_progress = static_cast<Cycle>(std::strtol(value.c_str(), nullptr, 10));
    } else if (match("stats-json", value)) {
      g_stats_json = value;
    } else if (match("stats-every", value)) {
      g_stats_every = std::max<Cycle>(
          1, static_cast<Cycle>(std::strtol(value.c_str(), nullptr, 10)));
    } else if (match("trace", value)) {
      g_trace = value;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  // A scenario or a partitioned run implies the custom row; default it to
  // the baseline scale.
  if ((!g_custom_scenario.empty() || g_custom_partitions > 1) && g_custom_nodes == 0) {
    g_custom_nodes = 500;
  }
}

}  // namespace
}  // namespace whatsup

int main(int argc, char** argv) {
  whatsup::parse_local_flags(argc, argv);
  benchmark::RegisterBenchmark("BM_WhatsUpSim_250n_100c",
                               whatsup::BM_WhatsUpSim_250n_100c)
      ->Unit(benchmark::kMillisecond);
  for (auto* bench :
       {benchmark::RegisterBenchmark("BM_WhatsUpSim_500n_200c",
                                     whatsup::BM_WhatsUpSim_500n_200c),
        benchmark::RegisterBenchmark("BM_WhatsUpSim_1000n_200c",
                                     whatsup::BM_WhatsUpSim_1000n_200c),
        benchmark::RegisterBenchmark("BM_WhatsUpSim_10000n_50c",
                                     whatsup::BM_WhatsUpSim_10000n_50c),
        benchmark::RegisterBenchmark("BM_WhatsUpSim_10000n_50c_Spread8",
                                     whatsup::BM_WhatsUpSim_10000n_50c_Spread8)}) {
    // UseRealTime: cycles/s must reflect the wall clock, not the calling
    // thread's CPU time (which sleeps at phase barriers while the pool
    // works).
    bench->Unit(benchmark::kMillisecond)->UseRealTime()->Arg(1)->Arg(4)->Arg(8);
  }
  // Fault-sweep rows run at 1 and 4 threads (the determinism grid's
  // acceptance pair); 8-thread scaling is tracked by the plain rows.
  for (auto* bench : {benchmark::RegisterBenchmark(
                          "BM_WhatsUpSim_500n_200c_ModelNetFaults",
                          whatsup::BM_WhatsUpSim_500n_200c_ModelNetFaults),
                      benchmark::RegisterBenchmark(
                          "BM_WhatsUpSim_500n_200c_PlanetLabFaults",
                          whatsup::BM_WhatsUpSim_500n_200c_PlanetLabFaults)}) {
    bench->Unit(benchmark::kMillisecond)->UseRealTime()->Arg(1)->Arg(4);
  }
  if (whatsup::g_custom_nodes != 0) {
    benchmark::RegisterBenchmark("BM_WhatsUpSim_Custom", whatsup::BM_WhatsUpSim_Custom)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!whatsup::g_trace.empty()) whatsup::obs::trace_start();
  benchmark::RunSpecifiedBenchmarks();
  if (!whatsup::g_trace.empty()) {
    whatsup::obs::trace_stop();
    std::ofstream out(whatsup::g_trace);
    const std::size_t events = whatsup::obs::trace_write_json(out);
    std::fprintf(stderr, "[trace] wrote %zu span(s) to %s\n", events,
                 whatsup::g_trace.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
