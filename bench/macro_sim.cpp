// Macro benchmark: a full WhatsUp deployment (RPS + WUP clustering + BEEP
// dissemination + metrics tracking) at simulator scale, reporting
// simulated gossip cycles per second. This is the number the ROADMAP's
// "as fast as the hardware allows" target tracks PR over PR; the micro
// kernels live in micro_primitives.cpp.
//
//   items_per_second == simulated cycles / second
//
// Scales: 500 nodes × 200 cycles (the BENCH_micro.json baseline) plus a
// smaller and a larger configuration for shape.
#include <benchmark/benchmark.h>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"

namespace whatsup {
namespace {

data::Workload macro_workload(std::size_t users) {
  Rng rng(11);
  data::SurveyConfig config;
  config.base_users = users / 2;
  config.base_items = users / 2;  // one item per two users, like Table I's ratio
  config.replication = 2;
  return data::make_survey(config, rng);
}

void run_macro(benchmark::State& state, std::size_t users, Cycle publish_cycles) {
  const data::Workload workload = macro_workload(users);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 8;
  config.seed = 3;
  config.warmup_cycles = 5;
  config.publish_cycles = publish_cycles;
  config.drain_cycles = 15;
  config.measure_margin = 13;
  const auto total = static_cast<std::size_t>(config.total_cycles());
  for (auto _ : state) {
    const analysis::RunResult result = analysis::run_protocol(workload, config);
    benchmark::DoNotOptimize(result.scores.f1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * total));
  state.counters["nodes"] = static_cast<double>(workload.num_users());
  state.counters["cycles"] = static_cast<double>(total);
}

void BM_WhatsUpSim_250n_100c(benchmark::State& state) { run_macro(state, 250, 80); }
BENCHMARK(BM_WhatsUpSim_250n_100c)->Unit(benchmark::kMillisecond);

// The BENCH_micro.json baseline configuration: >= 500 nodes, >= 200 cycles.
void BM_WhatsUpSim_500n_200c(benchmark::State& state) { run_macro(state, 500, 180); }
BENCHMARK(BM_WhatsUpSim_500n_200c)->Unit(benchmark::kMillisecond);

void BM_WhatsUpSim_1000n_200c(benchmark::State& state) { run_macro(state, 1000, 180); }
BENCHMARK(BM_WhatsUpSim_1000n_200c)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace whatsup

BENCHMARK_MAIN();
