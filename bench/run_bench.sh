#!/usr/bin/env bash
# Runs the perf-tracking benchmarks (micro kernels + macro simulation) and
# writes a merged BENCH_micro.json at the repo root, so every PR leaves a
# perf trajectory behind.
#
#   bench/run_bench.sh [output.json]
#
# Environment:
#   BUILD_DIR     build tree with bench binaries (default: build; configure
#                 with -DWHATSUP_BENCH=ON)
#   MICRO_FILTER  --benchmark_filter for micro_primitives (default: all)
#   MACRO_FILTER  --benchmark_filter for macro_sim        (default: all)
#   MIN_TIME      --benchmark_min_time per micro benchmark (default: 0.5)
#   SCENARIO      .scn spec forwarded to macro_sim's custom row
#                 (--scenario; adds a BM_WhatsUpSim_Custom row at 500
#                 nodes under the timeline — see scenarios/)
#   ALLOW_DEBUG   set to 1 to record from a non-Release build tree and/or a
#                 non-release benchmark LIBRARY anyway (the JSON keeps both
#                 stamps in context: "build_type" for the tree and the
#                 library's own "library_build_type"). Both are refused by
#                 default so a slow baseline can never silently land in
#                 BENCH_micro.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_micro.json}
MICRO_FILTER=${MICRO_FILTER:-.}
MACRO_FILTER=${MACRO_FILTER:-.}
MIN_TIME=${MIN_TIME:-0.5}
ALLOW_DEBUG=${ALLOW_DEBUG:-0}

for bin in micro_primitives macro_sim; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "error: $BUILD_DIR/$bin not found — configure with -DWHATSUP_BENCH=ON" >&2
    exit 1
  fi
done

# CMake stamps the configured build type into the tree (see CMakeLists.txt).
BUILD_TYPE=unknown
if [[ -f "$BUILD_DIR/whatsup_build_type.txt" ]]; then
  BUILD_TYPE=$(<"$BUILD_DIR/whatsup_build_type.txt")
fi
if [[ "$BUILD_TYPE" != "Release" && "$ALLOW_DEBUG" != "1" ]]; then
  echo "error: $BUILD_DIR is a '$BUILD_TYPE' tree, not Release — perf numbers" >&2
  echo "       from it are not comparable. Reconfigure with" >&2
  echo "       'cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release -DWHATSUP_BENCH=ON'" >&2
  echo "       or set ALLOW_DEBUG=1 to record anyway (tagged in the JSON)." >&2
  exit 1
fi
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "warning: recording from a '$BUILD_TYPE' tree (ALLOW_DEBUG=1)" >&2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BUILD_DIR/micro_primitives" \
  --benchmark_filter="$MICRO_FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$tmp/micro.json" --benchmark_out_format=json

# The benchmark library stamps its own build flavor into the JSON context
# (library_build_type). A debug-assert library — e.g. Debian's package,
# which CMake falls back to when the source build can't be fetched — skews
# kernel timings even under a Release tree, so refuse it like a Debug tree.
LIB_BUILD_TYPE=$(python3 -c "
import json, sys
print(json.load(open(sys.argv[1])).get('context', {}).get('library_build_type', 'unknown'))
" "$tmp/micro.json")
if [[ "$LIB_BUILD_TYPE" != "release" && "$ALLOW_DEBUG" != "1" ]]; then
  echo "error: the benchmark library reports library_build_type='$LIB_BUILD_TYPE'," >&2
  echo "       not 'release' — its timings are not comparable. Reconfigure with" >&2
  echo "       network access so CMake builds the library from source matching" >&2
  echo "       the tree, or set ALLOW_DEBUG=1 to record anyway (tagged in the" >&2
  echo "       JSON)." >&2
  exit 1
fi
if [[ "$LIB_BUILD_TYPE" != "release" ]]; then
  echo "warning: benchmark library_build_type='$LIB_BUILD_TYPE' (ALLOW_DEBUG=1)" >&2
fi

"$BUILD_DIR/macro_sim" \
  ${SCENARIO:+--scenario="$SCENARIO"} \
  --benchmark_filter="$MACRO_FILTER" \
  --benchmark_out="$tmp/macro.json" --benchmark_out_format=json

# One short instrumented run (src/obs/ registry) so every baseline carries
# a protocol-level stats summary next to the timing rows: what the
# simulation DID (messages delivered/routed, retransmits, scratch hit
# rate), not just how fast it did it. Untimed — telemetry rides a separate
# custom row and never touches the rows above.
"$BUILD_DIR/macro_sim" --nodes=500 --items=30 --cycles=60 \
  --benchmark_filter=BM_WhatsUpSim_Custom --benchmark_min_time=0.01 \
  --stats-json="$tmp/stats.json" \
  --benchmark_out="$tmp/stats_row.json" --benchmark_out_format=json >/dev/null

python3 - "$tmp/micro.json" "$tmp/macro.json" "$OUT" "$BUILD_TYPE" \
  "$ALLOW_DEBUG" "$LIB_BUILD_TYPE" "$tmp/stats.json" <<'EOF'
import json
import sys

(micro_path, macro_path, out_path, build_type,
 allow_debug, lib_build_type, stats_path) = sys.argv[1:8]
with open(micro_path) as f:
    merged = json.load(f)
with open(macro_path) as f:
    macro = json.load(f)
merged["benchmarks"].extend(macro["benchmarks"])
context = merged.setdefault("context", {})
context["build_type"] = build_type
# Make any guard bypass visible IN the committed artifact, not just on the
# recording terminal: a baseline whose context reads allow_debug=true or a
# non-release library_build_type is flagged at review time, which is how
# the silently-Debug BENCH_micro.json of PRs past should have been caught.
context["allow_debug"] = allow_debug == "1"
context["library_build_type"] = lib_build_type

# Attach the protocol stats summary (headline counters from the
# instrumented run; the full per-cycle series stays out of the baseline).
try:
    with open(stats_path) as f:
        final = json.load(f)["final"]["metrics"]
    def scalar(name):
        v = final.get(name, 0)
        return v.get("count", 0) if isinstance(v, dict) else v
    summary = {
        name: scalar(name)
        for name in (
            "engine.cycles", "engine.deliver.messages", "engine.route.messages",
            "engine.deliver.overflow_dropped", "relia.retransmits",
            "relia.dedup.repeats", "profile.scratch.hits", "profile.scratch.misses",
            "tracker.resident_bytes", "engine.mem.total_bytes",
        )
    }
    hits, misses = summary["profile.scratch.hits"], summary["profile.scratch.misses"]
    if hits + misses:
        summary["profile.scratch.hit_rate"] = round(hits / (hits + misses), 4)
    merged["stats_summary"] = summary
    print("  stats_summary:", json.dumps(summary))
except (OSError, KeyError, json.JSONDecodeError) as e:
    print(f"  warning: no stats summary attached ({e})", file=sys.stderr)

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

# Surface the memory counters of the macro rows. Each row resets the
# process high-water mark before running (mem_isolated=1), so the numbers
# are per-row peaks, not the sweep-wide maximum.
for b in macro["benchmarks"]:
    if "peak_rss_mb" in b:
        print(
            f"  {b['name']}: peak_rss={b['peak_rss_mb']:.1f} MiB, "
            f"bytes/node={b.get('peak_bytes_per_node', 0):.0f}"
        )
EOF

echo "wrote $OUT"
