#!/usr/bin/env bash
# Runs the perf-tracking benchmarks (micro kernels + macro simulation) and
# writes a merged BENCH_micro.json at the repo root, so every PR leaves a
# perf trajectory behind.
#
#   bench/run_bench.sh [output.json]
#
# Environment:
#   BUILD_DIR     build tree with bench binaries (default: build; configure
#                 with -DWHATSUP_BENCH=ON)
#   MICRO_FILTER  --benchmark_filter for micro_primitives (default: all)
#   MACRO_FILTER  --benchmark_filter for macro_sim        (default: all)
#   MIN_TIME      --benchmark_min_time per micro benchmark (default: 0.5)
#   SCENARIO      .scn spec forwarded to macro_sim's custom row
#                 (--scenario; adds a BM_WhatsUpSim_Custom row at 500
#                 nodes under the timeline — see scenarios/)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_micro.json}
MICRO_FILTER=${MICRO_FILTER:-.}
MACRO_FILTER=${MACRO_FILTER:-.}
MIN_TIME=${MIN_TIME:-0.5}

for bin in micro_primitives macro_sim; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "error: $BUILD_DIR/$bin not found — configure with -DWHATSUP_BENCH=ON" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BUILD_DIR/micro_primitives" \
  --benchmark_filter="$MICRO_FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$tmp/micro.json" --benchmark_out_format=json
"$BUILD_DIR/macro_sim" \
  ${SCENARIO:+--scenario="$SCENARIO"} \
  --benchmark_filter="$MACRO_FILTER" \
  --benchmark_out="$tmp/macro.json" --benchmark_out_format=json

python3 - "$tmp/micro.json" "$tmp/macro.json" "$OUT" <<'EOF'
import json
import sys

micro_path, macro_path, out_path = sys.argv[1:4]
with open(micro_path) as f:
    merged = json.load(f)
with open(macro_path) as f:
    macro = json.load(f)
merged["benchmarks"].extend(macro["benchmarks"])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

# Surface the memory counters of the macro rows (VmHWM is a process-wide
# high-water mark: within one sweep the largest row sets it).
for b in macro["benchmarks"]:
    if "peak_rss_mb" in b:
        print(
            f"  {b['name']}: peak_rss={b['peak_rss_mb']:.1f} MiB, "
            f"bytes/node={b.get('peak_bytes_per_node', 0):.0f}"
        )
EOF

echo "wrote $OUT"
