// Quickstart: deploy a small WhatsUp network over the survey-style
// workload, disseminate a news stream, and print recommendation quality.
//
//   ./examples/quickstart [--users=240] [--fanout=8] [--seed=42]
//
// This is the 30-line tour of the public API: build a workload, pick a
// RunConfig, call run_protocol, read the scores.
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42, "RNG seed"));
  const int fanout = static_cast<int>(flags.get_int("fanout", 8, "BEEP fLIKE"));
  const double scale = flags.get_double("scale", 0.5, "workload scale (1 = 480 users)");
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 0, "engine worker threads (0 = hardware concurrency)"));
  if (flags.maybe_print_help(std::cout)) return 0;

  // 1. A workload: who likes what, who publishes what, and when.
  const data::Workload workload = analysis::standard_workload("survey", seed, scale);
  std::cout << "Workload: " << workload.name << " with " << workload.num_users()
            << " users and " << workload.num_items() << " news items\n";

  // 2. A deployment: every user runs RPS + WUP + BEEP (paper defaults,
  //    Table II), over a perfect network.
  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;

  // 3. Run and inspect.
  const analysis::RunResult result = analysis::run_protocol(workload, config);
  Table table({"Metric", "Value"});
  table.add_row({"Precision", fixed(result.scores.precision, 3)});
  table.add_row({"Recall", fixed(result.scores.recall, 3)});
  table.add_row({"F1-Score", fixed(result.scores.f1, 3)});
  table.add_row({"News messages", si_count(static_cast<double>(result.news_messages))});
  table.add_row({"Gossip messages", si_count(static_cast<double>(result.gossip_messages))});
  table.add_row({"Messages / user", fixed(result.msgs_per_user, 1)});
  table.add_row({"Largest SCC fraction", fixed(result.overlay.lscc_fraction, 3)});
  table.print(std::cout, "WhatsUp quickstart (fLIKE=" + std::to_string(fanout) + ")");

  std::cout << "\nTip: rerun with --fanout=3 to watch recall collapse, or\n"
               "     compare against plain gossip via bench/table3_best_performance.\n";
  return 0;
}
