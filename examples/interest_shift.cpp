// Interest shift: the §V-C dynamics scenarios as a narrative.
//
// A new user joins mid-run (cold start: inherited views + 3 popular items)
// while an existing pair of users swap interests. Both events ride the
// scenario engine (src/scenario/): run_dynamics builds a two-event
// timeline — join-clone + swap-pair at the event cycle — instead of
// hand-rolled per-trial event code. The example tracks how fast each node
// converges back to a WUP view full of alter egos, and how many
// interesting news items they receive per cycle along the way.
#include <iostream>

#include "analysis/experiments.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9, "RNG seed"));
  const auto event =
      static_cast<Cycle>(flags.get_int("event-cycle", 60, "join/switch cycle"));
  const auto total = static_cast<Cycle>(flags.get_int("cycles", 140, "total cycles"));
  const int trials = static_cast<int>(flags.get_int("trials", 2, "averaged trials"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 0, "engine worker threads (0 = hardware concurrency)"));
  if (flags.maybe_print_help(std::cout)) return 0;

  const data::Workload workload = analysis::standard_workload("survey", seed, 0.25);
  std::cout << "Survey workload, " << workload.num_users() << " users. At cycle "
            << event << ": one clone of a reference user joins from scratch and a\n"
            << "random pair of users swap interests. Averaged over " << trials
            << " trials.\n\n";

  const analysis::DynamicsSeries wup =
      analysis::run_dynamics(workload, Metric::kWup, seed, event, total, trials, threads);
  const analysis::DynamicsSeries cos = analysis::run_dynamics(
      workload, Metric::kCosine, seed, event, total, trials, threads);

  Table table({"Cycle", "ref sim (WUP)", "join sim (WUP)", "join sim (cosine)",
               "change sim (WUP)", "liked news/cycle (joiner)"});
  for (Cycle c = event - 10; c < total; c += 10) {
    const auto i = static_cast<std::size_t>(c);
    table.add_row({std::to_string(c), fixed(wup.ref_sim[i], 3), fixed(wup.join_sim[i], 3),
                   fixed(cos.join_sim[i], 3), fixed(wup.change_sim[i], 3),
                   fixed(wup.join_liked[i], 1)});
  }
  table.print(std::cout, "Convergence after the event");

  // Time to reach 80% of the reference node's view quality.
  auto convergence_cycle = [&](const analysis::DynamicsSeries& series) -> Cycle {
    for (Cycle c = event; c < total; ++c) {
      const auto i = static_cast<std::size_t>(c);
      if (series.ref_sim[i] > 0 && series.join_sim[i] >= 0.8 * series.ref_sim[i]) {
        return c - event;
      }
    }
    return -1;
  };
  const Cycle t_wup = convergence_cycle(wup);
  const Cycle t_cos = convergence_cycle(cos);
  std::cout << "\nJoiner reaches 80% of the reference view quality after "
            << (t_wup < 0 ? std::string("> ") + std::to_string(total - event)
                          : std::to_string(t_wup))
            << " cycles under the WUP metric vs "
            << (t_cos < 0 ? std::string("> ") + std::to_string(total - event)
                          : std::to_string(t_cos))
            << " under cosine.\n"
            << "The asymmetric metric favors small, popular profiles — newcomers\n"
            << "get picked up as neighbors quickly and start receiving relevant\n"
            << "news almost immediately (paper Fig. 7).\n";
  return 0;
}
