// Hostile-network recovery: the same WhatsUp deployment run through the
// planetlab scenario (bursty Gilbert–Elliott loss, degraded links with
// duplication/reordering, rotating churn, a crash wave) twice — once
// fire-and-forget, once with the ack/retransmit reliability layer and
// failure-aware view hygiene enabled — and the recall the reliability
// layer buys back, per scenario phase, next to what it costs in control
// traffic and redundancy.
#include <iostream>
#include <string>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11, "RNG seed"));
  const int fanout = static_cast<int>(flags.get_int("fanout", 6, "BEEP fLIKE"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 0, "engine worker threads (0 = hardware concurrency)"));
  const std::string scn =
      flags.get_string("scenario", "scenarios/planetlab.scn", "scenario spec file");
  if (flags.maybe_print_help(std::cout)) return 0;

  const data::Workload workload = analysis::standard_workload("survey", seed, 0.5);
  const scenario::Timeline timeline = scenario::parse_file(scn);
  std::cout << "Scenario '" << timeline.name << "' (" << timeline.events().size()
            << " events)\n\n";

  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;
  config.scenario = timeline;
  config.fit_scenario_horizon();

  // Baseline: BEEP as published — fire-and-forget under a hostile network.
  const analysis::RunResult plain = analysis::run_protocol(workload, config);

  // Reliability on: per-copy acks with timeout/backoff retransmission,
  // plus view hygiene so crashed peers drain out of the gossip views.
  config.reliability.enabled = true;
  config.view_hygiene.max_age = 20;
  config.view_hygiene.suspicion_limit = 2;
  const analysis::RunResult reliable = analysis::run_protocol(workload, config);

  Table phases({"Phase", "Cycles", "Recall off", "Recall on", "Latency off", "Latency on"});
  for (std::size_t i = 0; i < plain.windows.size() && i < reliable.windows.size(); ++i) {
    const metrics::Window& w = plain.windows[i].window;
    const auto latency = [](const analysis::RunResult& r, std::size_t idx) {
      return idx < r.reliability.window_latency.size()
                 ? fixed(r.reliability.window_latency[idx], 1)
                 : std::string("-");
    };
    phases.add_row({w.label,
                    "[" + std::to_string(w.begin) + ", " + std::to_string(w.end) + ")",
                    fixed(plain.windows[i].scores.recall, 3),
                    fixed(reliable.windows[i].scores.recall, 3), latency(plain, i),
                    latency(reliable, i)});
  }
  phases.print(std::cout, "Recall and delivery latency per scenario phase");
  std::cout << '\n';

  Table summary({"Metric", "Reliability off", "Reliability on"});
  summary.add_row({"recall", fixed(plain.scores.recall, 3), fixed(reliable.scores.recall, 3)});
  summary.add_row({"precision", fixed(plain.scores.precision, 3),
                   fixed(reliable.scores.precision, 3)});
  summary.add_row({"mean delivery latency (cycles)", fixed(plain.reliability.mean_latency, 2),
                   fixed(reliable.reliability.mean_latency, 2)});
  summary.add_row({"redundancy (dups per delivery)",
                   fixed(plain.reliability.redundancy_ratio, 3),
                   fixed(reliable.reliability.redundancy_ratio, 3)});
  summary.add_row({"retransmits", std::to_string(plain.reliability.retransmits),
                   std::to_string(reliable.reliability.retransmits)});
  summary.add_row({"ack messages", std::to_string(plain.reliability.ack_messages),
                   std::to_string(reliable.reliability.ack_messages)});
  summary.add_row({"news messages", std::to_string(plain.news_messages),
                   std::to_string(reliable.news_messages)});
  summary.add_row({"kbps/node total", fixed(plain.kbps_total, 2), fixed(reliable.kbps_total, 2)});
  summary.print(std::cout, "What the reliability layer buys, and what it costs");

  std::cout << "\nRecall recovered: " << fixed(plain.scores.recall, 3) << " -> "
            << fixed(reliable.scores.recall, 3) << " ("
            << fixed(reliable.scores.recall - plain.scores.recall, 3) << ")\n";
  return 0;
}
