// Community digest: WhatsUp over the synthetic Arxiv-community workload.
//
// Builds a collaboration graph, detects its communities with our CNM
// implementation (the paper's §IV-A pipeline), runs WhatsUp, and prints a
// per-community quality digest — showing that the implicit overlay aligns
// with the ground-truth communities without anyone declaring them.
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3, "RNG seed"));
  const double scale = flags.get_double("scale", 0.2, "workload scale (1 = 3703 authors)");
  const int fanout = static_cast<int>(flags.get_int("fanout", 10, "BEEP fLIKE"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 0, "engine worker threads (0 = hardware concurrency)"));
  if (flags.maybe_print_help(std::cout)) return 0;

  const data::Workload w = analysis::standard_workload("synthetic", seed, scale);
  std::cout << "Synthetic collaboration network: " << w.num_users() << " authors in "
            << w.n_topics << " detected communities, " << w.num_items()
            << " news items (each relevant to exactly one community).\n\n";

  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;
  const analysis::RunResult r = analysis::run_protocol(w, config);

  // Per-community recall/precision over the measured items.
  std::vector<double> recall_sum(w.n_topics, 0.0), precision_sum(w.n_topics, 0.0);
  std::vector<std::size_t> items(w.n_topics, 0), audience(w.n_topics, 0);
  for (ItemIdx item : r.measured) {
    const auto topic = static_cast<std::size_t>(w.topic_of(item));
    const auto& reach = r.reached[item];
    const auto& interest = w.interested(item);
    std::size_t n_reached = reach.count();
    std::size_t n_interested = interest.count();
    std::size_t hits = reach.intersect_count(interest);
    const NodeId src = w.news[item].source;
    if (reach.test(src)) {
      --n_reached;
      if (interest.test(src)) --hits;
    }
    if (interest.test(src)) --n_interested;
    if (n_interested > 0) {
      recall_sum[topic] += static_cast<double>(hits) / static_cast<double>(n_interested);
    }
    precision_sum[topic] +=
        n_reached > 0 ? static_cast<double>(hits) / static_cast<double>(n_reached) : 1.0;
    ++items[topic];
    audience[topic] = interest.count();
  }

  Table table({"Community", "Members", "Items", "Recall", "Precision"});
  for (std::size_t t = 0; t < w.n_topics; ++t) {
    if (items[t] == 0) continue;
    table.add_row({std::to_string(t), std::to_string(audience[t]),
                   std::to_string(items[t]),
                   fixed(recall_sum[t] / static_cast<double>(items[t]), 2),
                   fixed(precision_sum[t] / static_cast<double>(items[t]), 2)});
  }
  table.print(std::cout, "Per-community dissemination quality (WhatsUp, fLIKE=" +
                             std::to_string(fanout) + ")");
  std::cout << "\nOverall: precision " << fixed(r.scores.precision, 2) << ", recall "
            << fixed(r.scores.recall, 2) << ", F1 " << fixed(r.scores.f1, 2)
            << " — the paper notes WhatsUp performs best exactly when user\n"
               "communities are disjoint, as they are here (§VII).\n";
  return 0;
}
