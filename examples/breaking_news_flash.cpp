// Breaking-news flash: a flash-crowd scenario, then ONE item traced
// through the network, hop by hop.
//
// A declarative scenario (src/scenario/) pulls a burst of scheduled items
// forward so they all land in the same cycle — the "everything happens at
// once" news day — and the run reports recall/precision per phase around
// the burst. The example then follows the most popular measured item and
// prints how the BEEP wave unfolds: likes amplify (fanout fLIKE), dislikes
// re-orient a single copy towards the item profile's community, duplicates
// die (SIR). This is the paper's Fig. 2 mechanics made visible.
#include <algorithm>
#include <iostream>
#include <sstream>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7, "RNG seed"));
  const int fanout = static_cast<int>(flags.get_int("fanout", 5, "BEEP fLIKE"));
  const auto flash_cycle =
      static_cast<Cycle>(flags.get_int("flash-cycle", 40, "flash-crowd cycle"));
  const auto burst =
      static_cast<std::uint32_t>(flags.get_int("burst", 8, "items pulled into the flash"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 0, "engine worker threads (0 = hardware concurrency)"));
  if (flags.maybe_print_help(std::cout)) return 0;

  const data::Workload workload = analysis::standard_workload("survey", seed, 0.5);

  // The scenario spec, exactly as it would sit in a scenarios/*.scn file.
  std::ostringstream spec;
  spec << "name breaking-news\n"
       << "at " << flash_cycle << " flash " << burst << '\n';
  std::cout << "Scenario:\n" << spec.str() << '\n';

  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;
  config.scenario = scenario::parse(spec.str());
  const analysis::RunResult result = analysis::run_protocol(workload, config);

  // Per-phase scores around the burst (the scenario engine splits the run
  // at every event cycle).
  Table phases({"Phase", "Cycles", "Items", "Precision", "Recall", "F1"});
  for (const metrics::WindowScores& ws : result.windows) {
    phases.add_row({ws.window.label,
                    "[" + std::to_string(ws.window.begin) + ", " +
                        std::to_string(ws.window.end) + ")",
                    std::to_string(ws.scores.items), fixed(ws.scores.precision, 2),
                    fixed(ws.scores.recall, 2), fixed(ws.scores.f1, 2)});
  }
  phases.print(std::cout, "Recommendation quality around the flash crowd");
  std::cout << '\n';

  // Pick the most popular measured item: the "breaking news".
  ItemIdx flash = result.measured.front();
  for (ItemIdx item : result.measured) {
    if (workload.popularity(item) > workload.popularity(flash)) flash = item;
  }
  const auto& spec_item = workload.news[flash];
  std::cout << "Breaking news: item #" << flash << " (id " << std::hex << spec_item.id
            << std::dec << "), published by user " << spec_item.source << "\n";
  std::cout << "Interested audience: " << workload.interested(flash).count() << " / "
            << workload.num_users() << " users ("
            << fixed(100.0 * workload.popularity(flash), 1) << "%)\n";
  const std::size_t reached = result.reached[flash].count();
  const std::size_t hits = result.reached[flash].intersect_count(workload.interested(flash));
  std::cout << "Reached " << reached << " users, " << hits << " of them interested ("
            << fixed(reached > 0 ? 100.0 * static_cast<double>(hits) /
                                       static_cast<double>(reached)
                                 : 0.0,
                     1)
            << "% precision for this item)\n\n";

  // Hop-by-hop wave (averaged per item across the run, Fig. 6 style).
  const metrics::HopCounts& hops = result.hops_per_item;
  Table table({"Hop", "Forwards by likers", "Forwards by dislikers", "Infections"});
  const std::size_t max_hop = std::min<std::size_t>(hops.max_hop(), 15);
  auto at = [](const std::vector<double>& v, std::size_t h) {
    return h < v.size() ? v[h] : 0.0;
  };
  for (std::size_t h = 0; h < max_hop; ++h) {
    table.add_row({std::to_string(h), fixed(at(hops.forward_like, h), 1),
                   fixed(at(hops.forward_dislike, h), 1),
                   fixed(at(hops.infect_like, h) + at(hops.infect_dislike, h), 1)});
  }
  table.print(std::cout, "Average dissemination wave (per item)");
  std::cout << "\nThe wave peaks a few hops from the source and dies out quickly —\n"
               "amplification spends messages where interested users live, even\n"
               "when a flash crowd lands the whole news day in one cycle.\n";
  return 0;
}
