// Breaking-news flash: trace ONE item through the network, hop by hop.
//
// Publishes a single highly-popular item into a converged WhatsUp overlay
// and prints how the BEEP wave unfolds: likes amplify (fanout fLIKE),
// dislikes re-orient a single copy towards the item profile's community,
// duplicates die (SIR). This is the paper's Fig. 2 mechanics made visible.
#include <algorithm>
#include <iostream>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace whatsup;
  Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7, "RNG seed"));
  const int fanout = static_cast<int>(flags.get_int("fanout", 5, "BEEP fLIKE"));
  const auto threads = static_cast<unsigned>(
      flags.get_int("threads", 0, "engine worker threads (0 = hardware concurrency)"));
  if (flags.maybe_print_help(std::cout)) return 0;

  const data::Workload workload = analysis::standard_workload("survey", seed, 0.5);

  analysis::RunConfig config = analysis::default_run_config(seed);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = fanout;
  config.threads = threads;
  const analysis::RunResult result = analysis::run_protocol(workload, config);

  // Pick the most popular measured item: the "breaking news".
  ItemIdx flash = result.measured.front();
  for (ItemIdx item : result.measured) {
    if (workload.popularity(item) > workload.popularity(flash)) flash = item;
  }
  const auto& spec = workload.news[flash];
  std::cout << "Breaking news: item #" << flash << " (id " << std::hex << spec.id
            << std::dec << "), published by user " << spec.source << "\n";
  std::cout << "Interested audience: " << workload.interested(flash).count() << " / "
            << workload.num_users() << " users ("
            << fixed(100.0 * workload.popularity(flash), 1) << "%)\n";
  const std::size_t reached = result.reached[flash].count();
  const std::size_t hits = result.reached[flash].intersect_count(workload.interested(flash));
  std::cout << "Reached " << reached << " users, " << hits << " of them interested ("
            << fixed(reached > 0 ? 100.0 * static_cast<double>(hits) /
                                       static_cast<double>(reached)
                                 : 0.0,
                     1)
            << "% precision for this item)\n\n";

  // Hop-by-hop wave (averaged per item across the run, Fig. 6 style).
  const metrics::HopCounts& hops = result.hops_per_item;
  Table table({"Hop", "Forwards by likers", "Forwards by dislikers", "Infections"});
  const std::size_t max_hop = std::min<std::size_t>(hops.max_hop(), 15);
  auto at = [](const std::vector<double>& v, std::size_t h) {
    return h < v.size() ? v[h] : 0.0;
  };
  for (std::size_t h = 0; h < max_hop; ++h) {
    table.add_row({std::to_string(h), fixed(at(hops.forward_like, h), 1),
                   fixed(at(hops.forward_dislike, h), 1),
                   fixed(at(hops.infect_like, h) + at(hops.infect_dislike, h), 1)});
  }
  table.print(std::cout, "Average dissemination wave (per item)");
  std::cout << "\nThe wave peaks a few hops from the source and dies out quickly —\n"
               "amplification spends messages where interested users live.\n";
  return 0;
}
