#include "sim/shard.hpp"

namespace whatsup::sim {

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned extra = threads > 1 ? threads - 1 : 0;
  workers_.reserve(extra);
  for (unsigned i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    inflight_ = workers_.size();
    ++job_epoch_;
  }
  start_cv_.notify_all();
  // The caller works too; stealing the same atomic counter as the pool.
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return inflight_ == 0; });
  job_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
      n = job_size_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace whatsup::sim
