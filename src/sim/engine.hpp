// Cycle-driven peer-to-peer simulation engine.
//
// Time advances in gossip cycles (the paper's simulation time unit, §IV-D).
// Each cycle the engine (1) delivers the messages due this cycle in random
// order, respecting the network model (loss, latency, jitter, inbox
// capacity), then (2) activates every active agent once, in a fresh random
// permutation. All randomness derives from a single seed.
//
// Agents are protocol endpoints (WhatsUp node, gossip node, ...); the
// engine knows nothing about protocols. Dissemination events are reported
// through the `DisseminationObserver` interface, implemented by
// metrics::Tracker — the core stays metrics-agnostic.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/size_model.hpp"
#include "net/traffic.hpp"

namespace whatsup::sim {

class Engine;

// Facade handed to agents: scoped send/rng/time access for one agent.
class Context {
 public:
  Context(Engine& engine, NodeId self) : engine_(engine), self_(self) {}

  NodeId self() const { return self_; }
  Cycle now() const;
  Rng& rng();
  Engine& engine() { return engine_; }

  void send(NodeId to, net::MsgType type, net::ViewPayload payload);
  void send(NodeId to, net::MsgType type, net::NewsPayload payload);

 private:
  Engine& engine_;
  NodeId self_;
};

// Protocol endpoint living at one node.
class Agent {
 public:
  virtual ~Agent() = default;

  // Called once per cycle while the node is active (periodic gossip steps).
  virtual void on_cycle(Context& ctx) = 0;
  // Called for each delivered message.
  virtual void on_message(Context& ctx, const net::Message& message) = 0;
  // Called when this node is the source of a new item (BEEP generate).
  virtual void publish(Context& ctx, ItemIdx index, ItemId id) = 0;
};

// Hook for dissemination measurements (implemented by metrics::Tracker).
class DisseminationObserver {
 public:
  virtual ~DisseminationObserver() = default;
  // First delivery of `item` at node `user`.
  virtual void on_delivery(NodeId user, ItemIdx item, int hops, bool via_dislike,
                           int dislike_count) = 0;
  // Opinion expressed at first receipt.
  virtual void on_opinion(NodeId user, ItemIdx item, bool liked) = 0;
  // A forwarding action: `user` (who `liked` or not the item) sent
  // `n_targets` copies, `hops` hops away from the source.
  virtual void on_forward(NodeId user, ItemIdx item, int hops, bool liked,
                          std::size_t n_targets) = 0;
};

class Engine {
 public:
  struct Config {
    std::uint64_t seed = 42;
    net::NetworkConfig network;
    net::SizeModel size_model;
  };

  explicit Engine(Config config);

  // Registers an agent; returns its node id (dense, in registration order).
  NodeId add_agent(std::unique_ptr<Agent> agent);
  std::size_t num_nodes() const { return agents_.size(); }
  Agent& agent(NodeId id) { return *agents_.at(id); }
  const Agent& agent(NodeId id) const { return *agents_.at(id); }

  // Inactive nodes are skipped by on_cycle and lose incoming messages
  // (models nodes that have not joined yet / have left).
  void set_active(NodeId id, bool active);
  bool is_active(NodeId id) const { return active_.at(id); }
  // O(1): maintained incrementally by add_agent/set_active.
  std::size_t num_active() const { return num_active_; }
  // Ascending ids of the currently active nodes (maintained incrementally).
  const std::vector<NodeId>& active_ids() const { return active_ids_; }
  // Uniformly random active node, excluding `excluding`; kNoNode if none.
  NodeId random_active(NodeId excluding = kNoNode);

  Cycle now() const { return now_; }
  Rng& rng() { return rng_; }
  net::Traffic& traffic() { return traffic_; }
  const net::Traffic& traffic() const { return traffic_; }
  const net::NetworkConfig& network() const { return config_.network; }
  void set_network(const net::NetworkConfig& network) { config_.network = network; }

  DisseminationObserver* observer() { return observer_; }
  void set_observer(DisseminationObserver* observer) { observer_ = observer; }

  // Queues a message (called via Context::send). Applies loss and latency.
  void send(net::Message message);

  // Injects a new item at `source` during the current cycle.
  void publish(NodeId source, ItemIdx index, ItemId id);

  // Runs one cycle: deliver due messages, then activate agents.
  void run_cycle();
  void run_cycles(int n);

  // Invoked at the END of every cycle (after agent activation).
  using CycleHook = std::function<void(Engine&, Cycle)>;
  void add_cycle_hook(CycleHook hook) { hooks_.push_back(std::move(hook)); }

 private:
  Config config_;
  Rng rng_;
  Cycle now_ = 0;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> active_;
  std::size_t num_active_ = 0;
  std::vector<NodeId> active_ids_;  // ascending; mirrors active_
  // pending_[c % window] holds messages due at cycle c.
  std::vector<std::vector<net::Message>> pending_;
  net::Traffic traffic_;
  DisseminationObserver* observer_ = nullptr;
  std::vector<CycleHook> hooks_;

  // Per-cycle scratch buffers, reused so steady-state cycles allocate
  // nothing: deliver_due swaps the due bucket with `delivery_batch_`
  // (capacities circulate between the buckets and the scratch vector) and
  // run_cycle reuses `cycle_order_`.
  std::vector<net::Message> delivery_batch_;
  std::vector<std::size_t> inbox_count_;
  std::vector<NodeId> cycle_order_;

  std::vector<net::Message>& bucket(Cycle cycle);
  void deliver_due();
};

}  // namespace whatsup::sim
