// Cycle-driven peer-to-peer simulation engine — deterministic sharded
// scheduler.
//
// Time advances in gossip cycles (the paper's simulation time unit, §IV-D).
// Nodes are partitioned into contiguous id-range shards; each cycle runs
// two phases, each parallel over shards on a worker pool:
//
//   1. DELIVER  — every shard processes its due mailbox bucket (messages
//      routed to it at earlier barriers), grouped by receiving node in
//      ascending id order; each node shuffles its own batch with its
//      per-cycle stream (randomized against send-order artifacts, yet a
//      pure function of the seed) and enforces the network model's inbox
//      capacity.
//   2. ACTIVATE — every shard activates its active agents once, in
//      ascending node-id order.
//
// Agents never touch shared mutable state during a phase: sends buffer
// into the shard's outbox, measurements into the shard's BufferedObserver,
// and randomness comes from per-node counter-based streams reseeded every
// cycle (a pure function of seed, node id and cycle — independent of
// activation interleaving). At the barrier after each phase the engine,
// single-threaded, replays observer events in ascending shard order and
// commits outboxes in the canonical (cycle, phase, sender, seq) order,
// applying loss and latency from each message's private counter-based
// stream (keyed by sender, cycle and the sender's send counter).
// Fixed-seed trajectories are therefore bit-identical for any
// worker-thread count — and, via the Transport seam (sim/transport.hpp),
// for any fragment-partition count; see docs/architecture.md.
//
// Agents are protocol endpoints (WhatsUp node, gossip node, ...); the
// engine knows nothing about protocols. Dissemination events are reported
// through the `DisseminationObserver` interface (sim/observer.hpp),
// implemented by metrics::Tracker — the core stays metrics-agnostic.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/size_model.hpp"
#include "net/traffic.hpp"
#include "sim/observer.hpp"

namespace whatsup::sim {

class Engine;
struct PendingMessage;
struct Shard;
class Transport;
class WorkerPool;

// Facade handed to agents: scoped send/rng/time/measurement access for one
// agent. When constructed with a shard (by the scheduler), sends and
// observer callbacks buffer into the shard; when constructed without one
// (main-thread drivers: publish, cold-start wiring, tests), observer
// callbacks commit directly and sends are staged for the next run_cycle's
// flush slot (same delivery cycles — now() is unchanged in between — but a
// canonical, fragment-invariant commit order).
class Context {
 public:
  Context(Engine& engine, NodeId self, Shard* shard = nullptr)
      : engine_(engine), self_(self), shard_(shard) {}

  NodeId self() const { return self_; }
  Cycle now() const;
  // This node's private RNG stream for the current cycle (counter-based:
  // a pure function of the seed, the node id and the cycle).
  Rng& rng();
  Engine& engine() { return engine_; }

  // The dissemination observer to report measurements to; nullptr when no
  // observer is attached. Shard-safe: during parallel phases this is the
  // shard's buffer, replayed in canonical order at the barrier.
  DisseminationObserver* observer();

  // Uniformly random active node other than this one (and `excluding`, if
  // given); kNoNode if none. Draws from this node's stream, so it is safe
  // to call from agent code under any thread count (the active set is
  // frozen during a cycle).
  NodeId random_active_peer(NodeId excluding = kNoNode);

  // This node's reserved reliability substream for the current cycle (a
  // pure function of seed, node id and cycle, disjoint from the per-cycle
  // protocol streams): retransmission backoff jitter draws from it so the
  // reliability layer never perturbs protocol randomness.
  Rng reliability_rng();

  void send(NodeId to, net::MsgType type, net::ViewPayload payload);
  void send(NodeId to, net::MsgType type, net::NewsPayload payload);
  void send(NodeId to, net::MsgType type, net::AckPayload payload);

  // An empty descriptor vector for building a ViewPayload, drawn from this
  // shard's free-list pool when possible (capacity recycled from earlier
  // delivered messages); a fresh vector on main-thread contexts. Purely a
  // memory optimization — never changes observable behavior.
  std::vector<net::Descriptor> acquire_descriptor_buffer();

 private:
  void send(net::Message message);

  Engine& engine_;
  NodeId self_;
  Shard* shard_;
  std::uint16_t next_seq_ = 0;  // per-turn send counter (canonical tie-break)
};

// Protocol endpoint living at one node.
class Agent {
 public:
  virtual ~Agent() = default;

  // Called once per cycle while the node is active (periodic gossip steps).
  virtual void on_cycle(Context& ctx) = 0;
  // Called for each delivered message.
  virtual void on_message(Context& ctx, const net::Message& message) = 0;
  // Called when this node is the source of a new item (BEEP generate).
  virtual void publish(Context& ctx, ItemIdx index, ItemId id) = 0;
  // Called when this node comes back from a crash (Engine::recover): the
  // place to drop stale soft state and run a rejoin handshake. Default:
  // resume with whatever state the agent held (crash-oblivious protocols).
  virtual void on_recover(Context& ctx) { (void)ctx; }
};

class Engine : public ParallelExecutor {
 public:
  struct Config {
    std::uint64_t seed = 42;
    net::NetworkConfig network;
    net::SizeModel size_model;
    // Worker threads for the two per-cycle phases; 0 = hardware
    // concurrency. The fixed-seed trajectory does NOT depend on this.
    unsigned threads = 1;
    // Nodes per shard; 0 = default. The fixed-seed trajectory is
    // invariant to the width (delivery grouping and all RNG streams are
    // per node, never per shard); the knob only trades scheduling
    // granularity against barrier overhead.
    std::size_t shard_nodes = 0;
    // Cross-fragment message transport (sim/transport.hpp); NOT owned and
    // must outlive the engine. nullptr (the default) behaves exactly like
    // an InProcessTransport: one fragment, no serialization, today's
    // mailbox rings. With a multi-fragment transport this engine becomes
    // one lockstep worker owning the node ids congruent to
    // transport->fragment_id() modulo transport->fragments(); the
    // fixed-seed trajectory is invariant to the fragment count (see
    // docs/architecture.md "Transport layer").
    Transport* transport = nullptr;
  };

  // Small enough that a 500-node deployment still fans out over 8 workers;
  // barrier cost per shard is a few dozen ns, so oversharding is cheap.
  static constexpr std::size_t kDefaultShardNodes = 64;

  explicit Engine(Config config);
  ~Engine();

  // Registers an agent; returns its node id (dense, in registration order).
  NodeId add_agent(std::unique_ptr<Agent> agent);

  // BOOTSTRAP phase: constructs (and, via the factory, seeds) `count`
  // agents with node ids [num_nodes(), num_nodes() + count), per shard on
  // the worker pool. The factory's `rng` is the node's private
  // counter-based bootstrap stream — a pure function of (seed, node id) —
  // so the resulting deployment is bit-identical for any worker-thread
  // count and any shard width. The factory runs concurrently across
  // shards: it must only touch the node's own agent and shared immutable
  // data (workload, params), and must return non-null.
  using AgentFactory = std::function<std::unique_ptr<Agent>(NodeId, Rng&)>;
  void bootstrap(std::size_t count, const AgentFactory& factory);

  // The node's bootstrap stream (also used by drivers that wire extra
  // deterministic per-node state outside the factory).
  Rng bootstrap_rng(NodeId id) const;

  // ParallelExecutor: runs fn(i) for i in [0, n) on the engine's worker
  // pool (inline when threads() == 1). Main-thread, between-phases only —
  // the runner uses it for result collection and metric reduction.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) override;
  std::size_t num_nodes() const { return agents_.size(); }
  Agent& agent(NodeId id) { return *agents_.at(id); }
  const Agent& agent(NodeId id) const { return *agents_.at(id); }
  // Fragment-safe access: nullptr when the node lives on another fragment
  // (bootstrap materializes only owned agents). Single-fragment engines
  // always return the agent.
  Agent* agent_ptr(NodeId id) {
    return id < agents_.size() ? agents_[id].get() : nullptr;
  }
  const Agent* agent_ptr(NodeId id) const {
    return id < agents_.size() ? agents_[id].get() : nullptr;
  }

  // Fragment topology (1/0/true-for-everything without a multi-fragment
  // transport). Ownership is round-robin: owner(v) = v % fragments().
  std::size_t fragments() const { return fragments_; }
  std::size_t fragment() const { return fragment_; }
  bool owns(NodeId id) const {
    return fragments_ == 1 || id % fragments_ == fragment_;
  }

  // Inactive nodes are skipped by on_cycle and lose incoming messages
  // (models nodes that have not joined yet / have left). Must be called
  // between cycles (main thread), never from agent code.
  void set_active(NodeId id, bool active);
  bool is_active(NodeId id) const { return active_.at(id); }
  // Crash-stop / crash-recovery node faults. crash() deactivates the node
  // and marks it crashed; in-flight messages to it are lost, and a
  // `recover_at` cycle (kNoCycle = crash-stop) schedules recover(), which
  // reactivates the node and invokes Agent::on_recover so the agent can
  // rebuild soft state via a rejoin instead of resurrecting it. Both are
  // between-cycles, main-thread operations. A set_active(id, true) from
  // churn machinery clears the crashed flag WITHOUT the recovery hook
  // (crash-oblivious reactivation); any pending recovery becomes a no-op.
  void crash(NodeId id, Cycle recover_at = kNoCycle);
  void recover(NodeId id);
  bool is_crashed(NodeId id) const { return id < crashed_.size() && crashed_[id]; }
  // O(1): maintained incrementally by add_agent/set_active.
  std::size_t num_active() const { return num_active_; }
  // Ascending ids of the currently active nodes (maintained incrementally).
  const std::vector<NodeId>& active_ids() const { return active_ids_; }
  // Uniformly random active node, excluding `excluding`; kNoNode if none.
  // Closed-form draw over the active set (exactly uniform, one draw) from
  // the engine-level stream; main-thread use only — agents should use
  // Context::random_active_peer.
  NodeId random_active(NodeId excluding = kNoNode);

  Cycle now() const { return now_; }
  // Engine-level stream for global decisions (loss, latency, schedules).
  Rng& rng() { return rng_; }
  // Reserved per-node reliability substream for the current cycle (see
  // Context::reliability_rng).
  Rng reliability_rng(NodeId id) const;
  // The per-node stream for the current cycle (lazily reseeded).
  Rng& node_rng(NodeId id);
  net::Traffic& traffic() { return traffic_; }
  const net::Traffic& traffic() const { return traffic_; }
  const net::NetworkConfig& network() const { return config_.network; }
  void set_network(const net::NetworkConfig& network);
  unsigned threads() const { return threads_; }

  DisseminationObserver* observer() { return observer_; }
  void set_observer(DisseminationObserver* observer) { observer_ = observer; }

  // Aggregated descriptor-buffer pool counters across all shards
  // (observability for tests and the payload-memory benches).
  struct PoolStats {
    std::size_t reused = 0;
    std::size_t fresh = 0;
    std::size_t recycled = 0;
    std::size_t available = 0;
  };
  PoolStats descriptor_pool_stats() const;

  // Resident footprint of the engine's message machinery, aggregated over
  // shards (observability for the memory-diet work; docs/perf.md "Memory
  // map"). Capacities, not sizes: this is what the process actually holds
  // across cycles, including recycled-but-retained buffers.
  struct MemoryStats {
    std::size_t mailbox_bytes = 0;   // ring buckets (envelope capacity)
    std::size_t payload_bytes = 0;   // descriptor vectors inside queued messages
    std::size_t outbox_bytes = 0;    // per-shard outbox capacity
    std::size_t pool_bytes = 0;      // descriptor-pool free-list capacity
    std::size_t scratch_bytes = 0;   // delivery-batch scratch capacity
    std::size_t arena_bytes = 0;     // snapshot-arena slab storage (process-wide)
    // Materialize scratch: engine-chosen slot count and the per-thread
    // resident cost it implies (profile/compact.hpp).
    std::size_t materialize_slots = 0;
    std::size_t materialize_bytes_per_thread = 0;
    std::size_t total() const {
      return mailbox_bytes + payload_bytes + outbox_bytes + pool_bytes +
             scratch_bytes + arena_bytes;
    }
  };
  MemoryStats memory_stats() const;

  // Commits a message immediately: traffic accounting, then the message's
  // private network-draw stream (loss, latency, ...) and routing into the
  // destination shard's mailbox. Main-thread entry point (tests, drivers).
  // Agent sends go through Context::send instead, which buffers into the
  // shard outbox during parallel phases (committed at the barrier) and
  // stages on main-thread contexts (committed at the next run_cycle's
  // flush slot — same due cycles, since now() is unchanged in between).
  // In fragment mode a remote-destination send is serialized and shipped
  // at the next barrier exchange.
  void send(net::Message message);

  // Defers a main-thread send to the next run_cycle's flush slot, where
  // all workers commit staged messages in canonical sender order. This is
  // what keeps driver-initiated sends (publish fan-out, rejoin handshakes)
  // partition-count invariant.
  void stage(net::Message message);

  // Injects a new item at `source` during the current cycle.
  void publish(NodeId source, ItemIdx index, ItemId id);

  // Runs one cycle: deliver due messages, then activate agents.
  void run_cycle();
  void run_cycles(int n);

  // Invoked at the END of every cycle (after agent activation).
  using CycleHook = std::function<void(Engine&, Cycle)>;
  void add_cycle_hook(CycleHook hook) { hooks_.push_back(std::move(hook)); }

  // Closed-form uniform draw over the active set minus `excluding`, using
  // `rng`. Exposed for Context and tests.
  NodeId draw_active(Rng& rng, NodeId excluding) const;
  // Same, minus both `a` and `b` (either may be kNoNode).
  NodeId draw_active_excluding(Rng& rng, NodeId a, NodeId b) const;

 private:
  Config config_;
  Rng rng_;          // engine-level stream (global decisions)
  Rng stream_root_;  // pristine root for counter-based forks; never drawn
  Rng fault_root_;   // pristine root for the fault layer's counter forks
  Rng net_root_;     // pristine root for per-message network-draw forks
  Cycle now_ = 0;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<bool> active_;
  std::size_t num_active_ = 0;
  std::vector<NodeId> active_ids_;  // ascending; mirrors active_
  std::vector<bool> crashed_;       // crash-fault flag, distinct from churn
  std::vector<std::pair<Cycle, NodeId>> recoveries_;  // scheduled recover()s

  // Gilbert–Elliott per-link chain states, keyed (from << 32) | to and
  // created lazily at a link's first use while bursty loss is enabled.
  // Advancing a chain draws one counter-based bernoulli per elapsed cycle
  // from fault_root_.fork(link, cycle), so the state sequence is a pure
  // function of the seed — independent of traffic volume and thread count.
  struct LinkState {
    Cycle cycle = 0;
    bool bad = false;
  };
  std::unordered_map<std::uint64_t, LinkState> link_state_;

  // Per-node per-cycle streams, reseeded lazily on first use in a cycle.
  std::vector<Rng> node_rng_;
  std::vector<Cycle> node_rng_cycle_;

  std::size_t shard_nodes_ = kDefaultShardNodes;
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned threads_ = 1;
  std::unique_ptr<WorkerPool> pool_;
  std::atomic<bool> in_phase_{false};

  // Fragment partitioning (sim/transport.hpp). Every worker runs the full
  // control plane (scenario events, crash draws, calendar) in lockstep;
  // only agent execution and mailbox storage are partitioned by ownership.
  Transport* transport_ = nullptr;  // not owned; nullptr = single fragment
  std::size_t fragments_ = 1;
  std::size_t fragment_ = 0;

  // Deferred main-thread sends (publish fan-out, rejoin handshakes),
  // committed at the next run_cycle's flush slot in canonical sender order.
  std::vector<net::Message> staged_;
  // Commit-slot scratch: locally owned routed messages, sorted by sender
  // and merged with the peers' exchanged batches before bucket insertion.
  std::vector<PendingMessage> pending_local_;
  // Serialized envelope batches per destination fragment (fragment mode).
  std::vector<std::vector<std::uint8_t>> wire_out_;

  // Which of the cycle's three barrier slots finish_slot() is closing
  // (0 = flush, 1 = deliver commit, 2 = activate commit). Telemetry label
  // only — slot-attributed transport timings/bytes in src/obs/.
  int slot_kind_ = 0;

  // Per-sender per-cycle send counters keying the per-message network-draw
  // streams: fork(net_root_, sender, counter·2³² | cycle). A sender's
  // messages are always routed at its owner in canonical order, so the
  // counters — and hence every loss/latency draw — are pure functions of
  // the seed and the trajectory, invariant to fragment count.
  std::vector<std::uint32_t> send_count_;
  std::vector<Cycle> send_count_cycle_;

  net::Traffic traffic_;
  DisseminationObserver* observer_ = nullptr;
  std::vector<CycleHook> hooks_;

  std::size_t window() const;
  // Advances the (from, to) burst chain to the current cycle and returns
  // whether the link is in the bad state.
  bool link_bad(NodeId from, NodeId to);
  // Per-cycle fault-layer passes (run_cycle start; no-ops when disabled).
  void process_recoveries();
  void apply_random_crashes();
  std::size_t shard_index(NodeId node) const { return node / shard_nodes_; }
  Shard& shard_for(NodeId node);
  // Sizes the shard vector and mailbox rings for the current node count
  // and network window.
  void ensure_shards();
  void run_phase(const std::function<void(Shard&)>& phase);
  // Barrier work after a phase: replay buffered observer events, merge
  // drop counts, and commit outboxes — all in ascending shard order.
  void commit_phase();
  void deliver_shard(Shard& shard);
  void activate_shard(Shard& shard);
  // The message's private network-draw stream (see send_count_ above).
  Rng message_rng(NodeId from);
  // Applies the network model to one message (traffic, loss, latency,
  // reorder, duplicate) and queues the survivors: locally owned
  // destinations into pending_local_, remote ones serialized into
  // wire_out_. Part of a commit slot — finish_slot() must follow.
  void route_message(net::Message message);
  // Closes a commit slot: barrier-exchanges wire_out_ (fragment mode),
  // decodes the peers' batches, restores canonical ascending-sender order
  // and inserts everything into the destination mailbox rings.
  void finish_slot();
  // The run_cycle flush slot committing staged main-thread sends.
  void flush_staged();
};

}  // namespace whatsup::sim
