// Opt-in reliability layer for BEEP news forwards.
//
// BEEP is fire-and-forget: under the paper's PlanetLab conditions up to
// ~30% of correctly sent news never reached their target (§V-D). This
// layer adds per-copy acknowledgments with timeout, exponential backoff
// and bounded retries, plus a bounded dedup log so duplicated/reordered/
// retransmitted deliveries stay idempotent:
//
//   * Sender: after forwarding a news copy to `target`, it registers the
//     (item, target) pair in its RetransmitQueue. An incoming kAck from
//     `target` for the item clears the entry; otherwise the entry comes
//     due after `ack_timeout` cycles and the copy is resent, with the
//     timeout multiplied by `backoff` (capped at `max_timeout`) and at
//     most `max_retries` resends. Retry exhaustion surfaces the target as
//     a suspected-dead peer (fed into gossip view hygiene).
//   * Receiver: every news receipt is acknowledged back to its immediate
//     forwarder — including repeats, so a lost ack is recovered by the
//     retransmission it provokes. The DedupLog remembers recently seen
//     (item, hop) keys to classify exact-copy repeats without unbounded
//     state.
//
// Determinism: the queue's only randomness is the ±1 cycle retransmission
// jitter, drawn from the node's reserved counter-based reliability
// substream (sim::Context::reliability_rng) — protocol streams are never
// perturbed. All state is per-agent, touched only from that agent's turn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace whatsup::sim {

struct ReliabilityConfig {
  bool enabled = false;
  Cycle ack_timeout = 3;   // cycles before the first retransmission
  double backoff = 2.0;    // timeout multiplier per retry
  Cycle max_timeout = 16;  // cap on the backed-off timeout
  int max_retries = 3;     // resends per (item, target) before giving up
  // Pending-entry cap per node; the oldest entry is dropped on overflow
  // (bounds memory under pathological loss).
  std::size_t queue_limit = 512;
  // DedupLog capacity (recently seen (item, hop) keys).
  std::size_t dedup_capacity = 1024;
};

// Bounded FIFO log of recently seen (item, hop) keys. Classifies repeat
// deliveries of the same copy (retransmissions, network duplicates) so
// they can be re-acked without reprocessing, with O(capacity) memory.
class DedupLog {
 public:
  explicit DedupLog(std::size_t capacity = 1024);

  // True when the key was already present (a duplicate); records it and
  // returns false otherwise. Eviction is FIFO on insertion order.
  bool seen_or_insert(ItemId item, int hop);

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  static std::uint64_t key(ItemId item, int hop);

  std::size_t capacity_;
  std::unordered_set<std::uint64_t> set_;
  std::deque<std::uint64_t> order_;
};

// Per-node retransmission queue for in-flight news copies.
class RetransmitQueue {
 public:
  struct Stats {
    std::size_t tracked = 0;      // copies registered
    std::size_t acked = 0;        // entries cleared by an ack
    std::size_t retransmits = 0;  // copies resent
    std::size_t expired = 0;      // entries dropped after max_retries
    std::size_t overflowed = 0;   // entries evicted by queue_limit
  };

  // A due retransmission surfaced by collect_due.
  struct Due {
    NodeId to = kNoNode;
    net::NewsPayload news;
  };

  explicit RetransmitQueue(ReliabilityConfig config = {});

  const ReliabilityConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  std::size_t pending() const { return entries_.size(); }

  // Registers an in-flight copy of `news` sent to `to` at cycle `now`.
  // The payload snapshot is kept for retransmission (cheap: the item
  // profile is a copy-on-write reference).
  void track(Cycle now, NodeId to, const net::NewsPayload& news);

  // Clears the pending entry for (item, from); true when one was cleared
  // (false for late acks of already-expired or already-acked entries).
  bool ack(NodeId from, ItemId item);

  // Drops every pending entry addressed to `to` (the peer was evicted as
  // dead; retrying it is wasted traffic). Returns the number dropped.
  std::size_t drop_target(NodeId to);

  // Surfaces the entries due at `now`: each is re-armed with its
  // backed-off timeout (±1 cycle jitter from `rng`, the node's reserved
  // reliability substream) and returned for resending — unless its
  // retries are exhausted, in which case it is dropped and its target
  // appended to `expired_targets` (suspicion feed; may repeat a target).
  std::vector<Due> collect_due(Cycle now, Rng& rng,
                               std::vector<NodeId>* expired_targets = nullptr);

  void clear();

 private:
  struct Entry {
    NodeId to = kNoNode;
    ItemId item = 0;
    net::NewsPayload news;
    Cycle due = 0;        // next retransmission cycle
    Cycle timeout = 0;    // current (backed-off) timeout
    int retries_left = 0;
  };

  ReliabilityConfig config_;
  Stats stats_;
  // Small per-node population (bounded by queue_limit); linear scans keep
  // iteration order — and therefore retransmission order — insertion-
  // canonical, which the determinism suite relies on.
  std::vector<Entry> entries_;
};

}  // namespace whatsup::sim
