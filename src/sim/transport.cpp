#include "sim/transport.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/wire.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace whatsup::sim {

namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("SocketTransport: " + what);
}

// Wire-level truth for one fragment process: framed bytes actually moved
// through the socket mesh (includes frame headers, unlike the engine's
// slot-labeled envelope byte counters) and time parked in the poll loop.
struct TransportMetrics {
  obs::MetricId exchanges = obs::counter("transport.socket.exchanges");
  obs::MetricId wire_bytes_out = obs::counter("transport.socket.bytes_out", "bytes");
  obs::MetricId wire_bytes_in = obs::counter("transport.socket.bytes_in", "bytes");
  obs::HistogramId wait =
      obs::histogram("transport.socket.exchange_ns", obs::time_bounds_ns(), "ns");

  static const TransportMetrics& get() {
    static const TransportMetrics m;
    return m;
  }
};

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    die("fcntl(O_NONBLOCK) failed: " + std::string(std::strerror(errno)));
  }
}

}  // namespace

SocketTransport::SocketTransport(std::size_t fragment_id,
                                 std::vector<int> peer_fds)
    : fragment_(fragment_id), fds_(std::move(peer_fds)), inbuf_(fds_.size()) {
  if (fragment_ >= fds_.size()) die("fragment_id out of range");
  for (std::size_t f = 0; f < fds_.size(); ++f) {
    if (f == fragment_) continue;
    if (fds_[f] < 0) die("missing peer fd");
    set_nonblocking(fds_[f]);
  }
}

SocketTransport::~SocketTransport() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::vector<std::vector<std::uint8_t>> SocketTransport::exchange(
    const std::vector<std::vector<std::uint8_t>>& out) {
  const std::size_t n = fds_.size();
  if (out.size() != n) die("batch count does not match fragment count");
  std::vector<std::vector<std::uint8_t>> in(n);
  WUP_TRACE_SCOPE("socket_exchange");
  const bool obs_on = obs::enabled();
  const std::uint64_t obs_t0 = obs_on ? obs::now_ns() : 0;

  // Frame every outgoing batch up front (empty batches still ship an empty
  // frame — the frame is the barrier token).
  std::vector<std::vector<std::uint8_t>> wbuf(n);
  std::vector<std::size_t> woff(n, 0);
  std::vector<bool> got(n, false);
  std::size_t pending_writes = 0;
  std::size_t pending_reads = 0;
  for (std::size_t f = 0; f < n; ++f) {
    if (f == fragment_) continue;
    net::frame_append(wbuf[f], std::span<const std::uint8_t>(out[f]));
    ++pending_writes;
    ++pending_reads;
    // A fast peer may already have shipped this slot's frame.
    std::size_t off = 0;
    std::span<const std::uint8_t> payload;
    const auto status =
        net::frame_extract(inbuf_[f].data(), inbuf_[f].size(), off, payload);
    if (status == net::FrameStatus::kCorrupt) die("corrupt frame from peer");
    if (status == net::FrameStatus::kOk) {
      in[f].assign(payload.begin(), payload.end());
      inbuf_[f].erase(inbuf_[f].begin(),
                      inbuf_[f].begin() + static_cast<std::ptrdiff_t>(off));
      got[f] = true;
      --pending_reads;
    }
  }

  std::vector<pollfd> pfds;
  pfds.reserve(n);
  std::uint8_t chunk[1 << 16];
  while (pending_writes > 0 || pending_reads > 0) {
    pfds.clear();
    for (std::size_t f = 0; f < n; ++f) {
      if (f == fragment_) continue;
      short events = 0;
      if (woff[f] < wbuf[f].size()) events |= POLLOUT;
      if (!got[f]) events |= POLLIN;
      if (events == 0) continue;
      pfds.push_back(pollfd{fds_[f], events, 0});
    }
    if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      die("poll failed: " + std::string(std::strerror(errno)));
    }
    for (const pollfd& p : pfds) {
      // Recover the fragment index for this fd.
      std::size_t f = 0;
      while (f < n && fds_[f] != p.fd) ++f;
      if ((p.revents & (POLLOUT | POLLERR | POLLHUP)) != 0 &&
          woff[f] < wbuf[f].size()) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE (-> exception),
        // not a process-wide SIGPIPE.
        const ssize_t written = ::send(p.fd, wbuf[f].data() + woff[f],
                                       wbuf[f].size() - woff[f], MSG_NOSIGNAL);
        if (written < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            die("write failed: " + std::string(std::strerror(errno)));
          }
        } else {
          woff[f] += static_cast<std::size_t>(written);
          if (woff[f] == wbuf[f].size()) --pending_writes;
        }
      }
      if ((p.revents & (POLLIN | POLLERR | POLLHUP)) != 0 && !got[f]) {
        const ssize_t got_bytes = ::read(p.fd, chunk, sizeof(chunk));
        if (got_bytes < 0) {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            die("read failed: " + std::string(std::strerror(errno)));
          }
          continue;
        }
        if (got_bytes == 0) die("peer closed the connection mid-run");
        inbuf_[f].insert(inbuf_[f].end(), chunk, chunk + got_bytes);
        std::size_t off = 0;
        std::span<const std::uint8_t> payload;
        const auto status =
            net::frame_extract(inbuf_[f].data(), inbuf_[f].size(), off, payload);
        if (status == net::FrameStatus::kCorrupt) {
          die("corrupt frame from peer");
        }
        if (status == net::FrameStatus::kOk) {
          in[f].assign(payload.begin(), payload.end());
          inbuf_[f].erase(inbuf_[f].begin(),
                          inbuf_[f].begin() + static_cast<std::ptrdiff_t>(off));
          got[f] = true;
          --pending_reads;
        }
      }
    }
  }
  if (obs_on) {
    const TransportMetrics& om = TransportMetrics::get();
    obs::add(om.exchanges);
    std::uint64_t wire_out = 0;
    for (const auto& w : wbuf) wire_out += w.size();
    obs::add(om.wire_bytes_out, wire_out);
    std::uint64_t wire_in = 0;
    for (std::size_t f = 0; f < n; ++f) {
      if (f != fragment_) wire_in += in[f].size();
    }
    obs::add(om.wire_bytes_in, wire_in);
    obs::observe(om.wait, obs::now_ns() - obs_t0);
  }
  return in;
}

std::vector<std::vector<int>> socketpair_mesh(std::size_t n) {
  std::vector<std::vector<int>> mesh(n, std::vector<int>(n, -1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      int pair[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
        throw std::runtime_error("socketpair failed: " +
                                 std::string(std::strerror(errno)));
      }
      mesh[i][j] = pair[0];
      mesh[j][i] = pair[1];
    }
  }
  return mesh;
}

}  // namespace whatsup::sim
