// Opinion sources. Agents ask "does user u like item i?" when an item
// first arrives (the like/dislike button of the paper's UI). Ground truth
// comes from the workload; `MutableOpinions` layers the dynamic-interest
// scenarios of §V-C on top (joining nodes cloning a reference user,
// pairs of users switching interests mid-run).
#pragma once

#include <unordered_map>

#include "common/ids.hpp"

namespace whatsup::sim {

class Opinions {
 public:
  virtual ~Opinions() = default;
  virtual bool likes(NodeId user, ItemIdx item) const = 0;
};

// Decorates a base opinion source with per-node aliases: node u behaves as
// (expresses the opinions of) user alias(u).
class MutableOpinions : public Opinions {
 public:
  explicit MutableOpinions(const Opinions& base) : base_(base) {}

  bool likes(NodeId user, ItemIdx item) const override;

  // `node` starts answering with `as_user`'s opinions (joining clone).
  void set_alias(NodeId node, NodeId as_user);
  // Swap the interests of two nodes (the §V-C "changing node" experiment).
  void swap_interests(NodeId a, NodeId b);
  NodeId resolve(NodeId node) const;

 private:
  const Opinions& base_;
  std::unordered_map<NodeId, NodeId> alias_;
};

}  // namespace whatsup::sim
