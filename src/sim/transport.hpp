// Transport seam of the fragment-partitioned engine.
//
// The engine's commit protocol was always a message-manager contract in
// disguise: every commit slot (the staged main-thread flush plus the two
// phase commits per cycle) routes the slot's messages in canonical sender
// order and inserts them into the receivers' mailbox rings. Transport
// promotes the cross-fragment half of that contract to an interface:
//
//  * the node id space is partitioned round-robin across `fragments()`
//    workers (owner(v) = v % fragments — the libgrape-lite inner/outer
//    fragment split: a worker's INNER nodes are the ones it owns and
//    runs; every other node is an OUTER reference it only addresses
//    messages to);
//  * messages between two inner nodes never touch the transport — they
//    stay on the local shard rings exactly as in the single-process
//    engine;
//  * messages to outer nodes are serialized (net/wire.hpp envelopes,
//    network draws already applied sender-side) into one batch per
//    destination fragment and swapped at the commit-slot barrier via
//    exchange().
//
// exchange() is a BARRIER: it returns only once every peer has shipped
// its batch for the same slot, which is what keeps all workers in cycle
// lockstep without any other synchronization. Workers run the full
// control plane (scenario events, crash/recovery draws, calendar)
// redundantly and deterministically, so barriers are the only
// communication the protocol needs.
//
// Backends:
//  * InProcessTransport — the single-fragment identity: exchange() has
//    nothing to ship and returns immediately. The engine additionally
//    short-circuits serialization entirely when fragments() == 1, so the
//    single-process fast path is bit-and-cost-identical to the
//    pre-transport engine.
//  * SocketTransport — a full mesh of stream sockets (loopback TCP or —
//    what the launcher and tests use — AF_UNIX socketpairs) carrying
//    length-prefixed, checksummed frames; one frame per peer per slot,
//    empty frames doubling as pure barrier tokens.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace whatsup::sim {

class Transport {
 public:
  virtual ~Transport() = default;

  // Number of node fragments (worker processes); ids are owned round-robin.
  virtual std::size_t fragments() const = 0;
  // This worker's fragment index in [0, fragments()).
  virtual std::size_t fragment_id() const = 0;

  // Ships out[f] (serialized envelope batch bytes) to fragment f for every
  // f != fragment_id() — out[fragment_id()] is ignored — and returns the
  // peers' batches indexed by sending fragment (own slot empty). Blocks
  // until every peer has completed the same exchange; called the same
  // number of times per cycle on every worker (3: staged flush, deliver
  // commit, activate commit).
  virtual std::vector<std::vector<std::uint8_t>> exchange(
      const std::vector<std::vector<std::uint8_t>>& out) = 0;
};

// Single-fragment backend: today's in-process mailbox rings, unchanged.
class InProcessTransport final : public Transport {
 public:
  std::size_t fragments() const override { return 1; }
  std::size_t fragment_id() const override { return 0; }
  std::vector<std::vector<std::uint8_t>> exchange(
      const std::vector<std::vector<std::uint8_t>>& out) override {
    return std::vector<std::vector<std::uint8_t>>(out.size());
  }
};

// Stream-socket mesh backend. `peer_fds[f]` is a connected stream socket
// to fragment f (own slot -1); the constructor takes ownership and the
// destructor closes them. Exchange writes one frame per peer and reads one
// frame per peer, polling so simultaneous full-duplex traffic cannot
// deadlock on kernel buffer limits. A closed peer or a corrupt frame
// throws std::runtime_error: workers are lockstep replicas, so any
// divergence is fatal by design.
class SocketTransport final : public Transport {
 public:
  SocketTransport(std::size_t fragment_id, std::vector<int> peer_fds);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::size_t fragments() const override { return fds_.size(); }
  std::size_t fragment_id() const override { return fragment_; }
  std::vector<std::vector<std::uint8_t>> exchange(
      const std::vector<std::vector<std::uint8_t>>& out) override;

 private:
  std::size_t fragment_ = 0;
  std::vector<int> fds_;  // index = fragment; own slot = -1
  // Per-peer receive accumulation: a fast peer may ship its NEXT slot's
  // frame before we finish the current slot, so leftover bytes must
  // survive between exchanges (frames are extracted strictly FIFO).
  std::vector<std::vector<std::uint8_t>> inbuf_;
};

// Builds a full mesh of AF_UNIX stream socketpairs for `n` fragments:
// mesh[i][j] is fragment i's fd to fragment j (-1 on the diagonal). The
// in-process determinism tests hand row i to thread i; the forking
// launcher hands row w to worker w (closing every other row's fds in the
// child). Throws std::runtime_error when socketpair() fails.
std::vector<std::vector<int>> socketpair_mesh(std::size_t n);

}  // namespace whatsup::sim
