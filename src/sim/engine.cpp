#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <variant>

#include "net/wire.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "profile/compact.hpp"
#include "sim/shard.hpp"
#include "sim/transport.hpp"

namespace whatsup::sim {

namespace {

// Stream tags deriving the engine-level and per-node stream spaces from
// the root seed.
constexpr std::uint64_t kEngineStreamTag = 0x656e67696e65ULL;  // "engine"
constexpr std::uint64_t kNodeStreamTag = 0x6e6f646573ULL;      // "nodes"

// Tag deriving the fault layer's stream space (burst chains, random
// crashes) from the root seed — disjoint from the engine and node spaces.
constexpr std::uint64_t kFaultStreamTag = 0x6661756c7473ULL;  // "faults"

// Tag deriving the per-message network-draw stream space: each routed
// message forks (sender, counter·2³² | cycle) and draws its own loss,
// latency, reorder and duplicate decisions from that private stream. This
// is what makes the draw sequence a per-sender pure function of the seed —
// a fragment that routes only its own senders' messages reproduces exactly
// the draws the single-process engine would have made for them.
constexpr std::uint64_t kNetStreamTag = 0x6e6574ULL;  // "net"

// Substream of a node's stream space reserved for the BOOTSTRAP phase.
// Per-cycle streams use the cycle number as the substream; cycles are
// small non-negative values, so this can never collide.
constexpr std::uint64_t kBootstrapSubstream = 0xb007'5742'0000'0000ULL;

// Substream of a node's stream space reserved for the reliability layer
// (retransmission backoff jitter), OR-ed with the cycle number. Disjoint
// from both the per-cycle streams and the bootstrap substream.
constexpr std::uint64_t kReliabilitySubstream = 0x7e11'ab1e'0000'0000ULL;

// Substream of the fault stream space for per-cycle random crash draws.
// Burst chains use (link key, cycle) forks; their substream is always a
// small cycle number, so this can never collide.
constexpr std::uint64_t kCrashSubstream = 0xc4a5'4f4f'0000'0000ULL;

std::uint64_t as_substream(Cycle cycle) {
  return static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(static_cast<std::int64_t>(cycle)));
}

// Telemetry ids (obs/registry.hpp), registered once on first use. Lane
// writes are gated on obs::enabled() and never draw RNG, synchronize, or
// reorder work, so fixed-seed trajectories are bit-identical with stats on
// or off (tests/test_obs.cpp holds the engine to this).
struct EngineMetrics {
  obs::MetricId cycles = obs::counter("engine.cycles");
  obs::MetricId delivered = obs::counter("engine.deliver.messages");
  obs::MetricId overflow = obs::counter("engine.deliver.overflow_dropped");
  obs::MetricId routed = obs::counter("engine.route.messages");
  // High-water mark of any mailbox-ring bucket (canonical-order inserts at
  // the barrier, so this is the occupancy the delivery phase will face).
  obs::MetricId mailbox_peak = obs::gauge("engine.mailbox.bucket_peak", "messages");
  // Per-shard phase wall times (recorded on the executing worker's lane)
  // and whole-phase / barrier wall times (main thread).
  obs::HistogramId shard_deliver =
      obs::histogram("engine.shard.deliver_ns", obs::time_bounds_ns(), "ns");
  obs::HistogramId shard_activate =
      obs::histogram("engine.shard.activate_ns", obs::time_bounds_ns(), "ns");
  obs::HistogramId phase_deliver =
      obs::histogram("engine.phase.deliver_ns", obs::time_bounds_ns(), "ns");
  obs::HistogramId phase_activate =
      obs::histogram("engine.phase.activate_ns", obs::time_bounds_ns(), "ns");
  obs::HistogramId flush =
      obs::histogram("engine.barrier.flush_ns", obs::time_bounds_ns(), "ns");
  obs::HistogramId commit =
      obs::histogram("engine.barrier.commit_ns", obs::time_bounds_ns(), "ns");
  // Transport metrics labeled by barrier slot (fragment mode): slot 0 is
  // the staged-send flush, 1 the deliver commit, 2 the activate commit.
  obs::HistogramId exchange_ns[3] = {
      obs::histogram("transport.flush.exchange_ns", obs::time_bounds_ns(), "ns"),
      obs::histogram("transport.deliver.exchange_ns", obs::time_bounds_ns(), "ns"),
      obs::histogram("transport.activate.exchange_ns", obs::time_bounds_ns(), "ns")};
  obs::MetricId bytes_out[3] = {
      obs::counter("transport.flush.bytes_out", "bytes"),
      obs::counter("transport.deliver.bytes_out", "bytes"),
      obs::counter("transport.activate.bytes_out", "bytes")};
  obs::MetricId bytes_in[3] = {
      obs::counter("transport.flush.bytes_in", "bytes"),
      obs::counter("transport.deliver.bytes_in", "bytes"),
      obs::counter("transport.activate.bytes_in", "bytes")};
  obs::MetricId serialize_ns = obs::counter("transport.serialize_ns", "ns");
  obs::MetricId serialize_messages = obs::counter("transport.serialize.messages");

  static const EngineMetrics& get() {
    static const EngineMetrics m;
    return m;
  }
};

}  // namespace

Cycle Context::now() const { return engine_.now(); }
Rng& Context::rng() { return engine_.node_rng(self_); }

DisseminationObserver* Context::observer() {
  if (shard_ != nullptr) {
    return engine_.observer() != nullptr ? &shard_->observer : nullptr;
  }
  return engine_.observer();
}

NodeId Context::random_active_peer(NodeId excluding) {
  return engine_.draw_active_excluding(rng(), self_, excluding);
}

Rng Context::reliability_rng() { return engine_.reliability_rng(self_); }

void Context::send(NodeId to, net::MsgType type, net::ViewPayload payload) {
  net::Message m;
  m.from = self_;
  m.to = to;
  m.type = type;
  m.sent_at = engine_.now();
  m.payload = std::move(payload);
  send(std::move(m));
}

void Context::send(NodeId to, net::MsgType type, net::NewsPayload payload) {
  net::Message m;
  m.from = self_;
  m.to = to;
  m.type = type;
  m.sent_at = engine_.now();
  m.payload = std::move(payload);
  send(std::move(m));
}

void Context::send(NodeId to, net::MsgType type, net::AckPayload payload) {
  net::Message m;
  m.from = self_;
  m.to = to;
  m.type = type;
  m.sent_at = engine_.now();
  m.payload = payload;
  send(std::move(m));
}

std::vector<net::Descriptor> Context::acquire_descriptor_buffer() {
  // The shard is executed by exactly one worker per phase, so its pool
  // needs no synchronization here.
  return shard_ != nullptr ? shard_->descriptor_pool.acquire()
                           : std::vector<net::Descriptor>{};
}

void Context::send(net::Message message) {
  message.seq = next_seq_++;
  if (shard_ != nullptr) {
    // Parallel phase: buffer; the engine commits at the barrier in
    // canonical (cycle, phase, sender, seq) order.
    shard_->outbox.push_back(std::move(message));
  } else {
    // Main-thread driver (publish, recovery rejoin): stage for the next
    // run_cycle's flush slot, where every fragment commits in the same
    // canonical sender order.
    engine_.stage(std::move(message));
  }
}

Engine::Engine(Config config) : config_(config) {
  Rng root(config_.seed);
  rng_ = root.fork(kEngineStreamTag);
  stream_root_ = root.fork(kNodeStreamTag);
  fault_root_ = root.fork(kFaultStreamTag);
  net_root_ = root.fork(kNetStreamTag);
  threads_ = config_.threads != 0
                 ? config_.threads
                 : std::max(1u, std::thread::hardware_concurrency());
  shard_nodes_ = config_.shard_nodes != 0 ? config_.shard_nodes : kDefaultShardNodes;
  transport_ = config_.transport;
  if (transport_ != nullptr) {
    fragments_ = transport_->fragments();
    fragment_ = transport_->fragment_id();
    assert(fragments_ >= 1 && fragment_ < fragments_);
  }
  wire_out_.resize(fragments_);
}

Engine::~Engine() = default;

NodeId Engine::add_agent(std::unique_ptr<Agent> agent) {
  agents_.push_back(std::move(agent));
  active_.push_back(true);
  crashed_.push_back(false);
  const auto id = static_cast<NodeId>(agents_.size() - 1);
  ++num_active_;
  active_ids_.push_back(id);  // registration order is ascending
  node_rng_.emplace_back();
  node_rng_cycle_.push_back(kNoCycle);
  return id;
}

Rng Engine::bootstrap_rng(NodeId id) const {
  return stream_root_.fork(id, kBootstrapSubstream);
}

void Engine::bootstrap(std::size_t count, const AgentFactory& factory) {
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "bootstrap is a between-cycles, main-thread operation");
  if (count == 0) return;
  const std::size_t n0 = agents_.size();
  const std::size_t n1 = n0 + count;
  // Registry bookkeeping up front (main thread): the parallel pass below
  // only fills pre-sized slots, never grows containers.
  agents_.resize(n1);
  active_.resize(n1, true);
  crashed_.resize(n1, false);
  node_rng_.resize(n1);
  node_rng_cycle_.resize(n1, kNoCycle);
  active_ids_.reserve(n1);
  for (std::size_t v = n0; v < n1; ++v) active_ids_.push_back(static_cast<NodeId>(v));
  num_active_ += count;
  ensure_shards();
  // Construction + seeding per shard on the pool. Each node draws from its
  // own counter-based bootstrap stream, so the result does not depend on
  // which worker builds which shard — or on the shard width.
  run_phase([&](Shard& shard) {
    const auto lo = static_cast<std::size_t>(shard.begin) > n0
                        ? static_cast<std::size_t>(shard.begin)
                        : n0;
    const auto hi = static_cast<std::size_t>(shard.end) < n1
                        ? static_cast<std::size_t>(shard.end)
                        : n1;
    for (std::size_t v = lo; v < hi; ++v) {
      const auto id = static_cast<NodeId>(v);
      // Fragment mode: only materialize the nodes this worker owns. The
      // registry slots of outer nodes stay null — they are addresses, not
      // agents, on this worker (docs/architecture.md "Transport layer").
      if (!owns(id)) continue;
      Rng rng = bootstrap_rng(id);
      agents_[v] = factory(id, rng);
      assert(agents_[v] != nullptr && "bootstrap factory must return an agent");
    }
  });
}

void Engine::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "parallel_for must not be nested inside a phase");
  if (n == 0) return;
  if (threads_ > 1 && n > 1) {
    if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>(threads_);
    pool_->run(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void Engine::set_active(NodeId id, bool active) {
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "set_active must not be called from agent code");
  // Churn machinery reactivating a crashed node clears the crash flag
  // without the recovery hook (documented crash-oblivious reactivation).
  if (active && id < crashed_.size()) crashed_[id] = false;
  if (active_.at(id) == active) return;
  active_[id] = active;
  // Activity flips are rare (churn events), so the ordered-insert cost is
  // noise next to the per-cycle scans it replaces.
  const auto it = std::lower_bound(active_ids_.begin(), active_ids_.end(), id);
  if (active) {
    ++num_active_;
    active_ids_.insert(it, id);
  } else {
    --num_active_;
    active_ids_.erase(it);
  }
}

NodeId Engine::draw_active(Rng& rng, NodeId excluding) const {
  return draw_active_excluding(rng, excluding, kNoNode);
}

NodeId Engine::draw_active_excluding(Rng& rng, NodeId a, NodeId b) const {
  if (a == b) b = kNoNode;
  // Positions of the active exclusions within active_ids_, ascending.
  std::size_t skips[2];
  std::size_t n_skips = 0;
  for (const NodeId ex : {std::min(a, b), std::max(a, b)}) {
    if (ex != kNoNode && ex < active_.size() && active_[ex]) {
      skips[n_skips++] = static_cast<std::size_t>(
          std::lower_bound(active_ids_.begin(), active_ids_.end(), ex) -
          active_ids_.begin());
    }
  }
  const std::size_t n = active_ids_.size() - n_skips;
  if (n == 0) return kNoNode;
  // Closed-form draw: one index over the reduced range, shifted past the
  // excluded slots — exactly uniform, no rejection loop to bias or spin.
  std::size_t idx = rng.index(n);
  for (std::size_t j = 0; j < n_skips; ++j) {
    if (idx >= skips[j]) ++idx;
  }
  return active_ids_[idx];
}

NodeId Engine::random_active(NodeId excluding) { return draw_active(rng_, excluding); }

void Engine::crash(NodeId id, Cycle recover_at) {
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "crash is a between-cycles, main-thread operation");
  if (id >= agents_.size() || crashed_.at(id)) return;
  if (active_.at(id)) set_active(id, false);
  crashed_[id] = true;  // after set_active (which clears the flag on activate)
  if (recover_at != kNoCycle) recoveries_.emplace_back(recover_at, id);
}

void Engine::recover(NodeId id) {
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "recover is a between-cycles, main-thread operation");
  if (id >= agents_.size() || !crashed_.at(id)) return;
  set_active(id, true);  // clears crashed_ (identically on every fragment)
  if (!owns(id) || agents_[id] == nullptr) return;  // acts only at its owner
  Context ctx(*this, id);  // main-thread: rejoin sends are staged
  agents_[id]->on_recover(ctx);
}

void Engine::process_recoveries() {
  // Collect due entries and apply them in ascending node order — a
  // canonical order independent of how the crashes were scheduled.
  std::vector<NodeId> due;
  std::erase_if(recoveries_, [&](const std::pair<Cycle, NodeId>& r) {
    if (r.first > now_) return false;
    due.push_back(r.second);
    return true;
  });
  if (due.empty()) return;
  std::sort(due.begin(), due.end());
  for (const NodeId id : due) recover(id);
}

void Engine::apply_random_crashes() {
  const double p = config_.network.crash_rate;
  // One counter-based stream per cycle; active nodes draw in ascending id
  // order, so the victim set is a pure function of (seed, cycle, active set).
  Rng rng = fault_root_.fork(as_substream(now_), kCrashSubstream);
  std::vector<NodeId> victims;
  for (const NodeId id : active_ids_) {
    if (rng.bernoulli(p)) victims.push_back(id);
  }
  const Cycle delay = config_.network.crash_recovery;
  for (const NodeId id : victims) {
    crash(id, delay > 0 ? now_ + delay : kNoCycle);
  }
}

Rng& Engine::node_rng(NodeId id) {
  // Per-cycle reseed discipline: the stream is a pure function of
  // (seed, node id, cycle), so a node's draws are independent of how much
  // randomness any other node — or any earlier cycle — consumed.
  if (node_rng_cycle_.at(id) != now_) {
    node_rng_[id] = stream_root_.fork(id, static_cast<std::uint64_t>(
                                             static_cast<std::int64_t>(now_)));
    node_rng_cycle_[id] = now_;
  }
  return node_rng_[id];
}

Rng Engine::reliability_rng(NodeId id) const {
  return stream_root_.fork(id, kReliabilitySubstream | as_substream(now_));
}

void Engine::set_network(const net::NetworkConfig& network) {
  config_.network = network;
  // Chains restart in the good state when a later episode re-enables
  // bursty loss (also reclaims the map between episodes).
  if (!config_.network.burst.enabled()) link_state_.clear();
  if (!shards_.empty()) ensure_shards();  // grow mailbox rings if needed
}

std::size_t Engine::window() const {
  // Reordered messages take up to reorder_window extra cycles; the ring
  // must cover the worst-case due offset or late messages would alias
  // into earlier buckets.
  const Cycle reorder =
      config_.network.reorder_rate > 0.0
          ? std::max<Cycle>(config_.network.reorder_window, 1)
          : 0;
  return static_cast<std::size_t>(config_.network.latency + config_.network.jitter +
                                  reorder) +
         2;
}

bool Engine::link_bad(NodeId from, NodeId to) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  const auto [it, fresh] = link_state_.try_emplace(key, LinkState{now_, false});
  LinkState& state = it->second;
  // Lazy advance: one counter-based bernoulli per elapsed cycle, keyed
  // (link, cycle) — the chain is a pure function of the seed and the
  // link's first-use cycle, never of how many messages crossed it.
  const net::BurstLossModel& burst = config_.network.burst;
  while (state.cycle < now_) {
    ++state.cycle;
    Rng step = fault_root_.fork(key, as_substream(state.cycle));
    state.bad = state.bad ? !step.bernoulli(burst.p_exit) : step.bernoulli(burst.p_enter);
  }
  return state.bad;
}

Shard& Engine::shard_for(NodeId node) {
  // Fast path: shards already cover the node (always true once run_cycle
  // ran). The slow path serves pre-run external sends — including, as the
  // old global ring did, targets registered only after the send.
  const std::size_t idx = shard_index(node);
  if (idx >= shards_.size()) {
    const std::size_t w = window();
    while (shards_.size() <= idx) {
      const auto begin = static_cast<NodeId>(shards_.size() * shard_nodes_);
      shards_.push_back(std::make_unique<Shard>(
          begin, static_cast<NodeId>(begin + shard_nodes_), w));
    }
  }
  return *shards_[idx];
}

void Engine::ensure_shards() {
  const std::size_t w = window();
  const std::size_t needed =
      agents_.empty() ? 0 : (agents_.size() + shard_nodes_ - 1) / shard_nodes_;
  while (shards_.size() < needed) {
    const auto begin = static_cast<NodeId>(shards_.size() * shard_nodes_);
    shards_.push_back(std::make_unique<Shard>(
        begin, static_cast<NodeId>(begin + shard_nodes_), w));
  }
  for (auto& shard : shards_) shard->grow_window(w, now_);
  // Size the thread-local materialize caches to the deployment. The cache
  // is direct-mapped on the version counter, and versions advance with
  // EVERY profile mutation process-wide, so live generations land on
  // effectively random slots: what governs the hit rate is the load factor
  // (live generations / slots), not raw coverage. Live generations run
  // several × node count (stale view entries pin old generations for tens
  // of cycles), so budget 16 slots per node — a small run stops paying the
  // million-node ceiling (~4 MB/thread) while staying at a low enough load
  // that conflict misses stay off the scoring profile. Monotonic in the
  // node count, hence identical across thread counts and partitionings —
  // and a pure cache size either way, so it could never affect results.
  // WHATSUP_SCRATCH_SLOTS overrides for footprint/throughput experiments.
  if (!agents_.empty()) {
    std::size_t slots = 16 * agents_.size();
    if (const char* env = std::getenv("WHATSUP_SCRATCH_SLOTS")) {
      const long parsed = std::atol(env);
      if (parsed > 0) slots = static_cast<std::size_t>(parsed);
    }
    set_materialize_scratch_slots(std::min<std::size_t>(
        kMaxMaterializeScratchSlots,
        std::max<std::size_t>(kMinMaterializeScratchSlots, slots)));
  }
}

Rng Engine::message_rng(NodeId from) {
  if (from >= send_count_.size()) {
    // Sends may precede agent registration (same contract as shard_for).
    send_count_.resize(static_cast<std::size_t>(from) + 1, 0);
    send_count_cycle_.resize(static_cast<std::size_t>(from) + 1, kNoCycle);
  }
  if (send_count_cycle_[from] != now_) {
    send_count_[from] = 0;
    send_count_cycle_[from] = now_;
  }
  const std::uint64_t substream =
      (static_cast<std::uint64_t>(send_count_[from]++) << 32) | as_substream(now_);
  return net_root_.fork(from, substream);
}

void Engine::route_message(net::Message message) {
  const net::Protocol protocol = net::protocol_of(message.type);
  traffic_.record_sent(protocol, config_.size_model.bytes(message));
  obs::add(EngineMetrics::get().routed);
  // The message's private network-draw stream: keyed by sender, cycle and
  // the sender's send counter, never by global draw order — so fragments
  // routing disjoint sender sets make exactly the draws P=1 would.
  Rng mrng = message_rng(message.from);
  // Queues a survivor: owned destinations go to the local commit batch,
  // outer ones are serialized for the owner fragment's barrier exchange.
  const auto emit = [&](Cycle due, net::Message&& m) {
    if (fragments_ == 1 || owns(m.to)) {
      pending_local_.push_back(PendingMessage{due, std::move(m)});
    } else if (!obs::enabled()) {
      net::encode_envelope(wire_out_[m.to % fragments_], due, m);
    } else {
      const EngineMetrics& om = EngineMetrics::get();
      const std::uint64_t t0 = obs::now_ns();
      net::encode_envelope(wire_out_[m.to % fragments_], due, m);
      obs::add(om.serialize_ns, obs::now_ns() - t0);
      obs::add(om.serialize_messages);
    }
  };
  // A dropped message — uniform loss or a partition cut — is recorded and
  // its payload buffer recycled (main thread, between phases — the
  // destination shard's pool is quiescent). Outer destinations skip the
  // recycle: their shards live on another fragment.
  const auto drop = [&](net::Message&& m) {
    traffic_.record_dropped(protocol);
    if (auto* view = std::get_if<net::ViewPayload>(&m.payload)) {
      if (fragments_ == 1 || owns(m.to)) {
        shard_for(m.to).descriptor_pool.recycle(std::move(view->view));
      }
    }
  };
  if (config_.network.loss_rate > 0.0 && mrng.bernoulli(config_.network.loss_rate)) {
    drop(std::move(message));
    return;
  }
  // Regional partition episode (scenario engine): cross-region messages
  // are cut. Checked only while a partition is active, so the message
  // stream's draw sequence — and every baseline trajectory — is untouched
  // otherwise.
  if (config_.network.partitioned() &&
      (message.from < config_.network.partition_nodes) !=
          (message.to < config_.network.partition_nodes)) {
    if (config_.network.partition_cross_loss >= 1.0 ||
        mrng.bernoulli(config_.network.partition_cross_loss)) {
      drop(std::move(message));
      return;
    }
  }
  // Gilbert–Elliott bursty loss: the link's chain state picks the drop
  // probability. Checked only while the burst model is enabled, so the
  // message stream's draw sequence — and every baseline trajectory — is
  // untouched otherwise (same contract as the partition gate above).
  if (config_.network.burst.enabled()) {
    const bool bad = link_bad(message.from, message.to);
    const double p = bad ? config_.network.burst.loss_bad : config_.network.burst.loss_good;
    if (p > 0.0 && mrng.bernoulli(p)) {
      drop(std::move(message));
      return;
    }
  }
  const auto draw_delay = [&] {
    Cycle delay = config_.network.latency;
    if (config_.network.jitter > 0) {
      delay += static_cast<Cycle>(mrng.uniform_int(0, config_.network.jitter));
    }
    return std::max<Cycle>(delay, 1);
  };
  Cycle delay = draw_delay();
  // Reordering: a detoured message takes 1..reorder_window extra cycles,
  // letting later sends overtake it.
  if (config_.network.reorder_rate > 0.0 &&
      mrng.bernoulli(config_.network.reorder_rate)) {
    delay += static_cast<Cycle>(
        mrng.uniform_int(1, std::max<Cycle>(config_.network.reorder_window, 1)));
  }
  // Duplication: the copy takes its own latency draw, so it may land
  // before or after the original. Receivers are responsible for idempotent
  // handling (SIR seen-state; the reliability layer's dedup log).
  if (config_.network.duplicate_rate > 0.0 &&
      mrng.bernoulli(config_.network.duplicate_rate)) {
    net::Message copy = message;
    traffic_.record_sent(protocol, config_.size_model.bytes(copy));
    emit(now_ + draw_delay(), std::move(copy));
  }
  emit(now_ + delay, std::move(message));
}

void Engine::finish_slot() {
  const bool obs_on = obs::enabled();
  if (fragments_ > 1) {
    // Barrier: swap this slot's serialized batches with every peer and
    // append the decoded envelopes (ascending fragment order) to the local
    // batch. Decode failures are fatal — workers are lockstep replicas.
    WUP_TRACE_SCOPE("exchange");
    const EngineMetrics& om = EngineMetrics::get();
    const int slot = slot_kind_ >= 0 && slot_kind_ < 3 ? slot_kind_ : 0;
    std::uint64_t out_bytes = 0;
    if (obs_on) {
      for (const auto& batch : wire_out_) out_bytes += batch.size();
    }
    const std::uint64_t t0 = obs_on ? obs::now_ns() : 0;
    std::vector<std::vector<std::uint8_t>> frames = transport_->exchange(wire_out_);
    if (obs_on) {
      obs::observe(om.exchange_ns[slot], obs::now_ns() - t0);
      obs::add(om.bytes_out[slot], out_bytes);
      std::uint64_t in_bytes = 0;
      for (std::size_t f = 0; f < frames.size(); ++f) {
        if (f != fragment_) in_bytes += frames[f].size();
      }
      obs::add(om.bytes_in[slot], in_bytes);
    }
    for (auto& batch : wire_out_) batch.clear();
    for (std::size_t f = 0; f < frames.size(); ++f) {
      if (f == fragment_) continue;
      net::WireReader reader(frames[f].data(), frames[f].size());
      while (reader.ok() && reader.remaining() > 0) {
        PendingMessage p;
        if (!net::decode_envelope(reader, p.due, p.message)) {
          throw std::runtime_error(
              "sim::Engine: corrupt envelope batch from peer fragment");
        }
        pending_local_.push_back(std::move(p));
      }
    }
  }
  // Restore the canonical commit order: ascending sender, stable within a
  // sender (all of one sender's messages come from exactly one batch, so
  // stability preserves its outbox/seq order). The local batch is already
  // sorted in the common single-fragment case — routing walks shards in
  // ascending order — so the sort is usually skipped.
  const auto by_sender = [](const PendingMessage& a, const PendingMessage& b) {
    return a.message.from < b.message.from;
  };
  if (!std::is_sorted(pending_local_.begin(), pending_local_.end(), by_sender)) {
    std::stable_sort(pending_local_.begin(), pending_local_.end(), by_sender);
  }
  std::size_t bucket_peak = 0;
  for (PendingMessage& p : pending_local_) {
    auto& bucket = shard_for(p.message.to).bucket(p.due);
    bucket.push_back(std::move(p.message));
    if (obs_on && bucket.size() > bucket_peak) bucket_peak = bucket.size();
  }
  if (bucket_peak != 0) {
    obs::gauge_max(EngineMetrics::get().mailbox_peak, bucket_peak);
  }
  const std::size_t fill = pending_local_.size();
  pending_local_.clear();
  trim_spare_capacity(pending_local_, fill);
}

void Engine::stage(net::Message message) {
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "stage is a between-phases, main-thread operation");
  staged_.push_back(std::move(message));
}

void Engine::flush_staged() {
  // Single-fragment fast path: nothing staged, nothing to do. Fragment
  // mode always runs the slot — the barrier exchange must happen on every
  // worker even when only a peer staged messages.
  if (staged_.empty() && fragments_ == 1) return;
  assert(pending_local_.empty());
  for (net::Message& m : staged_) route_message(std::move(m));
  const std::size_t fill = staged_.size();
  staged_.clear();
  trim_spare_capacity(staged_, fill);
  finish_slot();
}

void Engine::send(net::Message message) {
  // Agent code must send through Context::send (which buffers into the
  // shard outbox); committing here from a worker would race on the
  // message counters and the destination mailbox.
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "Engine::send must not be called from agent code — use Context::send");
  assert(pending_local_.empty());
  route_message(std::move(message));
  // Immediate commit of the locally owned result (tests and drivers rely
  // on the message being in the mailbox right away). A remote destination
  // stays serialized in wire_out_ and ships with the next barrier slot.
  for (PendingMessage& p : pending_local_) {
    shard_for(p.message.to).bucket(p.due).push_back(std::move(p.message));
  }
  pending_local_.clear();
}

void Engine::publish(NodeId source, ItemIdx index, ItemId id) {
  assert(source < agents_.size());
  assert(!in_phase_.load(std::memory_order_relaxed) &&
         "publish is a between-cycles, main-thread operation");
  if (!active_[source]) return;
  // Fragment mode: every worker sees the same publication calendar, but
  // only the source's owner runs the agent (its sends are staged and reach
  // other fragments at the flush-slot barrier).
  if (!owns(source) || agents_[source] == nullptr) return;
  Context ctx(*this, source);  // main-thread: sends are staged
  agents_[source]->publish(ctx, index, id);
}

void Engine::deliver_shard(Shard& shard) {
  auto& due = shard.bucket(now_);
  if (due.empty()) return;
  // Recorded into the executing worker's own lane — per-shard wall time
  // survives the merge regardless of which thread ran the shard.
  WUP_TRACE_SCOPE("deliver_shard");
  const bool obs_on = obs::enabled();
  const std::uint64_t obs_t0 = obs_on ? obs::now_ns() : 0;
  // Swap the due bucket with the shard's scratch vector so capacities
  // circulate and steady-state cycles never reallocate message storage.
  shard.delivery_batch.clear();
  shard.delivery_batch.swap(due);
  // The swap just emptied the bucket; drop post-burst capacity overhang so
  // a storm cycle doesn't pin storm-sized storage in every ring bucket for
  // the rest of the run (see trim_spare_capacity).
  trim_spare_capacity(due, shard.delivery_batch.size());
  // Group by receiving node (ascending), keeping the canonical commit
  // order within each node. Nodes then shuffle THEIR OWN batch with their
  // per-cycle stream: delivery order per node is a pure function of the
  // seed — independent of thread count AND shard width — while still
  // randomized against send-order artifacts (who sent first no longer
  // decides who wins an inbox-capacity slot or a view merge).
  //
  // The grouping sorts a permutation, not the batch itself: std::sort on
  // (to, index) pairs is in-place and reproduces stable_sort's order
  // exactly, without the batch-sized merge buffer stable_sort allocates —
  // which landed precisely on the storm-cycle RSS peak at the million-node
  // scale (a delivery batch of N messages cost an extra 64·N transient
  // bytes there).
  auto& batch = shard.delivery_batch;
  auto& order = shard.delivery_order;
  order.resize(batch.size());
  for (std::uint32_t n = 0; n < order.size(); ++n) order[n] = n;
  std::sort(order.begin(), order.end(),
            [&batch](std::uint32_t a, std::uint32_t b) {
              const NodeId ta = batch[a].to;
              const NodeId tb = batch[b].to;
              return ta != tb ? ta < tb : a < b;
            });
  const std::size_t capacity = config_.network.inbox_capacity;
  for (std::size_t i = 0; i < order.size();) {
    const NodeId to = batch[order[i]].to;
    std::size_t j = i;
    while (j < order.size() && batch[order[j]].to == to) ++j;
    // Offline — or never registered (sends may precede add_agent, as with
    // the old global ring): messages lost. The null check also covers
    // fragment mode defensively; outer nodes never enter local buckets.
    if (to >= agents_.size() || !active_[to] || agents_[to] == nullptr) {
      i = j;
      continue;
    }
    Rng& rng = node_rng(to);
    for (std::size_t k = j - i; k > 1; --k) {
      std::swap(order[i + k - 1], order[i + rng.index(k)]);
    }
    Context ctx(*this, to, &shard);
    for (std::size_t m = i; m < j; ++m) {
      if (capacity > 0 && m - i >= capacity) {  // queue overflow
        ++shard.dropped[static_cast<std::size_t>(net::protocol_of(batch[order[m]].type))];
        if (obs_on) obs::add(EngineMetrics::get().overflow);
        continue;
      }
      agents_[to]->on_message(ctx, batch[order[m]]);
    }
    i = j;
  }
  // Harvest the payload storage of every message in the batch — processed,
  // overflow-dropped, or addressed to an offline node alike — back into
  // this shard's pool. The recycle clears each vector, releasing its
  // descriptor snapshots at the same point the batch clear below used to.
  for (net::Message& m : batch) {
    if (auto* view = std::get_if<net::ViewPayload>(&m.payload)) {
      shard.descriptor_pool.recycle(std::move(view->view));
    }
  }
  const std::size_t delivered = shard.delivery_batch.size();
  shard.delivery_batch.clear();
  trim_spare_capacity(shard.delivery_batch, delivered);
  shard.delivery_order.clear();
  trim_spare_capacity(shard.delivery_order, delivered);
  if (obs_on) {
    const EngineMetrics& om = EngineMetrics::get();
    obs::add(om.delivered, delivered);
    obs::observe(om.shard_deliver, obs::now_ns() - obs_t0);
  }
}

Engine::PoolStats Engine::descriptor_pool_stats() const {
  PoolStats total;
  for (const auto& shard : shards_) {
    const DescriptorBufferPool::Stats& s = shard->descriptor_pool.stats();
    total.reused += s.reused;
    total.fresh += s.fresh;
    total.recycled += s.recycled;
    total.available += shard->descriptor_pool.available();
  }
  return total;
}

Engine::MemoryStats Engine::memory_stats() const {
  MemoryStats total;
  const auto payload_heap = [](const net::Message& m) -> std::size_t {
    if (const auto* view = std::get_if<net::ViewPayload>(&m.payload)) {
      return view->view.capacity() * sizeof(net::Descriptor);
    }
    return 0;
  };
  for (const auto& shard : shards_) {
    for (const auto& bucket : shard->mailbox) {
      total.mailbox_bytes += bucket.capacity() * sizeof(net::Message);
      for (const net::Message& pending : bucket) {
        total.payload_bytes += payload_heap(pending);
      }
    }
    total.outbox_bytes += shard->outbox.capacity() * sizeof(net::Message);
    for (const net::Message& m : shard->outbox) total.payload_bytes += payload_heap(m);
    total.pool_bytes += shard->descriptor_pool.memory_bytes();
    total.scratch_bytes +=
        shard->delivery_batch.capacity() * sizeof(net::Message) +
        shard->delivery_order.capacity() * sizeof(std::uint32_t);
  }
  total.outbox_bytes += staged_.capacity() * sizeof(net::Message);
  for (const net::Message& m : staged_) total.payload_bytes += payload_heap(m);
  total.scratch_bytes += pending_local_.capacity() * sizeof(PendingMessage);
  for (const auto& batch : wire_out_) total.scratch_bytes += batch.capacity();
  const SnapshotArena::Stats arena = SnapshotArena::instance().stats();
  total.arena_bytes = arena.blobs.resident_bytes + arena.stamps.resident_bytes;
  total.materialize_slots = materialize_scratch_slots();
  total.materialize_bytes_per_thread = materialize_scratch_bytes_per_thread();
  return total;
}

void Engine::activate_shard(Shard& shard) {
  WUP_TRACE_SCOPE("activate_shard");
  obs::ScopedTimerNs obs_timer(EngineMetrics::get().shard_activate);
  const auto limit =
      static_cast<NodeId>(std::min<std::size_t>(shard.end, agents_.size()));
  for (NodeId id = shard.begin; id < limit; ++id) {
    if (!active_[id]) continue;
    // Fragment mode: agents added on every worker (add_agent keeps
    // driver-held pointers valid everywhere) still act only at their
    // owner; outer bootstrap slots are null.
    if (!owns(id) || agents_[id] == nullptr) continue;
    Context ctx(*this, id, &shard);
    agents_[id]->on_cycle(ctx);
  }
}

void Engine::run_phase(const std::function<void(Shard&)>& phase) {
  if (shards_.empty()) return;
  in_phase_.store(true, std::memory_order_relaxed);
  if (threads_ > 1 && shards_.size() > 1) {
    if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>(threads_);
    pool_->run(shards_.size(), [&](std::size_t i) { phase(*shards_[i]); });
  } else {
    for (auto& shard : shards_) phase(*shard);
  }
  in_phase_.store(false, std::memory_order_relaxed);
}

void Engine::commit_phase() {
  // Ascending shard order == ascending node-id order: the canonical
  // sequential execution this parallel schedule is defined to match.
  // (Index loop: committing a send may grow shards_ via shard_for.)
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (observer_ != nullptr && !shard.observer.empty()) {
      shard.observer.replay_into(*observer_);
    }
    shard.observer.clear();
    for (std::size_t p = 0; p < shard.dropped.size(); ++p) {
      if (shard.dropped[p] != 0) {
        traffic_.record_dropped(static_cast<net::Protocol>(p), shard.dropped[p]);
        shard.dropped[p] = 0;
      }
    }
    for (net::Message& m : shard.outbox) route_message(std::move(m));
    const std::size_t sent = shard.outbox.size();
    shard.outbox.clear();
    trim_spare_capacity(shard.outbox, sent);
  }
  // Commit-slot barrier: exchange cross-fragment batches (fragment mode)
  // and insert everything in canonical sender order.
  finish_slot();
}

void Engine::run_cycle() {
  WUP_TRACE_SCOPE("cycle");
  const EngineMetrics& om = EngineMetrics::get();
  // Fault-layer passes (no-ops when the knobs are off): scheduled
  // recoveries first, so a node due back this cycle is exposed to this
  // cycle's crash draws like any other active node.
  if (!recoveries_.empty()) process_recoveries();
  if (config_.network.crash_rate > 0.0) apply_random_crashes();
  ensure_shards();
  // Flush slot: main-thread sends staged since the last cycle (publish
  // fan-out, rejoin handshakes) commit here in canonical sender order —
  // the first of the cycle's three barrier slots in fragment mode.
  slot_kind_ = 0;
  {
    WUP_TRACE_SCOPE("flush");
    obs::ScopedTimerNs obs_timer(om.flush);
    flush_staged();
  }
  {
    WUP_TRACE_SCOPE("deliver_phase");
    obs::ScopedTimerNs obs_timer(om.phase_deliver);
    run_phase([this](Shard& shard) { deliver_shard(shard); });
  }
  slot_kind_ = 1;
  {
    WUP_TRACE_SCOPE("commit");
    obs::ScopedTimerNs obs_timer(om.commit);
    commit_phase();
  }
  {
    WUP_TRACE_SCOPE("activate_phase");
    obs::ScopedTimerNs obs_timer(om.phase_activate);
    run_phase([this](Shard& shard) { activate_shard(shard); });
  }
  slot_kind_ = 2;
  {
    WUP_TRACE_SCOPE("commit");
    obs::ScopedTimerNs obs_timer(om.commit);
    commit_phase();
  }
  obs::add(om.cycles);
  for (const CycleHook& hook : hooks_) hook(*this, now_);
  // Epoch purge of the global snapshot arena: one intern-table shard per
  // cycle, between phases (no workers are running), so dead profile
  // generations are reclaimed — and emptied slab chunks compacted away —
  // incrementally instead of accumulating for the whole run.
  SnapshotArena::instance().advance_epoch();
  ++now_;
}

void Engine::run_cycles(int n) {
  for (int i = 0; i < n; ++i) run_cycle();
}

}  // namespace whatsup::sim
