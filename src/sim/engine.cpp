#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace whatsup::sim {

Cycle Context::now() const { return engine_.now(); }
Rng& Context::rng() { return engine_.rng(); }

void Context::send(NodeId to, net::MsgType type, net::ViewPayload payload) {
  net::Message m;
  m.from = self_;
  m.to = to;
  m.type = type;
  m.sent_at = engine_.now();
  m.payload = std::move(payload);
  engine_.send(std::move(m));
}

void Context::send(NodeId to, net::MsgType type, net::NewsPayload payload) {
  net::Message m;
  m.from = self_;
  m.to = to;
  m.type = type;
  m.sent_at = engine_.now();
  m.payload = std::move(payload);
  engine_.send(std::move(m));
}

Engine::Engine(Config config) : config_(config), rng_(config.seed) {
  const std::size_t window =
      static_cast<std::size_t>(config_.network.latency + config_.network.jitter) + 2;
  pending_.resize(window);
}

NodeId Engine::add_agent(std::unique_ptr<Agent> agent) {
  agents_.push_back(std::move(agent));
  active_.push_back(true);
  const auto id = static_cast<NodeId>(agents_.size() - 1);
  ++num_active_;
  active_ids_.push_back(id);  // registration order is ascending
  return id;
}

void Engine::set_active(NodeId id, bool active) {
  if (active_.at(id) == active) return;
  active_[id] = active;
  // Activity flips are rare (churn events), so the ordered-insert cost is
  // noise next to the per-cycle scans it replaces.
  const auto it = std::lower_bound(active_ids_.begin(), active_ids_.end(), id);
  if (active) {
    ++num_active_;
    active_ids_.insert(it, id);
  } else {
    --num_active_;
    active_ids_.erase(it);
  }
}

NodeId Engine::random_active(NodeId excluding) {
  const std::size_t n = num_active_;
  if (n == 0) return kNoNode;
  if (excluding != kNoNode && excluding < active_.size() && active_[excluding]) {
    if (n == 1) return kNoNode;
  }
  // Rejection sampling over the full id range: byte-identical RNG stream to
  // the seed implementation (a direct draw from active_ids_ would consume
  // different randomness and change fixed-seed runs).
  for (int attempts = 0; attempts < 1024; ++attempts) {
    const NodeId cand = static_cast<NodeId>(rng_.index(agents_.size()));
    if (active_[cand] && cand != excluding) return cand;
  }
  // Dense fallback for pathological activity patterns: first active id in
  // ascending order, as before, but without scanning the full population.
  for (const NodeId v : active_ids_) {
    if (v != excluding) return v;
  }
  return kNoNode;
}

std::vector<net::Message>& Engine::bucket(Cycle cycle) {
  return pending_[static_cast<std::size_t>(cycle) % pending_.size()];
}

void Engine::send(net::Message message) {
  assert(message.to < agents_.size());
  const net::Protocol protocol = net::protocol_of(message.type);
  traffic_.record_sent(protocol, config_.size_model.bytes(message));
  if (config_.network.loss_rate > 0.0 && rng_.bernoulli(config_.network.loss_rate)) {
    traffic_.record_dropped(protocol);
    return;
  }
  Cycle delay = config_.network.latency;
  if (config_.network.jitter > 0) {
    delay += static_cast<Cycle>(rng_.uniform_int(0, config_.network.jitter));
  }
  delay = std::max<Cycle>(delay, 1);
  bucket(now_ + delay).push_back(std::move(message));
}

void Engine::publish(NodeId source, ItemIdx index, ItemId id) {
  assert(source < agents_.size());
  if (!active_[source]) return;
  Context ctx(*this, source);
  agents_[source]->publish(ctx, index, id);
}

void Engine::deliver_due() {
  auto& due = bucket(now_);
  if (due.empty()) return;
  // Swap the due bucket with the reusable scratch vector: the bucket
  // inherits the scratch capacity, so steady-state cycles never reallocate
  // message storage.
  delivery_batch_.clear();
  delivery_batch_.swap(due);
  // Randomize delivery order to avoid send-order artifacts.
  rng_.shuffle(delivery_batch_);
  if (config_.network.inbox_capacity > 0) inbox_count_.assign(agents_.size(), 0);
  for (net::Message& m : delivery_batch_) {
    if (!active_[m.to]) continue;  // node offline: message lost
    if (config_.network.inbox_capacity > 0) {
      if (++inbox_count_[m.to] > config_.network.inbox_capacity) {
        traffic_.record_dropped(net::protocol_of(m.type));  // queue overflow
        continue;
      }
    }
    Context ctx(*this, m.to);
    agents_[m.to]->on_message(ctx, m);
  }
  delivery_batch_.clear();
}

void Engine::run_cycle() {
  deliver_due();
  cycle_order_.resize(agents_.size());
  std::iota(cycle_order_.begin(), cycle_order_.end(), NodeId{0});
  rng_.shuffle(cycle_order_);
  for (NodeId id : cycle_order_) {
    if (!active_[id]) continue;
    Context ctx(*this, id);
    agents_[id]->on_cycle(ctx);
  }
  for (const CycleHook& hook : hooks_) hook(*this, now_);
  ++now_;
}

void Engine::run_cycles(int n) {
  for (int i = 0; i < n; ++i) run_cycle();
}

}  // namespace whatsup::sim
