// Dissemination measurement hooks and their buffered form.
//
// Agents report dissemination events (deliveries, opinions, forwards)
// through `DisseminationObserver`, implemented by metrics::Tracker. Under
// the sharded scheduler the real observer must not be invoked from worker
// threads, so each shard records events into a `BufferedObserver` and the
// engine replays them at the cycle barrier in canonical shard order —
// measurements see exactly the sequence a sequential run would produce.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"

namespace whatsup::sim {

// Hook for dissemination measurements (implemented by metrics::Tracker).
class DisseminationObserver {
 public:
  virtual ~DisseminationObserver() = default;
  // First delivery of `item` at node `user`.
  virtual void on_delivery(NodeId user, ItemIdx item, int hops, bool via_dislike,
                           int dislike_count) = 0;
  // Opinion expressed at first receipt.
  virtual void on_opinion(NodeId user, ItemIdx item, bool liked) = 0;
  // A forwarding action: `user` (who `liked` or not the item) sent
  // `n_targets` copies, `hops` hops away from the source.
  virtual void on_forward(NodeId user, ItemIdx item, int hops, bool liked,
                          std::size_t n_targets) = 0;
  // A redundant receipt: `user` received a copy of an item it had already
  // seen (multi-path BEEP copies, network-level duplicates, reliability
  // retransmissions). Feeds the redundancy-ratio metric; default no-op so
  // existing observers are unaffected.
  virtual void on_duplicate(NodeId user, ItemIdx item) {
    (void)user;
    (void)item;
  }
};

// One recorded observer callback.
struct ObserverEvent {
  enum class Kind : std::uint8_t { kDelivery, kOpinion, kForward, kDuplicate };
  Kind kind = Kind::kDelivery;
  NodeId user = kNoNode;
  ItemIdx item = kNoItem;
  int hops = 0;
  bool flag = false;  // via_dislike (delivery) or liked (opinion/forward)
  int dislikes = 0;
  std::size_t n_targets = 0;
};

// Records callbacks into a vector for later replay. Used per shard; the
// callbacks of one agent turn stay contiguous, which consumers such as
// metrics::Tracker rely on (delivery/opinion pairing).
class BufferedObserver final : public DisseminationObserver {
 public:
  void on_delivery(NodeId user, ItemIdx item, int hops, bool via_dislike,
                   int dislike_count) override {
    events_.push_back({ObserverEvent::Kind::kDelivery, user, item, hops, via_dislike,
                       dislike_count, 0});
  }
  void on_opinion(NodeId user, ItemIdx item, bool liked) override {
    events_.push_back({ObserverEvent::Kind::kOpinion, user, item, 0, liked, 0, 0});
  }
  void on_forward(NodeId user, ItemIdx item, int hops, bool liked,
                  std::size_t n_targets) override {
    events_.push_back(
        {ObserverEvent::Kind::kForward, user, item, hops, liked, 0, n_targets});
  }
  void on_duplicate(NodeId user, ItemIdx item) override {
    events_.push_back({ObserverEvent::Kind::kDuplicate, user, item, 0, false, 0, 0});
  }

  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  // Replays the recorded events into `target` in recording order.
  void replay_into(DisseminationObserver& target) const {
    for (const ObserverEvent& e : events_) {
      switch (e.kind) {
        case ObserverEvent::Kind::kDelivery:
          target.on_delivery(e.user, e.item, e.hops, e.flag, e.dislikes);
          break;
        case ObserverEvent::Kind::kOpinion:
          target.on_opinion(e.user, e.item, e.flag);
          break;
        case ObserverEvent::Kind::kForward:
          target.on_forward(e.user, e.item, e.hops, e.flag, e.n_targets);
          break;
        case ObserverEvent::Kind::kDuplicate:
          target.on_duplicate(e.user, e.item);
          break;
      }
    }
  }

 private:
  std::vector<ObserverEvent> events_;
};

}  // namespace whatsup::sim
