#include "sim/reliability.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace whatsup::sim {

namespace {

// Process-wide reliability counters; the per-instance Stats structs stay
// the per-node source of truth for RunResult aggregation.
struct ReliabilityMetrics {
  obs::MetricId tracked = obs::counter("relia.tracked");
  obs::MetricId acked = obs::counter("relia.acked");
  obs::MetricId retransmits = obs::counter("relia.retransmits");
  obs::MetricId expired = obs::counter("relia.expired");
  obs::MetricId overflowed = obs::counter("relia.overflowed");
  obs::MetricId dedup_repeats = obs::counter("relia.dedup.repeats");

  static const ReliabilityMetrics& get() {
    static const ReliabilityMetrics m;
    return m;
  }
};

}  // namespace

// ---- DedupLog -------------------------------------------------------------

DedupLog::DedupLog(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::uint64_t DedupLog::key(ItemId item, int hop) {
  // Item ids are 8-byte hashes already; mixing the hop in with a golden-
  // ratio multiple keeps distinct (item, hop) pairs from colliding in
  // practice.
  return item ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hop)) *
                 0x9e3779b97f4a7c15ULL);
}

bool DedupLog::seen_or_insert(ItemId item, int hop) {
  const std::uint64_t k = key(item, hop);
  if (set_.count(k) != 0) {
    obs::add(ReliabilityMetrics::get().dedup_repeats);
    return true;
  }
  if (order_.size() >= capacity_) {
    set_.erase(order_.front());
    order_.pop_front();
  }
  set_.insert(k);
  order_.push_back(k);
  return false;
}

void DedupLog::clear() {
  set_.clear();
  order_.clear();
}

// ---- RetransmitQueue ------------------------------------------------------

RetransmitQueue::RetransmitQueue(ReliabilityConfig config) : config_(config) {
  config_.ack_timeout = std::max<Cycle>(config_.ack_timeout, 1);
  config_.max_timeout = std::max<Cycle>(config_.max_timeout, config_.ack_timeout);
  config_.backoff = std::max(config_.backoff, 1.0);
}

void RetransmitQueue::track(Cycle now, NodeId to, const net::NewsPayload& news) {
  ++stats_.tracked;
  obs::add(ReliabilityMetrics::get().tracked);
  // A re-track of a still-pending (item, target) pair re-arms the entry
  // (cannot happen through BEEP — SIR forwards each item once — but keeps
  // the structure safe for direct use).
  for (Entry& entry : entries_) {
    if (entry.to == to && entry.item == news.id) {
      entry.news = news;
      entry.timeout = config_.ack_timeout;
      entry.due = now + entry.timeout;
      entry.retries_left = config_.max_retries;
      return;
    }
  }
  if (config_.queue_limit > 0 && entries_.size() >= config_.queue_limit) {
    entries_.erase(entries_.begin());  // oldest first
    ++stats_.overflowed;
    obs::add(ReliabilityMetrics::get().overflowed);
  }
  Entry entry;
  entry.to = to;
  entry.item = news.id;
  entry.news = news;
  entry.timeout = config_.ack_timeout;
  entry.due = now + entry.timeout;
  entry.retries_left = config_.max_retries;
  entries_.push_back(std::move(entry));
}

bool RetransmitQueue::ack(NodeId from, ItemId item) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const Entry& e) { return e.to == from && e.item == item; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  ++stats_.acked;
  obs::add(ReliabilityMetrics::get().acked);
  return true;
}

std::size_t RetransmitQueue::drop_target(NodeId to) {
  return std::erase_if(entries_, [to](const Entry& e) { return e.to == to; });
}

std::vector<RetransmitQueue::Due> RetransmitQueue::collect_due(
    Cycle now, Rng& rng, std::vector<NodeId>* expired_targets) {
  std::vector<Due> due;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->due > now) {
      ++it;
      continue;
    }
    if (it->retries_left <= 0) {
      ++stats_.expired;
      obs::add(ReliabilityMetrics::get().expired);
      if (expired_targets != nullptr) expired_targets->push_back(it->to);
      it = entries_.erase(it);
      continue;
    }
    --it->retries_left;
    ++stats_.retransmits;
    obs::add(ReliabilityMetrics::get().retransmits);
    due.push_back(Due{it->to, it->news});
    // Exponential backoff with a ±0/+1 cycle desynchronisation jitter from
    // the reserved reliability substream.
    const double backed = static_cast<double>(it->timeout) * config_.backoff;
    it->timeout = std::min<Cycle>(static_cast<Cycle>(backed), config_.max_timeout);
    it->due = now + it->timeout + static_cast<Cycle>(rng.index(2));
    ++it;
  }
  return due;
}

void RetransmitQueue::clear() { entries_.clear(); }

}  // namespace whatsup::sim
