#include "sim/opinions.hpp"

namespace whatsup::sim {

bool MutableOpinions::likes(NodeId user, ItemIdx item) const {
  return base_.likes(resolve(user), item);
}

void MutableOpinions::set_alias(NodeId node, NodeId as_user) {
  alias_[node] = as_user;
}

void MutableOpinions::swap_interests(NodeId a, NodeId b) {
  const NodeId ra = resolve(a);
  const NodeId rb = resolve(b);
  alias_[a] = rb;
  alias_[b] = ra;
}

NodeId MutableOpinions::resolve(NodeId node) const {
  const auto it = alias_.find(node);
  return it == alias_.end() ? node : it->second;
}

}  // namespace whatsup::sim
