// Shard-local state of the deterministic sharded scheduler.
//
// Nodes are partitioned into contiguous id ranges ("shards"); a cycle runs
// each phase (message delivery, agent activation) shard-by-shard on a small
// worker pool. Everything a worker touches while executing a shard is
// either immutable for the duration of the phase (agent registry, activity
// flags, network config) or lives here, in the shard:
//
//  * `mailbox` — ring of per-cycle buckets holding this shard's incoming
//    messages, appended only at cycle barriers (single-threaded commit) in
//    canonical order, so delivery order is a pure function of the seed.
//  * `outbox` — messages sent by this shard's agents during the current
//    phase. Committed at the barrier: the engine walks shards in ascending
//    order, applying loss/latency (engine-level RNG stream) and routing
//    into the destination shard's mailbox. The concatenation of outboxes
//    in shard order IS the canonical (cycle, phase, sender, seq) order,
//    because agents within a shard run in ascending id order.
//  * `observer` — buffered measurement callbacks, replayed into the real
//    observer at the barrier in ascending shard order.
//  * `dropped` — inbox-overflow drop counts, merged into the global
//    traffic accounting at the barrier.
//
// The shard COUNT is a function of the node count alone (never of the
// worker-thread count), so the canonical order — and therefore every
// fixed-seed trajectory — is bit-identical across `threads` settings.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "net/message.hpp"
#include "sim/observer.hpp"

namespace whatsup::sim {

// A message queued for delivery, tagged with its absolute due cycle so the
// ring can be re-bucketed when the latency window grows.
struct PendingMessage {
  Cycle due = 0;
  net::Message message;
};

struct Shard {
  Shard(NodeId begin, NodeId end, std::size_t window)
      : begin(begin), end(end), mailbox(window) {}

  NodeId begin = 0;  // node id range [begin, end)
  NodeId end = 0;

  // mailbox[c % mailbox.size()] holds messages due at cycle c.
  std::vector<std::vector<PendingMessage>> mailbox;
  std::vector<net::Message> outbox;
  BufferedObserver observer;
  // Inbox-overflow drops, indexed by net::Protocol.
  std::array<std::size_t, net::kNumProtocols> dropped{};

  // Scratch the due bucket is swapped with during delivery, reused so
  // steady-state cycles allocate nothing.
  std::vector<PendingMessage> delivery_batch;

  std::vector<PendingMessage>& bucket(Cycle cycle) {
    return mailbox[static_cast<std::size_t>(cycle) % mailbox.size()];
  }

  // Grows the ring to `window` buckets, re-bucketing queued messages by
  // their absolute due cycle (needed when set_network raises latency or
  // jitter after construction).
  void grow_window(std::size_t window) {
    if (mailbox.size() >= window) return;
    std::vector<std::vector<PendingMessage>> grown(window);
    for (auto& old_bucket : mailbox) {
      for (PendingMessage& p : old_bucket) {
        grown[static_cast<std::size_t>(p.due) % window].push_back(std::move(p));
      }
    }
    mailbox = std::move(grown);
  }
};

// Persistent pool executing `fn(index)` for index in [0, n) with dynamic
// work stealing. The calling thread participates, so `threads` is the
// total parallelism. Tasks must not throw.
class WorkerPool {
 public:
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  // Blocks until fn has been applied to every index.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t job_epoch_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t inflight_ = 0;  // workers still inside the current job
  bool stop_ = false;
};

}  // namespace whatsup::sim
