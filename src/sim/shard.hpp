// Shard-local state of the deterministic sharded scheduler.
//
// Nodes are partitioned into contiguous id ranges ("shards"); a cycle runs
// each phase (message delivery, agent activation) shard-by-shard on a small
// worker pool. Everything a worker touches while executing a shard is
// either immutable for the duration of the phase (agent registry, activity
// flags, network config) or lives here, in the shard:
//
//  * `mailbox` — ring of per-cycle buckets holding this shard's incoming
//    messages, appended only at cycle barriers (single-threaded commit) in
//    canonical order, so delivery order is a pure function of the seed.
//  * `outbox` — messages sent by this shard's agents during the current
//    phase. Committed at the barrier: the engine walks shards in ascending
//    order, applying loss/latency (engine-level RNG stream) and routing
//    into the destination shard's mailbox. The concatenation of outboxes
//    in shard order IS the canonical (cycle, phase, sender, seq) order,
//    because agents within a shard run in ascending id order.
//  * `observer` — buffered measurement callbacks, replayed into the real
//    observer at the barrier in ascending shard order.
//  * `dropped` — inbox-overflow drop counts, merged into the global
//    traffic accounting at the barrier.
//
// The shard COUNT is a function of the node count alone (never of the
// worker-thread count), so the canonical order — and therefore every
// fixed-seed trajectory — is bit-identical across `threads` settings.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "net/message.hpp"
#include "sim/observer.hpp"

namespace whatsup::sim {

// A routed message paired with its absolute due cycle — the STAGING shape
// (pending_local_, wire envelopes). The mailbox ring itself stores bare
// net::Message: the bucket index already encodes the due cycle (due %
// window), so tagging every queued envelope would spend 8 bytes per
// message (4 field + 4 padding) on information the ring position carries —
// ~150 MB of the million-node storm peak.
struct PendingMessage {
  Cycle due = 0;
  net::Message message;
};

// Free-list of descriptor vectors — the payload half of the per-shard
// envelope slab. The envelope half (Message structs) already recycles
// through the mailbox-ring buckets and the outbox, whose capacities
// circulate across cycles; what used to round-trip through the global
// allocator is the `ViewPayload::view` vector INSIDE each message: one
// heap allocation per gossip message at the sender, one free at the
// receiver's bucket clear. The pool closes that loop: deliver_shard
// harvests the vectors of processed messages (capacity retained, elements
// destroyed at exactly the point clear() used to destroy them) and
// Context::acquire_descriptor_buffer hands them back to message builders.
//
// Buffers migrate between shards with the traffic that carries them
// (acquired in the sender's shard, harvested in the receiver's), so the
// per-shard free lists balance under symmetric gossip. No locking: a
// shard's pool is only touched by the worker currently executing that
// shard's phase, or by the engine thread between phases.
class DescriptorBufferPool {
 public:
  struct Stats {
    std::size_t reused = 0;    // acquires served from the free list
    std::size_t fresh = 0;     // acquires that fell through to the allocator
    std::size_t recycled = 0;  // buffers harvested back into the free list
  };

  std::vector<net::Descriptor> acquire() {
    if (free_.empty()) {
      ++stats_.fresh;
      return {};
    }
    ++stats_.reused;
    std::vector<net::Descriptor> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  void recycle(std::vector<net::Descriptor>&& buf) {
    buf.clear();  // release descriptor snapshots now, keep the capacity
    // Oversized buffers (rejoin replies, storm-grown views) would pin their
    // burst capacity in the free list forever; let the allocator have them.
    if (buf.capacity() == 0 || buf.capacity() > kMaxRetainedCapacity ||
        free_.size() >= kMaxBuffers) {
      return;
    }
    free_.push_back(std::move(buf));
    ++stats_.recycled;
  }

  const Stats& stats() const { return stats_; }
  std::size_t available() const { return free_.size(); }

  // Retained free-list capacity in bytes (memory observability).
  std::size_t memory_bytes() const {
    std::size_t total = free_.capacity() * sizeof(std::vector<net::Descriptor>);
    for (const auto& buf : free_) total += buf.capacity() * sizeof(net::Descriptor);
    return total;
  }

 private:
  // Bounds pool memory per shard; beyond these, buffers fall back to the
  // allocator exactly as before the pool existed. Gossip views top out at
  // `view_size` (20 by default) descriptors plus the sender, so 64 leaves
  // generous headroom for configured-up views without retaining burst
  // allocations.
  static constexpr std::size_t kMaxBuffers = 256;
  static constexpr std::size_t kMaxRetainedCapacity = 64;
  std::vector<std::vector<net::Descriptor>> free_;
  Stats stats_;
};

// Releases the spare capacity of an empty staging vector once it dwarfs
// the traffic it actually carried. Mailbox buckets, delivery scratch and
// outboxes all converge to the largest burst they ever saw (capacities
// circulate and never shrink), so after a news storm EVERY bucket of the
// ring pins storm-sized storage for the rest of the run — the dominant
// engine-side term of peak bytes/node at the million-node scale. The
// reserve keeps half again the last fill, so ordinary cycle-to-cycle
// growth never reallocates and only a >3x overhang (a genuine burst
// receding) is returned to the allocator. Capacity management never
// touches message content or order, so fixed-seed trajectories are
// unchanged.
template <typename T>
inline void trim_spare_capacity(std::vector<T>& v, std::size_t last_fill) {
  assert(v.empty() && "trim discards elements; call only on drained vectors");
  const std::size_t keep = std::max<std::size_t>(64, last_fill + last_fill / 2);
  if (v.capacity() <= 2 * keep) return;
  std::vector<T>().swap(v);
  v.reserve(keep);
}

struct Shard {
  Shard(NodeId begin, NodeId end, std::size_t window)
      : begin(begin), end(end), mailbox(window) {}

  NodeId begin = 0;  // node id range [begin, end)
  NodeId end = 0;

  // mailbox[c % mailbox.size()] holds messages due at cycle c.
  std::vector<std::vector<net::Message>> mailbox;
  std::vector<net::Message> outbox;
  BufferedObserver observer;
  // Inbox-overflow drops, indexed by net::Protocol.
  std::array<std::size_t, net::kNumProtocols> dropped{};

  // Scratch the due bucket is swapped with during delivery, reused so
  // steady-state cycles allocate nothing.
  std::vector<net::Message> delivery_batch;
  // Delivery grouping permutation over delivery_batch. Sorting 4-byte
  // indices in place (std::sort on (to, index)) replaces the stable_sort
  // of 56-byte Messages, whose merge buffer added a batch-sized transient
  // allocation exactly at the storm-cycle RSS peak.
  std::vector<std::uint32_t> delivery_order;

  // Recycles ViewPayload descriptor storage between this shard's agents
  // and the messages delivered to them (see class comment).
  DescriptorBufferPool descriptor_pool;

  std::vector<net::Message>& bucket(Cycle cycle) {
    return mailbox[static_cast<std::size_t>(cycle) % mailbox.size()];
  }

  // Grows the ring to `window` buckets, re-bucketing queued messages by
  // their absolute due cycle (needed when set_network raises latency or
  // jitter after construction). The ring does not store due cycles, but
  // they are recoverable: every queued message is due in [now, now +
  // old_window) — the scheduling invariant that keeps bucket slots unique
  // — so a bucket's index pins its due cycle exactly.
  void grow_window(std::size_t window, Cycle now) {
    if (mailbox.size() >= window) return;
    const std::size_t old_window = mailbox.size();
    std::vector<std::vector<net::Message>> grown(window);
    for (std::size_t b = 0; b < old_window; ++b) {
      const std::size_t offset =
          (b + old_window - static_cast<std::size_t>(now) % old_window) %
          old_window;
      const Cycle due = now + static_cast<Cycle>(offset);
      auto& target = grown[static_cast<std::size_t>(due) % window];
      for (net::Message& m : mailbox[b]) target.push_back(std::move(m));
    }
    mailbox = std::move(grown);
  }
};

// Persistent pool executing `fn(index)` for index in [0, n) with dynamic
// work stealing. The calling thread participates, so `threads` is the
// total parallelism. Tasks must not throw.
class WorkerPool {
 public:
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  // Blocks until fn has been applied to every index.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t job_epoch_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t inflight_ = 0;  // workers still inside the current job
  bool stop_ = false;
};

}  // namespace whatsup::sim
