// Flat sorted id set with small-buffer storage.
//
// A drop-in for the places that used std::unordered_set<Id> purely as a
// membership filter (the SIR "seen" state per agent). A hash set costs a
// bucket array plus one heap node per element (~60+ bytes each); a sorted
// SmallVector stores the ids contiguously, inline below N elements, and
// binary-searches membership. Inserts pay O(k) tail moves, which is cheap
// at the few-hundred-items-per-node scale the simulations run at and
// irrelevant next to the per-node memory budget at a million nodes.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/small_vector.hpp"

namespace whatsup {

template <typename T, std::size_t N>
class SortedIdSet {
 public:
  // Returns true when `value` was newly inserted.
  bool insert(T value) {
    auto* begin = values_.begin();
    auto* pos = std::lower_bound(begin, values_.end(), value);
    if (pos != values_.end() && *pos == value) return false;
    values_.insert(static_cast<std::size_t>(pos - begin), value);
    return true;
  }

  bool contains(T value) const {
    return std::binary_search(values_.begin(), values_.end(), value);
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  void clear() { values_.clear(); }

  std::size_t memory_bytes() const {
    return sizeof(SortedIdSet) +
           (values_.capacity() > N ? values_.capacity() * sizeof(T) : 0);
  }

 private:
  SmallVector<T, N> values_;  // sorted, unique
};

}  // namespace whatsup
