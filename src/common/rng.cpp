#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace whatsup {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the current state with the stream id through splitmix so children
  // are decorrelated from the parent and from each other.
  std::uint64_t s = state_[0] ^ (state_[2] + 0x632be59bd9b4e019ULL);
  s ^= splitmix64(stream);
  std::uint64_t mixed = s;
  return Rng{splitmix64(mixed) ^ stream};
}

Rng Rng::fork(std::uint64_t stream, std::uint64_t substream) const {
  // Chain both counters through independent splitmix mixes; a single xor
  // of the raw counters would collide on (a^b) pairs.
  std::uint64_t s = state_[0] ^ (state_[2] + 0x632be59bd9b4e019ULL);
  s ^= splitmix64(stream);
  std::uint64_t t = substream ^ 0x94d049bb133111ebULL;
  s += splitmix64(t);
  return Rng{splitmix64(s) ^ stream ^ rotl(substream, 32)};
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = -range % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double rate) {
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(std::span<const double> alpha) {
  std::vector<double> draw(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    draw[i] = gamma(alpha[i]);
    sum += draw[i];
  }
  if (sum <= 0.0) {
    std::fill(draw.begin(), draw.end(), 1.0 / static_cast<double>(draw.size()));
    return draw;
  }
  for (double& x : draw) x /= sum;
  return draw;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  if (k == 0) return {};
  // Floyd's algorithm for k << n; full shuffle otherwise.
  if (k * 4 <= n) {
    std::vector<std::size_t> picked;
    picked.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
      std::size_t t = index(j + 1);
      if (std::find(picked.begin(), picked.end(), t) != picked.end()) t = j;
      picked.push_back(t);
    }
    return picked;
  }
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + index(n - i)]);
  }
  all.resize(k);
  return all;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  cdf_.resize(n);
  double cum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    cum += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = cum;
  }
  for (double& c : cdf_) c /= cum;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace whatsup
