// Small-buffer-optimized vector for trivially copyable element types.
//
// Profiles are bounded by the profile window but are usually tiny: item
// profiles start from a single opinion and grow one fold at a time, and
// most user profiles hold a handful of recent items. Backing the Profile
// arrays with inline storage keeps those common cases entirely off the
// heap — a CoW clone of a small item profile allocates only the
// shared_ptr control block, none of the array storage — while large
// profiles spill to a heap block exactly like std::vector.
//
// Only the std::vector surface the Profile layer uses is implemented, and
// only for trivially copyable T (elements move by memcpy; no per-element
// construction or destruction). Iterators are raw pointers, so the
// similarity kernels' span-based access works unchanged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

namespace whatsup {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector moves elements with memcpy");
  static_assert(N > 0, "inline capacity must be non-zero");

 public:
  // User-provided (not defaulted) so const SmallVector/Profile objects are
  // well-formed despite the deliberately uninitialized inline buffer.
  SmallVector() {}

  SmallVector(const SmallVector& other) { append(other.data(), other.size_); }

  SmallVector(SmallVector&& other) noexcept { steal(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      size_ = 0;
      append(other.data(), other.size_);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  ~SmallVector() { release(); }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T* data() { return heap_ != nullptr ? heap_ : inline_data(); }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_data(); }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n <= capacity_) return;
    grow(n);
  }

  // Shrinking keeps storage; growing value-initializes the new elements.
  void resize(std::size_t n) {
    if (n > size_) {
      reserve(n);
      std::fill(data() + size_, data() + n, T{});
    }
    size_ = n;
  }

  void push_back(T value) {
    if (size_ == capacity_) grow(size_ + 1);
    data()[size_++] = value;
  }

  // Insert at index `pos` (not an iterator: callers position by index).
  void insert(std::size_t pos, T value) {
    if (size_ == capacity_) grow(size_ + 1);
    T* p = data();
    std::memmove(p + pos + 1, p + pos, (size_ - pos) * sizeof(T));
    p[pos] = value;
    ++size_;
  }

  bool operator==(const SmallVector& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void append(const T* src, std::size_t n) {
    reserve(size_ + n);
    std::memcpy(data() + size_, src, n * sizeof(T));
    size_ += n;
  }

  void grow(std::size_t needed) {
    const std::size_t cap = std::max(needed, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(fresh, data(), size_ * sizeof(T));
    release();
    heap_ = fresh;
    capacity_ = cap;
  }

  void steal(SmallVector& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = N;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      std::memcpy(inline_storage_, other.inline_storage_,
                  other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void release() {
    if (heap_ != nullptr) {
      ::operator delete(heap_);
      heap_ = nullptr;
      capacity_ = N;
    }
  }

  T* heap_ = nullptr;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace whatsup
