#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace whatsup {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(b)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t b) const {
  return lo_ +
         (hi_ - lo_) * (static_cast<double>(b) + 0.5) / static_cast<double>(counts_.size());
}

double Histogram::fraction(std::size_t b) const {
  return total_ > 0.0 ? counts_[b] / total_ : 0.0;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace whatsup
