// Strong-ish id and time aliases shared across the WhatsUp stack.
//
// The paper identifies news items by an 8-byte hash (§II-A); the simulator
// additionally keeps a dense per-workload index (`ItemIdx`) so ground-truth
// lookups are O(1). Time is measured in gossip cycles (§IV-D).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace whatsup {

using NodeId = std::uint32_t;   // dense node index within one deployment
using ItemId = std::uint64_t;   // 8-byte item hash (paper §II-A)
using ItemIdx = std::uint32_t;  // dense workload-side item index
using Cycle = std::int32_t;     // gossip-cycle timestamp

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr ItemIdx kNoItem = std::numeric_limits<ItemIdx>::max();
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::min();

}  // namespace whatsup
