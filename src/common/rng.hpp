// Deterministic random-number generation for the simulator.
//
// All randomness in a run flows from a single seeded root `Rng`; per-node /
// per-subsystem streams are derived with `fork`, so simulations are exactly
// reproducible regardless of evaluation order. The engine never touches
// global RNG state.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace whatsup {

// xoshiro256** with splitmix64 seeding. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  // Derives an independent, deterministic child stream. Forking the same
  // parent with the same `stream` always yields the same child.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  // Two-level counter-based fork: the child is a pure function of the
  // parent STATE and (stream, substream), so a pristine root forked with
  // (node, cycle) yields the same generator no matter how many draws any
  // other stream has consumed. This is the engine's per-node per-cycle
  // reseed primitive (see docs/architecture.md).
  [[nodiscard]] Rng fork(std::uint64_t stream, std::uint64_t substream) const;

  // Uniform real in [0, 1).
  double uniform();
  // Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  bool bernoulli(double p);
  double normal(double mean = 0.0, double stddev = 1.0);
  double exponential(double rate = 1.0);
  // Marsaglia–Tsang gamma(shape, 1). Requires shape > 0.
  double gamma(double shape);
  // Symmetric-or-not Dirichlet draw; `alpha[i] > 0`.
  std::vector<double> dirichlet(std::span<const double> alpha);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  // k distinct indices sampled uniformly from [0, n) (k clamped to n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& choice(std::span<const T> items) {
    return items[index(items.size())];
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf distribution over {0, .., n-1} with exponent s, via precomputed CDF.
// Rank 0 is the most probable outcome.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);
  std::size_t operator()(Rng& rng) const;
  double pmf(std::size_t rank) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace whatsup
