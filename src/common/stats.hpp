// Small statistics helpers used by the metrics and analysis layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace whatsup {

// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin so distribution tails remain visible.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t b) const;
  double bin_center(std::size_t b) const;
  double count(std::size_t b) const { return counts_[b]; }
  double total() const { return total_; }
  // Fraction of total mass in bin b (0 when empty).
  double fraction(std::size_t b) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
// Linear-interpolated quantile, q in [0, 1]. Returns 0 for empty input.
double quantile(std::vector<double> xs, double q);

}  // namespace whatsup
