// Hybrid sparse→dense→frozen membership set over a fixed universe [0, n).
//
// A per-item reached/liked set in a 100k-node run is usually tiny (most
// items reach a bounded neighborhood) but a dense DynBitset charges n/8
// bytes for every item regardless, so the tracker's per-item sets dominate
// the resident footprint at scale: O(items × n) bits. HybridSet stores the
// members as a sorted SmallVector while that is the cheaper representation
// and promotes to a DynBitset once the set is dense enough that the bitset
// is smaller (and O(1) membership starts to matter). The promotion
// threshold is a pure function of the universe size, so the representation
// — and every observable — is deterministic for a given insert history.
//
// A third, read-optimized representation backs the tracker's compaction
// mode: `freeze()` re-encodes the members as a sorted varint delta block
// (common/varint.hpp) once an item's spread window closes. Freezing is
// adopted only when the block is strictly smaller than the current heap
// footprint (a fully-reached dense set stays a bitset), and a write to a
// frozen set transparently thaws it first, so late deliveries remain
// correct. Reads decode the block on the fly — O(members) instead of
// O(1)/O(log k), acceptable for post-settlement queries.
//
// The read surface mirrors the DynBitset subset the metrics layer uses
// (test/count/any/for_each_set/intersect_count), and iteration is always
// in ascending order in ALL representations, so digests and reductions
// built on it cannot tell the representations apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/bitset.hpp"
#include "common/small_vector.hpp"

namespace whatsup {

class HybridSet {
 public:
  HybridSet() = default;
  explicit HybridSet(std::size_t n_bits) { resize(n_bits); }

  // Universe size (matches DynBitset::size, not the member count).
  std::size_t size() const { return n_bits_; }
  // Drops all members and fixes a new universe.
  void resize(std::size_t n_bits);

  void set(std::size_t i);
  bool test(std::size_t i) const;
  std::size_t count() const {
    return frozen_ ? frozen_count_ : (dense_ ? bits_.count() : sparse_.size());
  }
  bool any() const { return count() != 0; }
  void clear();

  // |this AND other| over a same-universe dense set (workload ground
  // truth stays DynBitset).
  std::size_t intersect_count(const DynBitset& other) const;

  // Ascending in all representations.
  void for_each_set(const std::function<void(std::size_t)>& fn) const;
  // Members in [lo, hi), ascending; sparse pays O(log k + members in
  // range), dense pays a word-aligned scan of the range, frozen decodes
  // from the block start and stops at hi.
  void for_each_set_in(std::size_t lo, std::size_t hi,
                       const std::function<void(std::size_t)>& fn) const;

  // Content equality, independent of representation.
  bool operator==(const HybridSet& other) const;

  // Dense materialization (interop with DynBitset-based post-analysis).
  DynBitset to_bitset() const;

  // Re-encodes the members as a sorted varint delta block when that is
  // strictly smaller than the current heap footprint. Returns whether the
  // set is frozen on exit. Contents (and thus digests) are unchanged —
  // only the storage and the read cost change.
  bool freeze();
  // Restores the sparse/dense representation (chosen by member count, same
  // rule as insertion-time promotion). Writes call this implicitly.
  void thaw();

  // Observability for tests and memory accounting.
  bool is_dense() const { return dense_; }
  bool is_frozen() const { return frozen_; }
  std::size_t promote_threshold() const { return promote_at_; }
  std::size_t memory_bytes() const;

 private:
  void promote();
  // Decodes the frozen block in ascending order; Fn returns false to stop.
  template <typename Fn>
  void scan_frozen(Fn&& fn) const;

  // Promote when the sorted-u32 storage would outgrow the bitset:
  // 4·k bytes vs n/8 bytes ⇒ k > n/32 (min 16 keeps tiny universes
  // sparse-capable without thrashing).
  static std::size_t threshold_for(std::size_t n_bits) {
    const std::size_t t = n_bits / 32;
    return t < 16 ? 16 : t;
  }

  std::size_t n_bits_ = 0;
  std::size_t promote_at_ = 16;
  bool dense_ = false;
  bool frozen_ = false;
  std::uint32_t frozen_count_ = 0;
  SmallVector<std::uint32_t, 8> sparse_;  // sorted, unique; empty when dense/frozen
  DynBitset bits_;                        // empty until promotion
  SmallVector<std::uint8_t, 8> packed_;   // varint delta block when frozen
};

}  // namespace whatsup
