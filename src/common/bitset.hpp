// Compact dynamic bitset used for ground-truth like-matrices and
// per-item reached/liked sets (up to a few thousand users per set).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace whatsup {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t n_bits);

  std::size_t size() const { return n_bits_; }
  void resize(std::size_t n_bits);

  void set(std::size_t i);
  void reset(std::size_t i);
  bool test(std::size_t i) const;

  // Number of set bits.
  std::size_t count() const;
  bool any() const;
  void clear();

  // |this AND other| — both must have the same size.
  std::size_t intersect_count(const DynBitset& other) const;
  // |this OR other|.
  std::size_t union_count(const DynBitset& other) const;
  // |this AND NOT other|.
  std::size_t difference_count(const DynBitset& other) const;

  void for_each_set(const std::function<void(std::size_t)>& fn) const;
  // Set bits in [lo, hi), ascending. Word-aligned scan: cost is
  // O((hi - lo) / 64 + set bits in range), so range-partitioned parallel
  // reductions pay for the slice they own, not the whole set.
  void for_each_set_in(std::size_t lo, std::size_t hi,
                       const std::function<void(std::size_t)>& fn) const;
  std::vector<std::size_t> indices() const;

  bool operator==(const DynBitset& other) const = default;

 private:
  static constexpr std::size_t kBits = 64;
  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace whatsup
