#include "common/hash.hpp"

namespace whatsup {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t h = kFnvOffset;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view text) {
  return fnv1a64(std::as_bytes(std::span(text.data(), text.size())));
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  // boost::hash_combine-style mix widened to 64 bits.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

ItemId make_item_id(std::string_view workload, ItemIdx index) {
  return hash_combine(fnv1a64(workload), static_cast<std::uint64_t>(index) + 1);
}

}  // namespace whatsup
