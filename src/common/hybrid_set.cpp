#include "common/hybrid_set.hpp"

#include <algorithm>
#include <cassert>

#include "common/varint.hpp"

namespace whatsup {

void HybridSet::resize(std::size_t n_bits) {
  n_bits_ = n_bits;
  promote_at_ = threshold_for(n_bits);
  dense_ = false;
  frozen_ = false;
  frozen_count_ = 0;
  sparse_.clear();
  bits_ = DynBitset();
  packed_ = SmallVector<std::uint8_t, 8>();
}

void HybridSet::set(std::size_t i) {
  assert(i < n_bits_);
  if (frozen_) {
    if (test(i)) return;
    thaw();
  }
  if (dense_) {
    bits_.set(i);
    return;
  }
  const auto value = static_cast<std::uint32_t>(i);
  auto* begin = sparse_.begin();
  auto* pos = std::lower_bound(begin, sparse_.end(), value);
  if (pos != sparse_.end() && *pos == value) return;
  sparse_.insert(static_cast<std::size_t>(pos - begin), value);
  if (sparse_.size() > promote_at_) promote();
}

void HybridSet::promote() {
  bits_.resize(n_bits_);
  for (const std::uint32_t v : sparse_) bits_.set(v);
  sparse_.clear();
  // Release any heap block the sparse array spilled to.
  sparse_ = SmallVector<std::uint32_t, 8>();
  dense_ = true;
}

template <typename Fn>
void HybridSet::scan_frozen(Fn&& fn) const {
  const std::uint8_t* p = packed_.data();
  std::size_t value = 0;
  for (std::uint32_t j = 0; j < frozen_count_; ++j) {
    value += varint_read(p);
    if (!fn(value)) return;
  }
}

bool HybridSet::freeze() {
  if (frozen_) return true;
  const std::size_t k = count();
  if (k == 0) return false;
  // Heap bytes of the current representation; an inline sparse set has
  // nothing to reclaim.
  const std::size_t current_heap =
      dense_ ? (n_bits_ + 7) / 8
             : (sparse_.capacity() > 8 ? sparse_.capacity() * sizeof(std::uint32_t)
                                       : 0);
  if (current_heap == 0) return false;
  // Dry pass: encoded size of the ascending member deltas (first delta is
  // against 0, so the encoding is just consecutive differences).
  std::size_t encoded = 0;
  std::size_t prev = 0;
  for_each_set([&](std::size_t v) {
    encoded += varint_size(v - prev);
    prev = v;
  });
  const std::size_t frozen_heap = encoded > 8 ? encoded : 0;
  if (frozen_heap >= current_heap) return false;
  SmallVector<std::uint8_t, 8> packed;
  packed.reserve(encoded);
  prev = 0;
  for_each_set([&](std::size_t v) {
    varint_append(packed, v - prev);
    prev = v;
  });
  packed_ = std::move(packed);
  frozen_count_ = static_cast<std::uint32_t>(k);
  frozen_ = true;
  dense_ = false;
  sparse_ = SmallVector<std::uint32_t, 8>();
  bits_ = DynBitset();
  return true;
}

void HybridSet::thaw() {
  if (!frozen_) return;
  const SmallVector<std::uint8_t, 8> packed = std::move(packed_);
  const std::uint32_t k = frozen_count_;
  frozen_ = false;
  frozen_count_ = 0;
  packed_ = SmallVector<std::uint8_t, 8>();
  const std::uint8_t* p = packed.data();
  std::size_t value = 0;
  if (k > promote_at_) {
    bits_.resize(n_bits_);
    dense_ = true;
    for (std::uint32_t j = 0; j < k; ++j) {
      value += varint_read(p);
      bits_.set(value);
    }
  } else {
    sparse_.reserve(k);
    for (std::uint32_t j = 0; j < k; ++j) {
      value += varint_read(p);
      sparse_.push_back(static_cast<std::uint32_t>(value));
    }
  }
}

bool HybridSet::test(std::size_t i) const {
  assert(i < n_bits_);
  if (frozen_) {
    bool found = false;
    scan_frozen([&](std::size_t v) {
      if (v >= i) {
        found = v == i;
        return false;
      }
      return true;
    });
    return found;
  }
  if (dense_) return bits_.test(i);
  return std::binary_search(sparse_.begin(), sparse_.end(),
                            static_cast<std::uint32_t>(i));
}

void HybridSet::clear() {
  sparse_.clear();
  if (dense_) {
    dense_ = false;
    bits_ = DynBitset();
  }
  if (frozen_) {
    frozen_ = false;
    frozen_count_ = 0;
    packed_ = SmallVector<std::uint8_t, 8>();
  }
}

std::size_t HybridSet::intersect_count(const DynBitset& other) const {
  assert(other.size() == n_bits_);
  if (frozen_) {
    std::size_t total = 0;
    scan_frozen([&](std::size_t v) {
      total += other.test(v) ? 1 : 0;
      return true;
    });
    return total;
  }
  if (dense_) return bits_.intersect_count(other);
  std::size_t total = 0;
  for (const std::uint32_t v : sparse_) total += other.test(v) ? 1 : 0;
  return total;
}

void HybridSet::for_each_set(const std::function<void(std::size_t)>& fn) const {
  if (frozen_) {
    scan_frozen([&](std::size_t v) {
      fn(v);
      return true;
    });
    return;
  }
  if (dense_) {
    bits_.for_each_set(fn);
    return;
  }
  for (const std::uint32_t v : sparse_) fn(v);
}

void HybridSet::for_each_set_in(std::size_t lo, std::size_t hi,
                                const std::function<void(std::size_t)>& fn) const {
  if (frozen_) {
    scan_frozen([&](std::size_t v) {
      if (v >= hi) return false;
      if (v >= lo) fn(v);
      return true;
    });
    return;
  }
  if (dense_) {
    bits_.for_each_set_in(lo, hi, fn);
    return;
  }
  const auto* it = std::lower_bound(sparse_.begin(), sparse_.end(),
                                    static_cast<std::uint32_t>(lo));
  for (; it != sparse_.end() && *it < hi; ++it) fn(*it);
}

bool HybridSet::operator==(const HybridSet& other) const {
  if (n_bits_ != other.n_bits_ || count() != other.count()) return false;
  bool equal = true;
  // Same count + same universe: member-wise check in ascending order.
  auto* self = this;
  other.for_each_set([&](std::size_t i) {
    if (!self->test(i)) equal = false;
  });
  return equal;
}

DynBitset HybridSet::to_bitset() const {
  if (dense_) return bits_;
  DynBitset out(n_bits_);
  if (frozen_) {
    scan_frozen([&](std::size_t v) {
      out.set(v);
      return true;
    });
    return out;
  }
  for (const std::uint32_t v : sparse_) out.set(v);
  return out;
}

std::size_t HybridSet::memory_bytes() const {
  if (frozen_) {
    return sizeof(HybridSet) +
           (packed_.capacity() > 8 ? packed_.capacity() : 0);
  }
  if (dense_) return sizeof(HybridSet) + (n_bits_ + 7) / 8;
  return sizeof(HybridSet) +
         (sparse_.capacity() > 8 ? sparse_.capacity() * sizeof(std::uint32_t) : 0);
}

}  // namespace whatsup
