#include "common/hybrid_set.hpp"

#include <algorithm>
#include <cassert>

namespace whatsup {

void HybridSet::resize(std::size_t n_bits) {
  n_bits_ = n_bits;
  promote_at_ = threshold_for(n_bits);
  dense_ = false;
  sparse_.clear();
  bits_ = DynBitset();
}

void HybridSet::set(std::size_t i) {
  assert(i < n_bits_);
  if (dense_) {
    bits_.set(i);
    return;
  }
  const auto value = static_cast<std::uint32_t>(i);
  auto* begin = sparse_.begin();
  auto* pos = std::lower_bound(begin, sparse_.end(), value);
  if (pos != sparse_.end() && *pos == value) return;
  sparse_.insert(static_cast<std::size_t>(pos - begin), value);
  if (sparse_.size() > promote_at_) promote();
}

void HybridSet::promote() {
  bits_.resize(n_bits_);
  for (const std::uint32_t v : sparse_) bits_.set(v);
  sparse_.clear();
  // Release any heap block the sparse array spilled to.
  sparse_ = SmallVector<std::uint32_t, 8>();
  dense_ = true;
}

bool HybridSet::test(std::size_t i) const {
  assert(i < n_bits_);
  if (dense_) return bits_.test(i);
  return std::binary_search(sparse_.begin(), sparse_.end(),
                            static_cast<std::uint32_t>(i));
}

void HybridSet::clear() {
  sparse_.clear();
  if (dense_) {
    dense_ = false;
    bits_ = DynBitset();
  }
}

std::size_t HybridSet::intersect_count(const DynBitset& other) const {
  assert(other.size() == n_bits_);
  if (dense_) return bits_.intersect_count(other);
  std::size_t total = 0;
  for (const std::uint32_t v : sparse_) total += other.test(v) ? 1 : 0;
  return total;
}

void HybridSet::for_each_set(const std::function<void(std::size_t)>& fn) const {
  if (dense_) {
    bits_.for_each_set(fn);
    return;
  }
  for (const std::uint32_t v : sparse_) fn(v);
}

void HybridSet::for_each_set_in(std::size_t lo, std::size_t hi,
                                const std::function<void(std::size_t)>& fn) const {
  if (dense_) {
    bits_.for_each_set_in(lo, hi, fn);
    return;
  }
  const auto* it = std::lower_bound(sparse_.begin(), sparse_.end(),
                                    static_cast<std::uint32_t>(lo));
  for (; it != sparse_.end() && *it < hi; ++it) fn(*it);
}

bool HybridSet::operator==(const HybridSet& other) const {
  if (n_bits_ != other.n_bits_ || count() != other.count()) return false;
  bool equal = true;
  // Same count + same universe: member-wise check in ascending order.
  auto* self = this;
  other.for_each_set([&](std::size_t i) {
    if (!self->test(i)) equal = false;
  });
  return equal;
}

DynBitset HybridSet::to_bitset() const {
  if (dense_) return bits_;
  DynBitset out(n_bits_);
  for (const std::uint32_t v : sparse_) out.set(v);
  return out;
}

std::size_t HybridSet::memory_bytes() const {
  if (dense_) return sizeof(HybridSet) + (n_bits_ + 7) / 8;
  return sizeof(HybridSet) +
         (sparse_.capacity() > 8 ? sparse_.capacity() * sizeof(std::uint32_t) : 0);
}

}  // namespace whatsup
