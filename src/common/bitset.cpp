#include "common/bitset.hpp"

#include <bit>
#include <cassert>

namespace whatsup {

DynBitset::DynBitset(std::size_t n_bits) { resize(n_bits); }

void DynBitset::resize(std::size_t n_bits) {
  n_bits_ = n_bits;
  words_.assign((n_bits + kBits - 1) / kBits, 0);
}

void DynBitset::set(std::size_t i) {
  assert(i < n_bits_);
  words_[i / kBits] |= (std::uint64_t{1} << (i % kBits));
}

void DynBitset::reset(std::size_t i) {
  assert(i < n_bits_);
  words_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
}

bool DynBitset::test(std::size_t i) const {
  assert(i < n_bits_);
  return (words_[i / kBits] >> (i % kBits)) & 1u;
}

std::size_t DynBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool DynBitset::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void DynBitset::clear() { words_.assign(words_.size(), 0); }

std::size_t DynBitset::intersect_count(const DynBitset& other) const {
  assert(n_bits_ == other.n_bits_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
  }
  return total;
}

std::size_t DynBitset::union_count(const DynBitset& other) const {
  assert(n_bits_ == other.n_bits_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] | other.words_[w]));
  }
  return total;
}

std::size_t DynBitset::difference_count(const DynBitset& other) const {
  assert(n_bits_ == other.n_bits_);
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] & ~other.words_[w]));
  }
  return total;
}

void DynBitset::for_each_set(const std::function<void(std::size_t)>& fn) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(w * kBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

void DynBitset::for_each_set_in(std::size_t lo, std::size_t hi,
                                const std::function<void(std::size_t)>& fn) const {
  hi = hi < n_bits_ ? hi : n_bits_;
  if (lo >= hi) return;
  const std::size_t first_word = lo / kBits;
  const std::size_t last_word = (hi - 1) / kBits;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    std::uint64_t word = words_[w];
    if (w == first_word && lo % kBits != 0) {
      word &= ~std::uint64_t{0} << (lo % kBits);
    }
    if (w == last_word && hi % kBits != 0) {
      word &= ~std::uint64_t{0} >> (kBits - hi % kBits);
    }
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(w * kBits + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

std::vector<std::size_t> DynBitset::indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_set([&out](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace whatsup
