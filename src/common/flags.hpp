// Minimal command-line flag parser for the bench/example binaries:
// supports --name=value and --name value; every lookup registers the flag
// for --help output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace whatsup {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = {});
  double get_double(const std::string& name, double def, const std::string& help = {});
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help = {});
  bool get_bool(const std::string& name, bool def, const std::string& help = {});

  bool help_requested() const { return help_requested_; }
  // Prints registered flags with defaults; returns true if --help was given
  // (callers typically exit in that case).
  bool maybe_print_help(std::ostream& os) const;
  // Flags supplied on the command line that were never looked up.
  std::vector<std::string> unknown_flags() const;

 private:
  struct Registered {
    std::string default_value;
    std::string help;
  };
  std::map<std::string, std::string> values_;
  std::map<std::string, Registered> registered_;
  mutable std::vector<std::string> consumed_;
  std::string program_;
  bool help_requested_ = false;

  const std::string* lookup(const std::string& name);
};

}  // namespace whatsup
