// Content hashing. The paper (§II-A) identifies a news item by an 8-byte
// hash computed by each node from the item content; we use FNV-1a 64.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/ids.hpp"

namespace whatsup {

std::uint64_t fnv1a64(std::span<const std::byte> bytes);
std::uint64_t fnv1a64(std::string_view text);

// Order-dependent 64-bit mix, for composing hashes.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

// Deterministic item id from a workload name and a dense item index;
// stands in for hashing the (title, description, link) payload.
ItemId make_item_id(std::string_view workload, ItemIdx index);

}  // namespace whatsup
