// ASCII table and figure-series printers used by the benchmark harness to
// regenerate the paper's tables and plotted series.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace whatsup {

// Formats a double with `prec` digits after the point.
std::string fixed(double value, int prec = 2);
// Human-readable message counts: 4600 -> "4.6k", 1100000 -> "1.1M".
std::string si_count(double value);

// Aligned ASCII table, printed with a title banner; mirrors the layout of a
// paper table so EXPERIMENTS.md can record paper-vs-measured side by side.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  void print(std::ostream& os, const std::string& title = {}) const;
  // Comma-separated dump (for scripting / plotting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Column-oriented numeric series, printed gnuplot-style: a comment header
// followed by one x/y... row per line. Used for every reproduced figure.
class Series {
 public:
  Series(std::string x_label, std::vector<std::string> y_labels);

  void add(double x, std::vector<double> ys);
  std::size_t points() const { return xs_.size(); }

  void print(std::ostream& os, const std::string& title = {}) const;

 private:
  std::string x_label_;
  std::vector<std::string> y_labels_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace whatsup
