// LEB128 varints and zigzag delta sequence coding — the byte-level layer
// under the compact profile records (profile/compact.hpp) and the frozen
// tracker sets (common/hybrid_set.hpp).
//
// The sequence codec is lossless for ARBITRARY u64 sequences: consecutive
// differences are taken mod 2^64 and zigzag-mapped, so ascending runs cost
// ~1 byte per element (item ids are dense and mostly ascending), while
// non-ascending and duplicate-adjacent inputs still round-trip exactly.
// Decoding adds the differences back mod 2^64 — no overflow UB anywhere
// (all arithmetic is unsigned).
#pragma once

#include <cstddef>
#include <cstdint>

namespace whatsup {

// Encoded size of one LEB128 varint.
inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Appends one varint to any byte sink with push_back(uint8_t).
template <typename Sink>
inline void varint_append(Sink& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Reads one varint, advancing `p`. The caller guarantees the buffer holds a
// complete encoding (these blocks are produced and consumed in-process).
inline std::uint64_t varint_read(const std::uint8_t*& p) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    const std::uint8_t b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

// Zigzag: small-magnitude signed values (either sign) become small unsigned
// varints. Pure bit mappings — inverse of each other for all 2^64 inputs.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Encoded size of `values[0..n)` as zigzag'd consecutive deltas (the first
// delta is against 0).
inline std::size_t delta_encoded_size(const std::uint64_t* values, std::size_t n) {
  std::size_t bytes = 0;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bytes += varint_size(zigzag_encode(static_cast<std::int64_t>(values[i] - prev)));
    prev = values[i];
  }
  return bytes;
}

template <typename Sink>
inline void delta_encode(Sink& out, const std::uint64_t* values, std::size_t n) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    varint_append(out, zigzag_encode(static_cast<std::int64_t>(values[i] - prev)));
    prev = values[i];
  }
}

inline void delta_decode(const std::uint8_t*& p, std::uint64_t* out, std::size_t n) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint64_t>(zigzag_decode(varint_read(p)));
    out[i] = prev;
  }
}

}  // namespace whatsup
