#include "common/flags.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace whatsup {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

const std::string* Flags::lookup(const std::string& name) {
  consumed_.push_back(name);
  const auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def,
                            const std::string& help) {
  registered_[name] = {std::to_string(def), help};
  const std::string* v = lookup(name);
  return v != nullptr ? std::stoll(*v) : def;
}

double Flags::get_double(const std::string& name, double def, const std::string& help) {
  registered_[name] = {std::to_string(def), help};
  const std::string* v = lookup(name);
  return v != nullptr ? std::stod(*v) : def;
}

std::string Flags::get_string(const std::string& name, const std::string& def,
                              const std::string& help) {
  registered_[name] = {def, help};
  const std::string* v = lookup(name);
  return v != nullptr ? *v : def;
}

bool Flags::get_bool(const std::string& name, bool def, const std::string& help) {
  registered_[name] = {def ? "true" : "false", help};
  const std::string* v = lookup(name);
  if (v == nullptr) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

bool Flags::maybe_print_help(std::ostream& os) const {
  if (!help_requested_) return false;
  os << "Usage: " << program_ << " [--flag=value ...]\n";
  for (const auto& [name, reg] : registered_) {
    os << "  --" << name << " (default: " << reg.default_value << ")";
    if (!reg.help.empty()) os << "  " << reg.help;
    os << '\n';
  }
  return true;
}

std::vector<std::string> Flags::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(consumed_.begin(), consumed_.end(), name) == consumed_.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace whatsup
