// Minimal data-parallel executor interface, so library layers (metrics,
// analysis) can fan work out over the simulation engine's worker pool
// without depending on sim/.
//
// Determinism contract for callers: partition work into chunks whose
// boundaries are a function of the PROBLEM SIZE only (never of the thread
// count), write results into per-chunk slots, and merge the slots in
// ascending chunk order on the calling thread. Then the result — including
// floating-point rounding — is bit-identical for any executor and any
// worker-thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace whatsup {

class ParallelExecutor {
 public:
  virtual ~ParallelExecutor() = default;

  // Applies fn to every index in [0, n) exactly once, possibly
  // concurrently; blocks until all indices are done. fn must be safe to
  // invoke concurrently on distinct indices and must not throw.
  virtual void parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) = 0;
};

// Runs fn over chunk index ranges: fn(chunk, lo, hi) for the chunk'th
// slice [lo, hi) of [0, n). `chunk_size` must not depend on the thread
// count (see the determinism contract above). A null executor runs the
// chunks inline.
inline void parallel_chunks(
    ParallelExecutor* exec, std::size_t n, std::size_t chunk_size,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t lo = c * chunk_size;
    fn(c, lo, lo + chunk_size < n ? lo + chunk_size : n);
  };
  if (exec == nullptr || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    exec->parallel_for(chunks, run_chunk);
  }
}

}  // namespace whatsup
