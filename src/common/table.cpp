#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace whatsup {

std::string fixed(double value, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << value;
  return os.str();
}

std::string si_count(double value) {
  if (value >= 1e6) return fixed(value / 1e6, 1) + "M";
  if (value >= 1e3) return fixed(value / 1e3, 1) + "k";
  return fixed(value, 0);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 3;
  if (!title.empty()) {
    os << title << '\n' << std::string(std::max<std::size_t>(total, title.size()), '-') << '\n';
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 3) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

Series::Series(std::string x_label, std::vector<std::string> y_labels)
    : x_label_(std::move(x_label)), y_labels_(std::move(y_labels)) {}

void Series::add(double x, std::vector<double> ys) {
  assert(ys.size() == y_labels_.size());
  xs_.push_back(x);
  rows_.push_back(std::move(ys));
}

void Series::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "# " << title << '\n';
  os << "# " << x_label_;
  for (const auto& label : y_labels_) os << '\t' << label;
  os << '\n';
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    os << fixed(xs_[r], 3);
    for (double y : rows_[r]) os << '\t' << fixed(y, 4);
    os << '\n';
  }
  os.flush();
}

}  // namespace whatsup
