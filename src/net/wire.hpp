// Wire serialization of net::Message envelopes — the byte format the
// fragment-partitioned engine ships across worker processes at cycle
// barriers (sim/transport.hpp).
//
// Until now messages were in-memory-only structs: profiles travelled as
// interned handles (profile/compact.hpp) and item profiles as CoW
// references, both meaningless outside the owning process. The codec here
// serializes CONTENTS, never process-local identities:
//
//  * profile snapshots ship as delta-coded entry triplets (the same LEB128
//    zigzag layout CompactProfile uses: id deltas, timestamp deltas, and a
//    1-bit-per-entry mask for binary score vectors, raw doubles otherwise);
//    the receiver re-encodes them into its own intern table. Version
//    stamps are deliberately NOT shipped — they are process-local counters
//    and only affect memo hit rates, never behavior, which is what keeps
//    fixed-seed trajectories bit-identical across partition counts.
//  * every numeric field is a varint / zigzag varint; doubles are 8-byte
//    little-endian bit patterns (exact round-trip — scores feed similarity
//    kernels whose last-ulp behavior is pinned by the determinism suite).
//
// Unlike common/varint.hpp's trusted in-process reader, WireReader is
// bounds-checked: truncated or corrupt input parks the reader in a failed
// state instead of reading past the buffer, and every decoder returns
// false rather than fabricating a message.
//
// Framing for the socket transport: [u32 length][u32 FNV-1a checksum]
// [payload], both little-endian. frame_extract rejects oversized lengths
// and checksum mismatches as corrupt.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/varint.hpp"
#include "net/message.hpp"
#include "profile/profile.hpp"

namespace whatsup::net {

// ---- Bounds-checked reader ----

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}
  explicit WireReader(std::span<const std::uint8_t> bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const {
    return ok_ ? static_cast<std::size_t>(end_ - p_) : 0;
  }

  std::uint8_t read_u8() {
    if (p_ == end_) return fail();
    return *p_++;
  }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
      if (p_ == end_ || shift > 63) return fail();
      const std::uint8_t b = *p_++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t read_zigzag() { return zigzag_decode(read_varint()); }

  double read_f64() {
    if (static_cast<std::size_t>(end_ - p_) < 8) {
      fail();
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    }
    p_ += 8;
    return std::bit_cast<double>(bits);
  }

 private:
  std::uint8_t fail() {
    ok_ = false;
    p_ = end_;
    return 0;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

// ---- Writer helpers (append to a byte vector) ----

inline void wire_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
inline void wire_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  varint_append(out, v);
}
inline void wire_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  varint_append(out, zigzag_encode(v));
}
inline void wire_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// ---- Payload codecs ----
//
// Decoders validate counts against generous sanity caps (a corrupt length
// must not drive a multi-gigabyte allocation before the checksum or the
// reader catches it).
inline constexpr std::size_t kMaxWireProfileEntries = 1u << 20;
inline constexpr std::size_t kMaxWireViewEntries = 1u << 16;

// Profile CONTENTS (ids/timestamps/scores). The decoded profile carries a
// fresh local version stamp; cached norm and liked count are recomputed
// and bit-equal to the source's (same entries, same left-to-right order).
void encode_profile(std::vector<std::uint8_t>& out, const Profile& profile);
bool decode_profile(WireReader& r, Profile& out);

void encode_descriptor(std::vector<std::uint8_t>& out, const Descriptor& d);
bool decode_descriptor(WireReader& r, Descriptor& out);

void encode_message(std::vector<std::uint8_t>& out, const Message& m);
bool decode_message(WireReader& r, Message& out);

// One queued envelope as exchanged at cycle barriers: the absolute due
// cycle (network draws happen sender-side; the receiver only buckets) plus
// the message. Batches are plain concatenations of envelopes, decoded
// until the reader is exhausted.
void encode_envelope(std::vector<std::uint8_t>& out, Cycle due, const Message& m);
bool decode_envelope(WireReader& r, Cycle& due, Message& out);

// ---- Frames ----

inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

std::uint32_t wire_checksum(std::span<const std::uint8_t> payload);

// Appends [length][checksum][payload] to `out`.
void frame_append(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

enum class FrameStatus { kNeedMore, kOk, kCorrupt };

// Tries to extract one complete frame from buffer[offset..size). On kOk,
// `payload` views the frame's payload bytes (inside `buffer`) and `offset`
// advances past the frame. kNeedMore leaves `offset` untouched; kCorrupt
// means an oversized length or a checksum mismatch (the stream is dead —
// there is no resynchronization).
FrameStatus frame_extract(const std::uint8_t* buffer, std::size_t size,
                          std::size_t& offset,
                          std::span<const std::uint8_t>& payload);

}  // namespace whatsup::net
