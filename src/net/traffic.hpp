// Per-protocol traffic accounting: message and byte counters, with an
// optional mark so warm-up traffic can be excluded from reported numbers.
#pragma once

#include <array>
#include <cstddef>

#include "net/message.hpp"

namespace whatsup::net {

class Traffic {
 public:
  void record_sent(Protocol protocol, std::size_t bytes);
  void record_dropped(Protocol protocol);
  // Bulk variant: merges a shard's buffered drop count at a cycle barrier.
  void record_dropped(Protocol protocol, std::size_t n);

  // Snapshot current totals; `*_since_mark` report deltas from here.
  void mark();

  std::size_t messages(Protocol protocol) const;
  std::size_t bytes(Protocol protocol) const;
  std::size_t dropped(Protocol protocol) const;
  std::size_t total_messages() const;
  std::size_t total_bytes() const;

  std::size_t messages_since_mark(Protocol protocol) const;
  std::size_t bytes_since_mark(Protocol protocol) const;
  std::size_t total_messages_since_mark() const;
  std::size_t total_bytes_since_mark() const;

  // Average consumed bandwidth in Kbps per node, over `cycles` cycles of
  // `cycle_seconds` wall-clock seconds each (Fig. 8b's reporting unit).
  double kbps_per_node(Protocol protocol, std::size_t nodes, double cycles,
                       double cycle_seconds, bool since_mark = true) const;
  double kbps_per_node_total(std::size_t nodes, double cycles, double cycle_seconds,
                             bool since_mark = true) const;

 private:
  static constexpr std::size_t kProtocols = kNumProtocols;
  std::array<std::size_t, kProtocols> messages_{};
  std::array<std::size_t, kProtocols> bytes_{};
  std::array<std::size_t, kProtocols> dropped_{};
  std::array<std::size_t, kProtocols> mark_messages_{};
  std::array<std::size_t, kProtocols> mark_bytes_{};
};

}  // namespace whatsup::net
