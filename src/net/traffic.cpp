#include "net/traffic.hpp"

namespace whatsup::net {

namespace {
std::size_t idx(Protocol p) { return static_cast<std::size_t>(p); }
}  // namespace

void Traffic::record_sent(Protocol protocol, std::size_t bytes) {
  ++messages_[idx(protocol)];
  bytes_[idx(protocol)] += bytes;
}

void Traffic::record_dropped(Protocol protocol) { ++dropped_[idx(protocol)]; }

void Traffic::record_dropped(Protocol protocol, std::size_t n) {
  dropped_[idx(protocol)] += n;
}

void Traffic::mark() {
  mark_messages_ = messages_;
  mark_bytes_ = bytes_;
}

std::size_t Traffic::messages(Protocol protocol) const { return messages_[idx(protocol)]; }
std::size_t Traffic::bytes(Protocol protocol) const { return bytes_[idx(protocol)]; }
std::size_t Traffic::dropped(Protocol protocol) const { return dropped_[idx(protocol)]; }

std::size_t Traffic::total_messages() const {
  std::size_t total = 0;
  for (std::size_t m : messages_) total += m;
  return total;
}

std::size_t Traffic::total_bytes() const {
  std::size_t total = 0;
  for (std::size_t b : bytes_) total += b;
  return total;
}

std::size_t Traffic::messages_since_mark(Protocol protocol) const {
  return messages_[idx(protocol)] - mark_messages_[idx(protocol)];
}

std::size_t Traffic::bytes_since_mark(Protocol protocol) const {
  return bytes_[idx(protocol)] - mark_bytes_[idx(protocol)];
}

std::size_t Traffic::total_messages_since_mark() const {
  std::size_t total = 0;
  for (std::size_t p = 0; p < kProtocols; ++p) total += messages_[p] - mark_messages_[p];
  return total;
}

std::size_t Traffic::total_bytes_since_mark() const {
  std::size_t total = 0;
  for (std::size_t p = 0; p < kProtocols; ++p) total += bytes_[p] - mark_bytes_[p];
  return total;
}

double Traffic::kbps_per_node(Protocol protocol, std::size_t nodes, double cycles,
                              double cycle_seconds, bool since_mark) const {
  if (nodes == 0 || cycles <= 0.0 || cycle_seconds <= 0.0) return 0.0;
  const double b = static_cast<double>(since_mark ? bytes_since_mark(protocol)
                                                  : bytes(protocol));
  return b * 8.0 / 1000.0 / static_cast<double>(nodes) / (cycles * cycle_seconds);
}

double Traffic::kbps_per_node_total(std::size_t nodes, double cycles,
                                    double cycle_seconds, bool since_mark) const {
  if (nodes == 0 || cycles <= 0.0 || cycle_seconds <= 0.0) return 0.0;
  const double b = static_cast<double>(since_mark ? total_bytes_since_mark()
                                                  : total_bytes());
  return b * 8.0 / 1000.0 / static_cast<double>(nodes) / (cycles * cycle_seconds);
}

}  // namespace whatsup::net
