// Network conditions for a simulated deployment: uniform message loss,
// delivery latency (in cycles) with jitter, and a per-node inbox capacity
// modelling queue overflow on overloaded hosts.
//
// Presets mirror the paper's three settings (§V-D/E): ideal simulation,
// the ModelNet cluster (small residual loss) and PlanetLab (heavy
// congestion-induced loss — the paper measured up to ~30% of news never
// reaching their target at low fanouts).
#pragma once

#include <cstddef>
#include <string>

#include "common/ids.hpp"

namespace whatsup::net {

struct NetworkConfig {
  double loss_rate = 0.0;          // i.i.d. drop probability per message
  Cycle latency = 1;               // delivery delay in cycles (>= 1)
  Cycle jitter = 0;                // extra uniform delay in [0, jitter]
  std::size_t inbox_capacity = 0;  // max deliveries per node per cycle; 0 = unbounded

  // Regional partition (scenario-engine network episodes): nodes with
  // id < partition_nodes form region A, the rest region B; cross-region
  // messages are dropped with probability partition_cross_loss (1.0 =
  // full cut). 0 = no partition. Loss and latency draws are unaffected
  // when disabled, so baseline fixed-seed trajectories do not move.
  NodeId partition_nodes = 0;
  double partition_cross_loss = 1.0;

  bool partitioned() const { return partition_nodes > 0; }

  static NetworkConfig perfect();
  static NetworkConfig lossy(double loss_rate);
  static NetworkConfig modelnet();   // cluster emulation: ~1% residual loss
  static NetworkConfig planetlab();  // congested wide-area testbed
};

std::string describe(const NetworkConfig& config);

}  // namespace whatsup::net
