// Network conditions for a simulated deployment: uniform message loss,
// delivery latency (in cycles) with jitter, and a per-node inbox capacity
// modelling queue overflow on overloaded hosts.
//
// Presets mirror the paper's three settings (§V-D/E): ideal simulation,
// the ModelNet cluster (small residual loss) and PlanetLab (heavy
// congestion-induced loss — the paper measured up to ~30% of news never
// reaching their target at low fanouts).
//
// Beyond the uniform model, the config carries an optional fault layer:
// Gilbert–Elliott bursty loss (a good/bad Markov state per directed link),
// message duplication and reordering probabilities, and random crash-stop /
// crash-recovery node faults. Every fault knob is off by default and the
// engine checks it before drawing any randomness, so fixed-seed baseline
// trajectories are bit-identical whether the fault layer is compiled in or
// not (the same contract partition_cross_loss already honors).
#pragma once

#include <cstddef>
#include <string>

#include "common/ids.hpp"

namespace whatsup::net {

// Gilbert–Elliott two-state loss chain, evaluated per directed link. Each
// link starts in the good state; every cycle it enters the bad state with
// probability p_enter and leaves it with probability p_exit. Messages are
// dropped with loss_good / loss_bad depending on the link's state. The
// engine advances each link's chain with counter-based draws keyed on
// (link, cycle), so the state sequence is a pure function of the seed —
// independent of traffic volume, thread count and shard width.
struct BurstLossModel {
  double p_enter = 0.0;   // good -> bad transition probability per cycle
  double p_exit = 0.5;    // bad -> good transition probability per cycle
  double loss_good = 0.0; // drop probability while the link is good
  double loss_bad = 0.0;  // drop probability while the link is bad

  bool enabled() const { return p_enter > 0.0 && (loss_bad > 0.0 || loss_good > 0.0); }
  friend bool operator==(const BurstLossModel&, const BurstLossModel&) = default;
};

struct NetworkConfig {
  double loss_rate = 0.0;          // i.i.d. drop probability per message
  Cycle latency = 1;               // delivery delay in cycles (>= 1)
  Cycle jitter = 0;                // extra uniform delay in [0, jitter]
  std::size_t inbox_capacity = 0;  // max deliveries per node per cycle; 0 = unbounded

  // Regional partition (scenario-engine network episodes): nodes with
  // id < partition_nodes form region A, the rest region B; cross-region
  // messages are dropped with probability partition_cross_loss (1.0 =
  // full cut). 0 = no partition. Loss and latency draws are unaffected
  // when disabled, so baseline fixed-seed trajectories do not move.
  NodeId partition_nodes = 0;
  double partition_cross_loss = 1.0;

  // Fault layer (all off by default; zero extra RNG draws when off).
  BurstLossModel burst;       // per-link bursty loss
  double duplicate_rate = 0.0;  // probability a delivered message is duplicated
  double reorder_rate = 0.0;    // probability a message takes an extra detour
  Cycle reorder_window = 2;     // detour length: extra uniform delay in [1, window]
  // Random node faults: each cycle every active node crashes with
  // probability crash_rate; a crashed node loses its in-flight messages and
  // either stays down forever (crash_recovery == 0, crash-stop) or comes
  // back after crash_recovery cycles via the agent's recovery hook.
  double crash_rate = 0.0;
  Cycle crash_recovery = 0;

  bool partitioned() const { return partition_nodes > 0; }
  bool has_link_faults() const {
    return burst.enabled() || duplicate_rate > 0.0 || reorder_rate > 0.0;
  }

  static NetworkConfig perfect();
  static NetworkConfig lossy(double loss_rate);
  static NetworkConfig modelnet();   // cluster emulation: ~1% residual loss
  static NetworkConfig planetlab();  // congested wide-area testbed
  // Fault-layer variants of the two testbeds: the same base conditions
  // plus bursty loss, duplication/reordering and (for PlanetLab) random
  // crash-recovery faults. Used by the fault-sweep benches and the
  // reliability examples; the plain presets stay untouched so existing
  // pinned trajectories do not move.
  static NetworkConfig modelnet_faults();
  static NetworkConfig planetlab_faults();
};

std::string describe(const NetworkConfig& config);

}  // namespace whatsup::net
