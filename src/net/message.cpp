#include "net/message.hpp"

namespace whatsup::net {

Protocol protocol_of(MsgType type) {
  switch (type) {
    case MsgType::kRpsRequest:
    case MsgType::kRpsReply:
      return Protocol::kRps;
    case MsgType::kWupRequest:
    case MsgType::kWupReply:
      return Protocol::kWup;
    case MsgType::kNews:
      return Protocol::kBeep;
  }
  return Protocol::kBeep;
}

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::kRpsRequest: return "rps-request";
    case MsgType::kRpsReply: return "rps-reply";
    case MsgType::kWupRequest: return "wup-request";
    case MsgType::kWupReply: return "wup-reply";
    case MsgType::kNews: return "news";
  }
  return "unknown";
}

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kRps: return "rps";
    case Protocol::kWup: return "wup";
    case Protocol::kBeep: return "beep";
  }
  return "unknown";
}

}  // namespace whatsup::net
