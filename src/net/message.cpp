#include "net/message.hpp"

namespace whatsup::net {

Protocol protocol_of(MsgType type) {
  switch (type) {
    case MsgType::kRpsRequest:
    case MsgType::kRpsReply:
      return Protocol::kRps;
    case MsgType::kWupRequest:
    case MsgType::kWupReply:
      return Protocol::kWup;
    case MsgType::kNews:
      return Protocol::kBeep;
    case MsgType::kAck:
      return Protocol::kCtrl;
    // The rejoin handshake is view maintenance: it rebuilds the RPS view.
    case MsgType::kRejoinRequest:
    case MsgType::kRejoinReply:
      return Protocol::kRps;
  }
  return Protocol::kBeep;
}

std::string to_string(MsgType type) {
  switch (type) {
    case MsgType::kRpsRequest: return "rps-request";
    case MsgType::kRpsReply: return "rps-reply";
    case MsgType::kWupRequest: return "wup-request";
    case MsgType::kWupReply: return "wup-reply";
    case MsgType::kNews: return "news";
    case MsgType::kAck: return "ack";
    case MsgType::kRejoinRequest: return "rejoin-request";
    case MsgType::kRejoinReply: return "rejoin-reply";
  }
  return "unknown";
}

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kRps: return "rps";
    case Protocol::kWup: return "wup";
    case Protocol::kBeep: return "beep";
    case Protocol::kCtrl: return "ctrl";
  }
  return "unknown";
}

}  // namespace whatsup::net
