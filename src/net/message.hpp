// Message taxonomy of the WhatsUp stack. Three protocols share the wire:
// RPS and WUP view gossip (request/reply) and BEEP news dissemination.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "profile/compact.hpp"
#include "profile/item_profile.hpp"
#include "profile/profile.hpp"

namespace whatsup::net {

enum class MsgType : std::uint8_t {
  kRpsRequest,
  kRpsReply,
  kWupRequest,
  kWupReply,
  kNews,
  // Reliability layer (opt-in; see sim/reliability.hpp): per-copy news
  // acknowledgment, and the rejoin handshake recovered nodes use to
  // rebuild their views instead of resurrecting pre-crash state.
  kAck,
  kRejoinRequest,
  kRejoinReply,
};

// Protocol family, used for traffic accounting (Fig. 8b splits bandwidth
// into view maintenance = RPS+WUP vs news dissemination = BEEP; kCtrl is
// the reliability layer's control overhead — acks — reported separately so
// the recall-vs-traffic tradeoff can be re-scored under faults).
enum class Protocol : std::uint8_t { kRps, kWup, kBeep, kCtrl };
// Number of Protocol enumerators; sizes every per-protocol counter array
// (net::Traffic, sim::Shard) so they cannot drift from the enum.
inline constexpr std::size_t kNumProtocols = 4;

Protocol protocol_of(MsgType type);
std::string to_string(MsgType type);
std::string to_string(Protocol protocol);

// A view entry as shipped on the wire: node address/id, the time the owner
// generated the entry, and a snapshot of the owner's profile (§II). Packed
// to 8 bytes: the node id plus a 4-byte DescriptorRef — either an inline
// timestamp (profile-less bootstrap entries) or an index into the snapshot
// arena's stamp-record pool, where the timestamp lives next to the blob
// reference and is SHARED by every copy of the generation
// (profile/compact.hpp). Gossip exchanges copy a refcount, never the
// profile contents.
struct Descriptor {
  NodeId node = kNoNode;

  Descriptor() = default;
  Descriptor(NodeId n, DescriptorRef ref) : node(n), entry_(std::move(ref)) {}
  Descriptor(NodeId n, Cycle timestamp, const ProfileHandle& profile)
      : node(n), entry_(DescriptorRef::make(timestamp, profile)) {}
  Descriptor(NodeId n, Cycle timestamp, std::nullptr_t)
      : node(n), entry_(DescriptorRef::make(timestamp, ProfileHandle())) {}

  Cycle timestamp() const { return entry_.timestamp(); }
  bool has_profile() const { return entry_.has_profile(); }
  // Snapshot header reads that do NOT decode — the wire-size model and the
  // similarity memo key off these.
  std::size_t profile_size() const { return entry_.profile_size(); }
  std::uint64_t profile_version() const { return entry_.profile_version(); }
  // Retained handle on the snapshot (cold paths; null if !has_profile()).
  ProfileHandle profile() const { return entry_.profile(); }
  // Decoded SoA view of the snapshot (thread-local scratch; see
  // ProfileHandle::materialize for the lifetime contract).
  const Profile& profile_ref() const { return entry_.materialize(); }
  // The shared (timestamp, snapshot) generation record itself — the memo
  // overload and caches key off it without touching refcounts.
  const DescriptorRef& stamp() const { return entry_; }

 private:
  DescriptorRef entry_;
};

// Snapshots `profile`'s current contents into an interned compact record.
// Hot paths should prefer a ProfileSnapshotCache (profile/snapshot.hpp),
// which reuses the stamp record while (version, timestamp) is unchanged;
// this helper is for tests, bootstrap wiring, and other cold paths.
inline Descriptor make_descriptor(NodeId node, Cycle timestamp, const Profile& profile) {
  return Descriptor{node, timestamp, ProfileHandle::snapshot(profile)};
}

// Wraps an already-interned snapshot without re-encoding.
inline Descriptor make_descriptor(NodeId node, Cycle timestamp, ProfileHandle snapshot) {
  return Descriptor{node, timestamp, snapshot};
}

// Payload of RPS/WUP gossip: the sender's own fresh descriptor plus the
// exchanged view slice (half the view for RPS, the whole view for WUP).
struct ViewPayload {
  Descriptor sender;
  std::vector<Descriptor> view;
};

// Payload of a BEEP news message (paper §II-A): item identity plus the
// path-dependent item profile and the dislike counter. `hops` and
// `via_dislike` are measurement-only fields (not part of the wire format
// proper; they stand in for the tracing the authors instrumented).
//
// The item profile is held by copy-on-write reference: replicating the
// payload for a fan-out of fLIKE targets bumps a refcount fLIKE times
// instead of deep-copying the profile, and receivers that fold their user
// profile into it (Alg. 1) clone it only while it is still shared with
// other in-flight copies. SizeModel keeps charging the LOGICAL wire size
// of the full profile per message (profile/item_profile.hpp).
//
// Field order is packed (8-byte members first) and the measurement tail is
// narrowed to its actual ranges, which keeps the payload at 32 bytes —
// level with ViewPayload since the 8-byte descriptor packing, so news
// messages no longer set the variant's size floor. The narrow fields are
// safe by protocol structure: `dislikes` is TTL-bounded (BEEP drops a copy
// at d_I >= ttl — beep.cpp; the TTL sweep tops out at 8) and `hops` grows
// at most once per cycle, so a run would need >32k cycles to overflow it
// (the wire decoder rejects out-of-range values rather than truncating).
struct NewsPayload {
  ItemId id = 0;
  ItemProfileRef item_profile;
  ItemIdx index = kNoItem;
  Cycle created = 0;
  NodeId origin = kNoNode;
  std::int16_t hops = 0;       // path length from the source
  std::int8_t dislikes = 0;    // d_I, §II-A (TTL-bounded)
  bool via_dislike = false;    // last forward was performed by a disliker
};

// Payload of a reliability-layer acknowledgment: the receiver confirms one
// news copy back to its immediate forwarder, which clears the matching
// (item, target) entry from the sender's retransmission queue. `hop`
// echoes the acknowledged copy's hop count (the dedup-log key).
struct AckPayload {
  ItemId item = 0;
  int hop = 0;
};

// The envelope. Header fields are ordered to pack into 16 bytes; with the
// 32-byte payload alternatives the whole envelope is 56 bytes (88 before
// the PR 8 field reordering, 64 before the 8-byte descriptor packing and
// the NewsPayload tail narrowing). Envelopes dominate the mailbox-ring
// storm peak at the million-node scale (docs/perf.md "Memory map"), so the
// static_asserts below pin the budget.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Cycle sent_at = 0;
  // Position within the sender's turn (stamped by sim::Context::send;
  // main-thread Engine::send leaves it 0). Purely a label for the
  // canonical (cycle, phase, sender, seq) order — commits rely on outbox
  // position, never on this field — kept for diagnostics and asserted in
  // tests/test_shard.cpp. 16 bits: a turn sends a handful of messages
  // (fLIKE fan-out plus gossip replies), nowhere near 65k.
  std::uint16_t seq = 0;
  MsgType type = MsgType::kNews;
  std::variant<ViewPayload, NewsPayload, AckPayload> payload;

  const ViewPayload& view() const { return std::get<ViewPayload>(payload); }
  const NewsPayload& news() const { return std::get<NewsPayload>(payload); }
  const AckPayload& ack() const { return std::get<AckPayload>(payload); }
};

// Envelope budget (64-bit platforms): the packing above is load-bearing
// for peak bytes/node, so regressions should fail the build, not show up
// as a bench delta three PRs later.
static_assert(sizeof(Descriptor) == 8,
              "packed descriptor: u32 node id + u32 arena ref");
static_assert(sizeof(void*) != 8 || sizeof(ViewPayload) == 32);
static_assert(sizeof(void*) != 8 || sizeof(NewsPayload) == 32);
static_assert(sizeof(void*) != 8 || sizeof(Message) <= 56);

}  // namespace whatsup::net
