#include "net/size_model.hpp"

namespace whatsup::net {

std::size_t SizeModel::descriptor_bytes(const Descriptor& d) const {
  // Logical wire size: a real deployment serializes the full profile per
  // descriptor, so the charge reads the entry count off the compact record
  // header — storage compression never changes accounted bandwidth.
  return descriptor_base + profile_entry * d.profile_size();
}

std::size_t SizeModel::bytes(const Message& m) const {
  std::size_t size = transport_header + app_header;
  switch (m.type) {
    case MsgType::kRpsRequest:
    case MsgType::kRpsReply:
    case MsgType::kWupRequest:
    case MsgType::kWupReply:
    case MsgType::kRejoinRequest:
    case MsgType::kRejoinReply: {
      const ViewPayload& view = m.view();
      size += descriptor_bytes(view.sender);
      for (const Descriptor& d : view.view) size += descriptor_bytes(d);
      break;
    }
    case MsgType::kNews: {
      const NewsPayload& news = m.news();
      size += news_base + news_meta;
      // Charged at the LOGICAL size of the item profile: in-memory payload
      // copies share the profile copy-on-write (ItemProfileRef), but a real
      // deployment serializes the full profile into every datagram, so the
      // Fig. 8b bandwidth split is unaffected by the sharing.
      size += item_profile_entry * news.item_profile.size();
      break;
    }
    case MsgType::kAck:
      size += ack_body;
      break;
  }
  return size;
}

}  // namespace whatsup::net
