#include "net/wire.hpp"

#include <cstring>
#include <utility>

#include "common/small_vector.hpp"
#include "profile/compact.hpp"

namespace whatsup::net {

namespace {

std::uint32_t fnv1a32(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 2166136261u;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool binary_scores(std::span<const double> scores) {
  for (double s : scores) {
    if (s != 0.0 && s != 1.0) return false;
  }
  return true;
}

}  // namespace

// ---- Profile contents ----
//
// Layout: varint count; then (count > 0): varint id deltas (strictly
// ascending ids, first delta is the first id), zigzag timestamp deltas,
// flags u8, and either a 1-bit-per-entry like mask (kBinaryScores) or
// count raw doubles. Mirrors CompactProfile's record layout so binary
// user profiles cost ~2-3 bytes per entry on the wire.

void encode_profile(std::vector<std::uint8_t>& out, const Profile& profile) {
  const auto ids = profile.ids();
  const auto timestamps = profile.timestamps();
  const auto scores = profile.scores();
  wire_varint(out, ids.size());
  if (ids.empty()) return;
  ItemId prev_id = 0;
  for (ItemId id : ids) {
    wire_varint(out, id - prev_id);
    prev_id = id;
  }
  std::int64_t prev_ts = 0;
  for (Cycle ts : timestamps) {
    wire_zigzag(out, static_cast<std::int64_t>(ts) - prev_ts);
    prev_ts = ts;
  }
  const bool binary = binary_scores(scores);
  wire_u8(out, binary ? 1 : 0);
  if (binary) {
    std::uint8_t bits = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] == 1.0) bits |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        out.push_back(bits);
        bits = 0;
      }
    }
    if (scores.size() % 8 != 0) out.push_back(bits);
  } else {
    for (double s : scores) wire_f64(out, s);
  }
}

bool decode_profile(WireReader& r, Profile& out) {
  out.clear();
  const std::uint64_t count = r.read_varint();
  if (!r.ok() || count > kMaxWireProfileEntries) return false;
  if (count == 0) return r.ok();
  SmallVector<ItemId, 16> ids;
  ids.reserve(count);
  ItemId prev_id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t delta = r.read_varint();
    if (!r.ok() || (i > 0 && delta == 0)) return false;  // ids must ascend
    prev_id += delta;
    ids.push_back(prev_id);
  }
  SmallVector<Cycle, 16> timestamps;
  timestamps.reserve(count);
  std::int64_t prev_ts = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    prev_ts += r.read_zigzag();
    if (prev_ts < INT32_MIN || prev_ts > INT32_MAX) return false;
    timestamps.push_back(static_cast<Cycle>(prev_ts));
  }
  const std::uint8_t flags = r.read_u8();
  if (!r.ok() || flags > 1) return false;
  if (flags == 1) {
    std::uint8_t bits = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      if (i % 8 == 0) bits = r.read_u8();
      if (!r.ok()) return false;
      out.set(ids[i], timestamps[i], (bits >> (i % 8)) & 1 ? 1.0 : 0.0);
    }
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const double s = r.read_f64();
      if (!r.ok()) return false;
      out.set(ids[i], timestamps[i], s);
    }
  }
  return r.ok();
}

// ---- Descriptor ----

void encode_descriptor(std::vector<std::uint8_t>& out, const Descriptor& d) {
  wire_varint(out, d.node);
  wire_zigzag(out, d.timestamp());
  if (!d.has_profile()) {
    wire_u8(out, 0);  // bootstrap descriptor: address only, no snapshot
    return;
  }
  wire_u8(out, 1);
  encode_profile(out, d.profile_ref());
}

bool decode_descriptor(WireReader& r, Descriptor& out) {
  const std::uint64_t node = r.read_varint();
  const std::int64_t timestamp = r.read_zigzag();
  const std::uint8_t flag = r.read_u8();
  if (!r.ok() || node > UINT32_MAX || timestamp < INT32_MIN ||
      timestamp > INT32_MAX || flag > 1) {
    return false;
  }
  const NodeId n = static_cast<NodeId>(node);
  const Cycle ts = static_cast<Cycle>(timestamp);
  if (flag == 0) {
    out = Descriptor{n, ts, nullptr};
    return true;
  }
  Profile p;
  if (!decode_profile(r, p)) return false;
  // Re-intern locally BY CONTENT, never by the sender's process-local
  // version stamps: identical snapshot bytes arriving through different
  // sockets collapse onto one arena record.
  out = Descriptor{n, ts,
                   p.empty() ? empty_profile_handle()
                             : SnapshotArena::instance().intern_by_content(p)};
  return true;
}

// ---- Payloads ----

namespace {

void encode_view_payload(std::vector<std::uint8_t>& out, const ViewPayload& v) {
  encode_descriptor(out, v.sender);
  wire_varint(out, v.view.size());
  for (const Descriptor& d : v.view) encode_descriptor(out, d);
}

bool decode_view_payload(WireReader& r, ViewPayload& out) {
  if (!decode_descriptor(r, out.sender)) return false;
  const std::uint64_t count = r.read_varint();
  if (!r.ok() || count > kMaxWireViewEntries) return false;
  out.view.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!decode_descriptor(r, out.view[i])) return false;
  }
  return true;
}

void encode_news_payload(std::vector<std::uint8_t>& out, const NewsPayload& n) {
  wire_varint(out, n.id);
  wire_varint(out, n.index);
  wire_zigzag(out, n.created);
  wire_varint(out, n.origin);
  wire_zigzag(out, n.dislikes);
  wire_zigzag(out, n.hops);
  wire_u8(out, n.via_dislike ? 1 : 0);
  encode_profile(out, n.item_profile.get());
}

bool decode_news_payload(WireReader& r, NewsPayload& out) {
  out.id = r.read_varint();
  const std::uint64_t index = r.read_varint();
  const std::int64_t created = r.read_zigzag();
  const std::uint64_t origin = r.read_varint();
  const std::int64_t dislikes = r.read_zigzag();
  const std::int64_t hops = r.read_zigzag();
  const std::uint8_t via = r.read_u8();
  if (!r.ok() || index > UINT32_MAX || created < INT32_MIN ||
      created > INT32_MAX || origin > UINT32_MAX || dislikes < INT8_MIN ||
      dislikes > INT8_MAX || hops < INT16_MIN || hops > INT16_MAX ||
      via > 1) {
    return false;
  }
  out.index = static_cast<ItemIdx>(index);
  out.created = static_cast<Cycle>(created);
  out.origin = static_cast<NodeId>(origin);
  out.dislikes = static_cast<std::int8_t>(dislikes);
  out.hops = static_cast<std::int16_t>(hops);
  out.via_dislike = via != 0;
  Profile p;
  if (!decode_profile(r, p)) return false;
  out.item_profile.clear();
  if (!p.empty()) out.item_profile = std::move(p);
  return true;
}

void encode_ack_payload(std::vector<std::uint8_t>& out, const AckPayload& a) {
  wire_varint(out, a.item);
  wire_zigzag(out, a.hop);
}

bool decode_ack_payload(WireReader& r, AckPayload& out) {
  out.item = r.read_varint();
  const std::int64_t hop = r.read_zigzag();
  if (!r.ok() || hop < INT32_MIN || hop > INT32_MAX) return false;
  out.hop = static_cast<int>(hop);
  return true;
}

}  // namespace

// ---- Message ----

void encode_message(std::vector<std::uint8_t>& out, const Message& m) {
  wire_varint(out, m.from);
  wire_varint(out, m.to);
  wire_zigzag(out, m.sent_at);
  wire_varint(out, m.seq);
  wire_u8(out, static_cast<std::uint8_t>(m.type));
  wire_u8(out, static_cast<std::uint8_t>(m.payload.index()));
  switch (m.payload.index()) {
    case 0:
      encode_view_payload(out, std::get<ViewPayload>(m.payload));
      break;
    case 1:
      encode_news_payload(out, std::get<NewsPayload>(m.payload));
      break;
    default:
      encode_ack_payload(out, std::get<AckPayload>(m.payload));
      break;
  }
}

bool decode_message(WireReader& r, Message& out) {
  const std::uint64_t from = r.read_varint();
  const std::uint64_t to = r.read_varint();
  const std::int64_t sent_at = r.read_zigzag();
  const std::uint64_t seq = r.read_varint();
  const std::uint8_t type = r.read_u8();
  const std::uint8_t payload = r.read_u8();
  if (!r.ok() || from > UINT32_MAX || to > UINT32_MAX ||
      sent_at < INT32_MIN || sent_at > INT32_MAX || seq > UINT16_MAX ||
      type > static_cast<std::uint8_t>(MsgType::kRejoinReply) || payload > 2) {
    return false;
  }
  out.from = static_cast<NodeId>(from);
  out.to = static_cast<NodeId>(to);
  out.sent_at = static_cast<Cycle>(sent_at);
  out.seq = static_cast<std::uint16_t>(seq);
  out.type = static_cast<MsgType>(type);
  switch (payload) {
    case 0: {
      ViewPayload v;
      if (!decode_view_payload(r, v)) return false;
      out.payload = std::move(v);
      return true;
    }
    case 1: {
      NewsPayload n;
      if (!decode_news_payload(r, n)) return false;
      out.payload = std::move(n);
      return true;
    }
    default: {
      AckPayload a;
      if (!decode_ack_payload(r, a)) return false;
      out.payload = a;
      return true;
    }
  }
}

// ---- Envelope ----

void encode_envelope(std::vector<std::uint8_t>& out, Cycle due,
                     const Message& m) {
  wire_zigzag(out, due);
  encode_message(out, m);
}

bool decode_envelope(WireReader& r, Cycle& due, Message& out) {
  const std::int64_t d = r.read_zigzag();
  if (!r.ok() || d < INT32_MIN || d > INT32_MAX) return false;
  due = static_cast<Cycle>(d);
  return decode_message(r, out);
}

// ---- Frames ----

std::uint32_t wire_checksum(std::span<const std::uint8_t> payload) {
  return fnv1a32(payload);
}

void frame_append(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, fnv1a32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameStatus frame_extract(const std::uint8_t* buffer, std::size_t size,
                          std::size_t& offset,
                          std::span<const std::uint8_t>& payload) {
  if (size - offset < 8) return FrameStatus::kNeedMore;
  const std::uint32_t length = get_u32le(buffer + offset);
  const std::uint32_t checksum = get_u32le(buffer + offset + 4);
  if (length > kMaxFrameBytes) return FrameStatus::kCorrupt;
  if (size - offset - 8 < length) return FrameStatus::kNeedMore;
  const std::span<const std::uint8_t> body{buffer + offset + 8, length};
  if (fnv1a32(body) != checksum) return FrameStatus::kCorrupt;
  payload = body;
  offset += 8 + static_cast<std::size_t>(length);
  return FrameStatus::kOk;
}

}  // namespace whatsup::net
