#include "net/network.hpp"

#include <sstream>

namespace whatsup::net {

NetworkConfig NetworkConfig::perfect() { return {}; }

NetworkConfig NetworkConfig::lossy(double loss_rate) {
  NetworkConfig config;
  config.loss_rate = loss_rate;
  return config;
}

NetworkConfig NetworkConfig::modelnet() {
  NetworkConfig config;
  config.loss_rate = 0.01;
  config.jitter = 1;
  return config;
}

NetworkConfig NetworkConfig::planetlab() {
  NetworkConfig config;
  // §V-D: up to 30% of correctly sent news never reached their target at
  // low fanout, due to network-level loss and overloaded hosts dropping
  // incoming messages. We model it as heavy uniform loss plus a finite
  // per-cycle inbox.
  config.loss_rate = 0.28;
  config.jitter = 2;
  config.inbox_capacity = 220;
  return config;
}

NetworkConfig NetworkConfig::modelnet_faults() {
  NetworkConfig config = modelnet();
  // A cluster occasionally sees short congestion spikes on a link: rare
  // bad episodes, quick exits, mild in-episode loss.
  config.burst.p_enter = 0.02;
  config.burst.p_exit = 0.5;
  config.burst.loss_bad = 0.3;
  config.duplicate_rate = 0.01;
  config.reorder_rate = 0.05;
  return config;
}

NetworkConfig NetworkConfig::planetlab_faults() {
  NetworkConfig config = planetlab();
  // The congested testbed: part of the measured 28% loss is attributed to
  // long bursty episodes rather than i.i.d. drops, plus duplicated and
  // straggler datagrams and hosts that silently die and come back.
  config.loss_rate = 0.12;
  config.burst.p_enter = 0.06;
  config.burst.p_exit = 0.25;
  config.burst.loss_bad = 0.6;
  config.duplicate_rate = 0.02;
  config.reorder_rate = 0.1;
  config.crash_rate = 0.001;
  config.crash_recovery = 8;
  return config;
}

std::string describe(const NetworkConfig& config) {
  std::ostringstream os;
  os << "loss=" << config.loss_rate << " latency=" << config.latency << "+U[0,"
     << config.jitter << "]";
  if (config.inbox_capacity > 0) os << " inbox<=" << config.inbox_capacity;
  if (config.partitioned()) {
    os << " partition@" << config.partition_nodes << "(xloss="
       << config.partition_cross_loss << ")";
  }
  if (config.burst.enabled()) {
    os << " burst(p=" << config.burst.p_enter << "/" << config.burst.p_exit
       << " loss=" << config.burst.loss_good << "/" << config.burst.loss_bad << ")";
  }
  if (config.duplicate_rate > 0.0) os << " dup=" << config.duplicate_rate;
  if (config.reorder_rate > 0.0) {
    os << " reorder=" << config.reorder_rate << "+U[1," << config.reorder_window << "]";
  }
  if (config.crash_rate > 0.0) {
    os << " crash=" << config.crash_rate;
    if (config.crash_recovery > 0) {
      os << "(recover@" << config.crash_recovery << ")";
    } else {
      os << "(stop)";
    }
  }
  return os.str();
}

}  // namespace whatsup::net
