#include "net/network.hpp"

#include <sstream>

namespace whatsup::net {

NetworkConfig NetworkConfig::perfect() { return {}; }

NetworkConfig NetworkConfig::lossy(double loss_rate) {
  NetworkConfig config;
  config.loss_rate = loss_rate;
  return config;
}

NetworkConfig NetworkConfig::modelnet() {
  NetworkConfig config;
  config.loss_rate = 0.01;
  config.jitter = 1;
  return config;
}

NetworkConfig NetworkConfig::planetlab() {
  NetworkConfig config;
  // §V-D: up to 30% of correctly sent news never reached their target at
  // low fanout, due to network-level loss and overloaded hosts dropping
  // incoming messages. We model it as heavy uniform loss plus a finite
  // per-cycle inbox.
  config.loss_rate = 0.28;
  config.jitter = 2;
  config.inbox_capacity = 220;
  return config;
}

std::string describe(const NetworkConfig& config) {
  std::ostringstream os;
  os << "loss=" << config.loss_rate << " latency=" << config.latency << "+U[0,"
     << config.jitter << "]";
  if (config.inbox_capacity > 0) os << " inbox<=" << config.inbox_capacity;
  if (config.partitioned()) {
    os << " partition@" << config.partition_nodes << "(xloss="
       << config.partition_cross_loss << ")";
  }
  return os.str();
}

}  // namespace whatsup::net
