// Analytic wire-size model (bytes per message), standing in for the Java
// prototype's measured bandwidth (Fig. 8b). Field sizes follow §II:
// an item id is an 8-byte hash, profile entries are <id, timestamp, score>
// triplets, view entries carry address + id + timestamp + profile.
#pragma once

#include <cstddef>

#include "net/message.hpp"

namespace whatsup::net {

struct SizeModel {
  std::size_t transport_header = 28;     // IPv4 + UDP
  std::size_t app_header = 8;            // message type + sender id + length
  std::size_t descriptor_base = 14;      // address(6) + node id(4) + timestamp(4)
  std::size_t profile_entry = 13;        // item hash(8) + timestamp(4) + score(1)
  std::size_t news_base = 240;           // title + short description + link
  std::size_t news_meta = 16;            // creation timestamp + dislike counter + origin
  std::size_t item_profile_entry = 20;   // item hash(8) + timestamp(4) + score(8)
  std::size_t ack_body = 12;             // item hash(8) + hop(4)

  std::size_t descriptor_bytes(const Descriptor& d) const;
  std::size_t bytes(const Message& m) const;
};

}  // namespace whatsup::net
