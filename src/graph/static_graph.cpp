#include "graph/static_graph.hpp"

#include <algorithm>
#include <cassert>

namespace whatsup::graph {

StaticGraph::Builder::Builder(std::size_t n)
    : row_cap_(n, 0), row_start_(n + 1, 0), row_len_(n, 0) {}

void StaticGraph::Builder::finish_degrees() {
  std::size_t total = 0;
  for (std::size_t v = 0; v < row_cap_.size(); ++v) {
    row_start_[v] = total;
    total += row_cap_[v];
  }
  row_start_[row_cap_.size()] = total;
  edges_.resize(total);
}

void StaticGraph::Builder::add_edge(NodeId v, NodeId w) {
  if (v == w) return;
  assert(row_len_[v] < row_cap_[v] && "pass-2 fill exceeds reserved degree");
  edges_[row_start_[v] + row_len_[v]++] = w;
}

void StaticGraph::Builder::dedupe_rows(NodeId lo, NodeId hi) {
  for (NodeId v = lo; v < hi; ++v) {
    NodeId* begin = edges_.data() + row_start_[v];
    NodeId* end = begin + row_len_[v];
    std::sort(begin, end);
    row_len_[v] = static_cast<std::size_t>(std::unique(begin, end) - begin);
  }
}

StaticGraph StaticGraph::Builder::build() {
  StaticGraph g;
  const std::size_t n = row_len_.size();
  g.offsets_.resize(n + 1);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v] = total;
    total += row_len_[v];
  }
  g.offsets_[n] = total;
  if (total == edges_.size()) {
    // No slack anywhere: reuse the fill buffer as-is.
    g.edges_ = std::move(edges_);
  } else {
    g.edges_.resize(total);
    for (std::size_t v = 0; v < n; ++v) {
      std::copy_n(edges_.data() + row_start_[v], row_len_[v],
                  g.edges_.data() + g.offsets_[v]);
    }
  }
  return g;
}

StaticGraph StaticGraph::from_digraph(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  Builder b(n);
  for (NodeId v = 0; v < n; ++v) b.set_degree(v, g.out(v).size());
  b.finish_degrees();
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : g.out(v)) b.add_edge(v, w);
  }
  b.dedupe_rows(0, static_cast<NodeId>(n));
  return b.build();
}

}  // namespace whatsup::graph
