// Random-graph generators for the workload substrates:
//  * Erdős–Rényi / Watts–Strogatz — reference models for tests,
//  * Barabási–Albert — the Digg follower graph (explicit cascades),
//  * planted partition & collaboration graph — the Arxiv-style synthetic
//    dataset (community-structured collaboration network).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/ugraph.hpp"

namespace whatsup::graph {

UGraph erdos_renyi(std::size_t n, double p, Rng& rng);

// Each new node attaches `m` edges preferentially to high-degree nodes.
UGraph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

// Ring lattice of degree `k` (even), each edge rewired with probability
// `beta`.
UGraph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

// Planted-partition: communities of the given sizes; edge probability
// `p_in` within, `p_out` across communities. Returns the graph and fills
// `membership` with the planted community per node.
UGraph planted_partition(std::span<const std::size_t> sizes, double p_in,
                         double p_out, Rng& rng, std::vector<int>& membership);

// Collaboration-style graph: communities of the given sizes where each node
// joins `collab_per_node` cliques-of-3 inside its community (mimicking
// co-authorship), plus sparse random inter-community "bridging" edges.
// Produces the heavy-tailed, locally-clustered structure of the Arxiv graph.
UGraph collaboration_graph(std::span<const std::size_t> sizes,
                           double collab_per_node, double bridge_prob, Rng& rng,
                           std::vector<int>& membership);

}  // namespace whatsup::graph
