#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>

namespace whatsup::graph {

Digraph::Digraph(std::size_t n) : adj_(n) {}

void Digraph::add_edge(NodeId from, NodeId to) {
  assert(from < adj_.size() && to < adj_.size());
  if (from == to) return;
  adj_[from].push_back(to);
  ++n_edges_;
}

std::span<const NodeId> Digraph::out(NodeId v) const {
  assert(v < adj_.size());
  return adj_[v];
}

void Digraph::dedupe() {
  n_edges_ = 0;
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    n_edges_ += nbrs.size();
  }
}

Digraph Digraph::reversed() const {
  Digraph rev(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId w : adj_[v]) rev.add_edge(w, v);
  }
  return rev;
}

}  // namespace whatsup::graph
