// Newman's fast greedy modularity community detection (CNM, Phys. Rev. E
// 2004) — the algorithm the paper uses to derive interest communities from
// the Arxiv collaboration graph (§IV-A).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/ugraph.hpp"

namespace whatsup::graph {

struct CommunityResult {
  std::vector<int> membership;          // community id per node (0-based, dense)
  std::size_t count = 0;                // number of communities
  double modularity = 0.0;              // Q of the returned partition
  std::vector<std::size_t> sizes;       // size per community, descending
};

// Greedy agglomeration: start with singleton communities, repeatedly merge
// the pair with the largest modularity gain until no merge improves Q.
CommunityResult detect_communities(const UGraph& g);

// Modularity Q of an arbitrary partition of `g`.
double modularity(const UGraph& g, const std::vector<int>& membership);

}  // namespace whatsup::graph
