// Directed graph used to analyse gossip overlays (WUP views form a digraph:
// node -> members of its view). Adjacency-list representation; parallel
// edges are collapsed on demand.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.hpp"

namespace whatsup::graph {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t n);

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return n_edges_; }

  // Self-loops are ignored; duplicate edges are kept unless `dedupe` is run.
  void add_edge(NodeId from, NodeId to);
  std::span<const NodeId> out(NodeId v) const;

  // Sorts adjacency lists and removes parallel edges.
  void dedupe();

  // Edge-reversed copy.
  Digraph reversed() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t n_edges_ = 0;
};

}  // namespace whatsup::graph
