// Local clustering coefficient. §V-A compares the clustering coefficient of
// the WUP-metric overlay (~0.15) against the cosine overlay (~0.40): the
// WUP metric avoids concentrating nodes around hubs.
#pragma once

#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"

namespace whatsup::graph {

class StaticGraph;

// Average local clustering coefficient of the undirected closure of `g`
// (an edge exists if it exists in either direction).
double avg_clustering_coefficient(const Digraph& g);
double avg_clustering_coefficient(const StaticGraph& g);
double avg_clustering_coefficient(const UGraph& g);

}  // namespace whatsup::graph
