#include "graph/scc.hpp"

#include <algorithm>

#include "graph/static_graph.hpp"

namespace whatsup::graph {

namespace {

// Iterative Tarjan to avoid deep recursion on large overlays. Templated
// over the adjacency representation: Digraph (vector-of-vectors) and the
// CSR StaticGraph expose the same num_nodes()/out(v) surface.
template <typename G>
SccResult tarjan(const G& g) {
  const std::size_t n = g.num_nodes();
  SccResult result;
  result.component.assign(n, -1);
  if (n == 0) return result;

  constexpr int kUnvisited = -1;
  std::vector<int> index(n, kUnvisited);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  struct Frame {
    NodeId v;
    std::size_t next_child;
  };
  std::vector<Frame> frames;
  int next_index = 0;
  std::vector<std::size_t> sizes;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const NodeId v = frame.v;
      const auto children = g.out(v);
      if (frame.next_child < children.size()) {
        const NodeId w = children[frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          std::size_t size = 0;
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = static_cast<int>(result.count);
            ++size;
            if (w == v) break;
          }
          sizes.push_back(size);
          ++result.count;
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }

  result.largest = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return result;
}

template <typename G>
double largest_fraction(const G& g) {
  if (g.num_nodes() == 0) return 0.0;
  return static_cast<double>(tarjan(g).largest) /
         static_cast<double>(g.num_nodes());
}

}  // namespace

SccResult strongly_connected_components(const Digraph& g) { return tarjan(g); }
SccResult strongly_connected_components(const StaticGraph& g) { return tarjan(g); }

double largest_scc_fraction(const Digraph& g) { return largest_fraction(g); }
double largest_scc_fraction(const StaticGraph& g) { return largest_fraction(g); }

}  // namespace whatsup::graph
