#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace whatsup::graph {

UGraph erdos_renyi(std::size_t n, double p, Rng& rng) {
  UGraph g(n);
  if (p <= 0.0) return g;
  // Geometric skipping for sparse graphs.
  const double log_q = std::log(1.0 - std::min(p, 1.0 - 1e-12));
  std::size_t v = 1;
  std::ptrdiff_t w = -1;
  while (v < n) {
    const double r = rng.uniform();
    w += 1 + static_cast<std::ptrdiff_t>(std::floor(std::log(1.0 - r) / log_q));
    while (w >= static_cast<std::ptrdiff_t>(v) && v < n) {
      w -= static_cast<std::ptrdiff_t>(v);
      ++v;
    }
    if (v < n) g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
  }
  return g;
}

UGraph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  assert(m >= 1);
  UGraph g(n);
  if (n == 0) return g;
  const std::size_t seed_size = std::min(n, m + 1);
  // Seed clique keeps early attachment well-defined.
  for (NodeId a = 0; a < seed_size; ++a) {
    for (NodeId b = a + 1; b < seed_size; ++b) g.add_edge(a, b);
  }
  // Repeated-endpoint list: sampling uniformly from it is degree-
  // proportional preferential attachment.
  std::vector<NodeId> endpoints;
  for (const auto& [a, b] : g.edges()) {
    endpoints.push_back(a);
    endpoints.push_back(b);
  }
  for (NodeId v = static_cast<NodeId>(seed_size); v < n; ++v) {
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId t = endpoints[rng.index(endpoints.size())];
      if (t != v && std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      if (g.add_edge(v, t)) {
        endpoints.push_back(v);
        endpoints.push_back(t);
      }
    }
  }
  return g;
}

UGraph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  assert(k % 2 == 0 && k < n);
  UGraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      NodeId w = static_cast<NodeId>((v + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform non-neighbor.
        for (int attempts = 0; attempts < 32; ++attempts) {
          const NodeId cand = static_cast<NodeId>(rng.index(n));
          if (cand != v && !g.has_edge(v, cand)) {
            w = cand;
            break;
          }
        }
      }
      g.add_edge(v, w);
    }
  }
  return g;
}

UGraph planted_partition(std::span<const std::size_t> sizes, double p_in,
                         double p_out, Rng& rng, std::vector<int>& membership) {
  const std::size_t n = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  UGraph g(n);
  membership.assign(n, 0);
  std::vector<std::size_t> start(sizes.size() + 1, 0);
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    start[c + 1] = start[c] + sizes[c];
    for (std::size_t v = start[c]; v < start[c + 1]; ++v) {
      membership[v] = static_cast<int>(c);
    }
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double p = membership[a] == membership[b] ? p_in : p_out;
      if (p > 0.0 && rng.bernoulli(p)) g.add_edge(a, b);
    }
  }
  return g;
}

UGraph collaboration_graph(std::span<const std::size_t> sizes,
                           double collab_per_node, double bridge_prob, Rng& rng,
                           std::vector<int>& membership) {
  const std::size_t n = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  UGraph g(n);
  membership.assign(n, 0);
  std::vector<std::size_t> start(sizes.size() + 1, 0);
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    start[c + 1] = start[c] + sizes[c];
    for (std::size_t v = start[c]; v < start[c + 1]; ++v) {
      membership[v] = static_cast<int>(c);
    }
  }
  // "Papers": triangles of co-authors drawn within a community; each node
  // initiates collab_per_node of them in expectation.
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    const std::size_t size = sizes[c];
    if (size < 3) {
      for (std::size_t v = start[c]; v + 1 < start[c + 1]; ++v) {
        g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(v + 1));
      }
      continue;
    }
    const auto papers =
        static_cast<std::size_t>(std::ceil(collab_per_node * static_cast<double>(size)));
    for (std::size_t p = 0; p < papers; ++p) {
      const auto authors = rng.sample_indices(size, 3);
      for (std::size_t i = 0; i < authors.size(); ++i) {
        for (std::size_t j = i + 1; j < authors.size(); ++j) {
          g.add_edge(static_cast<NodeId>(start[c] + authors[i]),
                     static_cast<NodeId>(start[c] + authors[j]));
        }
      }
    }
  }
  // Sparse cross-community bridges (interdisciplinary collaborations).
  if (bridge_prob > 0.0 && sizes.size() > 1) {
    const auto bridges = static_cast<std::size_t>(
        std::ceil(bridge_prob * static_cast<double>(n)));
    for (std::size_t b = 0; b < bridges; ++b) {
      const NodeId u = static_cast<NodeId>(rng.index(n));
      const NodeId v = static_cast<NodeId>(rng.index(n));
      if (membership[u] != membership[v]) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace whatsup::graph
