#include "graph/components.hpp"

#include <algorithm>
#include <queue>

#include "graph/static_graph.hpp"

namespace whatsup::graph {

namespace {

// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  }
  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(NodeId a, NodeId b) { parent_[find(a)] = find(b); }

 private:
  std::vector<NodeId> parent_;
};

ComponentsResult label_from_sets(DisjointSets& sets, std::size_t n) {
  ComponentsResult result;
  result.component.assign(n, -1);
  std::vector<int> root_label(n, -1);
  std::vector<std::size_t> sizes;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId root = sets.find(v);
    if (root_label[root] < 0) {
      root_label[root] = static_cast<int>(result.count++);
      sizes.push_back(0);
    }
    result.component[v] = root_label[root];
    ++sizes[static_cast<std::size_t>(root_label[root])];
  }
  result.largest = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return result;
}

}  // namespace

// Both digraph representations expose num_nodes()/out(v); edge direction
// is irrelevant for weak connectivity.
template <typename G>
ComponentsResult weak_components_impl(const G& g) {
  DisjointSets sets(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.out(v)) sets.unite(v, w);
  }
  return label_from_sets(sets, g.num_nodes());
}

ComponentsResult weak_components(const Digraph& g) {
  return weak_components_impl(g);
}

ComponentsResult weak_components(const StaticGraph& g) {
  return weak_components_impl(g);
}

ComponentsResult connected_components(const UGraph& g) {
  DisjointSets sets(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.neighbors(v)) sets.unite(v, w);
  }
  return label_from_sets(sets, g.num_nodes());
}

std::vector<int> bfs_hops(const Digraph& g, NodeId source) {
  std::vector<int> dist(g.num_nodes(), -1);
  if (source >= g.num_nodes()) return dist;
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : g.out(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

}  // namespace whatsup::graph
