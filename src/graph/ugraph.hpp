// Undirected simple graph, used by the workload generators (collaboration /
// follower graphs) and by community detection.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace whatsup::graph {

class UGraph {
 public:
  UGraph() = default;
  explicit UGraph(std::size_t n);

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return n_edges_; }

  // Ignores self-loops and duplicate edges.
  bool add_edge(NodeId a, NodeId b);
  bool has_edge(NodeId a, NodeId b) const;
  std::span<const NodeId> neighbors(NodeId v) const;
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t n_edges_ = 0;
};

}  // namespace whatsup::graph
