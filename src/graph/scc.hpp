// Strongly connected components (iterative Tarjan). Used to reproduce
// Fig. 4: the fraction of nodes in the largest SCC of the WUP overlay.
// Overloads cover both graph representations: the adjacency-list Digraph
// and the CSR StaticGraph the scale-out overlay collection builds.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace whatsup::graph {

class StaticGraph;

struct SccResult {
  std::vector<int> component;  // component id per node, -1 never occurs
  std::size_t count = 0;       // number of components
  std::size_t largest = 0;     // size of the largest component
};

SccResult strongly_connected_components(const Digraph& g);
SccResult strongly_connected_components(const StaticGraph& g);

// |largest SCC| / |V| — 0 for the empty graph.
double largest_scc_fraction(const Digraph& g);
double largest_scc_fraction(const StaticGraph& g);

}  // namespace whatsup::graph
