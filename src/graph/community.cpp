#include "graph/community.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

namespace whatsup::graph {

namespace {

struct MergeCandidate {
  double dq;
  int a;
  int b;
  std::uint64_t stamp_a;
  std::uint64_t stamp_b;
};

struct CandidateLess {
  bool operator()(const MergeCandidate& x, const MergeCandidate& y) const {
    return x.dq < y.dq;
  }
};

}  // namespace

double modularity(const UGraph& g, const std::vector<int>& membership) {
  assert(membership.size() == g.num_nodes());
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) return 0.0;
  std::unordered_map<int, double> internal;  // edges within community / m
  std::unordered_map<int, double> degree;    // total degree / 2m
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree[membership[v]] += static_cast<double>(g.degree(v));
    for (NodeId w : g.neighbors(v)) {
      if (v < w && membership[v] == membership[w]) internal[membership[v]] += 1.0;
    }
  }
  double q = 0.0;
  for (const auto& [c, deg] : degree) {
    const double e_ii = internal.count(c) != 0 ? internal.at(c) / m : 0.0;
    const double a_i = deg / (2.0 * m);
    q += e_ii - a_i * a_i;
  }
  return q;
}

CommunityResult detect_communities(const UGraph& g) {
  const std::size_t n = g.num_nodes();
  CommunityResult result;
  result.membership.assign(n, 0);
  if (n == 0) return result;
  const double m = static_cast<double>(g.num_edges());
  if (m == 0.0) {
    // All-singleton partition.
    for (NodeId v = 0; v < n; ++v) result.membership[v] = static_cast<int>(v);
    result.count = n;
    result.sizes.assign(n, 1);
    return result;
  }

  // CNM state: per community, the fraction of edge-ends to each neighbor
  // community (e_ij = m_ij / 2m stored once per direction), the degree
  // fraction a_i, the member list, and a version stamp for lazy heap
  // invalidation.
  std::vector<std::unordered_map<int, double>> e(n);
  std::vector<double> a(n, 0.0);
  std::vector<std::vector<NodeId>> members(n);
  std::vector<std::uint64_t> version(n, 0);
  std::vector<bool> alive(n, true);

  for (NodeId v = 0; v < n; ++v) {
    members[v].push_back(v);
    a[v] = static_cast<double>(g.degree(v)) / (2.0 * m);
    for (NodeId w : g.neighbors(v)) {
      e[v][static_cast<int>(w)] = 1.0 / (2.0 * m);
    }
  }

  std::priority_queue<MergeCandidate, std::vector<MergeCandidate>, CandidateLess> heap;
  auto push_pair = [&](int i, int j) {
    if (i == j) return;
    const auto it = e[static_cast<std::size_t>(i)].find(j);
    if (it == e[static_cast<std::size_t>(i)].end()) return;
    const double dq = 2.0 * (it->second - a[static_cast<std::size_t>(i)] *
                                              a[static_cast<std::size_t>(j)]);
    heap.push({dq, i, j, version[static_cast<std::size_t>(i)],
               version[static_cast<std::size_t>(j)]});
  };
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& [w, val] : e[v]) {
      (void)val;
      if (static_cast<int>(v) < w) push_pair(static_cast<int>(v), w);
    }
  }

  while (!heap.empty()) {
    const MergeCandidate cand = heap.top();
    heap.pop();
    const auto ca = static_cast<std::size_t>(cand.a);
    const auto cb = static_cast<std::size_t>(cand.b);
    if (!alive[ca] || !alive[cb]) continue;
    if (cand.stamp_a != version[ca] || cand.stamp_b != version[cb]) continue;
    if (cand.dq <= 0.0) break;  // heap max is non-positive: greedy stops

    // Merge the smaller member list into the larger (small-to-large).
    std::size_t into = ca, from = cb;
    if (members[into].size() < members[from].size()) std::swap(into, from);

    for (const auto& [k, val] : e[from]) {
      const auto ku = static_cast<std::size_t>(k);
      if (ku == into) continue;
      e[into][k] += val;
      e[ku][static_cast<int>(into)] += val;
      e[ku].erase(static_cast<int>(from));
    }
    e[into].erase(static_cast<int>(from));
    a[into] += a[from];
    members[into].insert(members[into].end(), members[from].begin(), members[from].end());
    members[from].clear();
    members[from].shrink_to_fit();
    e[from].clear();
    alive[from] = false;
    ++version[into];

    for (const auto& [k, val] : e[into]) {
      (void)val;
      push_pair(static_cast<int>(into), k);
    }
  }

  // Dense relabeling, communities sorted by size descending.
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < n; ++c) {
    if (alive[c] && !members[c].empty()) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return members[x].size() > members[y].size();
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    for (NodeId v : members[order[rank]]) {
      result.membership[v] = static_cast<int>(rank);
    }
    result.sizes.push_back(members[order[rank]].size());
  }
  result.count = order.size();
  result.modularity = modularity(g, result.membership);
  return result;
}

}  // namespace whatsup::graph
