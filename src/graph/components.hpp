// Weakly connected components of a digraph / connected components of an
// undirected graph. §V-A reports average component counts of the overlays.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"

namespace whatsup::graph {

class StaticGraph;

struct ComponentsResult {
  std::vector<int> component;
  std::size_t count = 0;
  std::size_t largest = 0;
};

ComponentsResult weak_components(const Digraph& g);
ComponentsResult weak_components(const StaticGraph& g);
ComponentsResult connected_components(const UGraph& g);

// Hop distance from `source` to every node (BFS over out-edges);
// unreachable nodes get -1.
std::vector<int> bfs_hops(const Digraph& g, NodeId source);

}  // namespace whatsup::graph
