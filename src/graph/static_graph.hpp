// Immutable CSR digraph for overlay analysis at scale.
//
// Digraph's vector<vector<NodeId>> costs one heap block plus vector header
// per node and scatters adjacency across the allocator — at 100k+ nodes the
// pointer-chasing dominates every traversal. StaticGraph keeps the whole
// edge set in two flat arrays (offsets[n+1] + edges[m], the layout
// libgrape-lite style graph engines use), built by the classic two-pass
// degree-count / fill scheme. Both passes are safe to run concurrently
// over disjoint node ranges, which is how analysis::overlay_graph streams
// view edges out of each engine shard without ever materializing an
// adjacency-list graph.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/digraph.hpp"

namespace whatsup::graph {

class StaticGraph {
 public:
  StaticGraph() = default;

  std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const { return edges_.size(); }

  std::span<const NodeId> out(NodeId v) const {
    return {edges_.data() + offsets_[v], edges_.data() + offsets_[v + 1]};
  }
  std::size_t out_degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  // Adjacency-list interop (tests, small drivers). Rows end up sorted and
  // deduplicated, like Digraph::dedupe.
  static StaticGraph from_digraph(const Digraph& g);

  // Two-pass builder.
  //
  //   Builder b(n);
  //   for each node v:        b.set_degree(v, upper bound on out-edges);
  //   b.finish_degrees();                       // serial prefix sum
  //   for each node v:        b.add_edge(v, w)  // at most the reserved count
  //   b.dedupe_rows(lo, hi);                    // sort+unique, any partition
  //   StaticGraph g = b.build();                // serial compaction
  //
  // set_degree/add_edge/dedupe_rows touch only node v's slice, so the
  // passes parallelize over disjoint node ranges with no synchronization.
  // add_edge ignores self-loops and build() drops slack left by skipped or
  // deduplicated edges, so the degree pass may over-reserve.
  class Builder {
   public:
    explicit Builder(std::size_t n);

    std::size_t num_nodes() const { return row_len_.size(); }

    // Pass 1: reserve row capacity for v (an upper bound is fine).
    void set_degree(NodeId v, std::size_t degree) { row_cap_[v] = degree; }
    // Turns the per-row capacities into row starts. Call once, serially,
    // between the passes.
    void finish_degrees();
    // Pass 2: append an out-edge of v. Self-loops are ignored (overlay
    // semantics, matching Digraph::add_edge).
    void add_edge(NodeId v, NodeId w);
    // Sorts and deduplicates the rows of nodes [lo, hi).
    void dedupe_rows(NodeId lo, NodeId hi);
    // Compacts rows to their final lengths. The builder is spent after.
    StaticGraph build();

   private:
    std::vector<std::size_t> row_cap_;    // pass 1: per-row capacity
    std::vector<std::size_t> row_start_;  // after finish_degrees
    std::vector<std::size_t> row_len_;    // filled length per row
    std::vector<NodeId> edges_;
  };

 private:
  std::vector<std::size_t> offsets_;  // n + 1
  std::vector<NodeId> edges_;
};

}  // namespace whatsup::graph
