#include "graph/clustering.hpp"

#include <algorithm>
#include <vector>

#include "graph/static_graph.hpp"

namespace whatsup::graph {

namespace {

// Shared triangle-counting core. `rows(v)` must return the sorted, unique
// undirected neighborhood of v (any span-like range of NodeId).
template <typename RowFn>
double avg_local_clustering_rows(std::size_t n, const RowFn& rows) {
  if (n == 0) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = rows(v);
    const std::size_t k = nbrs.size();
    if (k < 2) continue;
    std::size_t links = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto wi = rows(nbrs[i]);
      for (std::size_t j = i + 1; j < k; ++j) {
        if (std::binary_search(wi.begin(), wi.end(), nbrs[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double avg_local_clustering(const std::vector<std::vector<NodeId>>& adj) {
  // Adjacency lists must be sorted and deduplicated before this call.
  return avg_local_clustering_rows(
      adj.size(), [&adj](NodeId v) -> std::span<const NodeId> { return adj[v]; });
}

// Undirected closure of a CSR digraph, as another CSR: an edge exists if
// it exists in either direction. Two-pass (symmetric degree count, fill),
// then per-row sort+unique via the builder.
StaticGraph undirected_closure(const StaticGraph& g) {
  const std::size_t n = g.num_nodes();
  StaticGraph::Builder b(n);
  std::vector<std::size_t> degree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] += g.out_degree(v);
    for (const NodeId w : g.out(v)) ++degree[w];
  }
  for (NodeId v = 0; v < n; ++v) b.set_degree(v, degree[v]);
  b.finish_degrees();
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId w : g.out(v)) {
      b.add_edge(v, w);
      b.add_edge(w, v);
    }
  }
  b.dedupe_rows(0, static_cast<NodeId>(n));
  return b.build();
}

}  // namespace

double avg_clustering_coefficient(const Digraph& g) {
  // Build the undirected closure with sorted unique adjacency.
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.out(v)) {
      adj[v].push_back(w);
      adj[w].push_back(v);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return avg_local_clustering(adj);
}

double avg_clustering_coefficient(const StaticGraph& g) {
  const StaticGraph closure = undirected_closure(g);
  return avg_local_clustering_rows(
      closure.num_nodes(), [&closure](NodeId v) { return closure.out(v); });
}

double avg_clustering_coefficient(const UGraph& g) {
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    adj[v].assign(nbrs.begin(), nbrs.end());
    std::sort(adj[v].begin(), adj[v].end());
  }
  return avg_local_clustering(adj);
}

}  // namespace whatsup::graph
