#include "graph/clustering.hpp"

#include <algorithm>
#include <vector>

namespace whatsup::graph {

namespace {

double avg_local_clustering(const std::vector<std::vector<NodeId>>& adj) {
  const std::size_t n = adj.size();
  if (n == 0) return 0.0;
  // Adjacency lists must be sorted and deduplicated before this call.
  double total = 0.0;
  std::size_t counted = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto& nbrs = adj[v];
    const std::size_t k = nbrs.size();
    if (k < 2) continue;
    std::size_t links = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& wi = adj[nbrs[i]];
      for (std::size_t j = i + 1; j < k; ++j) {
        if (std::binary_search(wi.begin(), wi.end(), nbrs[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace

double avg_clustering_coefficient(const Digraph& g) {
  // Build the undirected closure with sorted unique adjacency.
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.out(v)) {
      adj[v].push_back(w);
      adj[w].push_back(v);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return avg_local_clustering(adj);
}

double avg_clustering_coefficient(const UGraph& g) {
  std::vector<std::vector<NodeId>> adj(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    adj[v].assign(nbrs.begin(), nbrs.end());
    std::sort(adj[v].begin(), adj[v].end());
  }
  return avg_local_clustering(adj);
}

}  // namespace whatsup::graph
