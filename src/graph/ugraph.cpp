#include "graph/ugraph.hpp"

#include <algorithm>
#include <cassert>

namespace whatsup::graph {

UGraph::UGraph(std::size_t n) : adj_(n) {}

bool UGraph::add_edge(NodeId a, NodeId b) {
  assert(a < adj_.size() && b < adj_.size());
  if (a == b || has_edge(a, b)) return false;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++n_edges_;
  return true;
}

bool UGraph::has_edge(NodeId a, NodeId b) const {
  assert(a < adj_.size() && b < adj_.size());
  const auto& smaller = adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const NodeId target = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::span<const NodeId> UGraph::neighbors(NodeId v) const {
  assert(v < adj_.size());
  return adj_[v];
}

std::vector<std::pair<NodeId, NodeId>> UGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(n_edges_);
  for (NodeId v = 0; v < adj_.size(); ++v) {
    for (NodeId w : adj_[v]) {
      if (v < w) out.emplace_back(v, w);
    }
  }
  return out;
}

}  // namespace whatsup::graph
