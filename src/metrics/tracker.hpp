// Dissemination tracker: the measurement side of every experiment.
//
// Implements sim::DisseminationObserver and records, per item:
//   * the set of users reached and the set who liked it,
//   * hop histograms split by forward type (like vs dislike) for both
//     forwarding actions and infections (Fig. 6),
//   * the dislike counter carried by the copy that reached each liker
//     (Table IV),
// plus per-cycle liked-delivery series for explicitly tracked nodes
// (Fig. 7c).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hybrid_set.hpp"
#include "sim/engine.hpp"

namespace whatsup::metrics {

// Aggregated hop histograms (index = hop distance from the source).
struct HopCounts {
  std::vector<double> forward_like;
  std::vector<double> infect_like;
  std::vector<double> forward_dislike;
  std::vector<double> infect_dislike;

  std::size_t max_hop() const;
  void accumulate(const HopCounts& other, double weight = 1.0);
};

class Tracker : public sim::DisseminationObserver {
 public:
  Tracker(std::size_t n_users, std::size_t n_items);

  // Registers as the engine's observer and binds the clock used by the
  // per-cycle series. Also registers the compaction cycle hook (see
  // set_compaction); the tracker must outlive the engine's run.
  void attach(sim::Engine& engine);

  // Compact tracker mode (on by default): once an item has gone
  // `settle_cycles` without a delivery/opinion/duplicate, its reached and
  // liked sets are frozen into sorted varint delta blocks
  // (HybridSet::freeze — adopted only when strictly smaller). Purely a
  // storage change: digests are computed from the same ascending member
  // iteration, and a late delivery transparently thaws the set, so
  // fixed-seed trajectories are bit-identical with compaction on or off.
  void set_compaction(bool enabled, Cycle settle_cycles = kDefaultSettleCycles);
  static constexpr Cycle kDefaultSettleCycles = 16;
  // Runs one compaction pass at cycle `now` (the attach hook calls this
  // every cycle; exposed for tests).
  void compact_settled(Cycle now);
  // Number of currently frozen reached/liked sets (observability).
  std::size_t frozen_sets() const;

  // Full resident footprint of the tracker's measurement state: the
  // reached/liked sets in their current representation plus every
  // histogram, series, and bookkeeping vector. The scale-smoke memory
  // counters report this (bench/macro_sim.cpp).
  std::size_t resident_bytes() const;

  // sim::DisseminationObserver
  void on_delivery(NodeId user, ItemIdx item, int hops, bool via_dislike,
                   int dislike_count) override;
  void on_opinion(NodeId user, ItemIdx item, bool liked) override;
  void on_forward(NodeId user, ItemIdx item, int hops, bool liked,
                  std::size_t n_targets) override;
  void on_duplicate(NodeId user, ItemIdx item) override;

  std::size_t num_items() const { return reached_.size(); }
  std::size_t num_users() const { return n_users_; }
  // Per-item membership sets are hybrid sparse→dense (common/hybrid_set.hpp):
  // sorted index arrays while small, bitsets once dense. This caps the
  // tracker's resident footprint at O(total deliveries) instead of
  // O(items × n), which is what dominates a 100k-node run.
  const HybridSet& reached(ItemIdx item) const { return reached_[item]; }
  const HybridSet& liked(ItemIdx item) const { return liked_[item]; }
  const std::vector<HybridSet>& reached_sets() const { return reached_; }

  // Resident bytes of the reached/liked sets (observability for the
  // memory-lean metrics work; see bench/macro_sim.cpp).
  std::size_t set_memory_bytes() const;

  // Per-item hop histograms and the dislike-counter histogram for copies
  // that reached likers (index clipped to kMaxDislikeBin).
  static constexpr std::size_t kMaxDislikeBin = 15;
  const HopCounts& hops(ItemIdx item) const { return hops_[item]; }
  const std::array<std::uint32_t, kMaxDislikeBin + 1>& dislikes_at_liked(
      ItemIdx item) const {
    return dislike_hist_[item];
  }

  // Fig. 7c probes: per-cycle count of liked deliveries at a node.
  void track_node(NodeId node);
  const std::vector<std::uint32_t>& liked_series(NodeId node) const;

  // ---- Reliability metrics (robustness experiments) ----
  //
  // Redundancy: repeat receipts of an already-seen item (multi-path BEEP
  // copies, network duplicates, retransmissions) reported by agents via
  // on_duplicate. The redundancy ratio is duplicates per unique delivery —
  // the bandwidth price of the dissemination's natural (and, with the
  // reliability layer, deliberate) re-sending.
  std::uint32_t duplicates(ItemIdx item) const {
    return item < duplicates_.size() ? duplicates_[item] : 0;
  }
  std::uint64_t total_duplicates() const { return total_duplicates_; }
  std::uint64_t total_deliveries() const { return total_deliveries_; }
  double redundancy_ratio() const {
    return total_deliveries_ == 0
               ? 0.0
               : static_cast<double>(total_duplicates_) /
                     static_cast<double>(total_deliveries_);
  }

  // Delivery latency: cycles from an item's publication to each unique
  // delivery. The runner declares publication cycles (from its calendar);
  // deliveries of undeclared items are not latency-scored.
  void set_publish_cycle(ItemIdx item, Cycle cycle);
  // Histogram clipped at kMaxLatencyBin (last bin = "that or slower").
  static constexpr std::size_t kMaxLatencyBin = 63;
  const std::array<std::uint64_t, kMaxLatencyBin + 1>& latency_histogram() const {
    return latency_hist_;
  }
  double mean_latency() const {
    return latency_count_ == 0 ? 0.0
                               : static_cast<double>(latency_sum_) /
                                     static_cast<double>(latency_count_);
  }
  std::uint64_t latency_count() const { return latency_count_; }
  // Per-delivery-cycle latency accumulators (sum, count), indexed by the
  // cycle the delivery happened in — lets the runner reduce per-window
  // mean latency aligned with its recall windows.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& latency_by_cycle() const {
    return latency_by_cycle_;
  }

  // Fingerprint of the full measurement state (reached/liked sets, hop
  // histograms, dislike histograms): equal states yield equal digests.
  // Sampled once per cycle, a digest series pins the whole trajectory —
  // any divergence in what was measured, or when, changes some cycle's
  // state — which is the determinism contract the sharded scheduler is
  // tested against (tests/test_determinism.cpp). The digest is a
  // COMMUTATIVE sum of per-fact hashes, so in fragment mode the workers'
  // partial digests (each tracker sees only its own nodes' events) sum
  // mod 2^64 to the single-process digest — the property the
  // partition-count invariance suite and the distributed-smoke CI
  // fingerprint diff rely on.
  std::uint64_t digest() const;

 private:
  std::size_t n_users_;
  std::vector<HybridSet> reached_;
  std::vector<HybridSet> liked_;
  std::vector<HopCounts> hops_;
  std::vector<std::array<std::uint32_t, kMaxDislikeBin + 1>> dislike_hist_;

  // Reliability metrics. Deliberately NOT folded into digest(): the digest
  // pins the measurement trajectory the determinism suite compares, and
  // its value semantics predate the reliability layer.
  std::vector<std::uint32_t> duplicates_;
  std::uint64_t total_duplicates_ = 0;
  std::uint64_t total_deliveries_ = 0;
  std::vector<Cycle> publish_cycle_;
  std::array<std::uint64_t, kMaxLatencyBin + 1> latency_hist_{};
  std::uint64_t latency_sum_ = 0;
  std::uint64_t latency_count_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> latency_by_cycle_;

  // Deliveries and opinions arrive as consecutive callbacks for the same
  // (user, item); remember the delivery context to label the opinion.
  NodeId last_delivery_user_ = kNoNode;
  ItemIdx last_delivery_item_ = kNoItem;
  int last_delivery_dislikes_ = 0;

  sim::Engine* engine_ = nullptr;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> tracked_;

  // Compaction state: last cycle each item was touched (delivery, opinion
  // or duplicate) and whether a freeze has already been attempted since.
  // Touches are recorded on the main thread in canonical commit order and
  // the pass runs in a cycle hook, so freezing is a deterministic function
  // of the trajectory.
  bool compaction_enabled_ = true;
  Cycle settle_cycles_ = kDefaultSettleCycles;
  std::vector<Cycle> last_touch_;
  std::vector<bool> settled_;
  void touch(ItemIdx item);
};

}  // namespace whatsup::metrics
