#include "metrics/tracker.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

namespace whatsup::metrics {

namespace {

void bump(std::vector<double>& hist, int hop, double amount = 1.0) {
  const auto index = static_cast<std::size_t>(std::max(hop, 0));
  if (hist.size() <= index) hist.resize(index + 1, 0.0);
  hist[index] += amount;
}

}  // namespace

std::size_t HopCounts::max_hop() const {
  return std::max({forward_like.size(), infect_like.size(), forward_dislike.size(),
                   infect_dislike.size()});
}

void HopCounts::accumulate(const HopCounts& other, double weight) {
  auto add = [weight](std::vector<double>& into, const std::vector<double>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0.0);
    for (std::size_t h = 0; h < from.size(); ++h) into[h] += weight * from[h];
  };
  add(forward_like, other.forward_like);
  add(infect_like, other.infect_like);
  add(forward_dislike, other.forward_dislike);
  add(infect_dislike, other.infect_dislike);
}

Tracker::Tracker(std::size_t n_users, std::size_t n_items)
    : n_users_(n_users),
      reached_(n_items, HybridSet(n_users)),
      liked_(n_items, HybridSet(n_users)),
      hops_(n_items),
      dislike_hist_(n_items),
      duplicates_(n_items, 0),
      publish_cycle_(n_items, kNoCycle),
      last_touch_(n_items, kNoCycle),
      settled_(n_items, false) {}

std::size_t Tracker::set_memory_bytes() const {
  std::size_t total = 0;
  for (const HybridSet& s : reached_) total += s.memory_bytes();
  for (const HybridSet& s : liked_) total += s.memory_bytes();
  return total;
}

void Tracker::attach(sim::Engine& engine) {
  engine_ = &engine;
  engine.set_observer(this);
  // Compaction rides the engine's cycle hooks. Freezing never changes
  // contents, so a duplicate registration (attach called twice) is merely
  // an idempotent second pass.
  engine.add_cycle_hook(
      [this](sim::Engine&, Cycle now) { compact_settled(now); });
}

void Tracker::set_compaction(bool enabled, Cycle settle_cycles) {
  compaction_enabled_ = enabled;
  settle_cycles_ = settle_cycles;
}

void Tracker::touch(ItemIdx item) {
  if (item >= last_touch_.size()) return;
  last_touch_[item] = engine_ != nullptr ? engine_->now() : Cycle{0};
  settled_[item] = false;
}

void Tracker::compact_settled(Cycle now) {
  if (!compaction_enabled_) return;
  for (std::size_t item = 0; item < reached_.size(); ++item) {
    if (settled_[item] || last_touch_[item] == kNoCycle ||
        now - last_touch_[item] < settle_cycles_) {
      continue;
    }
    reached_[item].freeze();
    liked_[item].freeze();
    settled_[item] = true;
  }
}

std::size_t Tracker::frozen_sets() const {
  std::size_t n = 0;
  for (const HybridSet& s : reached_) n += s.is_frozen() ? 1 : 0;
  for (const HybridSet& s : liked_) n += s.is_frozen() ? 1 : 0;
  return n;
}

std::size_t Tracker::resident_bytes() const {
  std::size_t total = sizeof(Tracker) + set_memory_bytes();
  const auto vec_heap = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  for (const HopCounts& hc : hops_) {
    total += sizeof(HopCounts) + vec_heap(hc.forward_like) +
             vec_heap(hc.infect_like) + vec_heap(hc.forward_dislike) +
             vec_heap(hc.infect_dislike);
  }
  total += vec_heap(dislike_hist_) + vec_heap(duplicates_) +
           vec_heap(publish_cycle_) + vec_heap(latency_by_cycle_) +
           vec_heap(last_touch_) + settled_.capacity() / 8;
  for (const auto& [node, series] : tracked_) {
    (void)node;
    total += sizeof(std::uint32_t) + vec_heap(series);
  }
  return total;
}

void Tracker::on_delivery(NodeId user, ItemIdx item, int hops, bool via_dislike,
                          int dislike_count) {
  if (item >= reached_.size() || user >= n_users_) return;
  touch(item);
  reached_[item].set(user);
  ++total_deliveries_;
  if (engine_ != nullptr && publish_cycle_[item] != kNoCycle) {
    const Cycle now = engine_->now();
    const Cycle latency = std::max<Cycle>(now - publish_cycle_[item], 0);
    ++latency_hist_[std::min<std::size_t>(static_cast<std::size_t>(latency),
                                          kMaxLatencyBin)];
    latency_sum_ += static_cast<std::uint64_t>(latency);
    ++latency_count_;
    const auto cycle = static_cast<std::size_t>(std::max<Cycle>(now, 0));
    if (latency_by_cycle_.size() <= cycle) latency_by_cycle_.resize(cycle + 1, {0, 0});
    latency_by_cycle_[cycle].first += static_cast<std::uint64_t>(latency);
    ++latency_by_cycle_[cycle].second;
  }
  if (via_dislike) {
    bump(hops_[item].infect_dislike, hops);
  } else {
    bump(hops_[item].infect_like, hops);
  }
  last_delivery_user_ = user;
  last_delivery_item_ = item;
  last_delivery_dislikes_ = dislike_count;
}

void Tracker::on_opinion(NodeId user, ItemIdx item, bool liked) {
  if (!liked) return;
  // Tracked-node series first: probes may live outside the user range
  // (e.g. the §V-C joining node is an extra engine node).
  if (!tracked_.empty() && engine_ != nullptr) {
    const auto it = tracked_.find(user);
    if (it != tracked_.end()) {
      const auto cycle = static_cast<std::size_t>(std::max<Cycle>(engine_->now(), 0));
      if (it->second.size() <= cycle) it->second.resize(cycle + 1, 0);
      ++it->second[cycle];
    }
  }
  if (item >= liked_.size() || user >= n_users_) return;
  touch(item);
  liked_[item].set(user);
  if (user == last_delivery_user_ && item == last_delivery_item_) {
    const auto bin = static_cast<std::size_t>(
        std::clamp<int>(last_delivery_dislikes_, 0, static_cast<int>(kMaxDislikeBin)));
    ++dislike_hist_[item][bin];
  }
}

void Tracker::on_forward(NodeId user, ItemIdx item, int hops, bool liked,
                         std::size_t n_targets) {
  (void)user;
  if (item >= hops_.size() || n_targets == 0) return;
  if (liked) {
    bump(hops_[item].forward_like, hops);
  } else {
    bump(hops_[item].forward_dislike, hops);
  }
}

std::uint64_t Tracker::digest() const {
  // COMMUTATIVE digest: an unordered sum (mod 2^64, from 0) of one
  // well-mixed hash per FACT — set memberships weighted 1, histogram bins
  // weighted by their (integral) count. Every fact is attributed to the
  // acting user, whose owner fragment is the only worker that records it,
  // so summing the fragments' partial digests reproduces the
  // single-process digest exactly — the invariant the partition-count
  // determinism suite and the distributed-smoke fingerprint diff pin.
  // (Deliberately no basis offset and no size/ordering terms: a basis
  // would be added once per fragment, and worker-local histogram lengths
  // differ even when the nonzero bins agree.)
  const auto mix64 = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  const auto fact = [&mix64](std::uint64_t tag, std::uint64_t item,
                             std::uint64_t key) {
    return mix64(mix64(mix64(tag) ^ item) ^ key);
  };
  std::uint64_t h = 0;
  for (std::size_t item = 0; item < reached_.size(); ++item) {
    reached_[item].for_each_set(
        [&](std::size_t user) { h += fact(1, item, user); });
    liked_[item].for_each_set(
        [&](std::size_t user) { h += fact(2, item, user); });
    const HopCounts& hc = hops_[item];
    std::uint64_t which = 0;
    for (const auto* hist : {&hc.forward_like, &hc.infect_like, &hc.forward_dislike,
                             &hc.infect_dislike}) {
      for (std::size_t bin = 0; bin < hist->size(); ++bin) {
        // Bins count whole events (bump adds 1.0), so the count is an
        // exact integer multiplicity.
        const auto count = static_cast<std::uint64_t>((*hist)[bin]);
        if (count != 0) h += fact(3, item, (which << 32) | bin) * count;
      }
      ++which;
    }
    for (std::size_t bin = 0; bin < dislike_hist_[item].size(); ++bin) {
      const std::uint64_t d = dislike_hist_[item][bin];
      if (d != 0) h += fact(4, item, bin) * d;
    }
  }
  return h;
}

void Tracker::on_duplicate(NodeId user, ItemIdx item) {
  if (item >= duplicates_.size() || user >= n_users_) return;
  touch(item);
  ++duplicates_[item];
  ++total_duplicates_;
}

void Tracker::set_publish_cycle(ItemIdx item, Cycle cycle) {
  if (item < publish_cycle_.size()) publish_cycle_[item] = cycle;
}

void Tracker::track_node(NodeId node) { tracked_[node]; }

const std::vector<std::uint32_t>& Tracker::liked_series(NodeId node) const {
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = tracked_.find(node);
  return it == tracked_.end() ? kEmpty : it->second;
}

}  // namespace whatsup::metrics
