#include "metrics/scores.hpp"

#include <algorithm>
#include <cmath>

namespace whatsup::metrics {

namespace {

// Fixed chunk widths for the parallel reductions. Constants (never a
// function of the thread count), so partial-merge order — and therefore
// floating-point rounding — is identical for any executor.
constexpr std::size_t kItemChunk = 32;
// Must stay a multiple of 64: chunks write disjoint WORDS of the
// bit-packed PerUserScores::valid vector.
constexpr std::size_t kUserChunk = 8192;
static_assert(kUserChunk % 64 == 0);

// Per-item hit accounting shared by both reductions. `ReachSet` is
// DynBitset or HybridSet — both expose count/test/intersect_count.
template <typename ReachSet>
struct ItemCounts {
  std::size_t reached = 0;
  std::size_t interested = 0;
  std::size_t hits = 0;
};

template <typename ReachSet>
ItemCounts<ReachSet> count_item(const data::Workload& workload,
                                const ReachSet& reach, ItemIdx item) {
  const data::NewsSpec& spec = workload.news[item];
  const DynBitset& interest = workload.interested(item);
  ItemCounts<ReachSet> c;
  c.reached = reach.count();
  c.interested = interest.count();
  c.hits = reach.intersect_count(interest);
  if (reach.test(spec.source)) {
    --c.reached;
    if (interest.test(spec.source)) --c.hits;
  }
  if (interest.test(spec.source)) --c.interested;
  return c;
}

template <typename ReachSet>
Scores compute_scores_impl(const data::Workload& workload,
                           const std::vector<ReachSet>& reached,
                           std::span<const ItemIdx> measured,
                           ParallelExecutor* exec) {
  Scores scores;
  if (measured.empty()) return scores;
  // Parallel per-item pass into position-indexed slots; the (float) sums
  // below run on the calling thread in measured order.
  std::vector<double> precision(measured.size());
  std::vector<double> recall(measured.size());
  parallel_chunks(exec, measured.size(), kItemChunk,
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      const auto c = count_item(workload, reached[measured[i]],
                                                measured[i]);
                      precision[i] = c.reached > 0
                                         ? static_cast<double>(c.hits) /
                                               static_cast<double>(c.reached)
                                         : 1.0;  // empty delivery: vacuous
                      recall[i] = c.interested > 0
                                      ? static_cast<double>(c.hits) /
                                            static_cast<double>(c.interested)
                                      : 1.0;  // nobody (else) to reach
                    }
                  });
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    precision_sum += precision[i];
    recall_sum += recall[i];
  }
  scores.items = measured.size();
  scores.precision = precision_sum / static_cast<double>(scores.items);
  scores.recall = recall_sum / static_cast<double>(scores.items);
  scores.f1 = f1_score(scores.precision, scores.recall);
  return scores;
}

template <typename ReachSet>
PerUserScores per_user_scores_impl(const data::Workload& workload,
                                   const std::vector<ReachSet>& reached,
                                   std::span<const ItemIdx> measured,
                                   ParallelExecutor* exec) {
  const std::size_t n = workload.num_users();
  std::vector<std::size_t> received(n, 0), interested(n, 0), hits(n, 0);
  PerUserScores out;
  out.precision.resize(n);
  out.recall.resize(n);
  out.f1.resize(n);
  out.valid.resize(n);
  // Each chunk owns a user range: counters are disjoint across chunks and
  // integer-exact, so the reduction is order-independent. Range-restricted
  // set iteration keeps each chunk's cost proportional to its slice.
  parallel_chunks(exec, n, kUserChunk, [&](std::size_t, std::size_t lo,
                                           std::size_t hi) {
    for (const ItemIdx item : measured) {
      const data::NewsSpec& spec = workload.news[item];
      const DynBitset& interest = workload.interested(item);
      reached[item].for_each_set_in(lo, hi, [&](std::size_t u) {
        if (u == spec.source) return;
        ++received[u];
        if (interest.test(u)) ++hits[u];
      });
      interest.for_each_set_in(lo, hi, [&](std::size_t u) {
        if (u == spec.source) return;
        ++interested[u];
      });
    }
    for (std::size_t u = lo; u < hi; ++u) {
      out.valid[u] = interested[u] > 0;
      out.precision[u] =
          received[u] > 0
              ? static_cast<double>(hits[u]) / static_cast<double>(received[u])
              : 1.0;
      out.recall[u] = interested[u] > 0 ? static_cast<double>(hits[u]) /
                                              static_cast<double>(interested[u])
                                        : 1.0;
      out.f1[u] = f1_score(out.precision[u], out.recall[u]);
    }
  });
  return out;
}

template <typename ReachSet>
PopularityCurve recall_by_popularity_impl(const data::Workload& workload,
                                          const std::vector<ReachSet>& reached,
                                          std::span<const ItemIdx> measured,
                                          std::size_t buckets) {
  PopularityCurve curve;
  curve.center.resize(buckets);
  curve.recall.assign(buckets, 0.0);
  curve.item_fraction.assign(buckets, 0.0);
  curve.items.assign(buckets, 0);
  for (std::size_t b = 0; b < buckets; ++b) {
    curve.center[b] = (static_cast<double>(b) + 0.5) / static_cast<double>(buckets);
  }
  for (ItemIdx item : measured) {
    const auto c = count_item(workload, reached[item], item);
    if (c.interested == 0) continue;
    const double pop = workload.popularity(item);
    auto b = static_cast<std::size_t>(pop * static_cast<double>(buckets));
    b = std::min(b, buckets - 1);
    curve.recall[b] +=
        static_cast<double>(c.hits) / static_cast<double>(c.interested);
    ++curve.items[b];
  }
  std::size_t total_items = 0;
  for (std::size_t b = 0; b < buckets; ++b) total_items += curve.items[b];
  for (std::size_t b = 0; b < buckets; ++b) {
    if (curve.items[b] > 0) curve.recall[b] /= static_cast<double>(curve.items[b]);
    if (total_items > 0) {
      curve.item_fraction[b] =
          static_cast<double>(curve.items[b]) / static_cast<double>(total_items);
    }
  }
  return curve;
}

}  // namespace

double f1_score(double precision, double recall) {
  const double denom = precision + recall;
  return denom > 0.0 ? 2.0 * precision * recall / denom : 0.0;
}

Scores compute_scores(const data::Workload& workload,
                      const std::vector<DynBitset>& reached,
                      std::span<const ItemIdx> measured, ParallelExecutor* exec) {
  return compute_scores_impl(workload, reached, measured, exec);
}

Scores compute_scores(const data::Workload& workload,
                      const std::vector<HybridSet>& reached,
                      std::span<const ItemIdx> measured, ParallelExecutor* exec) {
  return compute_scores_impl(workload, reached, measured, exec);
}

PerUserScores per_user_scores(const data::Workload& workload,
                              const std::vector<DynBitset>& reached,
                              std::span<const ItemIdx> measured,
                              ParallelExecutor* exec) {
  return per_user_scores_impl(workload, reached, measured, exec);
}

PerUserScores per_user_scores(const data::Workload& workload,
                              const std::vector<HybridSet>& reached,
                              std::span<const ItemIdx> measured,
                              ParallelExecutor* exec) {
  return per_user_scores_impl(workload, reached, measured, exec);
}

std::vector<double> sociability(const data::Workload& workload, std::size_t k) {
  const std::size_t n = workload.num_users();
  const std::size_t items = workload.num_items();
  // Like-vectors per user (transpose of the per-item interest bitsets).
  std::vector<DynBitset> likes(n, DynBitset(items));
  for (std::size_t i = 0; i < items; ++i) {
    workload.interested(static_cast<ItemIdx>(i)).for_each_set([&](std::size_t u) {
      likes[u].set(i);
    });
  }
  std::vector<double> like_count(n);
  for (std::size_t u = 0; u < n; ++u) like_count[u] = static_cast<double>(likes[u].count());

  std::vector<double> out(n, 0.0);
  std::vector<double> sims;
  sims.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    sims.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double denom = std::sqrt(like_count[u] * like_count[v]);
      if (denom <= 0.0) {
        sims.push_back(0.0);
        continue;
      }
      sims.push_back(static_cast<double>(likes[u].intersect_count(likes[v])) / denom);
    }
    const std::size_t keep = std::min(k, sims.size());
    std::partial_sort(sims.begin(), sims.begin() + static_cast<std::ptrdiff_t>(keep),
                      sims.end(), std::greater<>());
    double total = 0.0;
    for (std::size_t i = 0; i < keep; ++i) total += sims[i];
    out[u] = keep > 0 ? total / static_cast<double>(keep) : 0.0;
  }
  return out;
}

PopularityCurve recall_by_popularity(const data::Workload& workload,
                                     const std::vector<DynBitset>& reached,
                                     std::span<const ItemIdx> measured,
                                     std::size_t buckets) {
  return recall_by_popularity_impl(workload, reached, measured, buckets);
}

PopularityCurve recall_by_popularity(const data::Workload& workload,
                                     const std::vector<HybridSet>& reached,
                                     std::span<const ItemIdx> measured,
                                     std::size_t buckets) {
  return recall_by_popularity_impl(workload, reached, measured, buckets);
}

std::vector<WindowScores> windowed_scores(const data::Workload& workload,
                                          const std::vector<HybridSet>& reached,
                                          std::span<const ItemIdx> measured,
                                          std::span<const Window> windows,
                                          ParallelExecutor* exec) {
  std::vector<WindowScores> out;
  out.reserve(windows.size());
  std::vector<ItemIdx> subset;
  for (const Window& window : windows) {
    subset.clear();
    for (const ItemIdx item : measured) {
      const Cycle at = workload.news[item].publish_at;
      if (at >= window.begin && at < window.end) subset.push_back(item);
    }
    WindowScores ws;
    ws.window = window;
    ws.scores = compute_scores(workload, reached, subset, exec);
    out.push_back(std::move(ws));
  }
  return out;
}

}  // namespace whatsup::metrics
