#include "metrics/scores.hpp"

#include <algorithm>
#include <cmath>

namespace whatsup::metrics {

double f1_score(double precision, double recall) {
  const double denom = precision + recall;
  return denom > 0.0 ? 2.0 * precision * recall / denom : 0.0;
}

Scores compute_scores(const data::Workload& workload,
                      const std::vector<DynBitset>& reached,
                      std::span<const ItemIdx> measured) {
  Scores scores;
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (ItemIdx item : measured) {
    const data::NewsSpec& spec = workload.news[item];
    const DynBitset& reach = reached[item];
    const DynBitset& interest = workload.interested(item);

    std::size_t n_reached = reach.count();
    std::size_t n_interested = interest.count();
    std::size_t hits = reach.intersect_count(interest);
    if (reach.test(spec.source)) {
      --n_reached;
      if (interest.test(spec.source)) --hits;
    }
    if (interest.test(spec.source)) --n_interested;

    if (n_reached > 0) {
      precision_sum += static_cast<double>(hits) / static_cast<double>(n_reached);
    } else {
      precision_sum += 1.0;  // empty delivery: vacuous precision
    }
    if (n_interested > 0) {
      recall_sum += static_cast<double>(hits) / static_cast<double>(n_interested);
    } else {
      recall_sum += 1.0;  // nobody (else) to reach
    }
    ++scores.items;
  }
  if (scores.items == 0) return scores;
  scores.precision = precision_sum / static_cast<double>(scores.items);
  scores.recall = recall_sum / static_cast<double>(scores.items);
  scores.f1 = f1_score(scores.precision, scores.recall);
  return scores;
}

PerUserScores per_user_scores(const data::Workload& workload,
                              const std::vector<DynBitset>& reached,
                              std::span<const ItemIdx> measured) {
  const std::size_t n = workload.num_users();
  std::vector<std::size_t> received(n, 0), interested(n, 0), hits(n, 0);
  for (ItemIdx item : measured) {
    const data::NewsSpec& spec = workload.news[item];
    const DynBitset& reach = reached[item];
    const DynBitset& interest = workload.interested(item);
    reach.for_each_set([&](std::size_t u) {
      if (u == spec.source) return;
      ++received[u];
      if (interest.test(u)) ++hits[u];
    });
    interest.for_each_set([&](std::size_t u) {
      if (u == spec.source) return;
      ++interested[u];
    });
  }
  PerUserScores out;
  out.precision.resize(n);
  out.recall.resize(n);
  out.f1.resize(n);
  out.valid.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    out.valid[u] = interested[u] > 0;
    out.precision[u] = received[u] > 0
                           ? static_cast<double>(hits[u]) / static_cast<double>(received[u])
                           : 1.0;
    out.recall[u] = interested[u] > 0
                        ? static_cast<double>(hits[u]) / static_cast<double>(interested[u])
                        : 1.0;
    out.f1[u] = f1_score(out.precision[u], out.recall[u]);
  }
  return out;
}

std::vector<double> sociability(const data::Workload& workload, std::size_t k) {
  const std::size_t n = workload.num_users();
  const std::size_t items = workload.num_items();
  // Like-vectors per user (transpose of the per-item interest bitsets).
  std::vector<DynBitset> likes(n, DynBitset(items));
  for (std::size_t i = 0; i < items; ++i) {
    workload.interested(static_cast<ItemIdx>(i)).for_each_set([&](std::size_t u) {
      likes[u].set(i);
    });
  }
  std::vector<double> like_count(n);
  for (std::size_t u = 0; u < n; ++u) like_count[u] = static_cast<double>(likes[u].count());

  std::vector<double> out(n, 0.0);
  std::vector<double> sims;
  sims.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    sims.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double denom = std::sqrt(like_count[u] * like_count[v]);
      if (denom <= 0.0) {
        sims.push_back(0.0);
        continue;
      }
      sims.push_back(static_cast<double>(likes[u].intersect_count(likes[v])) / denom);
    }
    const std::size_t keep = std::min(k, sims.size());
    std::partial_sort(sims.begin(), sims.begin() + static_cast<std::ptrdiff_t>(keep),
                      sims.end(), std::greater<>());
    double total = 0.0;
    for (std::size_t i = 0; i < keep; ++i) total += sims[i];
    out[u] = keep > 0 ? total / static_cast<double>(keep) : 0.0;
  }
  return out;
}

PopularityCurve recall_by_popularity(const data::Workload& workload,
                                     const std::vector<DynBitset>& reached,
                                     std::span<const ItemIdx> measured,
                                     std::size_t buckets) {
  PopularityCurve curve;
  curve.center.resize(buckets);
  curve.recall.assign(buckets, 0.0);
  curve.item_fraction.assign(buckets, 0.0);
  curve.items.assign(buckets, 0);
  for (std::size_t b = 0; b < buckets; ++b) {
    curve.center[b] = (static_cast<double>(b) + 0.5) / static_cast<double>(buckets);
  }
  for (ItemIdx item : measured) {
    const data::NewsSpec& spec = workload.news[item];
    const DynBitset& reach = reached[item];
    const DynBitset& interest = workload.interested(item);
    std::size_t n_interested = interest.count();
    std::size_t hits = reach.intersect_count(interest);
    if (interest.test(spec.source)) {
      --n_interested;
      if (reach.test(spec.source)) --hits;
    }
    if (n_interested == 0) continue;
    const double pop = workload.popularity(item);
    auto b = static_cast<std::size_t>(pop * static_cast<double>(buckets));
    b = std::min(b, buckets - 1);
    curve.recall[b] += static_cast<double>(hits) / static_cast<double>(n_interested);
    ++curve.items[b];
  }
  std::size_t total_items = 0;
  for (std::size_t b = 0; b < buckets; ++b) total_items += curve.items[b];
  for (std::size_t b = 0; b < buckets; ++b) {
    if (curve.items[b] > 0) curve.recall[b] /= static_cast<double>(curve.items[b]);
    if (total_items > 0) {
      curve.item_fraction[b] =
          static_cast<double>(curve.items[b]) / static_cast<double>(total_items);
    }
  }
  return curve;
}

}  // namespace whatsup::metrics
