// Evaluation metrics (paper §IV-C): precision, recall and F1-Score over
// dissemination outcomes, plus the derived analyses of §V-H (recall vs
// item popularity, per-user F1 vs sociability).
//
// Per-item precision/recall are macro-averaged over the measured items;
// F1 is the harmonic mean of the averaged precision and recall. The item
// source is excluded from both the reached and the interested sets (it
// trivially receives and likes its own item).
//
// Every entry point is overloaded for both reach-set representations:
// dense DynBitset vectors (centralized baselines, ground truth) and the
// tracker's hybrid sparse→dense sets. The optional ParallelExecutor fans
// the per-item / per-user-range reductions over the engine's worker pool;
// chunk boundaries depend only on the problem size and partial results
// merge in ascending order on the calling thread, so the result is
// bit-identical for any executor and thread count (see common/parallel.hpp).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/bitset.hpp"
#include "common/hybrid_set.hpp"
#include "common/parallel.hpp"
#include "dataset/workload.hpp"

namespace whatsup::metrics {

struct Scores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t items = 0;  // measured items contributing
};

double f1_score(double precision, double recall);

// Scores from per-item reached sets (tracker output or centralized
// baselines) against the workload ground truth.
Scores compute_scores(const data::Workload& workload,
                      const std::vector<DynBitset>& reached,
                      std::span<const ItemIdx> measured,
                      ParallelExecutor* exec = nullptr);
Scores compute_scores(const data::Workload& workload,
                      const std::vector<HybridSet>& reached,
                      std::span<const ItemIdx> measured,
                      ParallelExecutor* exec = nullptr);

// Per-user precision/recall/F1 over the measured items (Fig. 11). Users
// with no interested measured item get recall 1 by convention and are
// flagged in `valid` as false.
struct PerUserScores {
  std::vector<double> precision;
  std::vector<double> recall;
  std::vector<double> f1;
  std::vector<bool> valid;
};
PerUserScores per_user_scores(const data::Workload& workload,
                              const std::vector<DynBitset>& reached,
                              std::span<const ItemIdx> measured,
                              ParallelExecutor* exec = nullptr);
PerUserScores per_user_scores(const data::Workload& workload,
                              const std::vector<HybridSet>& reached,
                              std::span<const ItemIdx> measured,
                              ParallelExecutor* exec = nullptr);

// A half-open cycle range with a human-readable label. The scenario
// engine derives these from an event timeline (scenario::Timeline::windows)
// so recall/precision can be reported per phase around each event.
struct Window {
  Cycle begin = 0;
  Cycle end = 0;  // exclusive
  std::string label;
  friend bool operator==(const Window&, const Window&) = default;
};

// compute_scores restricted to the measured items published within one
// window (publish_at in [begin, end)); one entry per input window, in
// order. Windows with no measured items report zero `items` and zero
// scores.
struct WindowScores {
  Window window;
  Scores scores;
};
std::vector<WindowScores> windowed_scores(const data::Workload& workload,
                                          const std::vector<HybridSet>& reached,
                                          std::span<const ItemIdx> measured,
                                          std::span<const Window> windows,
                                          ParallelExecutor* exec = nullptr);

// Sociability (§V-H): a node's average ground-truth similarity to the `k`
// nodes most similar to it (binary cosine over like-vectors, which for
// full rated-everything profiles coincides with the WUP metric).
std::vector<double> sociability(const data::Workload& workload, std::size_t k = 15);

// Average recall per popularity bucket + the popularity distribution
// (Fig. 10). Buckets span [0, 1].
struct PopularityCurve {
  std::vector<double> center;         // bucket centers
  std::vector<double> recall;         // average recall of items in bucket
  std::vector<double> item_fraction;  // fraction of measured items in bucket
  std::vector<std::size_t> items;     // measured items per bucket
};
PopularityCurve recall_by_popularity(const data::Workload& workload,
                                     const std::vector<DynBitset>& reached,
                                     std::span<const ItemIdx> measured,
                                     std::size_t buckets = 10);
PopularityCurve recall_by_popularity(const data::Workload& workload,
                                     const std::vector<HybridSet>& reached,
                                     std::span<const ItemIdx> measured,
                                     std::size_t buckets = 10);

}  // namespace whatsup::metrics
