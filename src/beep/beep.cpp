#include "beep/beep.hpp"

#include <algorithm>

namespace whatsup::beep {

NodeId select_most_similar(const gossip::View& view, const Profile& item_profile,
                           Metric metric, Rng& rng,
                           std::span<const NodeId> excluded) {
  NodeId best = kNoNode;
  double best_score = -1.0;
  std::size_t ties = 0;
  for (const net::Descriptor& d : view.entries()) {
    if (std::find(excluded.begin(), excluded.end(), d.node) != excluded.end()) {
      continue;
    }
    const double score = similarity(metric, item_profile, d.profile_ref());
    if (score > best_score) {
      best_score = score;
      best = d.node;
      ties = 1;
    } else if (score == best_score) {
      // Reservoir-style uniform tie-breaking.
      ++ties;
      if (rng.index(ties) == 0) best = d.node;
    }
  }
  return best;
}

ForwardPlan plan_forward(Rng& rng, const BeepConfig& config, bool liked,
                         net::NewsPayload& news, const gossip::View& wup_view,
                         const gossip::View& rps_view) {
  ForwardPlan plan;
  if (!liked) {
    if (news.dislikes >= config.ttl) {
      plan.dropped_by_ttl = true;  // Alg. 2 lines 25/28-29
      return plan;
    }
    news.dislikes += 1;  // line 26
    for (int i = 0; i < config.f_dislike; ++i) {
      // Oriented picks exclude the targets already in the plan: without
      // the exclusion, every iteration re-selects the same most-similar
      // node and the duplicate filter caps the plan at one target no
      // matter how large f_dislike is. The random ablation branch keeps
      // its historical semantics (duplicates discarded, not redrawn).
      const NodeId target =
          config.orientation
              ? select_most_similar(rps_view, news.item_profile, config.metric,
                                    rng, plan.targets)
              : rps_view.random_member(rng);
      if (target == kNoNode) break;
      if (std::find(plan.targets.begin(), plan.targets.end(), target) ==
          plan.targets.end()) {
        plan.targets.push_back(target);
      }
    }
    return plan;
  }
  const int fanout = config.amplification ? config.f_like : 1;
  // Ids only: no reason to copy descriptors (and bump snapshot refcounts)
  // for a fanout pick.
  plan.targets =
      wup_view.random_members(rng, static_cast<std::size_t>(std::max(fanout, 0)));
  return plan;
}

}  // namespace whatsup::beep
