// BEEP — Biased EpidEmic Protocol (paper §III, Algorithm 2).
//
// A heterogeneous SIR gossip: the set and number of forwarding targets
// depend on the user's opinion.
//
//  * liked item  → AMPLIFICATION: forward to a uniformly random subset of
//    `fLIKE` members of the WUP view (orientation towards similar users is
//    implicit in the view itself; random selection within the view avoids
//    over-clustering, §III-B).
//  * disliked item → ORIENTATION + serendipity: if the dislike counter has
//    not reached the TTL, increment it and forward one copy to the RPS-view
//    node whose user profile is most similar to the ITEM profile (§III-A).
//
// The ablation switches expose each mechanism separately (used by
// bench/ablation_beep): with amplification off a liked item is forwarded to
// a single WUP neighbor; with orientation off a disliked item goes to a
// uniformly random RPS neighbor.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "gossip/view.hpp"
#include "net/message.hpp"
#include "profile/similarity.hpp"

namespace whatsup::beep {

struct BeepConfig {
  int f_like = 10;      // fanout for liked items (fLIKE)
  int f_dislike = 1;    // fanout for disliked items (fixed to 1 in the paper)
  int ttl = 4;          // max dislike hops per copy (BEEP TTL)
  Metric metric = Metric::kWup;  // metric for dislike orientation
  bool amplification = true;     // ablation: fLIKE vs 1 for liked items
  bool orientation = true;       // ablation: item-profile vs random dislike target
};

struct ForwardPlan {
  std::vector<NodeId> targets;
  bool dropped_by_ttl = false;  // disliked and d_I had reached the TTL
};

// Plans the targets of a forwarding action and updates `news.dislikes`
// (line 26 of Alg. 2). The caller sends one copy per target.
ForwardPlan plan_forward(Rng& rng, const BeepConfig& config, bool liked,
                         net::NewsPayload& news, const gossip::View& wup_view,
                         const gossip::View& rps_view);

// The orientation primitive (selectMostSimilarNode, Alg. 2 line 27):
// the view member whose profile maximizes similarity(item profile, member).
// Members listed in `excluded` are skipped — plan_forward passes the
// targets it already picked, so an f_dislike > 1 plan orients each copy
// towards a DISTINCT node instead of re-selecting the same best match.
NodeId select_most_similar(const gossip::View& view, const Profile& item_profile,
                           Metric metric, Rng& rng,
                           std::span<const NodeId> excluded = {});

}  // namespace whatsup::beep
