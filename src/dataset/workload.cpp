#include "dataset/workload.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "common/hash.hpp"

namespace whatsup::data {

double Workload::popularity(ItemIdx item) const {
  if (n_users == 0) return 0.0;
  return static_cast<double>(interested_in[item].count()) / static_cast<double>(n_users);
}

std::vector<std::vector<NodeId>> Workload::topic_subscribers() const {
  std::vector<DynBitset> subscribed(n_topics, DynBitset(n_users));
  for (const NewsSpec& spec : news) {
    const auto topic = static_cast<std::size_t>(spec.topic);
    interested_in[spec.index].for_each_set(
        [&](std::size_t user) { subscribed[topic].set(user); });
  }
  std::vector<std::vector<NodeId>> result(n_topics);
  for (std::size_t t = 0; t < n_topics; ++t) {
    result[t].reserve(subscribed[t].count());
    subscribed[t].for_each_set(
        [&](std::size_t user) { result[t].push_back(static_cast<NodeId>(user)); });
  }
  return result;
}

Profile Workload::full_profile(NodeId user) const {
  Profile profile;
  for (const NewsSpec& spec : news) {
    profile.set(spec.id, 0, likes(user, spec.index) ? 1.0 : 0.0);
  }
  return profile;
}

void Workload::schedule_publications(Cycle first, Cycle last, Rng& rng) {
  assert(last >= first);
  std::vector<std::size_t> order(news.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const auto span = static_cast<double>(last - first + 1);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const double t = static_cast<double>(rank) / static_cast<double>(order.size());
    news[order[rank]].publish_at = first + static_cast<Cycle>(t * span);
  }
}

void Workload::spread_publication_storms(Cycle window) {
  if (window <= 1) return;
  // Count of already-reassigned items per original burst cycle: the i-th
  // item (in ascending index order) of the burst at cycle c lands on
  // c + (i % window). Unscheduled items (publish_at == kNoCycle) stay put.
  std::unordered_map<Cycle, Cycle> seen;
  for (NewsSpec& spec : news) {
    if (spec.publish_at == kNoCycle) continue;
    const Cycle i = seen[spec.publish_at]++;
    spec.publish_at += i % window;
  }
}

ItemIdx Workload::append_unscheduled_items(std::size_t count, NodeId source, int topic) {
  const auto first = static_cast<ItemIdx>(news.size());
  for (std::size_t i = 0; i < count; ++i) {
    NewsSpec spec;
    spec.index = static_cast<ItemIdx>(news.size());
    spec.id = make_item_id(name + "-injected", spec.index);
    spec.source = source;
    spec.publish_at = kNoCycle;
    spec.topic = topic;
    news.push_back(spec);
    interested_in.emplace_back(n_users);
  }
  return first;
}

Workload Workload::subsample_users(std::size_t keep_users, Rng& rng) const {
  keep_users = std::min(keep_users, n_users);
  auto picked = rng.sample_indices(n_users, keep_users);
  std::sort(picked.begin(), picked.end());
  std::vector<NodeId> new_id(n_users, kNoNode);
  for (std::size_t rank = 0; rank < picked.size(); ++rank) {
    new_id[picked[rank]] = static_cast<NodeId>(rank);
  }

  Workload out;
  out.name = name + "-sub" + std::to_string(keep_users);
  out.n_users = keep_users;
  out.n_topics = n_topics;
  for (const NewsSpec& spec : news) {
    DynBitset interested(keep_users);
    std::size_t count = 0;
    interested_in[spec.index].for_each_set([&](std::size_t user) {
      if (new_id[user] != kNoNode) {
        interested.set(new_id[user]);
        ++count;
      }
    });
    if (count == 0) continue;  // nobody left who likes it
    NewsSpec copy = spec;
    copy.index = static_cast<ItemIdx>(out.news.size());
    copy.id = make_item_id(out.name, copy.index);
    if (new_id[spec.source] != kNoNode) {
      copy.source = new_id[spec.source];
    } else {
      // Re-source at a random interested survivor (the original submitter
      // was dropped by the subsample).
      const auto survivors = interested.indices();
      copy.source = static_cast<NodeId>(survivors[rng.index(survivors.size())]);
    }
    out.news.push_back(copy);
    out.interested_in.push_back(std::move(interested));
  }
  // The explicit social graph does not survive subsampling (not needed by
  // the deployment experiments).
  return out;
}

void Workload::validate() const {
  if (interested_in.size() != news.size()) {
    throw std::logic_error("workload: bitset/news size mismatch");
  }
  for (std::size_t i = 0; i < news.size(); ++i) {
    const NewsSpec& spec = news[i];
    if (spec.index != i) throw std::logic_error("workload: index mismatch");
    if (spec.source >= n_users) throw std::logic_error("workload: bad source");
    if (interested_in[i].size() != n_users) {
      throw std::logic_error("workload: bitset width mismatch");
    }
    if (!interested_in[i].test(spec.source)) {
      throw std::logic_error("workload: source does not like its item");
    }
    if (spec.topic < 0 || static_cast<std::size_t>(spec.topic) >= std::max<std::size_t>(n_topics, 1)) {
      throw std::logic_error("workload: topic out of range");
    }
  }
  if (social.has_value() && social->num_nodes() != n_users) {
    throw std::logic_error("workload: social graph size mismatch");
  }
}

}  // namespace whatsup::data
