#include "dataset/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/hash.hpp"
#include "graph/community.hpp"
#include "graph/generators.hpp"

namespace whatsup::data {

namespace {

// Geometric interpolation between the min and max community size, rescaled
// to sum to `total` (preserves the paper's skewed 31..1036 size spread).
std::vector<std::size_t> community_sizes(const SyntheticConfig& config) {
  const std::size_t k = std::max<std::size_t>(config.communities, 1);
  std::vector<double> raw(k);
  const double lo = static_cast<double>(config.min_community);
  const double hi = static_cast<double>(config.max_community);
  for (std::size_t c = 0; c < k; ++c) {
    const double t = k == 1 ? 0.0 : static_cast<double>(c) / static_cast<double>(k - 1);
    raw[c] = lo * std::pow(hi / lo, t);
  }
  const double raw_sum = std::accumulate(raw.begin(), raw.end(), 0.0);
  std::vector<std::size_t> sizes(k);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    sizes[c] = std::max<std::size_t>(
        3, static_cast<std::size_t>(std::lround(
               raw[c] / raw_sum * static_cast<double>(config.n_authors))));
    assigned += sizes[c];
  }
  // Absorb rounding drift in the largest community.
  auto& largest = *std::max_element(sizes.begin(), sizes.end());
  if (assigned < config.n_authors) {
    largest += config.n_authors - assigned;
  } else if (assigned > config.n_authors && largest > (assigned - config.n_authors) + 3) {
    largest -= assigned - config.n_authors;
  }
  return sizes;
}

}  // namespace

Workload make_synthetic(const SyntheticConfig& config, Rng& rng) {
  // 1. Collaboration graph with planted communities.
  const auto sizes = community_sizes(config);
  std::vector<int> planted;
  graph::UGraph g = graph::collaboration_graph(sizes, config.collab_per_node,
                                               config.bridge_prob, rng, planted);

  // 2. Community detection (the paper's Newman/CNM step).
  const graph::CommunityResult detected = graph::detect_communities(g);

  // 3. Keep detected communities above the noise floor; users are the
  //    members of kept communities, re-indexed densely.
  std::vector<int> kept_label(detected.count, -1);
  int next_label = 0;
  for (std::size_t c = 0; c < detected.count; ++c) {
    if (detected.sizes[c] >= config.min_detected) kept_label[c] = next_label++;
  }
  std::vector<NodeId> user_of_node(g.num_nodes(), kNoNode);
  std::vector<int> community_of_user;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int label = kept_label[static_cast<std::size_t>(detected.membership[v])];
    if (label < 0) continue;
    user_of_node[v] = static_cast<NodeId>(community_of_user.size());
    community_of_user.push_back(label);
  }
  const std::size_t n_users = community_of_user.size();
  const auto n_communities = static_cast<std::size_t>(next_label);

  Workload w;
  w.name = "synthetic-arxiv";
  w.n_users = n_users;
  w.n_topics = n_communities;

  // Member lists per community (for interest sets and source selection).
  std::vector<std::vector<NodeId>> members(n_communities);
  for (NodeId u = 0; u < n_users; ++u) {
    members[static_cast<std::size_t>(community_of_user[u])].push_back(u);
  }

  // 4. Items: an equal batch per community, random in-community sources;
  //    a user likes an item iff it belongs to her community (§IV-A).
  const std::size_t per_community =
      std::max<std::size_t>(1, config.total_items / std::max<std::size_t>(n_communities, 1));
  for (std::size_t c = 0; c < n_communities; ++c) {
    DynBitset interested(n_users);
    for (NodeId u : members[c]) interested.set(u);
    for (std::size_t k = 0; k < per_community; ++k) {
      NewsSpec spec;
      spec.index = static_cast<ItemIdx>(w.news.size());
      spec.id = make_item_id(w.name, spec.index);
      spec.topic = static_cast<int>(c);
      spec.source = members[c][rng.index(members[c].size())];
      w.news.push_back(spec);
      w.interested_in.push_back(interested);
    }
  }
  w.validate();
  return w;
}

}  // namespace whatsup::data
