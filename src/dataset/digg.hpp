// The Digg-style workload (§IV-A).
//
// The paper crawled Digg (750 users, 2500 news, 40 categories) and — to
// remove the cascade bias of the explicit follower graph — defined a user's
// interests as ALL items of the categories she submitted in. We regenerate
// that de-biased structure directly: Zipf-popular categories, users
// interested in a handful of categories (weighted towards popular ones),
// likes by category closure, plus a preferential-attachment follower graph
// for the cascading baseline.
#pragma once

#include "dataset/workload.hpp"

namespace whatsup::data {

struct DiggConfig {
  std::size_t users = 750;
  std::size_t items = 2500;
  std::size_t categories = 40;
  double category_zipf = 0.9;        // item-category popularity skew
  double mean_categories_per_user = 3.0;  // 1 + Poisson(mean-1) categories
  // Sparse follower graph (Barabási–Albert attachment): the paper's
  // cascades die out quickly (Table V recall 0.09) because the explicit
  // graph poorly covers interest communities — the likers subgraph must
  // stay subcritical for most categories.
  std::size_t follower_attach = 3;
};

Workload make_digg(const DiggConfig& config, Rng& rng);

}  // namespace whatsup::data
