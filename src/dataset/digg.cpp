#include "dataset/digg.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"
#include "graph/generators.hpp"

namespace whatsup::data {

namespace {

// Small Poisson sampler (inversion; means here are tiny).
std::size_t poisson(Rng& rng, double mean) {
  const double limit = std::exp(-mean);
  double product = rng.uniform();
  std::size_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng.uniform();
  }
  return count;
}

}  // namespace

Workload make_digg(const DiggConfig& config, Rng& rng) {
  Workload w;
  w.name = "digg";
  w.n_users = config.users;
  w.n_topics = config.categories;

  const ZipfDistribution category_pop(config.categories, config.category_zipf);

  // User interests: a few categories each, weighted towards the popular
  // ones (readers cluster on mainstream topics).
  std::vector<std::vector<bool>> interests(config.users,
                                           std::vector<bool>(config.categories, false));
  for (std::size_t u = 0; u < config.users; ++u) {
    const std::size_t n_cats = std::min(
        config.categories,
        1 + poisson(rng, std::max(config.mean_categories_per_user - 1.0, 0.0)));
    std::size_t chosen = 0;
    while (chosen < n_cats) {
      const std::size_t c = category_pop(rng);
      if (!interests[u][c]) {
        interests[u][c] = true;
        ++chosen;
      }
    }
  }

  // Per-category audience (users interested in the category).
  std::vector<std::vector<NodeId>> audience(config.categories);
  for (std::size_t u = 0; u < config.users; ++u) {
    for (std::size_t c = 0; c < config.categories; ++c) {
      if (interests[u][c]) audience[c].push_back(static_cast<NodeId>(u));
    }
  }

  // Items: category by Zipf; likes = category closure (the paper's
  // de-biasing); source = a random interested user (the submitter diggs
  // her own story). Categories with an empty audience are resampled.
  for (std::size_t i = 0; i < config.items; ++i) {
    std::size_t category = category_pop(rng);
    int guard = 0;
    while (audience[category].empty() && guard++ < 1024) category = category_pop(rng);
    if (audience[category].empty()) {
      // Degenerate configuration: give the category one reader.
      audience[category].push_back(static_cast<NodeId>(rng.index(config.users)));
      interests[audience[category][0]][category] = true;
    }
    NewsSpec spec;
    spec.index = static_cast<ItemIdx>(w.news.size());
    spec.id = make_item_id(w.name, spec.index);
    spec.topic = static_cast<int>(category);
    spec.source = audience[category][rng.index(audience[category].size())];
    DynBitset interested(config.users);
    for (NodeId u : audience[category]) interested.set(u);
    w.news.push_back(spec);
    w.interested_in.push_back(std::move(interested));
  }

  // Explicit follower graph for the cascading baseline.
  w.social = graph::barabasi_albert(config.users, config.follower_attach, rng);

  w.validate();
  return w;
}

}  // namespace whatsup::data
