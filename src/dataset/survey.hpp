// The WhatsUp-survey workload (§IV-A).
//
// The paper surveyed ~120 colleagues on news items drawn from RSS feeds
// across ~a dozen topics, then replicated every user and item 4× to reach
// Table I's 480 users / 1000 news. The raw responses are not available;
// we regenerate a like-matrix with the statistical properties the
// evaluation exercises:
//
//  * latent-topic structure — users draw sparse Dirichlet interest vectors
//    over `topics`; each item belongs to one (Zipf-popular) topic — this
//    produces the community overlap and the sociability spread of Fig. 11;
//  * a second latent dimension ("style": analysis vs. gossip vs. visual,
//    ...) adds intra-topic taste structure — the paper's WhatsUp reaches a
//    precision ABOVE the topic-granularity ceiling of C-Pub/Sub (Table V),
//    which is only possible if likes carry finer-than-topic signal;
//  * per-item popularity drawn from a Beta calibrated so the mean matches
//    the paper's homogeneous-gossip precision (~0.35, Table III) and the
//    distribution's shape matches Fig. 10 (mass concentrated below 0.5);
//  * exact ×4 replication of users and items, as in the paper.
#pragma once

#include "dataset/workload.hpp"

namespace whatsup::data {

struct SurveyConfig {
  std::size_t base_users = 120;
  std::size_t base_items = 250;  // 250×4 = Table I's 1000 news
  std::size_t replication = 4;
  std::size_t topics = 12;
  double dirichlet_alpha = 0.25;  // sparsity of user interest vectors
  double topic_zipf = 0.8;        // item-topic popularity skew
  double popularity_beta_a = 1.4;  // Beta(a,b): mean ≈ 0.35, mode < 0.2
  double popularity_beta_b = 2.6;
  // Share of the like probability driven by topic affinity (the rest is
  // item-wide appeal); < 1 lets broadly popular items reach everyone, as
  // the popular tail of Fig. 10 requires.
  double affinity_mix = 0.9;
  // Intra-topic taste dimension: every item has one of `styles` styles and
  // users weight styles by a Dirichlet draw; `style_mix` is the share of
  // the like probability driven by style affinity.
  std::size_t styles = 4;
  double style_dirichlet_alpha = 0.5;
  double style_mix = 0.55;
  // Occasional taste-blind breaking news: liked with a (high) popularity
  // drawn from Beta(universal_beta_a, universal_beta_b) by everyone alike.
  // Populates the popular tail of Fig. 10.
  double universal_prob = 0.05;
  double universal_beta_a = 4.0;
  double universal_beta_b = 1.5;
};

Workload make_survey(const SurveyConfig& config, Rng& rng);

}  // namespace whatsup::data
