// Workloads: the ground truth driving every experiment.
//
// A workload fixes (a) the user population, (b) the news items with their
// sources and (optionally scheduled) publication cycles, (c) the boolean
// like-matrix `likes(user, item)` — the opinions users WOULD express when
// exposed to each item — and, where applicable, (d) an explicit social
// graph (Digg cascades) and per-item topics (C-Pub/Sub subscriptions).
//
// The paper's three datasets (Table I) are regenerated synthetically with
// matched statistics; see DESIGN.md §1 for the substitution arguments.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bitset.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "graph/ugraph.hpp"
#include "profile/profile.hpp"

namespace whatsup::data {

struct NewsSpec {
  ItemIdx index = kNoItem;
  ItemId id = 0;
  NodeId source = kNoNode;
  Cycle publish_at = kNoCycle;  // assigned by schedule_publications
  int topic = 0;                // community / category / latent topic
};

class Workload {
 public:
  std::string name;
  std::size_t n_users = 0;
  std::size_t n_topics = 0;
  std::vector<NewsSpec> news;            // position == NewsSpec::index
  std::vector<DynBitset> interested_in;  // per item, over users
  std::optional<graph::UGraph> social;   // explicit social network (Digg)

  std::size_t num_users() const { return n_users; }
  std::size_t num_items() const { return news.size(); }

  bool likes(NodeId user, ItemIdx item) const {
    return interested_in[item].test(user);
  }
  const DynBitset& interested(ItemIdx item) const { return interested_in[item]; }

  // Fraction of users interested in the item (Fig. 10's popularity axis).
  double popularity(ItemIdx item) const;

  int topic_of(ItemIdx item) const { return news[item].topic; }

  // Explicit-pub/sub subscriptions (§IV-B): a user subscribes to a topic
  // if she likes at least one item associated with that topic.
  std::vector<std::vector<NodeId>> topic_subscribers() const;

  // Ground-truth profile of a user over ALL items (binary scores, common
  // timestamp): the basis of the sociability analysis (Fig. 11).
  Profile full_profile(NodeId user) const;

  // Assigns publication cycles spread uniformly over [first, last] (items
  // shuffled first so topics interleave), sources untouched.
  void schedule_publications(Cycle first, Cycle last, Rng& rng);

  // Publication-storm spreading: staggers each cycle's publication burst
  // over the next `window` cycles — the i-th item of a cycle's burst moves
  // to publish_at + (i % window). A dense calendar (many items per cycle)
  // otherwise makes every source snapshot, encode, and fan out item
  // profiles in the SAME cycle, and that synchronized burst — not the
  // steady state — sets the peak-RSS envelope. Item order within a burst is
  // calendar order (ascending index), so the result is a pure function of
  // the already-assigned calendar: deterministic, identical across thread
  // counts and partitionings. No-op for window <= 1.
  void spread_publication_storms(Cycle window);

  // Appends `count` externally-injected items that NO user likes and that
  // the publication calendar never schedules (publish_at stays kNoCycle,
  // so they are excluded from every measured-item pass). The scenario
  // engine uses this for adversarial spam, whose `source` ids may lie
  // beyond the honest population — validate() is not expected to hold
  // afterwards. Returns the index of the first appended item.
  ItemIdx append_unscheduled_items(std::size_t count, NodeId source, int topic = 0);

  // Restricts the workload to `keep_users` uniformly sampled users
  // (re-indexing them densely) and drops items left with no interested
  // user or whose source was removed (re-indexing item ids too). Used for
  // the 245-user deployment experiments (§V-D).
  Workload subsample_users(std::size_t keep_users, Rng& rng) const;

  // Internal consistency: every item has a valid in-range source that
  // likes it, bitset sizes match, topics in range. Aborts on violation.
  void validate() const;
};

}  // namespace whatsup::data
