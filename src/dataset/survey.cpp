#include "dataset/survey.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/hash.hpp"

namespace whatsup::data {

Workload make_survey(const SurveyConfig& config, Rng& rng) {
  const std::size_t base_users = config.base_users;
  const std::size_t base_items = config.base_items;
  const std::size_t rep = std::max<std::size_t>(config.replication, 1);

  // User interest vectors over latent topics.
  std::vector<double> alpha(config.topics, config.dirichlet_alpha);
  std::vector<std::vector<double>> theta(base_users);
  for (std::size_t u = 0; u < base_users; ++u) theta[u] = rng.dirichlet(alpha);

  // Mean interest per topic (for popularity normalisation).
  std::vector<double> topic_mean(config.topics, 0.0);
  for (std::size_t u = 0; u < base_users; ++u) {
    for (std::size_t t = 0; t < config.topics; ++t) topic_mean[t] += theta[u][t];
  }
  for (double& m : topic_mean) m /= static_cast<double>(base_users);

  // Style preferences (intra-topic taste).
  std::vector<double> style_alpha(config.styles, config.style_dirichlet_alpha);
  std::vector<std::vector<double>> phi(base_users);
  for (std::size_t u = 0; u < base_users; ++u) phi[u] = rng.dirichlet(style_alpha);
  std::vector<double> style_mean(config.styles, 0.0);
  for (std::size_t u = 0; u < base_users; ++u) {
    for (std::size_t s = 0; s < config.styles; ++s) style_mean[s] += phi[u][s];
  }
  for (double& m : style_mean) m /= static_cast<double>(base_users);

  const ZipfDistribution topic_pop(config.topics, config.topic_zipf);

  // Base like-matrix.
  std::vector<int> item_topic(base_items);
  std::vector<std::vector<bool>> base_likes(base_items,
                                            std::vector<bool>(base_users, false));
  for (std::size_t i = 0; i < base_items; ++i) {
    const std::size_t topic = topic_pop(rng);
    const std::size_t style = rng.index(config.styles);
    item_topic[i] = static_cast<int>(topic);
    // Target popularity ~ Beta(a, b) via two gammas.
    const bool universal = rng.bernoulli(config.universal_prob);
    const double ga =
        rng.gamma(universal ? config.universal_beta_a : config.popularity_beta_a);
    const double gb =
        rng.gamma(universal ? config.universal_beta_b : config.popularity_beta_b);
    const double target_pop = ga / std::max(ga + gb, 1e-12);
    std::size_t liked = 0;
    for (std::size_t u = 0; u < base_users; ++u) {
      if (universal) {
        // Taste-blind breaking news.
        if (rng.bernoulli(target_pop)) {
          base_likes[i][u] = true;
          ++liked;
        }
        continue;
      }
      // Like probability: item popularity modulated by the user's affinity
      // for the item's topic AND style (each normalised to mean 1 over
      // users, so E_u[p] ~= target_pop), blended with an item-wide appeal
      // term. The blend weights shrink quadratically with popularity:
      // breaking-news items appeal universally, niche items stay strictly
      // taste-driven (gives Fig. 10 its popular tail).
      const double t_aff = theta[u][topic] / std::max(topic_mean[topic], 1e-9);
      const double s_aff = phi[u][style] / std::max(style_mean[style], 1e-9);
      const double damp = 1.0 - target_pop * target_pop;
      const double t_mix = config.affinity_mix * damp;
      const double s_mix = config.style_mix * damp;
      const double p = std::clamp(target_pop * ((1.0 - t_mix) + t_mix * t_aff) *
                                      ((1.0 - s_mix) + s_mix * s_aff),
                                  0.0, 1.0);
      if (rng.bernoulli(p)) {
        base_likes[i][u] = true;
        ++liked;
      }
    }
    if (liked == 0) {
      // Every surveyed item had at least one fan; give it its best match.
      std::size_t best = 0;
      for (std::size_t u = 1; u < base_users; ++u) {
        if (theta[u][topic] > theta[best][topic]) best = u;
      }
      base_likes[i][best] = true;
    }
  }

  // ×`rep` replication of users and items: instance (u,r) likes instance
  // (i,s) iff base u likes base i (all cross pairs, as the scaled survey
  // exposes every user instance to every item instance).
  Workload w;
  w.name = "survey";
  w.n_users = base_users * rep;
  w.n_topics = config.topics;
  for (std::size_t s = 0; s < rep; ++s) {
    for (std::size_t i = 0; i < base_items; ++i) {
      NewsSpec spec;
      spec.index = static_cast<ItemIdx>(w.news.size());
      spec.id = make_item_id(w.name, spec.index);
      spec.topic = item_topic[i];
      DynBitset interested(w.n_users);
      for (std::size_t r = 0; r < rep; ++r) {
        for (std::size_t u = 0; u < base_users; ++u) {
          if (base_likes[i][u]) interested.set(r * base_users + u);
        }
      }
      const auto fans = interested.indices();
      spec.source = static_cast<NodeId>(fans[rng.index(fans.size())]);
      w.news.push_back(spec);
      w.interested_in.push_back(std::move(interested));
    }
  }
  w.validate();
  return w;
}

}  // namespace whatsup::data
