// The Arxiv-style synthetic workload (§IV-A).
//
// The paper derives clearly-separated interest communities from the Arxiv
// collaboration graph using Newman's community-detection algorithm: 21
// communities ranging from 31 to 1036 authors, with a fixed batch of items
// per community (a user likes an item iff it belongs to her community).
//
// We do not have the Arxiv trace, so we synthesize a collaboration-style
// graph with planted communities spanning the same size range, run our own
// CNM implementation on it, and define interests from the DETECTED
// communities — exercising the same pipeline end to end.
#pragma once

#include <cstdint>

#include "dataset/workload.hpp"

namespace whatsup::data {

struct SyntheticConfig {
  std::size_t n_authors = 3703;       // collaboration graph size (paper: 3703)
  std::size_t communities = 21;       // planted community count
  std::size_t min_community = 31;     // paper's smallest community
  std::size_t max_community = 1036;   // paper's largest community
  std::size_t total_items = 2000;     // "about 2000" news items
  double collab_per_node = 2.2;       // co-authorship triangles per author
  double bridge_prob = 0.02;          // cross-community edges per author
  std::size_t min_detected = 10;      // drop detected communities below this
};

Workload make_synthetic(const SyntheticConfig& config, Rng& rng);

}  // namespace whatsup::data
