// C-WhatsUp (§IV-B): the centralized variant of WhatsUp with global
// knowledge, used in Fig. 9 to quantify the cost of decentralization.
//
// A central server holds every user profile and one global item profile
// per item, all updated instantaneously. When a user LIKES an item, the
// server delivers it to (a) the fLIKE users whose profiles are closest to
// the liker's (complete-search cosine), and (b) the fLIKE users whose
// profiles have the highest correlation with the ITEM profile. When a user
// DISLIKES an item, the server presents it to the fDISLIKE users whose
// profiles are most similar to the item profile, up to TTL times per item.
// Deliveries are deduplicated; message count = number of deliveries.
#pragma once

#include <vector>

#include "common/bitset.hpp"
#include "common/rng.hpp"
#include "dataset/workload.hpp"
#include "profile/similarity.hpp"

namespace whatsup::baselines {

struct CWhatsUpConfig {
  int f_like = 10;
  int f_dislike = 1;
  int ttl = 4;
  Cycle profile_window = 13;
};

struct CWhatsUpResult {
  std::vector<DynBitset> reached;  // per item (excluding the source)
  std::size_t messages = 0;
};

// Processes items in publish order (schedule_publications must have run);
// user profiles persist across items, subject to the profile window.
CWhatsUpResult run_cwhatsup(const data::Workload& workload, const CWhatsUpConfig& config,
                            Rng& rng);

}  // namespace whatsup::baselines
