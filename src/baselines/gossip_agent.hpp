// Homogeneous gossip baseline (Table III's "Gossip" row): a standard SIR
// epidemic over the RPS overlay. Every node forwards each item it receives
// for the first time to `fanout` uniformly random RPS members — regardless
// of its opinion. Delivers to (nearly) everyone: recall ~1, precision =
// the dataset's mean popularity.
#pragma once

#include <unordered_set>

#include "gossip/rps.hpp"
#include "sim/engine.hpp"
#include "sim/opinions.hpp"

namespace whatsup::baselines {

class GossipAgent : public sim::Agent {
 public:
  GossipAgent(NodeId self, int fanout, int rps_view_size, Cycle rps_period,
              const sim::Opinions& opinions);

  void on_cycle(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const net::Message& message) override;
  void publish(sim::Context& ctx, ItemIdx index, ItemId id) override;

  void bootstrap_rps(std::vector<net::Descriptor> seed);
  const gossip::View& rps_view() const { return rps_.view(); }

 private:
  void spread(sim::Context& ctx, net::NewsPayload news, bool liked);

  NodeId self_;
  int fanout_;
  const sim::Opinions* opinions_;
  Profile profile_;  // stays empty; RPS descriptors still carry it
  gossip::Rps rps_;
  std::unordered_set<ItemId> seen_;
};

}  // namespace whatsup::baselines
