#include "baselines/cf_agent.hpp"

namespace whatsup::baselines {

CfAgent::CfAgent(NodeId self, int k, Metric metric, const Params& params,
                 const sim::Opinions& opinions)
    : self_(self),
      params_(params),
      opinions_(&opinions),
      rps_(self, static_cast<std::size_t>(params.rps_view_size), params.rps_period),
      knn_(self, static_cast<std::size_t>(k), metric, params.wup_period) {}

void CfAgent::bootstrap_rps(std::vector<net::Descriptor> seed) {
  rps_.bootstrap(std::move(seed));
}

void CfAgent::on_cycle(sim::Context& ctx) {
  profile_.purge_older_than(ctx.now() - params_.profile_window);
  rps_.step(ctx, profile_);
  knn_.step(ctx, profile_, rps_.view());
}

void CfAgent::on_message(sim::Context& ctx, const net::Message& message) {
  switch (message.type) {
    case net::MsgType::kRpsRequest:
      rps_.on_request(ctx, message.view(), profile_);
      break;
    case net::MsgType::kRpsReply:
      rps_.on_reply(ctx, message.view());
      break;
    case net::MsgType::kWupRequest:
      knn_.on_request(ctx, message.view(), profile_, rps_.view());
      break;
    case net::MsgType::kWupReply:
      knn_.on_reply(ctx, message.view(), profile_, rps_.view());
      break;
    case net::MsgType::kNews:
      handle_news(ctx, message.news());
      break;
    default:
      break;  // reliability-layer control traffic; CF runs without it
  }
}

void CfAgent::handle_news(sim::Context& ctx, net::NewsPayload news) {
  if (!seen_.insert(news.id).second) return;
  const bool liked = opinions_->likes(self_, news.index);
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_delivery(self_, news.index, news.hops, false, 0);
    obs->on_opinion(self_, news.index, liked);
  }
  profile_.set(news.id, news.created, liked ? 1.0 : 0.0);
  if (!liked) {
    // CF takes no action on disliked items (§IV-B).
    if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
      obs->on_forward(self_, news.index, news.hops, false, 0);
    }
    return;
  }
  forward_to_neighbors(ctx, std::move(news));
}

void CfAgent::forward_to_neighbors(sim::Context& ctx, net::NewsPayload news) {
  // Forward to ALL k nearest neighbors (the clustering view).
  const auto targets = knn_.view().members();
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_forward(self_, news.index, news.hops, true, targets.size());
  }
  news.hops += 1;
  news.via_dislike = false;
  // CF messages do not carry item profiles (no orientation mechanism).
  news.item_profile.clear();
  for (NodeId target : targets) {
    ctx.send(target, net::MsgType::kNews, news);
  }
}

void CfAgent::publish(sim::Context& ctx, ItemIdx index, ItemId id) {
  if (!seen_.insert(id).second) return;
  profile_.set(id, ctx.now(), 1.0);
  net::NewsPayload news;
  news.id = id;
  news.index = index;
  news.created = ctx.now();
  news.origin = self_;
  forward_to_neighbors(ctx, std::move(news));
}

}  // namespace whatsup::baselines
