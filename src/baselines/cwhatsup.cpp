#include "baselines/cwhatsup.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace whatsup::baselines {

namespace {

// Top-k users by `score`, excluding already-reached users and `exclude`.
// Slots left by zero-evidence candidates are filled with random unreached
// users: at cold start every profile is empty and complete search has no
// signal, yet the server must still seed dissemination (the centralized
// analogue of gossip's bootstrap randomness).
std::vector<NodeId> top_k(const std::vector<double>& score, const DynBitset& reached,
                          NodeId exclude, int k, Rng& rng) {
  std::vector<NodeId> candidates;
  std::vector<NodeId> zero_evidence;
  candidates.reserve(score.size());
  for (NodeId u = 0; u < score.size(); ++u) {
    if (u == exclude || reached.test(u)) continue;
    if (score[u] > 0.0) {
      candidates.push_back(u);
    } else {
      zero_evidence.push_back(u);
    }
  }
  const auto want = static_cast<std::size_t>(std::max(k, 0));
  const auto keep = std::min(want, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(keep),
                    candidates.end(),
                    [&score](NodeId a, NodeId b) { return score[a] > score[b]; });
  candidates.resize(keep);
  while (candidates.size() < want && !zero_evidence.empty()) {
    const std::size_t pick = rng.index(zero_evidence.size());
    candidates.push_back(zero_evidence[pick]);
    zero_evidence[pick] = zero_evidence.back();
    zero_evidence.pop_back();
  }
  return candidates;
}

}  // namespace

CWhatsUpResult run_cwhatsup(const data::Workload& workload, const CWhatsUpConfig& config,
                            Rng& rng) {
  const std::size_t n_users = workload.num_users();
  CWhatsUpResult result;
  result.reached.assign(workload.num_items(), DynBitset(n_users));

  std::vector<Profile> user_profile(n_users);

  // Items in publish order; unscheduled items fall back to index order.
  std::vector<ItemIdx> order(workload.num_items());
  std::iota(order.begin(), order.end(), ItemIdx{0});
  std::stable_sort(order.begin(), order.end(), [&workload](ItemIdx a, ItemIdx b) {
    return workload.news[a].publish_at < workload.news[b].publish_at;
  });

  for (ItemIdx item : order) {
    const data::NewsSpec& spec = workload.news[item];
    const Cycle now = spec.publish_at == kNoCycle ? 0 : spec.publish_at;
    const Cycle cutoff = now - config.profile_window;

    Profile item_profile;  // one GLOBAL item profile (instantaneous updates)
    DynBitset& reached = result.reached[item];
    int dislike_budget = config.ttl;

    std::deque<NodeId> queue;
    auto enqueue = [&](NodeId user) {
      if (user == spec.source || reached.test(user)) return;
      reached.set(user);
      ++result.messages;
      queue.push_back(user);
    };

    // The source likes its own item and seeds the process.
    user_profile[spec.source].purge_older_than(cutoff);
    user_profile[spec.source].set(spec.id, now, 1.0);
    item_profile.fold_profile(user_profile[spec.source]);

    auto select_and_deliver = [&](NodeId liker, bool liked) {
      if (liked) {
        // (a) complete-search cosine around the liker ...
        std::vector<double> by_user(n_users, 0.0);
        for (NodeId u = 0; u < n_users; ++u) {
          if (u == liker || reached.test(u)) continue;
          user_profile[u].purge_older_than(cutoff);
          by_user[u] = cosine_similarity(user_profile[liker], user_profile[u]);
        }
        for (NodeId t : top_k(by_user, reached, spec.source, config.f_like, rng)) enqueue(t);
        // (b) ... plus the users best correlated with the item profile.
        std::vector<double> by_item(n_users, 0.0);
        for (NodeId u = 0; u < n_users; ++u) {
          if (reached.test(u)) continue;
          by_item[u] = similarity(Metric::kWup, item_profile, user_profile[u]);
        }
        for (NodeId t : top_k(by_item, reached, spec.source, config.f_like, rng)) enqueue(t);
      } else if (dislike_budget > 0) {
        --dislike_budget;
        std::vector<double> by_item(n_users, 0.0);
        for (NodeId u = 0; u < n_users; ++u) {
          if (reached.test(u)) continue;
          user_profile[u].purge_older_than(cutoff);
          by_item[u] = similarity(Metric::kWup, item_profile, user_profile[u]);
        }
        for (NodeId t : top_k(by_item, reached, spec.source, config.f_dislike, rng)) enqueue(t);
      }
    };

    select_and_deliver(spec.source, /*liked=*/true);

    while (!queue.empty()) {
      const NodeId user = queue.front();
      queue.pop_front();
      const bool liked = workload.likes(user, item);
      user_profile[user].purge_older_than(cutoff);
      user_profile[user].set(spec.id, now, liked ? 1.0 : 0.0);
      if (liked) item_profile.fold_profile(user_profile[user]);
      select_and_deliver(user, liked);
    }
  }
  return result;
}

}  // namespace whatsup::baselines
