// Decentralized collaborative filtering baseline (§IV-B): nearest-neighbor
// CF over the same gossip substrate. The node maintains its k closest
// neighbors (CF-WUP with the WUP metric, CF-Cos with cosine); when it
// receives an item it LIKES it forwards it to all k of them. It takes no
// action on disliked items — no orientation, no amplification, no TTL.
#pragma once

#include <unordered_set>

#include "gossip/clustering_protocol.hpp"
#include "gossip/rps.hpp"
#include "sim/engine.hpp"
#include "sim/opinions.hpp"
#include "whatsup/params.hpp"

namespace whatsup::baselines {

class CfAgent : public sim::Agent {
 public:
  // `k` is both the clustering view size and the like-forward fanout.
  CfAgent(NodeId self, int k, Metric metric, const Params& params,
          const sim::Opinions& opinions);

  void on_cycle(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const net::Message& message) override;
  void publish(sim::Context& ctx, ItemIdx index, ItemId id) override;

  void bootstrap_rps(std::vector<net::Descriptor> seed);
  const gossip::View& rps_view() const { return rps_.view(); }
  const gossip::View& knn_view() const { return knn_.view(); }
  const Profile& user_profile() const { return profile_; }

 private:
  void handle_news(sim::Context& ctx, net::NewsPayload news);
  void forward_to_neighbors(sim::Context& ctx, net::NewsPayload news);

  NodeId self_;
  Params params_;
  const sim::Opinions* opinions_;
  Profile profile_;
  gossip::Rps rps_;
  gossip::ClusteringProtocol knn_;
  std::unordered_set<ItemId> seen_;
};

}  // namespace whatsup::baselines
