// Explicit social cascading (§IV-B): the Digg/Twitter dissemination model.
// Whenever a node likes (diggs) an item, it forwards it to ALL of its
// explicit social neighbors. Nothing happens on a dislike. No gossip
// layers: the topology is the static follower graph.
#pragma once

#include <unordered_set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/opinions.hpp"

namespace whatsup::baselines {

class CascadeAgent : public sim::Agent {
 public:
  CascadeAgent(NodeId self, std::vector<NodeId> friends, const sim::Opinions& opinions);

  void on_cycle(sim::Context& /*ctx*/) override {}
  void on_message(sim::Context& ctx, const net::Message& message) override;
  void publish(sim::Context& ctx, ItemIdx index, ItemId id) override;

 private:
  void cascade(sim::Context& ctx, net::NewsPayload news);

  NodeId self_;
  std::vector<NodeId> friends_;
  const sim::Opinions* opinions_;
  std::unordered_set<ItemId> seen_;
};

}  // namespace whatsup::baselines
