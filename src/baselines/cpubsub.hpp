// C-Pub/Sub (§IV-B): the ideal centralized topic-based publish/subscribe
// baseline. A user subscribes to a topic if she likes at least one item
// associated with it; every item is delivered to ALL subscribers of its
// topic along a spanning tree (one message per subscriber — the minimal
// message complexity). Recall is 1 by construction; precision is limited
// only by topic granularity. Evaluated in closed form — no simulation.
#pragma once

#include <span>

#include "dataset/workload.hpp"

namespace whatsup::baselines {

struct CentralizedResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t messages = 0;  // news deliveries (spanning-tree edges)
};

// Scores macro-averaged over `measured` items; the source is excluded from
// both the reached and the interested sets (as in the simulated runs).
CentralizedResult evaluate_cpubsub(const data::Workload& workload,
                                   std::span<const ItemIdx> measured);

}  // namespace whatsup::baselines
