#include "baselines/cpubsub.hpp"

#include <vector>

namespace whatsup::baselines {

CentralizedResult evaluate_cpubsub(const data::Workload& workload,
                                   std::span<const ItemIdx> measured) {
  CentralizedResult result;
  if (measured.empty()) return result;

  // Subscription bitsets per topic.
  std::vector<DynBitset> subscribers(workload.n_topics, DynBitset(workload.n_users));
  for (const data::NewsSpec& spec : workload.news) {
    workload.interested(spec.index).for_each_set([&](std::size_t user) {
      subscribers[static_cast<std::size_t>(spec.topic)].set(user);
    });
  }

  double precision_sum = 0.0;
  double recall_sum = 0.0;
  std::size_t scored = 0;
  for (ItemIdx item : measured) {
    const data::NewsSpec& spec = workload.news[item];
    const DynBitset& reached_set = subscribers[static_cast<std::size_t>(spec.topic)];
    const DynBitset& interested_set = workload.interested(item);

    std::size_t reached = reached_set.count();
    std::size_t interested = interested_set.count();
    std::size_t hit = reached_set.intersect_count(interested_set);
    // Exclude the source (it trivially likes and "receives" its item).
    if (reached_set.test(spec.source)) --reached;
    if (interested_set.test(spec.source)) --interested;
    if (reached_set.test(spec.source) && interested_set.test(spec.source)) --hit;

    result.messages += reached;  // one tree edge per subscriber
    if (reached > 0) precision_sum += static_cast<double>(hit) / static_cast<double>(reached);
    if (interested > 0) recall_sum += static_cast<double>(hit) / static_cast<double>(interested);
    ++scored;
  }
  result.precision = precision_sum / static_cast<double>(scored);
  result.recall = recall_sum / static_cast<double>(scored);
  result.f1 = (result.precision + result.recall) > 0.0
                  ? 2.0 * result.precision * result.recall /
                        (result.precision + result.recall)
                  : 0.0;
  return result;
}

}  // namespace whatsup::baselines
