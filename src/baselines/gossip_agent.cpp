#include "baselines/gossip_agent.hpp"

namespace whatsup::baselines {

GossipAgent::GossipAgent(NodeId self, int fanout, int rps_view_size, Cycle rps_period,
                         const sim::Opinions& opinions)
    : self_(self),
      fanout_(fanout),
      opinions_(&opinions),
      rps_(self, static_cast<std::size_t>(rps_view_size), rps_period) {}

void GossipAgent::bootstrap_rps(std::vector<net::Descriptor> seed) {
  rps_.bootstrap(std::move(seed));
}

void GossipAgent::on_cycle(sim::Context& ctx) { rps_.step(ctx, profile_); }

void GossipAgent::on_message(sim::Context& ctx, const net::Message& message) {
  switch (message.type) {
    case net::MsgType::kRpsRequest:
      rps_.on_request(ctx, message.view(), profile_);
      break;
    case net::MsgType::kRpsReply:
      rps_.on_reply(ctx, message.view());
      break;
    case net::MsgType::kNews: {
      net::NewsPayload news = message.news();
      if (!seen_.insert(news.id).second) return;
      const bool liked = opinions_->likes(self_, news.index);
      if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
        obs->on_delivery(self_, news.index, news.hops, false, 0);
        obs->on_opinion(self_, news.index, liked);
      }
      spread(ctx, std::move(news), liked);
      break;
    }
    default:
      break;  // no WUP layer in plain gossip
  }
}

void GossipAgent::publish(sim::Context& ctx, ItemIdx index, ItemId id) {
  if (!seen_.insert(id).second) return;
  net::NewsPayload news;
  news.id = id;
  news.index = index;
  news.created = ctx.now();
  news.origin = self_;
  spread(ctx, std::move(news), /*liked=*/true);
}

void GossipAgent::spread(sim::Context& ctx, net::NewsPayload news, bool liked) {
  // Infect-and-die: forward once to `fanout` random peers, opinion-blind.
  // Ids only — same sampling stream as random_subset, no descriptor copies.
  const auto targets =
      rps_.view().random_members(ctx.rng(), static_cast<std::size_t>(fanout_));
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_forward(self_, news.index, news.hops, liked, targets.size());
  }
  news.hops += 1;
  news.via_dislike = false;
  for (const NodeId target : targets) {
    ctx.send(target, net::MsgType::kNews, news);
  }
}

}  // namespace whatsup::baselines
