#include "baselines/cascade_agent.hpp"

namespace whatsup::baselines {

CascadeAgent::CascadeAgent(NodeId self, std::vector<NodeId> friends,
                           const sim::Opinions& opinions)
    : self_(self), friends_(std::move(friends)), opinions_(&opinions) {}

void CascadeAgent::on_message(sim::Context& ctx, const net::Message& message) {
  if (message.type != net::MsgType::kNews) return;
  net::NewsPayload news = message.news();
  if (!seen_.insert(news.id).second) return;
  const bool liked = opinions_->likes(self_, news.index);
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_delivery(self_, news.index, news.hops, false, 0);
    obs->on_opinion(self_, news.index, liked);
  }
  if (!liked) return;  // only diggs propagate
  cascade(ctx, std::move(news));
}

void CascadeAgent::publish(sim::Context& ctx, ItemIdx index, ItemId id) {
  if (!seen_.insert(id).second) return;
  net::NewsPayload news;
  news.id = id;
  news.index = index;
  news.created = ctx.now();
  news.origin = self_;
  cascade(ctx, std::move(news));
}

void CascadeAgent::cascade(sim::Context& ctx, net::NewsPayload news) {
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_forward(self_, news.index, news.hops, true, friends_.size());
  }
  news.hops += 1;
  news.via_dislike = false;
  for (NodeId friend_id : friends_) {
    ctx.send(friend_id, net::MsgType::kNews, news);
  }
}

}  // namespace whatsup::baselines
