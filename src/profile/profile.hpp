// Profiles (paper §II-B/§II-C): sets of <item id, timestamp, score> triplets
// with a single entry per item.
//
//  * User profiles carry binary scores (1 = like, 0 = dislike) and are
//    updated whenever the user opines on an item (Alg. 1 lines 5/7/14).
//  * Item profiles carry real scores in [0,1], built by aggregating the
//    profiles of the users who liked the item along its dissemination path
//    (`fold` implements addToNewsProfile: average with the existing score,
//    insert otherwise).
//
// Both are purged of entries older than the profile window (§II-E).
//
// Layout: structure-of-arrays (parallel id / timestamp / score arrays,
// all sorted by ascending id). The similarity kernels stream the id and
// score arrays only, so the merge loop touches 8-byte lanes instead of
// 24-byte structs. The arrays are small-buffer-optimized (kInlineEntries
// inline slots each): profiles at or below that size live entirely inside
// the Profile object, so copying or CoW-cloning them performs no heap
// allocation (see docs/perf.md, "Payload memory"). Profiles additionally
// carry:
//
//  * a content `version()` — a globally unique stamp bumped on every
//    content change. Equal versions imply equal contents (copies inherit
//    the stamp; empty profiles are normalized to version 0), which is what
//    the descriptor snapshot cache and the similarity memo key on;
//  * an incrementally maintained `liked_count()` (exact integer math);
//  * a lazily cached `norm()`, recomputed with the same left-to-right
//    summation as a fresh scan so cached and fresh values are bit-equal
//    (a running norm² under removals would drift in the last ulp and
//    break fixed-seed reproducibility).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "common/ids.hpp"
#include "common/small_vector.hpp"

namespace whatsup {

struct ProfileEntry {
  ItemId id = 0;
  Cycle timestamp = 0;
  double score = 0.0;

  bool operator==(const ProfileEntry&) const = default;
};

class Profile {
 public:
  // Inline slots per parallel array; profiles up to this size are stored
  // entirely within the object (no heap traffic on copy/clone).
  static constexpr std::size_t kInlineEntries = 8;

  Profile() = default;

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  bool contains(ItemId id) const;
  std::optional<double> score(ItemId id) const;
  std::optional<ProfileEntry> find(ItemId id) const;

  // Inserts or overwrites the entry for `id` (user-profile update).
  void set(ItemId id, Cycle timestamp, double score);

  // addToNewsProfile (Alg. 1 lines 18-22): averages with the existing score
  // when present, inserts the triplet otherwise. Used on item profiles.
  void fold(ItemId id, Cycle timestamp, double score);

  // Folds every entry of `user` into this item profile (Alg. 1 lines 3-4).
  void fold_profile(const Profile& user);

  // Removes entries strictly older than `cutoff` (profile window, §II-E).
  void purge_older_than(Cycle cutoff);

  // Parallel arrays sorted by ascending item id (stable iteration order
  // for the similarity kernels).
  std::span<const ItemId> ids() const { return {ids_.data(), ids_.size()}; }
  std::span<const Cycle> timestamps() const {
    return {timestamps_.data(), timestamps_.size()};
  }
  std::span<const double> scores() const {
    return {scores_.data(), scores_.size()};
  }
  ProfileEntry entry(std::size_t i) const {
    return ProfileEntry{ids_[i], timestamps_[i], scores_[i]};
  }

  // Number of entries with score > 0.5 (the "liked" items of a binary
  // profile; a coarse but monotone proxy for real-valued item profiles).
  // Maintained incrementally — O(1).
  std::size_t liked_count() const { return liked_; }

  // Euclidean norm of the score vector. Cached; recomputed only after a
  // content change.
  double norm() const;

  // Globally unique content stamp: changes whenever the contents change,
  // and two profiles with the same version have equal contents. Empty
  // profiles always report version 0.
  std::uint64_t version() const { return version_; }

  void clear();

  bool operator==(const Profile& other) const {
    return ids_ == other.ids_ && timestamps_ == other.timestamps_ &&
           scores_ == other.scores_;
  }

  // True iff any entry has a timestamp strictly older than `cutoff`, i.e.
  // purge_older_than(cutoff) would change the contents. Lets shared
  // (copy-on-write) holders skip the clone when the purge is a no-op.
  bool has_entries_older_than(Cycle cutoff) const;

 private:
  // The lossless codec (profile/compact.hpp) restores contents, version,
  // liked count and the cached norm directly, so a decoded profile is
  // bit-indistinguishable from a copy of the encoded one.
  friend class CompactProfile;

  // Sorted by id; profiles stay small (bounded by the profile window), so
  // flat sorted arrays beat node-based maps on both speed and memory.
  using IdArray = SmallVector<ItemId, kInlineEntries>;
  using CycleArray = SmallVector<Cycle, kInlineEntries>;
  using ScoreArray = SmallVector<double, kInlineEntries>;
  IdArray ids_;
  CycleArray timestamps_;
  ScoreArray scores_;

  std::size_t liked_ = 0;
  std::uint64_t version_ = 0;
  mutable double cached_norm_ = 0.0;
  mutable bool norm_dirty_ = false;

  // Index of the first entry with ids_[i] >= id.
  std::size_t lower_bound(ItemId id) const;
  // Inserts into all three parallel arrays at position i (liked_ updated;
  // caller bumps the version).
  void insert_at(std::size_t i, ItemId id, Cycle timestamp, double score);
  // Stamps a content change: fresh unique version (0 when now empty) and
  // norm invalidation.
  void bump_version();
};

}  // namespace whatsup
