// Profiles (paper §II-B/§II-C): sets of <item id, timestamp, score> triplets
// with a single entry per item.
//
//  * User profiles carry binary scores (1 = like, 0 = dislike) and are
//    updated whenever the user opines on an item (Alg. 1 lines 5/7/14).
//  * Item profiles carry real scores in [0,1], built by aggregating the
//    profiles of the users who liked the item along its dissemination path
//    (`fold` implements addToNewsProfile: average with the existing score,
//    insert otherwise).
//
// Both are purged of entries older than the profile window (§II-E).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ids.hpp"

namespace whatsup {

struct ProfileEntry {
  ItemId id = 0;
  Cycle timestamp = 0;
  double score = 0.0;

  bool operator==(const ProfileEntry&) const = default;
};

class Profile {
 public:
  Profile() = default;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  bool contains(ItemId id) const;
  std::optional<double> score(ItemId id) const;
  std::optional<ProfileEntry> find(ItemId id) const;

  // Inserts or overwrites the entry for `id` (user-profile update).
  void set(ItemId id, Cycle timestamp, double score);

  // addToNewsProfile (Alg. 1 lines 18-22): averages with the existing score
  // when present, inserts the triplet otherwise. Used on item profiles.
  void fold(ItemId id, Cycle timestamp, double score);

  // Folds every entry of `user` into this item profile (Alg. 1 lines 3-4).
  void fold_profile(const Profile& user);

  // Removes entries strictly older than `cutoff` (profile window, §II-E).
  void purge_older_than(Cycle cutoff);

  // Entries sorted by ascending item id (stable iteration order for the
  // similarity kernels).
  const std::vector<ProfileEntry>& entries() const { return entries_; }

  // Number of entries with score > 0.5 (the "liked" items of a binary
  // profile; a coarse but monotone proxy for real-valued item profiles).
  std::size_t liked_count() const;

  // Euclidean norm of the score vector.
  double norm() const;

  void clear() { entries_.clear(); }

  bool operator==(const Profile&) const = default;

 private:
  // Sorted by id; profiles stay small (bounded by the profile window), so a
  // flat sorted vector beats node-based maps on both speed and memory.
  std::vector<ProfileEntry> entries_;

  std::vector<ProfileEntry>::iterator lower_bound(ItemId id);
  std::vector<ProfileEntry>::const_iterator lower_bound(ItemId id) const;
};

}  // namespace whatsup
