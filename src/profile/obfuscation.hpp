// Profile obfuscation (paper §VII, concluding remarks).
//
// The authors explored obfuscation mechanisms that hide users' exact
// tastes from the peers that receive their profiles, trading a little
// recommendation accuracy for privacy. We implement the classic
// randomized-response scheme on the gossiped profile snapshots:
//
//  * with probability `flip_prob`, an entry's score is replaced by a fair
//    coin (plausible deniability for every individual opinion);
//  * with probability `drop_prob`, an entry is omitted entirely.
//
// Only the *gossiped* snapshot is obfuscated — the node keeps its true
// profile locally for its own similarity decisions, exactly as a
// privacy-conscious client would. Determinism: the noise is drawn from a
// per-node stream seeded by (node id, epoch), so a node publishes one
// consistent obfuscated view per epoch instead of leaking fresh noise on
// every exchange (which an adversary could average away).
#pragma once

#include "common/ids.hpp"
#include "profile/profile.hpp"

namespace whatsup {

struct ObfuscationConfig {
  double flip_prob = 0.0;   // randomized response rate
  double drop_prob = 0.0;   // entry suppression rate
  Cycle epoch_length = 13;  // noise re-drawn once per epoch

  bool enabled() const { return flip_prob > 0.0 || drop_prob > 0.0; }
};

// Returns the obfuscated snapshot of `profile` that `node` publishes
// during the epoch containing `now`.
Profile obfuscate_profile(const Profile& profile, const ObfuscationConfig& config,
                          NodeId node, Cycle now);

// Per-node cache for the disclosed profile. obfuscate_profile is a pure
// function of (profile contents, config, node, epoch), so the disclosed
// profile only needs rebuilding when the true profile's version or the
// epoch changes — not on every gossip exchange (perf only; results are
// identical to calling obfuscate_profile directly).
class ObfuscatedProfileCache {
 public:
  const Profile& get(const Profile& profile, const ObfuscationConfig& config,
                     NodeId node, Cycle now);

 private:
  Profile disclosed_;
  std::uint64_t source_version_ = 0;
  Cycle epoch_ = kNoCycle;
  bool valid_ = false;
};

// Expected privacy of the scheme: probability that a disclosed opinion
// differs from the user's true opinion (the deniability level).
double deniability(const ObfuscationConfig& config);

}  // namespace whatsup
