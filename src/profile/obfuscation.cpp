#include "profile/obfuscation.hpp"

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace whatsup {

Profile obfuscate_profile(const Profile& profile, const ObfuscationConfig& config,
                          NodeId node, Cycle now) {
  if (!config.enabled()) return profile;
  const Cycle epoch =
      config.epoch_length > 0 ? now / config.epoch_length : Cycle{0};
  Profile out;
  const std::size_t n = profile.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ProfileEntry entry = profile.entry(i);
    // Per-(node, epoch, item) deterministic noise stream: stable within an
    // epoch, refreshed across epochs.
    Rng noise(hash_combine(
        hash_combine(0x0bf05ca7ed000000ULL ^ node, static_cast<std::uint64_t>(epoch)),
        entry.id));
    if (noise.bernoulli(config.drop_prob)) continue;
    double score = entry.score;
    if (noise.bernoulli(config.flip_prob)) {
      score = noise.bernoulli(0.5) ? 1.0 : 0.0;  // randomized response
    }
    out.set(entry.id, entry.timestamp, score);
  }
  return out;
}

const Profile& ObfuscatedProfileCache::get(const Profile& profile,
                                           const ObfuscationConfig& config,
                                           NodeId node, Cycle now) {
  const Cycle epoch =
      config.epoch_length > 0 ? now / config.epoch_length : Cycle{0};
  if (!valid_ || source_version_ != profile.version() || epoch_ != epoch) {
    disclosed_ = obfuscate_profile(profile, config, node, now);
    source_version_ = profile.version();
    epoch_ = epoch;
    valid_ = true;
  }
  return disclosed_;
}

double deniability(const ObfuscationConfig& config) {
  // An entry is absent w.p. drop, or present with a coin-flipped score
  // that differs from the truth w.p. flip/2.
  return config.drop_prob + (1.0 - config.drop_prob) * config.flip_prob * 0.5;
}

}  // namespace whatsup
