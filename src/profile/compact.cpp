#include "profile/compact.hpp"

#include <bit>
#include <cstring>
#include <vector>

#include "common/varint.hpp"

namespace whatsup {

namespace {

// Scratch staging for the sign-extended timestamp lanes (stack for the
// common small profile, heap spill only for window-sized ones).
using WideArray = SmallVector<std::uint64_t, Profile::kInlineEntries * 2>;

bool all_binary(std::span<const double> scores) {
  for (const double s : scores) {
    if (s != 0.0 && s != 1.0) return false;
  }
  return true;
}

std::uint64_t fnv1a64(std::uint64_t h, const std::uint8_t* bytes,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x00000100000001B3ull;
  }
  return h;
}

}  // namespace

void CompactProfile::init_from(const Profile& profile) {
  const std::size_t n = profile.size();
  version_ = profile.version();
  norm_ = profile.norm();
  count_ = static_cast<std::uint32_t>(n);
  liked_ = static_cast<std::uint32_t>(profile.liked_count());

  const std::span<const ItemId> ids = profile.ids();
  const std::span<const Cycle> timestamps = profile.timestamps();
  const std::span<const double> scores = profile.scores();
  const bool binary = all_binary(scores);
  flags_ = binary ? kBinaryScores : 0;

  WideArray wide;
  wide.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    wide[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(timestamps[i]));
  }

  SmallVector<std::uint8_t, kInlineBytes>& out = bytes_;
  const std::size_t score_bytes = binary ? (n + 7) / 8 : n * sizeof(double);
  out.reserve(delta_encoded_size(ids.data(), n) +
              delta_encoded_size(wide.data(), n) + score_bytes);
  delta_encode(out, ids.data(), n);
  delta_encode(out, wide.data(), n);
  if (binary) {
    for (std::size_t base = 0; base < n; base += 8) {
      std::uint8_t mask = 0;
      for (std::size_t bit = 0; bit < 8 && base + bit < n; ++bit) {
        if (scores[base + bit] == 1.0) mask |= static_cast<std::uint8_t>(1u << bit);
      }
      out.push_back(mask);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const auto word = std::bit_cast<std::uint64_t>(scores[i]);
      for (std::size_t b = 0; b < sizeof(double); ++b) {
        out.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
      }
    }
  }
}

ProfileHandle CompactProfile::encode(const Profile& profile) {
  return SnapshotArena::instance().encode_detached(profile);
}

void CompactProfile::decode_into(Profile& out) const {
  const std::size_t n = count_;
  out.ids_.resize(n);
  out.timestamps_.resize(n);
  out.scores_.resize(n);
  const std::uint8_t* p = bytes_.data();
  delta_decode(p, out.ids_.data(), n);
  WideArray wide;
  wide.resize(n);
  delta_decode(p, wide.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    out.timestamps_[i] = static_cast<Cycle>(static_cast<std::int64_t>(wide[i]));
  }
  if ((flags_ & kBinaryScores) != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      out.scores_[i] = (p[i / 8] >> (i % 8)) & 1u ? 1.0 : 0.0;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word = 0;
      std::memcpy(&word, p + i * sizeof(double), sizeof(double));
      out.scores_[i] = std::bit_cast<double>(word);
    }
  }
  out.liked_ = liked_;
  out.version_ = version_;
  out.cached_norm_ = norm_;
  out.norm_dirty_ = false;
}

// The decode scratch itself lives in compact.hpp (detail::scratch_lookup):
// a per-thread direct-mapped cache of SoA Profiles keyed by the record
// version. The working set is every snapshot generation a scoring sweep
// touches — NOT the ~50 candidates of one merge, but every generation
// still alive in some view across the whole deployment, since scoring
// sweeps revisit shared candidates node after node. A handful of slots
// measures a ~0% hit rate and puts varint decode at the top of the profile
// (~35% of the 500 n × 200 c row, 11M decodes). The slot count is a
// process-wide knob: the engine derives it from the node count, because
// the live-generation working set scales with the deployment — the former
// fixed 8 K slots (~4 MB/thread) priced every small threaded row at the
// million-node ceiling.
void set_materialize_scratch_slots(std::size_t slots) {
  slots = std::bit_ceil(slots);
  if (slots < kMinMaterializeScratchSlots) slots = kMinMaterializeScratchSlots;
  if (slots > kMaxMaterializeScratchSlots) slots = kMaxMaterializeScratchSlots;
  detail::g_scratch_slots.store(slots, std::memory_order_relaxed);
}

std::size_t materialize_scratch_slots() {
  return detail::g_scratch_slots.load(std::memory_order_relaxed);
}

std::size_t materialize_scratch_bytes_per_thread() {
  return materialize_scratch_slots() * sizeof(detail::ScratchSlot);
}

ProfileHandle ProfileHandle::snapshot(const Profile& profile) {
  if (profile.version() == 0) return empty_profile_handle();
  return SnapshotArena::instance().intern(profile);
}

const ProfileHandle& empty_profile_handle() {
  static const ProfileHandle kEmpty =
      SnapshotArena::instance().encode_detached(Profile{});
  return kEmpty;
}

// ---- DescriptorRef --------------------------------------------------------

DescriptorRef DescriptorRef::make(Cycle timestamp,
                                  const ProfileHandle& profile) {
  DescriptorRef ref;
  if (profile == nullptr) {
    if (timestamp == kNoCycle) return ref;  // null ref ≡ {kNoCycle, none}
    const auto wide = static_cast<std::int64_t>(timestamp);
    if (wide >= kInlineMin && wide <= kInlineMax) {
      ref.bits_ = kInlineTag |
                  (static_cast<std::uint32_t>(timestamp) & ~kInlineTag);
      return ref;
    }
  }
  ref.bits_ = SnapshotArena::instance().make_stamp(timestamp, profile);
  return ref;
}

// ---- SnapshotArena --------------------------------------------------------

ArenaIndex SnapshotArena::encode_blob(const Profile& profile) {
  const ArenaIndex slot = blob_pool_.allocate();
  CompactProfile* record = blob_pool_.get(slot);
  record->slot_ = slot;
  record->init_from(profile);
  return slot;
}

void SnapshotArena::free_blob(const CompactProfile* record) {
  blob_pool_.free(record->slot_);
}

void SnapshotArena::free_stamp(ArenaIndex index, StampRecord* rec) {
  if (rec->blob != kNullArenaIndex) blob_pool_.get(rec->blob)->release();
  stamp_pool_.free(index);
}

ArenaIndex SnapshotArena::make_stamp(Cycle timestamp,
                                     const ProfileHandle& profile) {
  const ArenaIndex index = stamp_pool_.allocate();
  StampRecord* rec = stamp_pool_.get(index);
  rec->timestamp = timestamp;
  rec->blob = profile.slot();
  rec->size = 0;
  rec->version = 0;
  if (rec->blob != kNullArenaIndex) {
    const CompactProfile* blob = blob_pool_.get(rec->blob);
    blob->retain();  // the record's own blob reference
    rec->size = static_cast<std::uint32_t>(blob->size());
    rec->version = blob->version();
  }
  return index;
}

ProfileHandle SnapshotArena::encode_detached(const Profile& profile) {
  return ProfileHandle::adopt(encode_blob(profile));
}

void SnapshotArena::sweep_shard(Shard& shard) {
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    const CompactProfile* record = blob_pool_.get(it->second);
    // ref_count() == 1 means the table holds the only reference: no
    // descriptor anywhere still ships this generation (see the revive-race
    // note on SnapshotArena::Shard).
    if (record->ref_count() == 1) {
      record->release();
      it = shard.map.erase(it);
      ++shard.purged;
    } else {
      ++it;
    }
  }
  shard.sweep_at = shard.map.size() < 32 ? 64 : shard.map.size() * 2;
}

ProfileHandle SnapshotArena::intern(const Profile& profile) {
  const std::uint64_t version = profile.version();
  Shard& shard = version_shards_[version % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto it = shard.map.find(version); it != shard.map.end()) {
    ++shard.reused;
    const CompactProfile* record = blob_pool_.get(it->second);
    record->retain();
    return ProfileHandle::adopt(it->second);
  }
  const ArenaIndex slot = encode_blob(profile);
  blob_pool_.get(slot)->retain();  // the table's own reference
  shard.map.emplace(version, slot);
  ++shard.interned;
  if (shard.map.size() >= shard.sweep_at) sweep_shard(shard);
  return ProfileHandle::adopt(slot);
}

ProfileHandle SnapshotArena::intern_by_content(const Profile& profile) {
  if (profile.version() == 0) return empty_profile_handle();
  // Encode first: the content key is the canonical encoded record, so a
  // hash hit can be verified byte-for-byte before sharing.
  ProfileHandle fresh = encode_detached(profile);
  const CompactProfile* record = fresh.record();
  std::uint64_t key = 0xCBF29CE484222325ull;
  const std::uint32_t header[3] = {record->count_, record->liked_,
                                   record->flags_};
  key = fnv1a64(key, reinterpret_cast<const std::uint8_t*>(header),
                sizeof(header));
  key = fnv1a64(key, record->bytes_.data(), record->bytes_.size());

  Shard& shard = content_shards_[key % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto it = shard.map.find(key); it != shard.map.end()) {
    const CompactProfile* existing = blob_pool_.get(it->second);
    if (existing->count_ == record->count_ &&
        existing->liked_ == record->liked_ &&
        existing->flags_ == record->flags_ &&
        existing->bytes_ == record->bytes_) {
      ++shard.reused;
      existing->retain();
      return ProfileHandle::adopt(it->second);  // `fresh` frees on return
    }
    // 64-bit hash collision with different contents: fall through and keep
    // the fresh record un-interned (correct, merely unshared).
    return fresh;
  }
  record->retain();  // the table's own reference
  shard.map.emplace(key, fresh.slot());
  ++shard.interned;
  if (shard.map.size() >= shard.sweep_at) sweep_shard(shard);
  return fresh;
}

void SnapshotArena::advance_epoch() {
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed);
  {
    Shard& shard = version_shards_[epoch % kShardCount];
    std::lock_guard<std::mutex> lock(shard.mu);
    sweep_shard(shard);
  }
  {
    Shard& shard = content_shards_[epoch % kShardCount];
    std::lock_guard<std::mutex> lock(shard.mu);
    sweep_shard(shard);
  }
}

void SnapshotArena::purge_dead() {
  for (Shard* shards : {version_shards_, content_shards_}) {
    for (std::size_t i = 0; i < kShardCount; ++i) {
      Shard& shard = shards[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      sweep_shard(shard);
    }
  }
}

SnapshotArena::Stats SnapshotArena::stats() const {
  Stats stats;
  for (const Shard* shards : {version_shards_, content_shards_}) {
    for (std::size_t i = 0; i < kShardCount; ++i) {
      const Shard& shard = shards[i];
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.entries += shard.map.size();
      for (const auto& [key, slot] : shard.map) {
        (void)key;
        if (blob_pool_.get(slot)->ref_count() > 1) ++stats.live;
      }
      stats.interned += shard.interned;
      stats.reused += shard.reused;
      stats.purged += shard.purged;
    }
  }
  stats.blobs = blob_pool_.stats();
  stats.stamps = stamp_pool_.stats();
  return stats;
}

}  // namespace whatsup
