#include "profile/compact.hpp"

#include <bit>
#include <vector>
#include <cstring>

#include "common/varint.hpp"

namespace whatsup {

namespace {

// Scratch staging for the sign-extended timestamp lanes (stack for the
// common small profile, heap spill only for window-sized ones).
using WideArray = SmallVector<std::uint64_t, Profile::kInlineEntries * 2>;

bool all_binary(std::span<const double> scores) {
  for (const double s : scores) {
    if (s != 0.0 && s != 1.0) return false;
  }
  return true;
}

}  // namespace

ProfileHandle CompactProfile::encode(const Profile& profile) {
  auto* record = new CompactProfile();  // refs_ starts at 1: the handle's
  const std::size_t n = profile.size();
  record->version_ = profile.version();
  record->norm_ = profile.norm();
  record->count_ = static_cast<std::uint32_t>(n);
  record->liked_ = static_cast<std::uint32_t>(profile.liked_count());

  const std::span<const ItemId> ids = profile.ids();
  const std::span<const Cycle> timestamps = profile.timestamps();
  const std::span<const double> scores = profile.scores();
  const bool binary = all_binary(scores);
  record->flags_ = binary ? kBinaryScores : 0;

  WideArray wide;
  wide.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    wide[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(timestamps[i]));
  }

  SmallVector<std::uint8_t, kInlineBytes>& out = record->bytes_;
  const std::size_t score_bytes = binary ? (n + 7) / 8 : n * sizeof(double);
  out.reserve(delta_encoded_size(ids.data(), n) +
              delta_encoded_size(wide.data(), n) + score_bytes);
  delta_encode(out, ids.data(), n);
  delta_encode(out, wide.data(), n);
  if (binary) {
    for (std::size_t base = 0; base < n; base += 8) {
      std::uint8_t mask = 0;
      for (std::size_t bit = 0; bit < 8 && base + bit < n; ++bit) {
        if (scores[base + bit] == 1.0) mask |= static_cast<std::uint8_t>(1u << bit);
      }
      out.push_back(mask);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const auto word = std::bit_cast<std::uint64_t>(scores[i]);
      for (std::size_t b = 0; b < sizeof(double); ++b) {
        out.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
      }
    }
  }
  return ProfileHandle::adopt(record);
}

void CompactProfile::decode_into(Profile& out) const {
  const std::size_t n = count_;
  out.ids_.resize(n);
  out.timestamps_.resize(n);
  out.scores_.resize(n);
  const std::uint8_t* p = bytes_.data();
  delta_decode(p, out.ids_.data(), n);
  WideArray wide;
  wide.resize(n);
  delta_decode(p, wide.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    out.timestamps_[i] = static_cast<Cycle>(static_cast<std::int64_t>(wide[i]));
  }
  if ((flags_ & kBinaryScores) != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      out.scores_[i] = (p[i / 8] >> (i % 8)) & 1u ? 1.0 : 0.0;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t word = 0;
      std::memcpy(&word, p + i * sizeof(double), sizeof(double));
      out.scores_[i] = std::bit_cast<double>(word);
    }
  }
  out.liked_ = liked_;
  out.version_ = version_;
  out.cached_norm_ = norm_;
  out.norm_dirty_ = false;
}

namespace {

const Profile& static_empty_profile() {
  static const Profile kEmpty;
  return kEmpty;
}

// Per-thread decode scratch: a direct-mapped cache of SoA Profiles keyed
// by the record version. The working set is every snapshot generation a
// scoring sweep touches — NOT the ~50 candidates of one merge, but every
// generation still alive in some view across the whole deployment, since
// scoring sweeps revisit shared candidates node after node. A handful of
// slots measures a ~0% hit rate and puts varint decode at the top of the
// profile (~35% of the 500 n × 200 c row, 11M decodes); 8 K slots bring
// that row within ~3% of the pre-compaction throughput (one decode per
// generation per thread, amortized). Versions come from one global
// counter (dense), so version & (slots-1) distributes uniformly. The
// cost is a fixed ~4 MB per scoring thread — invisible at million-node
// scale (+4 B/node single-threaded), where decode volume is dominated by
// bootstrap, not per-cycle re-scoring, and hit rate matters less.
constexpr std::size_t kScratchSlots = 8192;
static_assert((kScratchSlots & (kScratchSlots - 1)) == 0,
              "direct-mapped index needs a power-of-two slot count");

struct ScratchSlot {
  std::uint64_t version = 0;  // 0 = vacant (empty profiles never enter)
  Profile profile;
};

const Profile& materialize_scratch(const CompactProfile& record) {
  thread_local std::vector<ScratchSlot> slots(kScratchSlots);
  ScratchSlot& slot = slots[record.version() & (kScratchSlots - 1)];
  if (slot.version != record.version()) {
    record.decode_into(slot.profile);
    slot.version = record.version();
  }
  return slot.profile;
}

}  // namespace

const Profile& ProfileHandle::materialize() const {
  if (record_ == nullptr || record_->size() == 0) return static_empty_profile();
  return materialize_scratch(*record_);
}

ProfileHandle ProfileHandle::snapshot(const Profile& profile) {
  if (profile.version() == 0) return empty_profile_handle();
  return SnapshotIntern::instance().intern(profile);
}

const ProfileHandle& empty_profile_handle() {
  static const ProfileHandle kEmpty = CompactProfile::encode(Profile{});
  return kEmpty;
}

SnapshotIntern& SnapshotIntern::instance() {
  static SnapshotIntern intern;
  return intern;
}

void SnapshotIntern::sweep_shard(Shard& shard) {
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    // ref_count() == 1 means the table holds the only reference: no
    // descriptor anywhere still ships this generation (see the revive-race
    // note on SnapshotIntern::Shard).
    if (it->second->ref_count() == 1) {
      it->second->release();
      it = shard.map.erase(it);
      ++shard.purged;
    } else {
      ++it;
    }
  }
  shard.sweep_at = shard.map.size() < 32 ? 64 : shard.map.size() * 2;
}

ProfileHandle SnapshotIntern::intern(const Profile& profile) {
  const std::uint64_t version = profile.version();
  Shard& shard = shards_[version % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (auto it = shard.map.find(version); it != shard.map.end()) {
    ++shard.reused;
    it->second->retain();
    return ProfileHandle::adopt(it->second);
  }
  ProfileHandle handle = CompactProfile::encode(profile);
  handle.record()->retain();  // the table's own reference
  shard.map.emplace(version, handle.record());
  ++shard.interned;
  if (shard.map.size() >= shard.sweep_at) sweep_shard(shard);
  return handle;
}

void SnapshotIntern::advance_epoch() {
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[epoch % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mu);
  sweep_shard(shard);
}

void SnapshotIntern::purge_dead() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    sweep_shard(shard);
  }
}

SnapshotIntern::Stats SnapshotIntern::stats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.map.size();
    for (const auto& [version, record] : shard.map) {
      (void)version;
      if (record->ref_count() > 1) ++stats.live;
    }
    stats.interned += shard.interned;
    stats.reused += shard.reused;
    stats.purged += shard.purged;
  }
  return stats;
}

}  // namespace whatsup
