#include "profile/item_profile.hpp"

#include <utility>

namespace whatsup {

namespace {

const Profile& empty_profile() {
  // A default-constructed Profile is born with a clean (non-dirty) norm
  // cache, so sharing this instance across threads is safe.
  static const Profile kEmpty;
  return kEmpty;
}

}  // namespace

const Profile& ItemProfileRef::get() const {
  return box_ != nullptr ? box_->profile : empty_profile();
}

std::size_t ItemProfileRef::size() const {
  return box_ != nullptr ? box_->profile.size() : 0;
}

ItemProfileRef& ItemProfileRef::operator=(Profile profile) {
  release();
  if (profile.empty()) return *this;
  box_ = new Box{.refs = 1, .profile = std::move(profile)};
  box_->profile.norm();  // warm before the ref can escape across threads
  return *this;
}

Profile& ItemProfileRef::owned() {
  if (box_ == nullptr) {
    box_ = new Box{};
  } else if (ref_count() > 1) {
    // Shared with in-flight payload copies: clone, leave them untouched.
    Box* clone = new Box{.refs = 1, .profile = box_->profile};
    release();
    box_ = clone;
  }
  return box_->profile;
}

void ItemProfileRef::fold_profile(const Profile& user) {
  if (user.empty()) return;  // Profile::fold_profile would no-op too
  Profile& p = owned();
  p.fold_profile(user);
  p.norm();
}

void ItemProfileRef::purge_older_than(Cycle cutoff) {
  if (box_ == nullptr || !box_->profile.has_entries_older_than(cutoff)) {
    return;  // nothing to drop: keep sharing, skip the clone
  }
  Profile& p = owned();
  p.purge_older_than(cutoff);
  p.norm();
}

void ItemProfileRef::set(ItemId id, Cycle timestamp, double score) {
  Profile& p = owned();
  p.set(id, timestamp, score);
  p.norm();
}

}  // namespace whatsup
