// Version-keyed caches around immutable profile snapshots — the memory
// half of the gossip hot path.
//
// Descriptors ship profiles as shared, immutable `shared_ptr<const
// Profile>` snapshots (net::Descriptor). The seed implementation deep-
// copied the sender's profile into a fresh snapshot for EVERY outgoing
// gossip message, and rescored every candidate descriptor from scratch on
// EVERY view merge. Both are redundant while the underlying profiles are
// unchanged, which `Profile::version()` detects exactly: equal versions
// imply equal contents (see profile.hpp).
//
//  * `ProfileSnapshotCache` re-materializes a node's outgoing snapshot
//    only when its profile version changed; all empty profiles share one
//    static snapshot.
//  * `SimilarityMemo` memoizes similarity(metric, subject, candidate) per
//    candidate node, keyed by (candidate node, candidate profile version,
//    subject profile version, metric). Scores are recomputed only for
//    descriptors whose profile (or whose subject) actually changed, and
//    memoized values are bit-equal to fresh ones because similarity() is a
//    pure function of the two profiles.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "profile/similarity.hpp"

namespace whatsup {

// Shared snapshot of the empty profile (descriptors with no payload).
const std::shared_ptr<const Profile>& empty_profile_snapshot();

class ProfileSnapshotCache {
 public:
  // Returns an immutable snapshot with the same contents as `profile`,
  // reusing the previous snapshot while the version is unchanged.
  std::shared_ptr<const Profile> get(const Profile& profile);

 private:
  std::shared_ptr<const Profile> snapshot_;
  std::uint64_t version_ = 0;
};

class SimilarityMemo {
 public:
  // Memoized similarity(metric, subject, candidate); `node` is the owner
  // of `candidate` (the descriptor's node id, unique within one merge).
  double score(Metric metric, const Profile& subject, NodeId node,
               const Profile& candidate);

  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t subject_version = 0;
    std::uint64_t candidate_version = 0;
    Metric metric = Metric::kWup;
    double value = 0.0;
  };

  // One entry per peer node; bounded by the peers a node ever scores. The
  // cap is a safety valve for very large deployments.
  static constexpr std::size_t kMaxEntries = 1 << 14;
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace whatsup
