// Version-keyed caches around interned profile snapshots — the memory
// half of the gossip hot path.
//
// Descriptors ship profiles as interned compact records behind a 16-byte
// `ProfileHandle` (profile/compact.hpp). The seed implementation deep-
// copied the sender's profile into a fresh snapshot for EVERY outgoing
// gossip message, and rescored every candidate descriptor from scratch on
// EVERY view merge. Both are redundant while the underlying profiles are
// unchanged, which `Profile::version()` detects exactly: equal versions
// imply equal contents (see profile.hpp).
//
//  * `ProfileSnapshotCache` re-interns a node's outgoing snapshot only
//    when its profile version changed, skipping the intern-table lock on
//    the (overwhelmingly common) unchanged path; all empty profiles share
//    one static handle.
//  * `SimilarityMemo` memoizes similarity(metric, subject, candidate) in a
//    fixed-capacity open-addressed table keyed by (candidate node, metric)
//    and guarded by (subject version, candidate version). A collision or
//    eviction only ever costs a recompute: memoized values are bit-equal
//    to fresh ones because similarity() is a pure function of the two
//    profiles, so the table size is a perf knob, never a correctness one.
//    The flat table replaces the seed's per-node unordered_map, which grew
//    one heap node per peer ever scored (~30 KB/node at 100k nodes) — the
//    single largest per-node cost on the road to million-node runs.
#pragma once

#include <cstdint>
#include <memory>

#include "common/ids.hpp"
#include "profile/compact.hpp"
#include "profile/similarity.hpp"

namespace whatsup {

class ProfileSnapshotCache {
 public:
  // Returns an interned snapshot with the same contents as `profile`,
  // reusing the previous handle while the version is unchanged.
  ProfileHandle get(const Profile& profile);

  // The (timestamp, snapshot) stamp record for a self-descriptor emitted
  // at `now`: reused while both the profile version and the cycle are
  // unchanged, so a node sending several gossip messages in one cycle
  // shares ONE arena record across all of them.
  DescriptorRef stamp(Cycle now, const Profile& profile);

 private:
  ProfileHandle handle_;
  std::uint64_t version_ = 0;
  DescriptorRef stamp_;
  Cycle stamp_cycle_ = kNoCycle;
  std::uint64_t stamp_version_ = ~std::uint64_t{0};
};

class SimilarityMemo {
 public:
  // `slots` is rounded up to a power of two (min 8). The default covers a
  // WUP view (~20 stable peers) plus some churn of merge candidates at
  // 0.75 KB per node; collisions beyond that only cost recomputes, and at
  // the macro scale the smaller footprint beats the extra hit rate.
  explicit SimilarityMemo(std::size_t slots = kDefaultSlots);

  // Memoized similarity(metric, subject, candidate); `node` is the owner
  // of `candidate` (the descriptor's node id, unique within one merge).
  // The handle/stamp overloads key on the snapshot header and decode only
  // on a memo miss.
  double score(Metric metric, const Profile& subject, NodeId node,
               const Profile& candidate);
  double score(Metric metric, const Profile& subject, NodeId node,
               const ProfileHandle& candidate);
  double score(Metric metric, const Profile& subject, NodeId node,
               const DescriptorRef& candidate);

  void clear();
  std::size_t size() const;  // occupied slots
  std::size_t slot_count() const { return mask_ + 1; }
  std::size_t resident_bytes() const {
    return sizeof(SimilarityMemo) +
           (slots_ != nullptr ? (mask_ + 1) * sizeof(Entry) : 0);
  }

  static constexpr std::size_t kDefaultSlots = 32;

 private:
  struct Entry {
    NodeId node = kNoNode;
    Metric metric = Metric::kWup;
    std::uint64_t candidate_version = 0;
    double value = 0.0;
  };

  // Linear probe window: long enough to ride out clustering in a small
  // power-of-two table, short enough to stay in two cache lines.
  static constexpr std::size_t kProbe = 4;

  template <typename Candidate>
  double score_impl(Metric metric, const Profile& subject, NodeId node,
                    std::uint64_t candidate_version, const Candidate& candidate);

  void reset_entries();

  // ~0 marks "no subject yet": real versions come from a counter and empty
  // profiles report 0, so the sentinel cannot collide.
  std::uint64_t subject_version_ = ~std::uint64_t{0};
  std::size_t mask_ = 0;
  std::unique_ptr<Entry[]> slots_;  // allocated on first score()
};

}  // namespace whatsup
