#include "profile/profile.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace whatsup {

namespace {

// Global version stamps: every content change anywhere draws a fresh value,
// so version equality implies content equality across all Profile instances
// (copies keep the stamp of the state they captured). Atomic so snapshot
// caches stay sound if simulations ever run on several threads.
std::uint64_t next_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

std::size_t Profile::lower_bound(ItemId id) const {
  return static_cast<std::size_t>(
      std::lower_bound(ids_.begin(), ids_.end(), id) - ids_.begin());
}

void Profile::bump_version() {
  version_ = ids_.empty() ? 0 : next_version();
  norm_dirty_ = true;
}

bool Profile::contains(ItemId id) const {
  const std::size_t i = lower_bound(id);
  return i < ids_.size() && ids_[i] == id;
}

std::optional<double> Profile::score(ItemId id) const {
  const std::size_t i = lower_bound(id);
  if (i >= ids_.size() || ids_[i] != id) return std::nullopt;
  return scores_[i];
}

std::optional<ProfileEntry> Profile::find(ItemId id) const {
  const std::size_t i = lower_bound(id);
  if (i >= ids_.size() || ids_[i] != id) return std::nullopt;
  return entry(i);
}

void Profile::insert_at(std::size_t i, ItemId id, Cycle timestamp, double score) {
  ids_.insert(i, id);
  timestamps_.insert(i, timestamp);
  scores_.insert(i, score);
  liked_ += score > 0.5 ? 1 : 0;
}

void Profile::set(ItemId id, Cycle timestamp, double score) {
  const std::size_t i = lower_bound(id);
  if (i < ids_.size() && ids_[i] == id) {
    liked_ -= scores_[i] > 0.5 ? 1 : 0;
    liked_ += score > 0.5 ? 1 : 0;
    timestamps_[i] = timestamp;
    scores_[i] = score;
  } else {
    insert_at(i, id, timestamp, score);
  }
  bump_version();
}

void Profile::fold(ItemId id, Cycle timestamp, double score) {
  const std::size_t i = lower_bound(id);
  if (i < ids_.size() && ids_[i] == id) {
    // Averaging gives equal weight to the path-aggregated score and the new
    // user's score, personalising the item profile (§II-C).
    liked_ -= scores_[i] > 0.5 ? 1 : 0;
    scores_[i] = (scores_[i] + score) / 2.0;
    liked_ += scores_[i] > 0.5 ? 1 : 0;
    timestamps_[i] = std::max(timestamps_[i], timestamp);
  } else {
    insert_at(i, id, timestamp, score);
  }
  bump_version();
}

void Profile::fold_profile(const Profile& user) {
  if (user.empty()) return;
  if (empty()) {
    // Folding into an empty item profile inserts every entry as-is.
    ids_ = user.ids_;
    timestamps_ = user.timestamps_;
    scores_ = user.scores_;
    liked_ = user.liked_;
    bump_version();
    return;
  }
  // One linear merge instead of per-entry sorted inserts (which would cost
  // O(n·m) tail moves). `user` has unique ids, so merging applies exactly
  // the same per-entry fold arithmetic in the same order.
  IdArray ids;
  CycleArray timestamps;
  ScoreArray scores;
  const std::size_t total = ids_.size() + user.ids_.size();
  ids.reserve(total);
  timestamps.reserve(total);
  scores.reserve(total);
  std::size_t liked = 0;
  std::size_t i = 0, j = 0;
  while (i < ids_.size() || j < user.ids_.size()) {
    const bool take_mine =
        j >= user.ids_.size() || (i < ids_.size() && ids_[i] < user.ids_[j]);
    const bool take_theirs =
        i >= ids_.size() || (j < user.ids_.size() && user.ids_[j] < ids_[i]);
    if (take_mine) {
      ids.push_back(ids_[i]);
      timestamps.push_back(timestamps_[i]);
      scores.push_back(scores_[i]);
      ++i;
    } else if (take_theirs) {
      ids.push_back(user.ids_[j]);
      timestamps.push_back(user.timestamps_[j]);
      scores.push_back(user.scores_[j]);
      ++j;
    } else {
      ids.push_back(ids_[i]);
      timestamps.push_back(std::max(timestamps_[i], user.timestamps_[j]));
      scores.push_back((scores_[i] + user.scores_[j]) / 2.0);
      ++i;
      ++j;
    }
    liked += scores.back() > 0.5 ? 1 : 0;
  }
  ids_ = std::move(ids);
  timestamps_ = std::move(timestamps);
  scores_ = std::move(scores);
  liked_ = liked;
  bump_version();
}

bool Profile::has_entries_older_than(Cycle cutoff) const {
  for (const Cycle t : timestamps_) {
    if (t < cutoff) return true;
  }
  return false;
}

void Profile::purge_older_than(Cycle cutoff) {
  const std::size_t n = ids_.size();
  std::size_t out = 0;
  for (std::size_t in = 0; in < n; ++in) {
    if (timestamps_[in] < cutoff) {
      liked_ -= scores_[in] > 0.5 ? 1 : 0;
      continue;
    }
    if (out != in) {
      ids_[out] = ids_[in];
      timestamps_[out] = timestamps_[in];
      scores_[out] = scores_[in];
    }
    ++out;
  }
  if (out == n) return;  // nothing removed: contents (and version) unchanged
  ids_.resize(out);
  timestamps_.resize(out);
  scores_.resize(out);
  bump_version();
}

void Profile::clear() {
  ids_.clear();
  timestamps_.clear();
  scores_.clear();
  liked_ = 0;
  version_ = 0;
  cached_norm_ = 0.0;
  norm_dirty_ = false;
}

double Profile::norm() const {
  if (norm_dirty_) {
    // Same left-to-right summation as a from-scratch scan, so the cached
    // value is bit-equal to what the seed implementation returned.
    double sum = 0.0;
    for (const double s : scores_) sum += s * s;
    cached_norm_ = std::sqrt(sum);
    norm_dirty_ = false;
  }
  return cached_norm_;
}

}  // namespace whatsup
