#include "profile/profile.hpp"

#include <algorithm>
#include <cmath>

namespace whatsup {

std::vector<ProfileEntry>::iterator Profile::lower_bound(ItemId id) {
  return std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const ProfileEntry& e, ItemId target) { return e.id < target; });
}

std::vector<ProfileEntry>::const_iterator Profile::lower_bound(ItemId id) const {
  return std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const ProfileEntry& e, ItemId target) { return e.id < target; });
}

bool Profile::contains(ItemId id) const {
  const auto it = lower_bound(id);
  return it != entries_.end() && it->id == id;
}

std::optional<double> Profile::score(ItemId id) const {
  const auto it = lower_bound(id);
  if (it == entries_.end() || it->id != id) return std::nullopt;
  return it->score;
}

std::optional<ProfileEntry> Profile::find(ItemId id) const {
  const auto it = lower_bound(id);
  if (it == entries_.end() || it->id != id) return std::nullopt;
  return *it;
}

void Profile::set(ItemId id, Cycle timestamp, double score) {
  const auto it = lower_bound(id);
  if (it != entries_.end() && it->id == id) {
    it->timestamp = timestamp;
    it->score = score;
    return;
  }
  entries_.insert(it, ProfileEntry{id, timestamp, score});
}

void Profile::fold(ItemId id, Cycle timestamp, double score) {
  const auto it = lower_bound(id);
  if (it != entries_.end() && it->id == id) {
    // Averaging gives equal weight to the path-aggregated score and the new
    // user's score, personalising the item profile (§II-C).
    it->score = (it->score + score) / 2.0;
    it->timestamp = std::max(it->timestamp, timestamp);
    return;
  }
  entries_.insert(it, ProfileEntry{id, timestamp, score});
}

void Profile::fold_profile(const Profile& user) {
  for (const ProfileEntry& entry : user.entries_) {
    fold(entry.id, entry.timestamp, entry.score);
  }
}

void Profile::purge_older_than(Cycle cutoff) {
  std::erase_if(entries_,
                [cutoff](const ProfileEntry& e) { return e.timestamp < cutoff; });
}

std::size_t Profile::liked_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const ProfileEntry& e) { return e.score > 0.5; }));
}

double Profile::norm() const {
  double sum = 0.0;
  for (const ProfileEntry& e : entries_) sum += e.score * e.score;
  return std::sqrt(sum);
}

}  // namespace whatsup
