// Copy-on-write handle for the path-dependent item profile carried by
// every BEEP news message (paper §II-A / Alg. 1).
//
// The item profile is the fat part of a news payload: forwarding a liked
// item replicates the payload fLIKE times, and holding the profile by
// value used to deep-copy it once per target on every hop. An
// ItemProfileRef instead shares one immutable profile record across all
// copies of a payload — a fan-out of fLIKE messages bumps a refcount
// fLIKE times — and clones only when a holder actually mutates a profile
// that is still shared (copy-on-write):
//
//  * a uniquely held profile is mutated in place (the common case when a
//    receiver folds its user profile before re-forwarding a fresh clone);
//  * a shared profile is cloned first, so in-flight copies of the same
//    payload — including ones sitting in another shard's mailbox ring —
//    never observe the mutation (tests/test_item_profile.cpp).
//
// The record is an intrusively refcounted box (refcount + Profile), so the
// handle is a single pointer: 8 bytes where the former shared_ptr was 16.
// Every in-flight news envelope carries one of these, so the second
// control-block pointer was a visible slice of the mailbox-ring storm peak
// (docs/perf.md "Memory map").
//
// Thread-safety contract: every mutator re-warms the lazily cached
// Profile::norm() before returning, exactly like the Descriptor snapshot
// caches (profile/snapshot.cpp), so a profile that escapes into messages
// and is then scored concurrently by several shard workers (cosine /
// overlap orientation reads norm()) never races on the norm memo. The
// refcount itself is atomic because payload copies are dropped from
// concurrent shard workers.
//
// Wire-size accounting is unaffected: SizeModel charges the LOGICAL size
// of the item profile (entry count × bytes per entry), which sharing does
// not change — a real deployment still serializes the full profile per
// copy (Fig. 8b and net/wire.hpp do exactly that).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/ids.hpp"
#include "profile/profile.hpp"

namespace whatsup {

class ItemProfileRef {
 public:
  ItemProfileRef() = default;  // empty profile, no allocation

  ItemProfileRef(const ItemProfileRef& other) : box_(other.box_) {
    if (box_ != nullptr) box_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  ItemProfileRef(ItemProfileRef&& other) noexcept : box_(other.box_) {
    other.box_ = nullptr;
  }
  ItemProfileRef& operator=(const ItemProfileRef& other) {
    ItemProfileRef copy(other);
    Box* tmp = box_;
    box_ = copy.box_;
    copy.box_ = tmp;
    return *this;
  }
  ItemProfileRef& operator=(ItemProfileRef&& other) noexcept {
    Box* tmp = box_;
    box_ = other.box_;
    other.box_ = tmp;
    return *this;
  }
  ~ItemProfileRef() { release(); }

  // Snapshots `profile` (deep copy, norm pre-warmed). Empty profiles
  // normalize to the null (allocation-free) representation.
  ItemProfileRef& operator=(Profile profile);

  // Read access; all copies of a payload may alias the same Profile.
  const Profile& get() const;
  operator const Profile&() const { return get(); }

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  bool contains(ItemId id) const { return get().contains(id); }

  // --- Copy-on-write mutators (clone only while shared) ---

  // Alg. 1 lines 18-22 applied to every entry of `user`; no-op (and no
  // clone) when `user` is empty.
  void fold_profile(const Profile& user);

  // Profile window (Alg. 1 lines 8-10); clones only when an entry would
  // actually be dropped.
  void purge_older_than(Cycle cutoff);

  // Inserts or overwrites one entry.
  void set(ItemId id, Cycle timestamp, double score);

  // Drops this holder's reference (other payload copies are unaffected).
  void clear() { release(); }

  // True while at least one other ItemProfileRef aliases the same profile
  // (observability hook for the CoW tests and benches).
  bool shared() const { return box_ != nullptr && ref_count() > 1; }
  long use_count() const { return box_ != nullptr ? static_cast<long>(ref_count()) : 0; }

 private:
  // Intrusive record: one refcount per live handle. The count is atomic
  // because copies of the same payload are destroyed from concurrent shard
  // workers (same discipline as profile/compact.hpp's CompactProfile).
  struct Box {
    std::atomic<std::uint32_t> refs{1};
    Profile profile;
  };

  std::uint32_t ref_count() const {
    return box_->refs.load(std::memory_order_acquire);
  }
  void release() {
    if (box_ != nullptr &&
        box_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete box_;
    }
    box_ = nullptr;
  }

  // Materializes a uniquely owned profile to mutate: allocates when null,
  // clones when shared, otherwise returns the existing profile in place.
  Profile& owned();

  Box* box_ = nullptr;
};

static_assert(sizeof(ItemProfileRef) == sizeof(void*),
              "news envelopes are meant to carry a pointer-sized handle");

}  // namespace whatsup
