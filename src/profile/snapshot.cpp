#include "profile/snapshot.hpp"

namespace whatsup {

const std::shared_ptr<const Profile>& empty_profile_snapshot() {
  static const std::shared_ptr<const Profile> kEmpty =
      std::make_shared<const Profile>();
  return kEmpty;
}

std::shared_ptr<const Profile> ProfileSnapshotCache::get(const Profile& profile) {
  if (profile.version() == 0) return empty_profile_snapshot();
  if (snapshot_ == nullptr || version_ != profile.version()) {
    auto snapshot = std::make_shared<const Profile>(profile);
    // Warm the lazy norm cache before the snapshot escapes this thread:
    // snapshots are shared across shard workers, and norm()'s non-atomic
    // memoization is only safe once materialized.
    snapshot->norm();
    snapshot_ = std::move(snapshot);
    version_ = profile.version();
  }
  return snapshot_;
}

double SimilarityMemo::score(Metric metric, const Profile& subject, NodeId node,
                             const Profile& candidate) {
  const std::uint64_t subject_version = subject.version();
  const std::uint64_t candidate_version = candidate.version();
  auto it = entries_.find(node);
  if (it != entries_.end() && it->second.subject_version == subject_version &&
      it->second.candidate_version == candidate_version &&
      it->second.metric == metric) {
    return it->second.value;
  }
  const double value = similarity(metric, subject, candidate);
  if (it == entries_.end()) {
    if (entries_.size() >= kMaxEntries) entries_.clear();
    it = entries_.try_emplace(node).first;
  }
  it->second = Entry{subject_version, candidate_version, metric, value};
  return value;
}

}  // namespace whatsup
