#include "profile/snapshot.hpp"

#include <bit>
#include <type_traits>

namespace whatsup {

ProfileHandle ProfileSnapshotCache::get(const Profile& profile) {
  if (profile.version() == 0) return empty_profile_handle();
  if (handle_ == nullptr || version_ != profile.version()) {
    handle_ = ProfileHandle::snapshot(profile);
    version_ = profile.version();
  }
  return handle_;
}

DescriptorRef ProfileSnapshotCache::stamp(Cycle now, const Profile& profile) {
  if (stamp_.is_null() || stamp_cycle_ != now ||
      stamp_version_ != profile.version()) {
    stamp_ = DescriptorRef::make(now, get(profile));
    stamp_cycle_ = now;
    stamp_version_ = profile.version();
  }
  return stamp_;
}

SimilarityMemo::SimilarityMemo(std::size_t slots) {
  mask_ = std::bit_ceil(slots < 8 ? std::size_t{8} : slots) - 1;
}

void SimilarityMemo::reset_entries() {
  for (std::size_t i = 0; i <= mask_; ++i) slots_[i] = Entry{};
}

void SimilarityMemo::clear() {
  if (slots_ != nullptr) reset_entries();
  subject_version_ = ~std::uint64_t{0};
}

std::size_t SimilarityMemo::size() const {
  if (slots_ == nullptr) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    if (slots_[i].node != kNoNode) ++n;
  }
  return n;
}

template <typename Candidate>
double SimilarityMemo::score_impl(Metric metric, const Profile& subject,
                                  NodeId node, std::uint64_t candidate_version,
                                  const Candidate& candidate) {
  if (slots_ == nullptr) slots_ = std::make_unique<Entry[]>(mask_ + 1);
  // Any change to the subject invalidates every entry (versions never
  // revert, so entries keyed under an older subject are dead weight).
  if (subject.version() != subject_version_) {
    reset_entries();
    subject_version_ = subject.version();
  }
  const std::uint64_t h =
      (static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(metric) << 32);
  const std::size_t base = static_cast<std::size_t>(h >> 32);
  Entry* vacant = nullptr;
  for (std::size_t probe = 0; probe < kProbe; ++probe) {
    Entry& entry = slots_[(base + probe) & mask_];
    if (entry.node == node && entry.metric == metric) {
      if (entry.candidate_version == candidate_version) return entry.value;
      vacant = &entry;  // stale generation of the same key: overwrite
      break;
    }
    if (vacant == nullptr && entry.node == kNoNode) vacant = &entry;
  }
  double value;
  if constexpr (std::is_same_v<Candidate, ProfileHandle> ||
                std::is_same_v<Candidate, DescriptorRef>) {
    value = similarity(metric, subject, candidate.materialize());
  } else {
    value = similarity(metric, subject, candidate);
  }
  // Full probe window: evict the first slot (deterministic, and correct by
  // construction — a recompute returns the identical bits).
  Entry& target = vacant != nullptr ? *vacant : slots_[base & mask_];
  target = Entry{node, metric, candidate_version, value};
  return value;
}

double SimilarityMemo::score(Metric metric, const Profile& subject, NodeId node,
                             const Profile& candidate) {
  return score_impl(metric, subject, node, candidate.version(), candidate);
}

double SimilarityMemo::score(Metric metric, const Profile& subject, NodeId node,
                             const ProfileHandle& candidate) {
  return score_impl(metric, subject, node, candidate.version(), candidate);
}

double SimilarityMemo::score(Metric metric, const Profile& subject, NodeId node,
                             const DescriptorRef& candidate) {
  return score_impl(metric, subject, node, candidate.profile_version(), candidate);
}

}  // namespace whatsup
