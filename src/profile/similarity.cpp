#include "profile/similarity.hpp"

#include <algorithm>
#include <cmath>

namespace whatsup {

namespace {

// Single merge pass over two id-sorted profiles, accumulating the common-
// item statistics every metric needs.
struct CommonStats {
  double dot = 0.0;        // Σ sa·sb over common items
  double sub_norm2 = 0.0;  // Σ sa² over common items (‖sub(Pa,Pb)‖²)
  double sum_a = 0.0;      // Σ sa over common items
  double sum_b = 0.0;      // Σ sb over common items
  double sum_a2 = 0.0;     // Σ sa² over common items
  double sum_b2 = 0.0;     // Σ sb² over common items
  std::size_t common = 0;  // number of common items
  std::size_t both_liked = 0;
};

CommonStats common_stats(const Profile& a, const Profile& b) {
  CommonStats stats;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  std::size_t i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].id < eb[j].id) {
      ++i;
    } else if (eb[j].id < ea[i].id) {
      ++j;
    } else {
      const double sa = ea[i].score;
      const double sb = eb[j].score;
      stats.dot += sa * sb;
      stats.sub_norm2 += sa * sa;
      stats.sum_a += sa;
      stats.sum_b += sb;
      stats.sum_a2 += sa * sa;
      stats.sum_b2 += sb * sb;
      ++stats.common;
      if (sa > 0.5 && sb > 0.5) ++stats.both_liked;
      ++i;
      ++j;
    }
  }
  return stats;
}

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kWup: return "wup";
    case Metric::kCosine: return "cosine";
    case Metric::kJaccard: return "jaccard";
    case Metric::kOverlap: return "overlap";
    case Metric::kPearson: return "pearson";
  }
  return "unknown";
}

double wup_similarity(const Profile& subject, const Profile& candidate) {
  const CommonStats stats = common_stats(subject, candidate);
  if (stats.sub_norm2 <= 0.0) return 0.0;
  const double cand_norm = candidate.norm();
  if (cand_norm <= 0.0) return 0.0;
  return clamp01(stats.dot / (std::sqrt(stats.sub_norm2) * cand_norm));
}

double cosine_similarity(const Profile& a, const Profile& b) {
  const CommonStats stats = common_stats(a, b);
  const double na = a.norm();
  const double nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return clamp01(stats.dot / (na * nb));
}

double jaccard_similarity(const Profile& a, const Profile& b) {
  const CommonStats stats = common_stats(a, b);
  const std::size_t liked_a = a.liked_count();
  const std::size_t liked_b = b.liked_count();
  const std::size_t uni = liked_a + liked_b - stats.both_liked;
  if (uni == 0) return 0.0;
  return static_cast<double>(stats.both_liked) / static_cast<double>(uni);
}

double overlap_similarity(const Profile& a, const Profile& b) {
  const CommonStats stats = common_stats(a, b);
  const double na = a.norm();
  const double nb = b.norm();
  const double denom = std::min(na, nb) * std::max(std::min(na, nb), 1e-12);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  // dot / min(‖a‖,‖b‖)² keeps binary profiles in [0,1].
  return clamp01(stats.dot / denom);
}

double pearson_similarity(const Profile& a, const Profile& b) {
  const CommonStats stats = common_stats(a, b);
  if (stats.common < 2) return 0.0;
  const auto n = static_cast<double>(stats.common);
  const double cov = stats.dot - stats.sum_a * stats.sum_b / n;
  const double var_a = stats.sum_a2 - stats.sum_a * stats.sum_a / n;
  const double var_b = stats.sum_b2 - stats.sum_b * stats.sum_b / n;
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  const double r = cov / std::sqrt(var_a * var_b);
  return clamp01((r + 1.0) / 2.0);
}

double similarity(Metric metric, const Profile& subject, const Profile& candidate) {
  switch (metric) {
    case Metric::kWup: return wup_similarity(subject, candidate);
    case Metric::kCosine: return cosine_similarity(subject, candidate);
    case Metric::kJaccard: return jaccard_similarity(subject, candidate);
    case Metric::kOverlap: return overlap_similarity(subject, candidate);
    case Metric::kPearson: return pearson_similarity(subject, candidate);
  }
  return 0.0;
}

}  // namespace whatsup
