#include "profile/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define WHATSUP_X86_DISPATCH 1
#endif

namespace whatsup {

namespace {

// ---- Merge kernels --------------------------------------------------------
//
// Every metric reduces to a two-pointer merge of two id-sorted profiles.
// The scalar loops below use branch-free pointer advances (the compiler
// lowers the conditional increments to cmov/setcc) with a branchy — but
// rare — accumulate on matches; measured faster than both the fully branchy
// and the fully gated variants on random interleaves.
//
// On x86-64 an AVX-512 path intersects 8-id blocks at a time: compare the
// `a` block against all 8 cyclic rotations of the `b` block, collect the
// match bits, and process matches in ascending a-lane order. Ascending
// lane order equals ascending id order, so the floating-point accumulation
// order — and therefore every similarity value — is bit-identical to the
// scalar merge. Selected at runtime via __builtin_cpu_supports.

struct WupStats {
  double dot = 0.0;        // dot(sub(a,b), b)
  double sub_norm2 = 0.0;  // ‖sub(a,b)‖²
};

WupStats wup_stats_scalar(const Profile& a, const Profile& b) {
  const ItemId* ia = a.ids().data();
  const ItemId* ib = b.ids().data();
  const double* sa = a.scores().data();
  const double* sb = b.scores().data();
  const std::size_t na = a.size(), nb = b.size();
  WupStats s;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const ItemId da = ia[i], db = ib[j];
    if (da == db) {
      const double va = sa[i];
      s.dot += va * sb[j];
      s.sub_norm2 += va * va;
    }
    i += da <= db ? 1 : 0;
    j += db <= da ? 1 : 0;
  }
  return s;
}

double common_dot_scalar(const Profile& a, const Profile& b) {
  const ItemId* ia = a.ids().data();
  const ItemId* ib = b.ids().data();
  const double* sa = a.scores().data();
  const double* sb = b.scores().data();
  const std::size_t na = a.size(), nb = b.size();
  double dot = 0.0;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const ItemId da = ia[i], db = ib[j];
    if (da == db) dot += sa[i] * sb[j];
    i += da <= db ? 1 : 0;
    j += db <= da ? 1 : 0;
  }
  return dot;
}

#ifdef WHATSUP_X86_DISPATCH

// Match bits for one 8×8 block pair: compare `va` against all 8 cyclic
// rotations of `vb`. Rotation r lane l set ⟺ a[i+l] == b[j + ((l+r)&7)].
// Returns the l-major transpose (bit 8l+r), so ascending bit position scans
// matches in ascending a-lane order.
__attribute__((target("avx512f"))) inline std::uint64_t block_matches(
    __m512i va, __m512i vb) {
  std::uint64_t rows = 0;
  // Independent permutes (no serial rotate chain) keep the 8 compares in
  // flight together.
  const __m512i base = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  const __m512i seven = _mm512_set1_epi64(7);
#define WHATSUP_ROT(r)                                                      \
  {                                                                         \
    const __m512i idx =                                                     \
        _mm512_and_epi64(_mm512_add_epi64(base, _mm512_set1_epi64(r)), seven); \
    const __m512i rot = _mm512_permutexvar_epi64(idx, vb);                  \
    rows |= static_cast<std::uint64_t>(_mm512_cmpeq_epi64_mask(va, rot))    \
            << (8 * (r));                                                   \
  }
  WHATSUP_ROT(0)
  WHATSUP_ROT(1)
  WHATSUP_ROT(2)
  WHATSUP_ROT(3)
  WHATSUP_ROT(4)
  WHATSUP_ROT(5)
  WHATSUP_ROT(6)
  WHATSUP_ROT(7)
#undef WHATSUP_ROT
  if (rows == 0) return 0;
  // 8×8 bit-matrix transpose (Hacker's Delight §7-3): r-major → l-major.
  std::uint64_t t = rows, tmp;
  tmp = (t ^ (t >> 7)) & 0x00AA00AA00AA00AAULL;
  t ^= tmp ^ (tmp << 7);
  tmp = (t ^ (t >> 14)) & 0x0000CCCC0000CCCCULL;
  t ^= tmp ^ (tmp << 14);
  tmp = (t ^ (t >> 28)) & 0x00000000F0F0F0F0ULL;
  t ^= tmp ^ (tmp << 28);
  return t;
}

__attribute__((target("avx512f"))) WupStats wup_stats_avx512(const Profile& a,
                                                             const Profile& b) {
  const ItemId* ia = a.ids().data();
  const ItemId* ib = b.ids().data();
  const double* sa = a.scores().data();
  const double* sb = b.scores().data();
  const std::size_t na = a.size(), nb = b.size();
  WupStats s;
  std::size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m512i va = _mm512_loadu_si512(ia + i);
    const __m512i vb = _mm512_loadu_si512(ib + j);
    std::uint64_t matches = block_matches(va, vb);
    while (matches != 0) {
      const int t = __builtin_ctzll(matches);
      matches &= matches - 1;
      const int l = t >> 3, r = t & 7;
      const double av = sa[i + static_cast<std::size_t>(l)];
      const double bv = sb[j + static_cast<std::size_t>((l + r) & 7)];
      s.dot += av * bv;
      s.sub_norm2 += av * av;
    }
    const ItemId amax = ia[i + 7], bmax = ib[j + 7];
    i += amax <= bmax ? 8 : 0;
    j += bmax <= amax ? 8 : 0;
  }
  while (i < na && j < nb) {
    const ItemId da = ia[i], db = ib[j];
    if (da == db) {
      const double va = sa[i];
      s.dot += va * sb[j];
      s.sub_norm2 += va * va;
    }
    i += da <= db ? 1 : 0;
    j += db <= da ? 1 : 0;
  }
  return s;
}

__attribute__((target("avx512f"))) double common_dot_avx512(const Profile& a,
                                                            const Profile& b) {
  const ItemId* ia = a.ids().data();
  const ItemId* ib = b.ids().data();
  const double* sa = a.scores().data();
  const double* sb = b.scores().data();
  const std::size_t na = a.size(), nb = b.size();
  double dot = 0.0;
  std::size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m512i va = _mm512_loadu_si512(ia + i);
    const __m512i vb = _mm512_loadu_si512(ib + j);
    std::uint64_t matches = block_matches(va, vb);
    while (matches != 0) {
      const int t = __builtin_ctzll(matches);
      matches &= matches - 1;
      const int l = t >> 3, r = t & 7;
      dot += sa[i + static_cast<std::size_t>(l)] *
             sb[j + static_cast<std::size_t>((l + r) & 7)];
    }
    const ItemId amax = ia[i + 7], bmax = ib[j + 7];
    i += amax <= bmax ? 8 : 0;
    j += bmax <= amax ? 8 : 0;
  }
  while (i < na && j < nb) {
    const ItemId da = ia[i], db = ib[j];
    if (da == db) dot += sa[i] * sb[j];
    i += da <= db ? 1 : 0;
    j += db <= da ? 1 : 0;
  }
  return dot;
}

bool have_avx512() { return __builtin_cpu_supports("avx512f") != 0; }

WupStats (*const wup_stats)(const Profile&, const Profile&) =
    have_avx512() ? wup_stats_avx512 : wup_stats_scalar;
double (*const common_dot)(const Profile&, const Profile&) =
    have_avx512() ? common_dot_avx512 : common_dot_scalar;

#else

constexpr WupStats (*wup_stats)(const Profile&, const Profile&) = wup_stats_scalar;
constexpr double (*common_dot)(const Profile&, const Profile&) = common_dot_scalar;

#endif  // WHATSUP_X86_DISPATCH

// |liked(a) ∩ liked(b)| — Jaccard only (off the clustering hot path).
std::size_t common_both_liked(const Profile& a, const Profile& b) {
  const ItemId* ia = a.ids().data();
  const ItemId* ib = b.ids().data();
  const double* sa = a.scores().data();
  const double* sb = b.scores().data();
  const std::size_t na = a.size(), nb = b.size();
  std::size_t both = 0;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const ItemId da = ia[i], db = ib[j];
    if (da == db && sa[i] > 0.5 && sb[j] > 0.5) ++both;
    i += da <= db ? 1 : 0;
    j += db <= da ? 1 : 0;
  }
  return both;
}

// Full co-rating statistics — Pearson only.
struct PearsonStats {
  double dot = 0.0;
  double sum_a = 0.0;
  double sum_b = 0.0;
  double sum_a2 = 0.0;
  double sum_b2 = 0.0;
  std::size_t common = 0;
};

PearsonStats pearson_stats(const Profile& a, const Profile& b) {
  const ItemId* ia = a.ids().data();
  const ItemId* ib = b.ids().data();
  const double* sa = a.scores().data();
  const double* sb = b.scores().data();
  const std::size_t na = a.size(), nb = b.size();
  PearsonStats stats;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const ItemId da = ia[i], db = ib[j];
    if (da == db) {
      const double va = sa[i], vb = sb[j];
      stats.dot += va * vb;
      stats.sum_a += va;
      stats.sum_b += vb;
      stats.sum_a2 += va * va;
      stats.sum_b2 += vb * vb;
      ++stats.common;
    }
    i += da <= db ? 1 : 0;
    j += db <= da ? 1 : 0;
  }
  return stats;
}

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kWup: return "wup";
    case Metric::kCosine: return "cosine";
    case Metric::kJaccard: return "jaccard";
    case Metric::kOverlap: return "overlap";
    case Metric::kPearson: return "pearson";
  }
  return "unknown";
}

double wup_similarity(const Profile& subject, const Profile& candidate) {
  const WupStats stats = wup_stats(subject, candidate);
  if (stats.sub_norm2 <= 0.0) return 0.0;
  const double cand_norm = candidate.norm();
  if (cand_norm <= 0.0) return 0.0;
  return clamp01(stats.dot / (std::sqrt(stats.sub_norm2) * cand_norm));
}

double cosine_similarity(const Profile& a, const Profile& b) {
  const double na = a.norm();
  const double nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return clamp01(common_dot(a, b) / (na * nb));
}

double jaccard_similarity(const Profile& a, const Profile& b) {
  const std::size_t both_liked = common_both_liked(a, b);
  const std::size_t uni = a.liked_count() + b.liked_count() - both_liked;
  if (uni == 0) return 0.0;
  return static_cast<double>(both_liked) / static_cast<double>(uni);
}

double overlap_similarity(const Profile& a, const Profile& b) {
  const double na = a.norm();
  const double nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  // dot / min(‖a‖,‖b‖)² keeps binary profiles in [0,1].
  const double m = std::min(na, nb);
  return clamp01(common_dot(a, b) / (m * m));
}

double pearson_similarity(const Profile& a, const Profile& b) {
  const PearsonStats stats = pearson_stats(a, b);
  if (stats.common < 2) return 0.0;
  const auto n = static_cast<double>(stats.common);
  const double cov = stats.dot - stats.sum_a * stats.sum_b / n;
  const double var_a = stats.sum_a2 - stats.sum_a * stats.sum_a / n;
  const double var_b = stats.sum_b2 - stats.sum_b * stats.sum_b / n;
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  const double r = cov / std::sqrt(var_a * var_b);
  return clamp01((r + 1.0) / 2.0);
}

double similarity(Metric metric, const Profile& subject, const Profile& candidate) {
  switch (metric) {
    case Metric::kWup: return wup_similarity(subject, candidate);
    case Metric::kCosine: return cosine_similarity(subject, candidate);
    case Metric::kJaccard: return jaccard_similarity(subject, candidate);
    case Metric::kOverlap: return overlap_similarity(subject, candidate);
    case Metric::kPearson: return pearson_similarity(subject, candidate);
  }
  return 0.0;
}

}  // namespace whatsup
