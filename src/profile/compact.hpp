// Compact interned profile snapshots — the storage layer behind every
// net::Descriptor.
//
// A descriptor used to carry a deep `shared_ptr<const Profile>` snapshot:
// ~230 bytes of SoA storage per copy (plus heap spill past 8 entries),
// duplicated across every view and in-flight message that referenced the
// same profile generation. At a million nodes the fan-out of those copies
// is the dominant resident cost. This header replaces them with three
// pieces:
//
//  * `CompactProfile` — an immutable, losslessly delta-encoded profile
//    record: varint zigzag deltas for the (ascending, dense) item ids and
//    the timestamps, and a 1-bit-per-entry mask for binary score vectors
//    (user profiles are all 0/1; real-valued item-profile scores fall back
//    to raw 8-byte doubles). The header keeps the source profile's
//    `version()`, its cached `norm()` and `liked_count()`, so decoding
//    reproduces a Profile that is bit-indistinguishable from a copy of the
//    source — which is what keeps fixed-seed digest trajectories identical
//    under this storage change.
//  * `ProfileHandle` — the pointer-sized value views and messages actually
//    hold (an intrusive refcount on the record, so the handle is 8 bytes
//    where a shared_ptr would be 16 — at ~190 descriptors per node across
//    views and in-flight gossip that halves a visible slice of the
//    million-node budget). `materialize()` decodes on demand into a
//    thread-local direct-mapped cache of SoA scratch Profiles keyed by
//    version, so the similarity kernels run on exactly the flat arrays
//    they were built for (the AVX-512 hot path is untouched). The
//    returned reference stays valid until the same thread materializes
//    another generation — callers hold at most one at a time.
//  * `SnapshotIntern` — a global version-keyed weak intern table: every
//    descriptor generation is encoded once and shared by all holders
//    process-wide. Dead generations (no descriptor left) are purged
//    epoch-wise: the engine advances the epoch each cycle, sweeping one
//    shard of the table, and inserts amortize a sweep so the table stays
//    bounded even without an engine.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <mutex>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/small_vector.hpp"
#include "profile/profile.hpp"

namespace whatsup {

class ProfileHandle;

class CompactProfile {
 public:
  // Encodes an immutable record of `profile`'s current contents and
  // returns the (sole) owning handle. The norm cache is warmed (and
  // captured) here, so decoded copies can be shared across shard workers
  // without racing on the lazy norm.
  static ProfileHandle encode(const Profile& profile);

  // Restores the exact source contents (ids/timestamps/scores, version,
  // liked count, cached norm) into `out`.
  void decode_into(Profile& out) const;

  std::size_t size() const { return count_; }
  std::uint64_t version() const { return version_; }
  double norm() const { return norm_; }
  std::size_t liked_count() const { return liked_; }

  // Encoded payload bytes (observability; excludes the record header).
  std::size_t encoded_bytes() const { return bytes_.size(); }
  // Full resident cost of this record: header + any heap spill.
  std::size_t resident_bytes() const {
    return sizeof(CompactProfile) +
           (bytes_.capacity() > kInlineBytes ? bytes_.capacity() : 0);
  }

 private:
  friend class ProfileHandle;
  friend class SnapshotIntern;

  static constexpr std::size_t kInlineBytes = 24;
  static constexpr std::uint8_t kBinaryScores = 1;  // flags bit

  // Intrusive reference count: one count per live ProfileHandle, plus one
  // held by the intern table while the record is interned. Atomic because
  // descriptors holding the same record are copied and dropped from
  // concurrent shard workers (exactly the sharing shared_ptr gave us,
  // without the second control-block pointer in every descriptor).
  void retain() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  void release() const {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
  std::uint32_t ref_count() const { return refs_.load(std::memory_order_acquire); }

  mutable std::atomic<std::uint32_t> refs_{1};
  std::uint64_t version_ = 0;
  double norm_ = 0.0;
  std::uint32_t count_ = 0;
  std::uint32_t liked_ = 0;
  std::uint8_t flags_ = 0;
  // Layout: [id deltas][timestamp deltas][score mask | raw doubles].
  SmallVector<std::uint8_t, kInlineBytes> bytes_;
};

class ProfileHandle {
 public:
  ProfileHandle() = default;
  // Bootstrap descriptors ship bare addresses: a null handle means "no
  // snapshot", which view refresh treats differently from an empty profile.
  ProfileHandle(std::nullptr_t) {}

  ProfileHandle(const ProfileHandle& other) : record_(other.record_) {
    if (record_ != nullptr) record_->retain();
  }
  ProfileHandle(ProfileHandle&& other) noexcept : record_(other.record_) {
    other.record_ = nullptr;
  }
  ProfileHandle& operator=(const ProfileHandle& other) {
    ProfileHandle copy(other);
    std::swap(record_, copy.record_);
    return *this;
  }
  ProfileHandle& operator=(ProfileHandle&& other) noexcept {
    std::swap(record_, other.record_);
    return *this;
  }
  ~ProfileHandle() {
    if (record_ != nullptr) record_->release();
  }

  // Takes ownership of one reference to `record` (no retain).
  static ProfileHandle adopt(const CompactProfile* record) {
    ProfileHandle handle;
    handle.record_ = record;
    return handle;
  }

  // Interned snapshot of `profile`'s current contents (the replacement for
  // make_shared<const Profile>(profile) everywhere descriptors are built).
  static ProfileHandle snapshot(const Profile& profile);

  // Decodes into thread-local SoA scratch (a direct-mapped cache keyed
  // by version). Null and empty handles return a shared static empty
  // Profile. The reference is invalidated by the thread's next
  // materialize() — hold at most one at a time.
  const Profile& materialize() const;

  // Header reads that do NOT decode — the wire-size model and the memo key
  // off these.
  std::size_t size() const { return record_ ? record_->size() : 0; }
  bool empty() const { return size() == 0; }
  std::uint64_t version() const { return record_ ? record_->version() : 0; }

  const CompactProfile* record() const { return record_; }
  const CompactProfile* operator->() const { return record_; }
  long use_count() const { return record_ != nullptr ? record_->ref_count() : 0; }

  explicit operator bool() const { return record_ != nullptr; }
  bool operator==(std::nullptr_t) const { return record_ == nullptr; }
  bool operator==(const ProfileHandle& other) const = default;

 private:
  const CompactProfile* record_ = nullptr;
};

static_assert(sizeof(ProfileHandle) == sizeof(void*),
              "descriptors are meant to carry a pointer-sized handle");

// Shared handle for empty profiles (version 0): non-null — an explicitly
// empty snapshot is distinct from a bootstrap descriptor with no snapshot.
const ProfileHandle& empty_profile_handle();

class SnapshotIntern {
 public:
  static SnapshotIntern& instance();

  // Returns a handle on the process-wide record for `profile`'s current
  // version, encoding it on first sight. Version equality implies content
  // equality (profile.hpp), so the record is shareable by construction.
  // Thread-safe.
  ProfileHandle intern(const Profile& profile);

  // Epoch purge: sweeps ONE shard of the table, dropping entries whose
  // record has no holder beyond the table's own reference. The engine
  // calls this once per cycle, so dead snapshot generations are reclaimed
  // within kShardCount cycles of their last holder vanishing, at O(shard)
  // cost per cycle.
  void advance_epoch();

  // Full sweep of every shard (tests and shutdown hygiene).
  void purge_dead();

  struct Stats {
    std::size_t entries = 0;   // table entries, live or dead
    std::size_t live = 0;      // entries with a live record
    std::uint64_t interned = 0;  // records encoded
    std::uint64_t reused = 0;    // intern hits on a live record
    std::uint64_t purged = 0;    // dead entries swept
  };
  Stats stats() const;

 private:
  SnapshotIntern() = default;

  // Versions are drawn from one global counter, so version % kShardCount
  // round-robins the shards.
  static constexpr std::size_t kShardCount = 64;

  // The table owns one reference per entry; an entry whose record has
  // ref_count() == 1 has no outside holder left and is swept. A version
  // cannot gain a new holder except through intern() (which takes the
  // shard mutex) or by copying an existing handle (none exist at count 1),
  // so the sweep's release-and-erase under the mutex cannot race a revive.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, const CompactProfile*> map;
    // Inserts amortize a sweep once the map doubles past the last swept
    // size, bounding dead-entry growth even without an engine epoch.
    std::size_t sweep_at = 64;
    std::uint64_t interned = 0;
    std::uint64_t reused = 0;
    std::uint64_t purged = 0;
  };

  // Drops every table-only entry of `shard` (caller holds shard.mu).
  static void sweep_shard(Shard& shard);

  Shard shards_[kShardCount];
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace whatsup
