// Compact profile snapshots in a per-run slab arena — the storage layer
// behind every net::Descriptor.
//
// A descriptor used to carry a deep `shared_ptr<const Profile>` snapshot:
// ~230 bytes of SoA storage per copy (plus heap spill past 8 entries),
// duplicated across every view and in-flight message that referenced the
// same profile generation. PR 7 replaced that with interned delta-encoded
// records behind pointer-sized intrusive handles; this header finishes the
// diet by moving the records into chunked slab storage addressed by a
// 32-bit index, so the handles themselves shrink pointer → u32 and a whole
// descriptor packs into 8 bytes (net/message.hpp). Pieces:
//
//  * `CompactProfile` — an immutable, losslessly delta-encoded profile
//    record: varint zigzag deltas for the (ascending, dense) item ids and
//    the timestamps, and a 1-bit-per-entry mask for binary score vectors
//    (user profiles are all 0/1; real-valued item-profile scores fall back
//    to raw 8-byte doubles). The header keeps the source profile's
//    `version()`, its cached `norm()` and `liked_count()`, so decoding
//    reproduces a Profile that is bit-indistinguishable from a copy of the
//    source — which is what keeps fixed-seed digest trajectories identical
//    under this storage change. Records live in arena slabs, never on the
//    general heap (only oversized encoded payloads spill).
//  * `ProfileHandle` — the 4-byte value caches and cold paths hold (an
//    intrusive refcount on the slab record, addressed by arena index).
//    `materialize()` decodes on demand into a thread-local direct-mapped
//    cache of SoA scratch Profiles keyed by version, so the similarity
//    kernels run on exactly the flat arrays they were built for (the
//    AVX-512 hot path is untouched). The returned reference stays valid
//    until the same thread materializes another generation — callers hold
//    at most one at a time. The scratch cache is sized by the engine from
//    the node count (set_materialize_scratch_slots below).
//  * `DescriptorRef` — the tagged 4-byte payload of a packed descriptor:
//    either an index into the arena's stamp-record pool (a tiny refcounted
//    {timestamp, profile} pair shared by every copy of one descriptor
//    generation), or — for profile-less bootstrap descriptors — the
//    timestamp itself stored inline, costing no arena record at all.
//  * `SnapshotArena` — the process-wide slab arena: chunked pools with
//    per-chunk freelists (empty chunks are retired and their slabs freed —
//    the "compaction" step), a version-keyed intern table so every local
//    generation is encoded once, and a content-keyed intern table so the
//    wire codec re-interns identical snapshots arriving repeatedly from
//    other fragments. Dead interned generations are purged epoch-wise: the
//    engine advances the epoch each cycle, sweeping one shard of each
//    table, and inserts amortize a sweep so the tables stay bounded even
//    without an engine. Un-interned records and stamp records free
//    immediately when their last holder drops.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/small_vector.hpp"
#include "obs/registry.hpp"
#include "profile/profile.hpp"

namespace whatsup {

class ProfileHandle;
class SnapshotArena;

// Slab addresses: 32-bit indices into a SnapshotArena pool. The top of the
// index space is reserved so DescriptorRef can tag non-index payloads.
using ArenaIndex = std::uint32_t;
inline constexpr ArenaIndex kNullArenaIndex = 0xFFFFFFFFu;

class CompactProfile {
 public:
  // Encodes an immutable DETACHED record of `profile`'s current contents
  // (no intern-table entry; freed when the last handle drops). Hot paths
  // intern via ProfileHandle::snapshot / SnapshotArena instead.
  static ProfileHandle encode(const Profile& profile);

  // Restores the exact source contents (ids/timestamps/scores, version,
  // liked count, cached norm) into `out`.
  void decode_into(Profile& out) const;

  std::size_t size() const { return count_; }
  std::uint64_t version() const { return version_; }
  double norm() const { return norm_; }
  std::size_t liked_count() const { return liked_; }

  // Encoded payload bytes (observability; excludes the record header).
  std::size_t encoded_bytes() const { return bytes_.size(); }
  // Full resident cost of this record: slab slot + any heap spill.
  std::size_t resident_bytes() const {
    return sizeof(CompactProfile) +
           (bytes_.capacity() > kInlineBytes ? bytes_.capacity() : 0);
  }

 private:
  friend class ProfileHandle;
  friend class DescriptorRef;
  friend class SnapshotArena;
  template <typename Record>
  friend class SlabPool;

  static constexpr std::size_t kInlineBytes = 24;
  static constexpr std::uint8_t kBinaryScores = 1;  // flags bit

  CompactProfile() = default;
  ~CompactProfile() = default;

  // Fills this (freshly constructed) record from `profile`. The norm cache
  // is warmed (and captured) here, so decoded copies can be shared across
  // shard workers without racing on the lazy norm.
  void init_from(const Profile& profile);

  // Intrusive reference count: one count per live ProfileHandle (plus one
  // per stamp record referencing this blob, plus one held by an intern
  // table while the record is interned). Atomic because descriptors
  // holding the same record are copied and dropped from concurrent shard
  // workers. The release slow path returns the slot to the arena.
  void retain() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  void release() const;
  std::uint32_t ref_count() const { return refs_.load(std::memory_order_acquire); }

  mutable std::atomic<std::uint32_t> refs_{1};
  ArenaIndex slot_ = kNullArenaIndex;  // own index (release → freelist)
  std::uint64_t version_ = 0;
  double norm_ = 0.0;
  std::uint32_t count_ = 0;
  std::uint32_t liked_ = 0;
  std::uint8_t flags_ = 0;
  // Layout: [id deltas][timestamp deltas][score mask | raw doubles].
  SmallVector<std::uint8_t, kInlineBytes> bytes_;
};

// A descriptor generation: the timestamp its owner stamped at emission plus
// the profile snapshot it shipped. Every copy of the descriptor (views,
// in-flight messages, merge buffers) shares one record by refcount, so the
// per-copy cost is the 4-byte index, not the record. The snapshot's header
// fields the hot paths poll — version (similarity-memo key) and entry
// count (wire-size model) — are denormalized into the record at creation
// (both immutable on the blob), so a memo probe or size query costs one
// slab lookup instead of chasing stamp → blob across chunks.
struct StampRecord {
  mutable std::atomic<std::uint32_t> refs{1};
  Cycle timestamp = kNoCycle;
  ArenaIndex blob = kNullArenaIndex;  // kNullArenaIndex: bare address, no snapshot
  std::uint32_t size = 0;             // blob entry count (0 when no blob)
  std::uint64_t version = 0;          // blob generation (0 when no blob)
};

// Chunked slab pool: records live in fixed-size chunks addressed by a
// 32-bit index (chunk number · slot), with a per-chunk freelist. Lookups
// are lock-free (an atomic chunk-pointer table); allocate/free take the
// pool mutex. A chunk whose records all died is RETIRED — its slab is
// freed and its slots leave the freelist — and lazily revived (fresh slab)
// if the pool grows again: epoch purge thereby compacts the arena instead
// of only recycling slots.
template <typename Record>
class SlabPool {
 public:
  static constexpr std::uint32_t kChunkShift = 12;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  // 32768 chunks × 4096 slots = 2^27 addressable records, far below the
  // 2^31 ceiling DescriptorRef's tag bit imposes on indices.
  static constexpr std::uint32_t kMaxChunks = 1u << 15;

  SlabPool() : chunks_(new std::atomic<Slot*>[kMaxChunks]) {
    for (std::uint32_t c = 0; c < kMaxChunks; ++c) {
      chunks_[c].store(nullptr, std::memory_order_relaxed);
    }
  }
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() {
    for (std::uint32_t c = 0; c < kMaxChunks; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
    }
  }

  // Lock-free: callers hold a reference on the record (directly or through
  // a handle), which pins the chunk (live > 0 chunks are never retired).
  Record* get(ArenaIndex index) const {
    Slot* chunk = chunks_[index >> kChunkShift].load(std::memory_order_acquire);
    return chunk[index & (kChunkSlots - 1)].record();
  }

  // Allocates a slot and default-constructs a Record in it.
  ArenaIndex allocate() {
    std::lock_guard<std::mutex> lock(mu_);
    while (!free_chunks_.empty()) {
      const std::uint32_t c = free_chunks_.back();
      Slot* chunk = chunks_[c].load(std::memory_order_relaxed);
      if (chunk == nullptr || meta_[c].free_head == kNullArenaIndex) {
        free_chunks_.pop_back();  // stale entry (retired or drained chunk)
        continue;
      }
      const ArenaIndex index = meta_[c].free_head;
      Slot& slot = chunk[index & (kChunkSlots - 1)];
      meta_[c].free_head = slot.next_free();
      ++meta_[c].live;
      ++live_;
      new (slot.storage) Record();
      return index;
    }
    return allocate_in_new_chunk();
  }

  // Destroys the record and recycles the slot; retires fully-dead chunks
  // (keeping the newest chunk warm against alloc/free oscillation).
  void free(ArenaIndex index) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint32_t c = index >> kChunkShift;
    Slot* chunk = chunks_[c].load(std::memory_order_relaxed);
    Slot& slot = chunk[index & (kChunkSlots - 1)];
    slot.record()->~Record();
    slot.next_free() = meta_[c].free_head;
    meta_[c].free_head = index;
    --meta_[c].live;
    --live_;
    if (meta_[c].live == 0 && c != newest_chunk_) {
      chunks_[c].store(nullptr, std::memory_order_release);
      delete[] chunk;
      meta_[c].free_head = kNullArenaIndex;
      ++retired_;
    } else if (slot.next_free() == kNullArenaIndex) {
      free_chunks_.push_back(c);  // chunk re-entered the freelist
    }
  }

  struct Stats {
    std::size_t live = 0;           // constructed records
    std::size_t chunks = 0;         // slabs currently allocated
    std::size_t retired = 0;        // slabs freed by compaction (lifetime)
    std::size_t resident_bytes = 0; // slab storage held right now
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.live = live_;
    s.retired = retired_;
    for (std::uint32_t c = 0; c < meta_.size(); ++c) {
      if (chunks_[c].load(std::memory_order_relaxed) != nullptr) ++s.chunks;
    }
    s.resident_bytes = s.chunks * kChunkSlots * sizeof(Slot);
    return s;
  }

 private:
  struct Slot {
    alignas(Record) unsigned char storage[sizeof(Record)];
    Record* record() { return std::launder(reinterpret_cast<Record*>(storage)); }
    // Vacant slots overlay the freelist link on the record storage.
    std::uint32_t& next_free() {
      return *reinterpret_cast<std::uint32_t*>(storage);
    }
  };
  static_assert(sizeof(Record) >= sizeof(std::uint32_t));

  struct ChunkMeta {
    std::uint32_t live = 0;
    ArenaIndex free_head = kNullArenaIndex;
  };

  // Caller holds mu_. Revives a retired chunk or appends a new one.
  ArenaIndex allocate_in_new_chunk() {
    std::uint32_t c = 0;
    while (c < meta_.size() &&
           chunks_[c].load(std::memory_order_relaxed) != nullptr) {
      ++c;
    }
    if (c == meta_.size()) meta_.emplace_back();
    Slot* chunk = new Slot[kChunkSlots];
    const ArenaIndex base = c << kChunkShift;
    for (std::uint32_t i = 1; i < kChunkSlots - 1; ++i) {
      chunk[i].next_free() = base + i + 1;
    }
    chunk[kChunkSlots - 1].next_free() = kNullArenaIndex;
    meta_[c].free_head = base + 1;  // slot 0 is handed out below
    meta_[c].live = 1;
    ++live_;
    chunks_[c].store(chunk, std::memory_order_release);
    newest_chunk_ = c;
    free_chunks_.push_back(c);
    new (chunk[0].storage) Record();
    return base;
  }

  mutable std::mutex mu_;
  std::unique_ptr<std::atomic<Slot*>[]> chunks_;
  std::vector<ChunkMeta> meta_;
  // Chunk ids that may hold free slots (lazily pruned stack).
  std::vector<std::uint32_t> free_chunks_;
  std::uint32_t newest_chunk_ = 0;
  std::size_t live_ = 0;
  std::size_t retired_ = 0;
};

class ProfileHandle {
 public:
  ProfileHandle() = default;
  // Bootstrap descriptors ship bare addresses: a null handle means "no
  // snapshot", which view refresh treats differently from an empty profile.
  ProfileHandle(std::nullptr_t) {}

  ProfileHandle(const ProfileHandle& other);
  ProfileHandle(ProfileHandle&& other) noexcept : slot_(other.slot_) {
    other.slot_ = kNullArenaIndex;
  }
  ProfileHandle& operator=(const ProfileHandle& other) {
    ProfileHandle copy(other);
    std::swap(slot_, copy.slot_);
    return *this;
  }
  ProfileHandle& operator=(ProfileHandle&& other) noexcept {
    std::swap(slot_, other.slot_);
    return *this;
  }
  ~ProfileHandle();

  // Takes ownership of one reference to the record at `slot` (no retain).
  static ProfileHandle adopt(ArenaIndex slot) {
    ProfileHandle handle;
    handle.slot_ = slot;
    return handle;
  }

  // Interned snapshot of `profile`'s current contents (the replacement for
  // make_shared<const Profile>(profile) everywhere descriptors are built).
  static ProfileHandle snapshot(const Profile& profile);

  // Decodes into thread-local SoA scratch (a direct-mapped cache keyed
  // by version). Null and empty handles return a shared static empty
  // Profile. The reference is invalidated by the thread's next
  // materialize() — hold at most one at a time.
  const Profile& materialize() const;

  // Header reads that do NOT decode — the wire-size model and the memo key
  // off these.
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::uint64_t version() const;

  ArenaIndex slot() const { return slot_; }
  const CompactProfile* record() const;
  const CompactProfile* operator->() const { return record(); }
  long use_count() const;

  explicit operator bool() const { return slot_ != kNullArenaIndex; }
  bool operator==(std::nullptr_t) const { return slot_ == kNullArenaIndex; }
  bool operator==(const ProfileHandle& other) const = default;

 private:
  ArenaIndex slot_ = kNullArenaIndex;
};

static_assert(sizeof(ProfileHandle) == 4,
              "handles are meant to be arena indices, not pointers");

// Shared handle for empty profiles (version 0): non-null — an explicitly
// empty snapshot is distinct from a bootstrap descriptor with no snapshot.
const ProfileHandle& empty_profile_handle();

// The 4-byte payload of a packed net::Descriptor: (timestamp, snapshot) of
// one descriptor generation. Three encodings in one u32:
//
//   bits_ == kNullBits          — null: no record, timestamp() == kNoCycle.
//   bit 31 set                  — profile-less descriptor with the 31-bit
//                                 timestamp stored INLINE (bootstrap seeds
//                                 cost no arena record at all).
//   otherwise                   — index of an arena StampRecord, shared by
//                                 refcount with every copy of the
//                                 generation.
class DescriptorRef {
 public:
  DescriptorRef() = default;
  DescriptorRef(std::nullptr_t) {}

  DescriptorRef(const DescriptorRef& other);
  DescriptorRef(DescriptorRef&& other) noexcept : bits_(other.bits_) {
    other.bits_ = kNullBits;
  }
  DescriptorRef& operator=(const DescriptorRef& other) {
    DescriptorRef copy(other);
    std::swap(bits_, copy.bits_);
    return *this;
  }
  DescriptorRef& operator=(DescriptorRef&& other) noexcept {
    std::swap(bits_, other.bits_);
    return *this;
  }
  ~DescriptorRef();

  // One generation: the emission timestamp plus the (possibly null)
  // snapshot. Profile-less refs with an inline-representable timestamp
  // allocate nothing.
  static DescriptorRef make(Cycle timestamp, const ProfileHandle& profile);

  Cycle timestamp() const;
  bool has_profile() const;
  std::uint64_t profile_version() const;
  std::size_t profile_size() const;
  // Retained handle on the snapshot (cold paths); null when !has_profile().
  ProfileHandle profile() const;
  // Decoded SoA view (thread-local scratch; see ProfileHandle::materialize
  // for the lifetime contract). Null refs yield the shared empty Profile.
  const Profile& materialize() const;

  bool is_null() const { return bits_ == kNullBits; }

 private:
  friend class SnapshotArena;

  static constexpr std::uint32_t kNullBits = 0x7FFFFFFFu;
  static constexpr std::uint32_t kInlineTag = 0x80000000u;
  // Inline-representable timestamps: 31-bit two's complement.
  static constexpr std::int64_t kInlineMin = -(std::int64_t{1} << 30);
  static constexpr std::int64_t kInlineMax = (std::int64_t{1} << 30) - 1;

  bool is_inline() const { return (bits_ & kInlineTag) != 0; }
  bool is_record() const { return !is_inline() && bits_ != kNullBits; }
  Cycle inline_timestamp() const {
    // Sign-extend the low 31 bits.
    const auto low = static_cast<std::uint32_t>(bits_ & ~kInlineTag);
    return static_cast<Cycle>((low ^ (1u << 30)) - (1u << 30));
  }
  const StampRecord* record() const;

  std::uint32_t bits_ = kNullBits;
};

static_assert(sizeof(DescriptorRef) == 4);

class SnapshotArena {
 public:
  // Inline (header-defined below): every descriptor copy/drop funnels
  // through here, ~10^8 times per bench run, so the lookup must compile to
  // a guard check + load, not a cross-TU call.
  static SnapshotArena& instance();

  // Returns a handle on the process-wide record for `profile`'s current
  // version, encoding it on first sight. Version equality implies content
  // equality (profile.hpp), so the record is shareable by construction.
  // Thread-safe.
  ProfileHandle intern(const Profile& profile);

  // Content-keyed intern for snapshots arriving over the wire: the
  // sender's version stamps are process-local and meaningless here, so
  // identical payloads re-arriving across fragment barriers must dedupe by
  // CONTENT (encoded bytes + header) or every arrival would hold its own
  // record. The returned record keeps the version of its first arrival —
  // versions only key caches, never behavior. Thread-safe.
  ProfileHandle intern_by_content(const Profile& profile);

  // Detached record: no intern-table entry, freed when the last reference
  // drops (tests, the empty-profile singleton).
  ProfileHandle encode_detached(const Profile& profile);

  // A stamp record for (timestamp, profile); retains the blob. Returns the
  // new record's index with its initial reference owned by the caller.
  ArenaIndex make_stamp(Cycle timestamp, const ProfileHandle& profile);

  // Epoch purge: sweeps ONE shard of each intern table, dropping entries
  // whose record has no holder beyond the table's own reference, and
  // retiring slab chunks left empty. The engine calls this once per cycle,
  // so dead snapshot generations are reclaimed within kShardCount cycles
  // of their last holder vanishing, at O(shard) cost per cycle.
  void advance_epoch();

  // Full sweep of every shard (tests and shutdown hygiene).
  void purge_dead();

  struct Stats {
    std::size_t entries = 0;        // intern-table entries (both tables)
    std::size_t live = 0;           // entries with a live outside holder
    std::uint64_t interned = 0;     // records encoded via the tables
    std::uint64_t reused = 0;       // intern hits on a live record
    std::uint64_t purged = 0;       // dead entries swept
    SlabPool<CompactProfile>::Stats blobs;
    SlabPool<StampRecord>::Stats stamps;
  };
  Stats stats() const;

  // ---- record plumbing (handles and inline accessors; not for callers) --
  const CompactProfile* blob(ArenaIndex index) const {
    return blob_pool_.get(index);
  }
  const StampRecord* stamp(ArenaIndex index) const {
    return stamp_pool_.get(index);
  }
  void retain_stamp(ArenaIndex index) const {
    stamp_pool_.get(index)->refs.fetch_add(1, std::memory_order_relaxed);
  }
  // Inline fast path: one decrement per descriptor drop. Only the last
  // holder takes the out-of-line free (blob release + slot recycle).
  void release_stamp(ArenaIndex index) {
    StampRecord* rec = stamp_pool_.get(index);
    if (rec->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      free_stamp(index, rec);
    }
  }
  void free_blob(const CompactProfile* record);

 private:
  SnapshotArena() = default;

  // Versions are drawn from one global counter, so version % kShardCount
  // round-robins the shards; content keys are hashes.
  static constexpr std::size_t kShardCount = 64;

  // A table owns one reference per entry; an entry whose record has
  // ref_count() == 1 has no outside holder left and is swept. A version
  // (or content key) cannot gain a new holder except through the interns
  // (which take the shard mutex) or by copying an existing handle (none
  // exist at count 1), so the sweep's release-and-erase under the mutex
  // cannot race a revive.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, ArenaIndex> map;
    // Inserts amortize a sweep once the map doubles past the last swept
    // size, bounding dead-entry growth even without an engine epoch.
    std::size_t sweep_at = 64;
    std::uint64_t interned = 0;
    std::uint64_t reused = 0;
    std::uint64_t purged = 0;
  };

  // Encodes a fresh blob record (pool slot + init); caller owns the ref.
  ArenaIndex encode_blob(const Profile& profile);
  // Drops every table-only entry of `shard` (caller holds shard.mu).
  void sweep_shard(Shard& shard);
  // release_stamp slow path: frees `rec` (whose count just hit zero).
  void free_stamp(ArenaIndex index, StampRecord* rec);

  SlabPool<CompactProfile> blob_pool_;
  SlabPool<StampRecord> stamp_pool_;
  Shard version_shards_[kShardCount];
  Shard content_shards_[kShardCount];
  std::atomic<std::uint64_t> epoch_{0};
};

// ---- materialize scratch sizing -------------------------------------------
//
// The thread-local materialize cache is direct-mapped over `slots` entries
// (~0.5 KB each). The engine derives the slot count from the node count —
// the live-generation working set a scoring sweep touches scales with the
// deployment, so a 500-node run no longer pays the 8 K-slot (≈4 MB/thread)
// ceiling sized for million-node sweeps. Takes effect on each thread's
// next materialize(); resizing clears that thread's cache (a perf-only
// event: decode is deterministic).
inline constexpr std::size_t kMinMaterializeScratchSlots = 1024;
inline constexpr std::size_t kMaxMaterializeScratchSlots = 8192;
void set_materialize_scratch_slots(std::size_t slots);
std::size_t materialize_scratch_slots();
// Resident bytes of one thread's scratch cache at the current slot count
// (slot headers + inline Profile storage; decoded heap spill excluded).
std::size_t materialize_scratch_bytes_per_thread();

// ---- materialize scratch (header-inline: the similarity hot path) ---------
//
// Implementation detail of ProfileHandle::materialize / DescriptorRef::
// materialize, placed in the header so the ~10^7-per-run probe sequence
// (slot index, version compare, return) inlines into the scoring loops.
// The out-of-line path is decode_into, which only runs on a scratch miss.
namespace detail {

// Process-wide slot-count knob (see set_materialize_scratch_slots).
inline std::atomic<std::size_t> g_scratch_slots{kMaxMaterializeScratchSlots};

struct ScratchSlot {
  std::uint64_t version = 0;  // 0 = vacant (empty profiles never enter)
  Profile profile;
};

// Shared static empty Profile: what null/empty snapshots materialize to.
inline const Profile& static_empty_profile() {
  static const Profile kEmpty;
  return kEmpty;
}

inline std::vector<ScratchSlot>& scratch_slots() {
  thread_local std::vector<ScratchSlot> slots;
  const std::size_t want = g_scratch_slots.load(std::memory_order_relaxed);
  if (slots.size() != want) [[unlikely]] {
    slots.clear();
    slots.resize(want);  // resize clears versions: a perf-only event
  }
  return slots;
}

// Scratch hit/miss counters (the PR 7 cache-sizing cliff, made directly
// observable). Registered lazily so the ~1e8-call hot path below pays the
// static-init guard only when stats are enabled.
inline obs::MetricId scratch_hit_metric() {
  static const obs::MetricId id = obs::counter("profile.scratch.hits");
  return id;
}
inline obs::MetricId scratch_miss_metric() {
  static const obs::MetricId id = obs::counter("profile.scratch.misses");
  return id;
}

// Direct-mapped probe keyed by snapshot version; `decode` fills the slot on
// a miss. Versions come from one global counter (dense), so
// version & (slots-1) distributes uniformly.
template <typename DecodeFn>
inline const Profile& scratch_lookup(std::uint64_t version, DecodeFn&& decode) {
  std::vector<ScratchSlot>& slots = scratch_slots();
  ScratchSlot& slot = slots[version & (slots.size() - 1)];
  if (slot.version != version) [[unlikely]] {
    if (obs::enabled()) obs::add(scratch_miss_metric());
    decode(slot.profile);
    slot.version = version;
  } else if (obs::enabled()) [[unlikely]] {
    obs::add(scratch_hit_metric());
  }
  return slot.profile;
}

}  // namespace detail

// ---- inline definitions ---------------------------------------------------

inline SnapshotArena& SnapshotArena::instance() {
  // Deliberately leaked: static handles (empty_profile_handle, test
  // fixtures) release through the arena at exit, so it must outlive every
  // other static-duration object. Defined inline because every handle and
  // descriptor refcount op routes through it — out-of-line this was ~10^8
  // calls per bench run.
  static SnapshotArena* arena = new SnapshotArena();
  return *arena;
}

inline void CompactProfile::release() const {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    SnapshotArena::instance().free_blob(this);
  }
}

inline ProfileHandle::ProfileHandle(const ProfileHandle& other)
    : slot_(other.slot_) {
  if (slot_ != kNullArenaIndex) record()->retain();
}

inline ProfileHandle::~ProfileHandle() {
  if (slot_ != kNullArenaIndex) record()->release();
}

inline const CompactProfile* ProfileHandle::record() const {
  return slot_ == kNullArenaIndex ? nullptr
                                  : SnapshotArena::instance().blob(slot_);
}

inline std::size_t ProfileHandle::size() const {
  return slot_ == kNullArenaIndex ? 0 : record()->size();
}

inline std::uint64_t ProfileHandle::version() const {
  return slot_ == kNullArenaIndex ? 0 : record()->version();
}

inline long ProfileHandle::use_count() const {
  return slot_ == kNullArenaIndex ? 0 : record()->ref_count();
}

inline DescriptorRef::DescriptorRef(const DescriptorRef& other)
    : bits_(other.bits_) {
  if (is_record()) SnapshotArena::instance().retain_stamp(bits_);
}

inline DescriptorRef::~DescriptorRef() {
  if (is_record()) SnapshotArena::instance().release_stamp(bits_);
}

inline const StampRecord* DescriptorRef::record() const {
  return SnapshotArena::instance().stamp(bits_);
}

inline Cycle DescriptorRef::timestamp() const {
  if (is_inline()) return inline_timestamp();
  if (bits_ == kNullBits) return kNoCycle;
  return record()->timestamp;
}

inline bool DescriptorRef::has_profile() const {
  return is_record() && record()->blob != kNullArenaIndex;
}

inline std::uint64_t DescriptorRef::profile_version() const {
  if (!is_record()) return 0;
  return record()->version;  // denormalized from the blob at make_stamp
}

inline std::size_t DescriptorRef::profile_size() const {
  if (!is_record()) return 0;
  return record()->size;  // denormalized from the blob at make_stamp
}

inline ProfileHandle DescriptorRef::profile() const {
  if (!is_record()) return ProfileHandle();
  const StampRecord* rec = record();
  if (rec->blob == kNullArenaIndex) return ProfileHandle();
  SnapshotArena::instance().blob(rec->blob)->retain();
  return ProfileHandle::adopt(rec->blob);
}

inline const Profile& ProfileHandle::materialize() const {
  if (slot_ == kNullArenaIndex) return detail::static_empty_profile();
  const CompactProfile* rec = record();
  if (rec->size() == 0) return detail::static_empty_profile();
  return detail::scratch_lookup(rec->version(),
                                [&](Profile& out) { rec->decode_into(out); });
}

inline const Profile& DescriptorRef::materialize() const {
  if (!is_record()) return detail::static_empty_profile();
  SnapshotArena& arena = SnapshotArena::instance();
  const StampRecord* rec = arena.stamp(bits_);
  // size/version are denormalized into the stamp record, so a scratch HIT
  // never touches the blob pool — only a miss pays the second slab lookup
  // (plus the decode it feeds).
  if (rec->size == 0) return detail::static_empty_profile();
  return detail::scratch_lookup(rec->version, [&](Profile& out) {
    arena.blob(rec->blob)->decode_into(out);
  });
}

}  // namespace whatsup
