// Similarity metrics between profiles.
//
// The paper's WUP metric (§II) is an *asymmetric* cosine variant:
//
//   Similarity(n, c) = sub(Pn,Pc)·Pc / (‖sub(Pn,Pc)‖ ‖Pc‖)
//
// where sub(Pn,Pc) is the restriction of Pn to the items present in Pc.
// For binary user profiles this divides the number of items liked by both
// by sqrt(#items liked by n that c rated) * sqrt(#items liked by c): it
// rewards common likes, penalises candidates who dislike what the subject
// likes, and favours candidates with short, selective profiles (cold-start
// boost). Cosine, Jaccard, overlap and Pearson are provided as baselines
// (§VI cites cosine as the strongest conventional metric).
#pragma once

#include <string>

#include "profile/profile.hpp"

namespace whatsup {

enum class Metric {
  kWup,
  kCosine,
  kJaccard,
  kOverlap,
  kPearson,
};

std::string to_string(Metric metric);

// Asymmetric WUP metric; `subject` is the node doing the selection (or the
// item profile in BEEP's orientation step), `candidate` the profile under
// evaluation. Returns 0 when either restriction is empty.
double wup_similarity(const Profile& subject, const Profile& candidate);

// Classic cosine over the common items, normalised by full profile norms.
double cosine_similarity(const Profile& a, const Profile& b);

// |liked(a) ∩ liked(b)| / |liked(a) ∪ liked(b)| with liked = score > 0.5.
double jaccard_similarity(const Profile& a, const Profile& b);

// dot(common) / min(‖a‖, ‖b‖)², clamped to [0, 1].
double overlap_similarity(const Profile& a, const Profile& b);

// Pearson correlation over co-rated items, rescaled to [0, 1].
double pearson_similarity(const Profile& a, const Profile& b);

// Dispatch by metric; all results are in [0, 1].
double similarity(Metric metric, const Profile& subject, const Profile& candidate);

}  // namespace whatsup
