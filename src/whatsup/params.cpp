#include "whatsup/params.hpp"

#include <string>

namespace whatsup {

Table Params::to_table() const {
  Table table({"Parameter", "Description", "Value"});
  table.add_row({"RPSvs", "Size of the random sample", std::to_string(rps_view_size)});
  table.add_row({"RPSf", "Frequency of gossip in the RPS (cycles)",
                 std::to_string(rps_period)});
  table.add_row({"WUPvs", "Size of the social network",
                 wup_view_size > 0 ? std::to_string(wup_view_size)
                                   : "2*fLIKE (=" + std::to_string(effective_wup_view_size()) + ")"});
  table.add_row({"Profile window", "News item TTL (cycles)",
                 std::to_string(profile_window)});
  table.add_row({"BEEP TTL", "Dissemination TTL for dislike", std::to_string(beep_ttl)});
  table.add_row({"fLIKE", "BEEP like fanout", std::to_string(f_like)});
  table.add_row({"fDISLIKE", "BEEP dislike fanout", std::to_string(f_dislike)});
  return table;
}

}  // namespace whatsup
