#include "whatsup/node.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"

namespace whatsup {

namespace {

// Failure-detection telemetry: retry-exhaustion suspicions and the view
// evictions hygiene confirms from them (src/obs/ registry contract — no
// RNG, no ordering effects).
struct HygieneMetrics {
  obs::MetricId suspicions = obs::counter("relia.suspicions");
  obs::MetricId evictions = obs::counter("relia.evictions");

  static const HygieneMetrics& get() {
    static const HygieneMetrics m;
    return m;
  }
};

}  // namespace

WhatsUpAgent::WhatsUpAgent(NodeId self, WhatsUpConfig config, const sim::Opinions& opinions)
    : self_(self),
      config_(config),
      opinions_(&opinions),
      rps_(self, static_cast<std::size_t>(config.params.rps_view_size),
           config.params.rps_period),
      wup_(self, static_cast<std::size_t>(config.params.effective_wup_view_size()),
           config.metric, config.params.wup_period) {
  if (config_.reliability.enabled || config_.hygiene.enabled() ||
      config_.obfuscation.enabled()) {
    opt_in_ = std::make_unique<OptInState>(config_);
  }
}

const sim::RetransmitQueue& WhatsUpAgent::retransmit_queue() const {
  static const sim::RetransmitQueue kEmpty{};
  return opt_in_ != nullptr ? opt_in_->retx : kEmpty;
}

const sim::DedupLog& WhatsUpAgent::dedup_log() const {
  static const sim::DedupLog kEmpty{};
  return opt_in_ != nullptr ? opt_in_->dedup : kEmpty;
}

const gossip::ViewHygiene& WhatsUpAgent::hygiene() const {
  static const gossip::ViewHygiene kEmpty{};
  return opt_in_ != nullptr ? opt_in_->hygiene : kEmpty;
}

void WhatsUpAgent::bootstrap_rps(std::vector<net::Descriptor> seed) {
  rps_.bootstrap(std::move(seed));
}

void WhatsUpAgent::bootstrap_wup(std::vector<net::Descriptor> seed) {
  wup_.bootstrap(std::move(seed));
}

const Profile& WhatsUpAgent::disclosed(Cycle now) {
  // Only reachable behind config_.obfuscation.enabled(), so opt_in_ exists.
  return opt_in_->obfuscation_cache.get(profile_, config_.obfuscation, self_, now);
}

void WhatsUpAgent::pump_retransmissions(sim::Context& ctx) {
  sim::RetransmitQueue& retx = opt_in_->retx;
  if (retx.pending() == 0) return;
  Rng rel = ctx.reliability_rng();
  std::vector<NodeId> expired;
  for (sim::RetransmitQueue::Due& due : retx.collect_due(ctx.now(), rel, &expired)) {
    ctx.send(due.to, net::MsgType::kNews, std::move(due.news));
  }
  // Retry exhaustion is the failure signal feeding view hygiene: enough of
  // them evicts the peer from BOTH views and drops its remaining entries.
  if (!expired.empty()) {
    obs::add(HygieneMetrics::get().suspicions, expired.size());
  }
  for (const NodeId failed : expired) {
    if (opt_in_->hygiene.report_failure(failed)) {
      rps_.view().remove(failed);
      wup_.view().remove(failed);
      retx.drop_target(failed);
      obs::add(HygieneMetrics::get().evictions);
    }
  }
}

void WhatsUpAgent::on_cycle(sim::Context& ctx) {
  // Profile window (§II-E): drop opinions on items older than the window.
  profile_.purge_older_than(ctx.now() - config_.params.profile_window);
  if (hygiene_on()) {
    opt_in_->hygiene.evict_stale(rps_.view(), ctx.now());
    opt_in_->hygiene.evict_stale(wup_.view(), ctx.now());
  }
  if (config_.reliability.enabled) pump_retransmissions(ctx);
  if (config_.obfuscation.enabled()) {
    const Profile& snapshot = disclosed(ctx.now());
    rps_.step(ctx, snapshot);
    wup_.step(ctx, profile_, rps_.view(), &snapshot);
  } else {
    rps_.step(ctx, profile_);
    wup_.step(ctx, profile_, rps_.view());
  }
}

void WhatsUpAgent::on_message(sim::Context& ctx, const net::Message& message) {
  // Any message is evidence of life for its sender.
  if (hygiene_on() && message.from != kNoNode && message.from != self_) {
    opt_in_->hygiene.absolve(message.from);
  }
  switch (message.type) {
    case net::MsgType::kRpsRequest:
      if (config_.obfuscation.enabled()) {
        rps_.on_request(ctx, message.view(), disclosed(ctx.now()));
      } else {
        rps_.on_request(ctx, message.view(), profile_);
      }
      break;
    case net::MsgType::kRpsReply:
      rps_.on_reply(ctx, message.view());
      break;
    case net::MsgType::kWupRequest:
      if (config_.obfuscation.enabled()) {
        const Profile& snapshot = disclosed(ctx.now());
        wup_.on_request(ctx, message.view(), profile_, rps_.view(), &snapshot);
      } else {
        wup_.on_request(ctx, message.view(), profile_, rps_.view());
      }
      break;
    case net::MsgType::kWupReply:
      wup_.on_reply(ctx, message.view(), profile_, rps_.view());
      break;
    case net::MsgType::kNews:
      handle_news(ctx, message.from, message.news());
      break;
    case net::MsgType::kAck:
      // An ack can reach a node that never tracks sends (mixed configs);
      // with no reliability state it is a no-op, exactly as the empty
      // queue made it before the state went lazy.
      if (opt_in_ != nullptr) opt_in_->retx.ack(message.from, message.ack().item);
      break;
    case net::MsgType::kRejoinRequest:
      handle_rejoin_request(ctx, message.view());
      break;
    case net::MsgType::kRejoinReply: {
      // Rebuild the RPS view from the contact's descriptor plus its view;
      // WUP re-clusters from there over the following cycles.
      std::vector<net::Descriptor> seeds = message.view().view;
      seeds.push_back(message.view().sender);
      rps_.bootstrap(std::move(seeds));
      break;
    }
  }
}

void WhatsUpAgent::handle_rejoin_request(sim::Context& ctx,
                                         const net::ViewPayload& payload) {
  if (payload.sender.node == kNoNode || payload.sender.node == self_) return;
  // Hand the joiner our full RPS view plus our own fresh descriptor
  // (rejoin is a cold path: the deep-copy make_descriptor is fine).
  net::ViewPayload reply;
  reply.sender = net::make_descriptor(
      self_, ctx.now(),
      config_.obfuscation.enabled() ? disclosed(ctx.now()) : profile_);
  reply.view = ctx.acquire_descriptor_buffer();
  for (const net::Descriptor& d : rps_.view().entries()) reply.view.push_back(d);
  ctx.send(payload.sender.node, net::MsgType::kRejoinReply, std::move(reply));
  // Absorb the joiner so gossip re-spreads its descriptor quickly.
  std::vector<net::Descriptor> joiner;
  joiner.push_back(payload.sender);
  rps_.bootstrap(std::move(joiner));
}

void WhatsUpAgent::on_recover(sim::Context& ctx) {
  // Views, pending retransmissions and the dedup log are soft state and
  // died with the process; the profile and SIR set model durable storage.
  rps_.view().clear();
  wup_.view().clear();
  if (opt_in_ != nullptr) {
    opt_in_->retx.clear();
    opt_in_->dedup.clear();
    opt_in_->hygiene.clear();
  }
  const NodeId contact = ctx.random_active_peer();
  if (contact == kNoNode) return;
  net::ViewPayload hello;
  hello.sender = net::make_descriptor(
      self_, ctx.now(),
      config_.obfuscation.enabled() ? disclosed(ctx.now()) : profile_);
  ctx.send(contact, net::MsgType::kRejoinRequest, std::move(hello));
}

void WhatsUpAgent::handle_news(sim::Context& ctx, NodeId from, net::NewsPayload news) {
  if (config_.reliability.enabled) {
    // Ack EVERY receipt, including repeats: a lost ack provokes a
    // retransmission, and re-acking the repeat is what recovers it.
    if (from != kNoNode && from != self_) {
      ctx.send(from, net::MsgType::kAck, net::AckPayload{news.id, news.hops});
    }
    // Classify exact-copy repeats (retransmissions, network duplicates)
    // with bounded memory; multi-path copies land under fresh keys.
    opt_in_->dedup.seen_or_insert(news.id, news.hops);
  }
  // SIR: an already-received item is dropped (§III) — but counted, so the
  // redundancy ratio (duplicate vs unique deliveries) is observable.
  if (!seen_.insert(news.id)) {
    if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
      obs->on_duplicate(self_, news.index);
    }
    return;
  }

  const bool liked = opinions_->likes(self_, news.index);
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_delivery(self_, news.index, news.hops, news.via_dislike, news.dislikes);
    obs->on_opinion(self_, news.index, liked);
  }

  if (liked) {
    // Alg. 1 lines 2-5: fold the user profile into the item profile, then
    // record the like (keyed by the ITEM's creation timestamp, so the
    // profile window measures item age).
    news.item_profile.fold_profile(profile_);
    profile_.set(news.id, news.created, 1.0);
  } else {
    profile_.set(news.id, news.created, 0.0);  // line 7
  }
  // Alg. 1 lines 8-10: purge stale entries from the item profile.
  news.item_profile.purge_older_than(ctx.now() - config_.params.profile_window);
  forward(ctx, liked, std::move(news));
}

void WhatsUpAgent::forward(sim::Context& ctx, bool liked, net::NewsPayload news) {
  const beep::BeepConfig beep_config = config_.beep_config();
  const beep::ForwardPlan plan =
      beep::plan_forward(ctx.rng(), beep_config, liked, news, wup_.view(), rps_.view());
  if (sim::DisseminationObserver* obs = ctx.observer(); obs != nullptr) {
    obs->on_forward(self_, news.index, news.hops, liked, plan.targets.size());
  }
  if (plan.targets.empty()) return;
  news.hops += 1;
  news.via_dislike = !liked;
  for (NodeId target : plan.targets) {
    ctx.send(target, net::MsgType::kNews, news);
    if (config_.reliability.enabled) opt_in_->retx.track(ctx.now(), target, news);
  }
}

void WhatsUpAgent::publish(sim::Context& ctx, ItemIdx index, ItemId id) {
  if (!seen_.insert(id)) return;
  // generateNewsItem (Alg. 1 lines 12-17): like the item, then initialise
  // its item profile from the full user profile.
  profile_.set(id, ctx.now(), 1.0);
  net::NewsPayload news;
  news.id = id;
  news.index = index;
  news.created = ctx.now();
  news.origin = self_;
  news.item_profile.fold_profile(profile_);
  forward(ctx, /*liked=*/true, std::move(news));
}

void WhatsUpAgent::cold_start_from(sim::Context& ctx, const WhatsUpAgent& contact) {
  // Inherit both views (§II-D).
  rps_.view().clear();
  rps_.bootstrap(contact.rps_view().entries());
  wup_.view().clear();
  wup_.bootstrap(contact.wup_view().entries());
  profile_.clear();
  seen_.clear();

  // Rate the most popular items observed in the inherited RPS view: count
  // how many view profiles LIKE each item, keep the top-k.
  std::unordered_map<ItemId, std::pair<int, Cycle>> popularity;
  for (const net::Descriptor& d : rps_.view().entries()) {
    const Profile& p = d.profile_ref();
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p.scores()[i] > 0.5) {
        auto& [count, ts] = popularity[p.ids()[i]];
        ++count;
        ts = std::max(ts, p.timestamps()[i]);
      }
    }
  }
  std::vector<std::pair<int, ItemId>> ranked;
  ranked.reserve(popularity.size());
  for (const auto& [id, info] : popularity) ranked.emplace_back(info.first, id);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  const auto k = static_cast<std::size_t>(config_.params.cold_start_items);
  for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
    const ItemId item = ranked[i].second;
    const Cycle ts = popularity[item].second;
    profile_.set(item, std::max(ts, ctx.now() - config_.params.profile_window + 1), 1.0);
    seen_.insert(item);
  }
}

}  // namespace whatsup
