// WhatsUp per-node system parameters (paper Table II and §IV-D).
#pragma once

#include <cstddef>

#include "common/ids.hpp"
#include "common/table.hpp"

namespace whatsup {

struct Params {
  int rps_view_size = 30;   // RPSvs: size of the random sample
  Cycle rps_period = 1;     // RPSf: RPS gossip period, in cycles (1h deployed)
  Cycle wup_period = 1;     // WUP gossip period, in cycles
  int f_like = 10;          // fLIKE: BEEP like fanout
  int wup_view_size = 0;    // WUPvs; 0 means the paper's default of 2*fLIKE
  int beep_ttl = 4;         // dissemination TTL for disliked items
  int f_dislike = 1;        // dislike fanout (fixed at 1 in the paper)
  Cycle profile_window = 13;  // news-item TTL in profiles, in cycles
  int cold_start_items = 3;   // popular items rated on join (§II-D)

  // WUPvs defaults to 2*fLIKE: the best precision/recall trade-off (§IV-D).
  int effective_wup_view_size() const {
    return wup_view_size > 0 ? wup_view_size : 2 * f_like;
  }

  // Renders the Table II parameter sheet.
  Table to_table() const;
};

}  // namespace whatsup
