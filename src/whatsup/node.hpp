// The WhatsUp node: Algorithm 1 (profile maintenance and item-profile
// aggregation) wired to the RPS + WUP gossip substrate and the BEEP
// dissemination protocol. One WhatsUpAgent per user.
//
// The same class implements WHATSUP and WHATSUP-Cos: the `metric` config
// switches both the WUP clustering similarity and BEEP's orientation.
#pragma once

#include <memory>

#include "beep/beep.hpp"
#include "common/sorted_set.hpp"
#include "gossip/clustering_protocol.hpp"
#include "gossip/hygiene.hpp"
#include "gossip/rps.hpp"
#include "profile/obfuscation.hpp"
#include "sim/engine.hpp"
#include "sim/opinions.hpp"
#include "sim/reliability.hpp"
#include "whatsup/params.hpp"

namespace whatsup {

struct WhatsUpConfig {
  Params params;
  Metric metric = Metric::kWup;
  bool beep_amplification = true;  // ablation switch (§III-B)
  bool beep_orientation = true;    // ablation switch (§III-A)
  // Profile obfuscation (§VII): when enabled, gossiped descriptors carry a
  // randomized-response snapshot; local decisions keep the true profile.
  ObfuscationConfig obfuscation;
  // Opt-in ack/retransmit layer for BEEP forwards (sim/reliability.hpp).
  sim::ReliabilityConfig reliability;
  // Opt-in failure-aware view hygiene (gossip/hygiene.hpp).
  gossip::ViewHygieneConfig hygiene;

  beep::BeepConfig beep_config() const {
    return beep::BeepConfig{params.f_like,  params.f_dislike,    params.beep_ttl,
                            metric,         beep_amplification,  beep_orientation};
  }
};

class WhatsUpAgent : public sim::Agent {
 public:
  WhatsUpAgent(NodeId self, WhatsUpConfig config, const sim::Opinions& opinions);

  // sim::Agent
  void on_cycle(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const net::Message& message) override;
  void publish(sim::Context& ctx, ItemIdx index, ItemId id) override;
  // Crash recovery: drop soft state (views, retransmission queue, dedup
  // log) and rebuild via a rejoin handshake; the profile and SIR state
  // model durable storage and survive.
  void on_recover(sim::Context& ctx) override;

  // Seed the views directly (bootstrap server stand-in at deployment
  // start; also used to wire deterministic topologies in tests).
  void bootstrap_rps(std::vector<net::Descriptor> seed);
  void bootstrap_wup(std::vector<net::Descriptor> seed);

  // Cold start (§II-D): inherit the RPS and WUP views of `contact`, then
  // build a fresh profile by liking the `cold_start_items` most popular
  // items found in the inherited RPS-view profiles.
  void cold_start_from(sim::Context& ctx, const WhatsUpAgent& contact);

  // Probes used by tests and the Fig. 7 convergence experiments.
  NodeId id() const { return self_; }
  const Profile& user_profile() const { return profile_; }
  const gossip::View& rps_view() const { return rps_.view(); }
  const gossip::View& wup_view() const { return wup_.view(); }
  const WhatsUpConfig& config() const { return config_; }
  double avg_wup_similarity() const { return wup_.avg_similarity(profile_); }
  bool has_seen(ItemId id) const { return seen_.contains(id); }
  // When the corresponding feature is off these return empty statics (the
  // per-agent state only exists when some opt-in feature is configured).
  const sim::RetransmitQueue& retransmit_queue() const;
  const sim::DedupLog& dedup_log() const;
  const gossip::ViewHygiene& hygiene() const;

 private:
  void handle_news(sim::Context& ctx, NodeId from, net::NewsPayload news);
  void forward(sim::Context& ctx, bool liked, net::NewsPayload news);
  void handle_rejoin_request(sim::Context& ctx, const net::ViewPayload& payload);
  // Resend due retransmissions; evict peers whose retries exhausted the
  // hygiene suspicion limit.
  void pump_retransmissions(sim::Context& ctx);

  // Disclosed-profile accessor: the cached obfuscated snapshot when
  // obfuscation is on, the true profile otherwise.
  const Profile& disclosed(Cycle now);

  // State for the opt-in layers (reliability, view hygiene, obfuscation),
  // allocated only when at least one of them is configured on. The
  // baseline protocol never touches any of it, and at the million-node
  // scale the inline members (~600 B/agent: retransmit queue, dedup log,
  // hygiene table, cached obfuscated Profile) were a significant slice of
  // the per-node footprint in runs that enable none of them.
  struct OptInState {
    explicit OptInState(const WhatsUpConfig& config)
        : retx(config.reliability),
          dedup(config.reliability.dedup_capacity),
          hygiene(config.hygiene) {}

    sim::RetransmitQueue retx;     // reliability layer
    sim::DedupLog dedup;           // duplicate classification (reliability)
    gossip::ViewHygiene hygiene;   // failure-aware view hygiene
    // Rebuilds the disclosed snapshot only when the profile version or the
    // obfuscation epoch changes (perf only; see docs/perf.md).
    ObfuscatedProfileCache obfuscation_cache;
  };

  bool hygiene_on() const { return opt_in_ != nullptr && opt_in_->hygiene.enabled(); }

  NodeId self_;
  WhatsUpConfig config_;
  const sim::Opinions* opinions_;
  Profile profile_;  // the user profile P~ (binary scores)
  gossip::Rps rps_;
  gossip::ClusteringProtocol wup_;
  SortedIdSet<ItemId, 4> seen_;  // SIR "removed" state (flat sorted, inline)
  std::unique_ptr<OptInState> opt_in_;  // null when every opt-in layer is off
};

}  // namespace whatsup
