#include "gossip/clustering_protocol.hpp"

namespace whatsup::gossip {

ClusteringProtocol::ClusteringProtocol(NodeId self, std::size_t view_size, Metric metric,
                                       Cycle period)
    : self_(self), view_(view_size), metric_(metric), period_(period) {}

void ClusteringProtocol::bootstrap(std::vector<net::Descriptor> seed) {
  for (net::Descriptor& d : seed) {
    if (d.node == self_) continue;
    view_.insert_or_refresh(std::move(d));
  }
}

net::ViewPayload ClusteringProtocol::make_payload(sim::Context& ctx,
                                                  const Profile& own_profile) const {
  net::ViewPayload payload;
  payload.sender = net::Descriptor{self_, snapshot_cache_.stamp(ctx.now(), own_profile)};
  // The ENTIRE view (§II), copied into a pooled buffer recycled from
  // earlier delivered messages.
  payload.view = ctx.acquire_descriptor_buffer();
  payload.view.assign(view_.entries().begin(), view_.entries().end());
  return payload;
}

void ClusteringProtocol::step(sim::Context& ctx, const Profile& own_profile,
                              const View& rps_view, const Profile* disclosed) {
  if (period_ > 1 && ctx.now() % period_ != 0) return;
  NodeId to = kNoNode;
  if (const net::Descriptor* oldest = view_.oldest(); oldest != nullptr) {
    to = oldest->node;
  } else {
    to = rps_view.random_member(ctx.rng());  // bootstrap out of an empty view
  }
  if (to == kNoNode) return;
  ctx.send(to, net::MsgType::kWupRequest,
           make_payload(ctx, disclosed != nullptr ? *disclosed : own_profile));
}

void ClusteringProtocol::on_request(sim::Context& ctx, const net::ViewPayload& payload,
                                    const Profile& own_profile, const View& rps_view,
                                    const Profile* disclosed) {
  ctx.send(payload.sender.node, net::MsgType::kWupReply,
           make_payload(ctx, disclosed != nullptr ? *disclosed : own_profile));
  merge(ctx, payload, own_profile, rps_view);
}

void ClusteringProtocol::on_reply(sim::Context& ctx, const net::ViewPayload& payload,
                                  const Profile& own_profile, const View& rps_view) {
  merge(ctx, payload, own_profile, rps_view);
}

void ClusteringProtocol::merge(sim::Context& ctx, const net::ViewPayload& payload,
                               const Profile& own_profile, const View& rps_view) {
  std::vector<net::Descriptor> incoming = payload.view;
  incoming.push_back(payload.sender);
  incoming.insert(incoming.end(), rps_view.entries().begin(), rps_view.entries().end());
  auto merged = merge_candidates(view_.entries(), incoming, self_);
  view_.assign_closest(std::move(merged), own_profile, metric_, ctx.rng(), &memo_);
}

double ClusteringProtocol::avg_similarity(const Profile& own_profile) const {
  if (view_.empty()) return 0.0;
  double total = 0.0;
  for (const net::Descriptor& d : view_.entries()) {
    total += memo_.score(metric_, own_profile, d.node, d.stamp());
  }
  return total / static_cast<double>(view_.size());
}

}  // namespace whatsup::gossip
