// Random peer sampling (paper §II, following Jelasity et al., ACM TOCS'07).
//
// Maintains a continuously changing random overlay: each period the node
// contacts the view entry with the oldest timestamp, sending its own fresh
// descriptor plus half of its view; initiator and responder both keep a
// uniform random sample of the union of their view and the received one.
#pragma once

#include "gossip/view.hpp"
#include "profile/snapshot.hpp"
#include "sim/engine.hpp"

namespace whatsup::gossip {

class Rps {
 public:
  Rps(NodeId self, std::size_t view_size, Cycle period);

  const View& view() const { return view_; }
  View& view() { return view_; }
  Cycle period() const { return period_; }

  // Seeds the view (bootstrap server stand-in).
  void bootstrap(std::vector<net::Descriptor> seed);

  // Active thread: run once per cycle; gossips every `period` cycles.
  // `own_profile` is the profile DISCLOSED in the gossiped descriptor —
  // privacy-conscious nodes pass an obfuscated snapshot (§VII).
  void step(sim::Context& ctx, const Profile& own_profile);

  // Passive thread.
  void on_request(sim::Context& ctx, const net::ViewPayload& payload,
                  const Profile& own_profile);
  void on_reply(sim::Context& ctx, const net::ViewPayload& payload);

 private:
  net::Descriptor self_descriptor(Cycle now, const Profile& own_profile) const;
  net::ViewPayload make_payload(sim::Context& ctx, const Profile& own_profile);
  void merge(sim::Context& ctx, const net::ViewPayload& payload);

  NodeId self_;
  View view_;
  Cycle period_;
  // Outgoing descriptors share one immutable snapshot until the disclosed
  // profile's version changes (perf only; see docs/perf.md).
  mutable ProfileSnapshotCache snapshot_cache_;
};

}  // namespace whatsup::gossip
