// Bounded views of node descriptors — the per-protocol neighbor tables of
// §II. Each entry holds a peer's id, the timestamp at which the peer
// generated the entry, and a snapshot of its profile. Both RPS and WUP
// periodically contact the entry with the *oldest* timestamp ([4]'s
// tail-based peer selection) and refresh views from the union of exchanged
// entries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "net/message.hpp"
#include "profile/similarity.hpp"
#include "profile/snapshot.hpp"

namespace whatsup::gossip {

class View {
 public:
  explicit View(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<net::Descriptor>& entries() const { return entries_; }
  bool contains(NodeId node) const;
  const net::Descriptor* find(NodeId node) const;

  // Entry with the smallest timestamp, ties broken by smaller node id
  // (deterministic under any insertion order); nullptr when empty.
  const net::Descriptor* oldest() const;

  // Inserts, or refreshes in place if the node is present and the new
  // descriptor is fresher. A fresher descriptor with a null profile
  // snapshot refreshes the timestamp but keeps the previously known
  // snapshot (never downgrades contents to null). May grow beyond capacity
  // (merge buffers shrink views via the assign_* policies).
  void insert_or_refresh(net::Descriptor descriptor);
  void remove(NodeId node);
  void clear() { entries_.clear(); }

  // k entries picked uniformly without replacement.
  std::vector<net::Descriptor> random_subset(Rng& rng, std::size_t k) const;
  // Same draw into a caller-provided buffer (cleared first): lets message
  // builders reuse pooled payload storage (sim::DescriptorBufferPool)
  // instead of allocating a fresh vector per gossip message. Consumes the
  // same randomness as random_subset, picking the same members.
  void random_subset_into(Rng& rng, std::size_t k,
                          std::vector<net::Descriptor>& out) const;
  // Same sampling, ids only — skips the descriptor (and snapshot pointer)
  // copies when the caller just needs gossip targets. Consumes the same
  // randomness as random_subset, picking the same members.
  std::vector<NodeId> random_members(Rng& rng, std::size_t k) const;
  // Uniformly random member id; kNoNode when empty.
  NodeId random_member(Rng& rng) const;
  std::vector<NodeId> members() const;

  // Replace contents with a uniform random subset of `candidates` of at
  // most `capacity()` entries (RPS merge policy).
  void assign_random(std::vector<net::Descriptor> candidates, Rng& rng);

  // Replace contents with the `capacity()` candidates most similar to
  // `own_profile` under `metric`; ties broken uniformly at random
  // (WUP merge policy). Selection is top-K (nth_element + bounded sort)
  // rather than a full sort, with the same deterministic shuffle-based
  // tie-breaking as a stable sort by descending score. When `memo` is
  // non-null, unchanged (subject, candidate) pairs reuse memoized scores.
  void assign_closest(std::vector<net::Descriptor> candidates, const Profile& own_profile,
                      Metric metric, Rng& rng, SimilarityMemo* memo = nullptr);

 private:
  std::size_t capacity_;
  std::vector<net::Descriptor> entries_;
};

// Union of `base` and `incoming`, excluding `self`, deduplicated by node id
// keeping the freshest descriptor. The building block of both merge paths.
std::vector<net::Descriptor> merge_candidates(std::span<const net::Descriptor> base,
                                              std::span<const net::Descriptor> incoming,
                                              NodeId self);

}  // namespace whatsup::gossip
