#include "gossip/view.hpp"

#include <algorithm>
#include <unordered_map>

namespace whatsup::gossip {

View::View(std::size_t capacity) : capacity_(capacity) {}

bool View::contains(NodeId node) const { return find(node) != nullptr; }

const net::Descriptor* View::find(NodeId node) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [node](const net::Descriptor& d) { return d.node == node; });
  return it == entries_.end() ? nullptr : &*it;
}

const net::Descriptor* View::oldest() const {
  // Ties broken by smaller node id: with bare timestamp comparison the
  // winner depended on insertion order, which eviction (gossip/hygiene.hpp)
  // would have turned into a determinism hazard.
  const auto it = std::min_element(entries_.begin(), entries_.end(),
                                   [](const net::Descriptor& a, const net::Descriptor& b) {
                                     return a.timestamp() != b.timestamp()
                                                ? a.timestamp() < b.timestamp()
                                                : a.node < b.node;
                                   });
  return it == entries_.end() ? nullptr : &*it;
}

void View::insert_or_refresh(net::Descriptor descriptor) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&descriptor](const net::Descriptor& d) { return d.node == descriptor.node; });
  if (it != entries_.end()) {
    if (descriptor.timestamp() >= it->timestamp()) {
      // A refresh may legitimately carry no snapshot (bootstrap entries
      // ship bare addresses). Keep the newer timestamp but never downgrade
      // an entry that already has profile contents to a null snapshot.
      if (!descriptor.has_profile() && it->has_profile()) {
        descriptor = net::Descriptor{descriptor.node, descriptor.timestamp(),
                                     it->profile()};
      }
      *it = std::move(descriptor);
    }
    return;
  }
  entries_.push_back(std::move(descriptor));
}

void View::remove(NodeId node) {
  std::erase_if(entries_, [node](const net::Descriptor& d) { return d.node == node; });
}

std::vector<net::Descriptor> View::random_subset(Rng& rng, std::size_t k) const {
  std::vector<net::Descriptor> out;
  random_subset_into(rng, k, out);
  return out;
}

void View::random_subset_into(Rng& rng, std::size_t k,
                              std::vector<net::Descriptor>& out) const {
  const auto picks = rng.sample_indices(entries_.size(), k);
  out.clear();
  out.reserve(picks.size());
  for (std::size_t i : picks) out.push_back(entries_[i]);
}

std::vector<NodeId> View::random_members(Rng& rng, std::size_t k) const {
  const auto picks = rng.sample_indices(entries_.size(), k);
  std::vector<NodeId> out;
  out.reserve(picks.size());
  for (std::size_t i : picks) out.push_back(entries_[i].node);
  return out;
}

NodeId View::random_member(Rng& rng) const {
  if (entries_.empty()) return kNoNode;
  return entries_[rng.index(entries_.size())].node;
}

std::vector<NodeId> View::members() const {
  std::vector<NodeId> ids;
  ids.reserve(entries_.size());
  for (const net::Descriptor& d : entries_) ids.push_back(d.node);
  return ids;
}

void View::assign_random(std::vector<net::Descriptor> candidates, Rng& rng) {
  rng.shuffle(candidates);
  if (candidates.size() > capacity_) candidates.resize(capacity_);
  entries_ = std::move(candidates);
}

void View::assign_closest(std::vector<net::Descriptor> candidates, const Profile& own_profile,
                          Metric metric, Rng& rng, SimilarityMemo* memo) {
  // Random shuffle before selection randomizes tie-breaking, which matters
  // at cold start when every similarity is 0.
  rng.shuffle(candidates);
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // The memo path keys on the snapshot header (no decode on a hit); the
    // memo-less path materializes the compact snapshot into scratch.
    const double s =
        memo != nullptr
            ? memo->score(metric, own_profile, candidates[i].node,
                          candidates[i].stamp())
            : similarity(metric, own_profile, candidates[i].profile_ref());
    scored.emplace_back(s, i);
  }
  // (descending score, ascending shuffled position) is a strict total order
  // — exactly the ranking the seed's shuffle + stable_sort produced — so
  // top-K selection keeps the identical member sequence while only paying
  // O(n + K log K) instead of O(n log n).
  const auto ranks_before = [](const std::pair<double, std::size_t>& a,
                               const std::pair<double, std::size_t>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  if (scored.size() > capacity_) {
    std::nth_element(scored.begin(),
                     scored.begin() + static_cast<std::ptrdiff_t>(capacity_),
                     scored.end(), ranks_before);
    scored.resize(capacity_);
  }
  std::sort(scored.begin(), scored.end(), ranks_before);
  std::vector<net::Descriptor> kept;
  kept.reserve(scored.size());
  for (const auto& ranked : scored) {
    kept.push_back(std::move(candidates[ranked.second]));
  }
  entries_ = std::move(kept);
}

std::vector<net::Descriptor> merge_candidates(std::span<const net::Descriptor> base,
                                              std::span<const net::Descriptor> incoming,
                                              NodeId self) {
  std::unordered_map<NodeId, net::Descriptor> best;
  best.reserve(base.size() + incoming.size());
  auto absorb = [&](const net::Descriptor& d) {
    if (d.node == self || d.node == kNoNode) return;
    const auto it = best.find(d.node);
    if (it == best.end() || d.timestamp() > it->second.timestamp()) best[d.node] = d;
  };
  for (const net::Descriptor& d : base) absorb(d);
  for (const net::Descriptor& d : incoming) absorb(d);
  std::vector<net::Descriptor> merged;
  merged.reserve(best.size());
  for (auto& [node, d] : best) {
    (void)node;
    merged.push_back(std::move(d));
  }
  return merged;
}

}  // namespace whatsup::gossip
