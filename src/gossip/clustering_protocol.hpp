// The WUP clustering protocol (paper §II, in the style of Vicinity
// [Voulgaris & van Steen, Euro-Par'05]).
//
// Maintains the implicit social network: a view of the `WUPvs` peers whose
// profiles are most similar to the node's own, under a pluggable metric
// (the paper's asymmetric WUP metric, or cosine for the *-Cos variants).
// Each period the node contacts its oldest entry and sends its profile with
// its ENTIRE view; receiver (and initiator, on the symmetric reply) keeps
// the closest entries from the union of its view, the received view, and
// its current RPS view (the RPS stream feeds fresh random candidates).
#pragma once

#include "gossip/view.hpp"
#include "profile/snapshot.hpp"
#include "sim/engine.hpp"

namespace whatsup::gossip {

class ClusteringProtocol {
 public:
  ClusteringProtocol(NodeId self, std::size_t view_size, Metric metric, Cycle period);

  const View& view() const { return view_; }
  View& view() { return view_; }
  Metric metric() const { return metric_; }

  void bootstrap(std::vector<net::Descriptor> seed);

  // Active thread; `rps_view` provides the random candidate stream and the
  // fallback gossip target while the WUP view is still empty.
  // `own_profile` drives the similarity-based view selection (always the
  // node's TRUE profile); `disclosed`, when non-null, is the snapshot
  // shipped in outgoing descriptors instead (profile obfuscation, §VII).
  void step(sim::Context& ctx, const Profile& own_profile, const View& rps_view,
            const Profile* disclosed = nullptr);

  void on_request(sim::Context& ctx, const net::ViewPayload& payload,
                  const Profile& own_profile, const View& rps_view,
                  const Profile* disclosed = nullptr);
  void on_reply(sim::Context& ctx, const net::ViewPayload& payload,
                const Profile& own_profile, const View& rps_view);

  // Average similarity between `own_profile` and the current view members
  // (the convergence measure of Fig. 7a/7b).
  double avg_similarity(const Profile& own_profile) const;

 private:
  // Takes the context to stamp the send cycle and to draw a pooled payload
  // buffer from the executing shard.
  net::ViewPayload make_payload(sim::Context& ctx, const Profile& own_profile) const;
  void merge(sim::Context& ctx, const net::ViewPayload& payload,
             const Profile& own_profile, const View& rps_view);

  NodeId self_;
  View view_;
  Metric metric_;
  Cycle period_;
  // Hot-path caches (perf only — see docs/perf.md): outgoing descriptors
  // reuse one immutable snapshot until the disclosed profile's version
  // changes, and view merges / convergence probes only rescore descriptors
  // whose profile (or whose subject profile) actually changed.
  mutable ProfileSnapshotCache snapshot_cache_;
  mutable SimilarityMemo memo_;
};

}  // namespace whatsup::gossip
