// Failure-aware view hygiene: descriptor-age eviction plus a suspicion
// counter fed by delivery failures.
//
// Plain RPS/WUP gossip only replaces view entries when fresher descriptors
// happen by, so a crashed peer can linger in views — and keep absorbing
// BEEP forwards — for a long time. With hygiene enabled:
//
//   * Age eviction: entries whose timestamp has fallen more than `max_age`
//     cycles behind are dropped each cycle (a live peer's descriptor is
//     refreshed by gossip well within that horizon). The freshest entry is
//     always kept so a node that gossip briefly abandoned (partition,
//     heavy churn) never empties its view and strands itself.
//   * Suspicion: each reliability-layer delivery failure against a peer
//     (retry exhaustion) bumps its counter; reaching `suspicion_limit`
//     marks the peer evictable. Any successful interaction (ack, incoming
//     gossip) absolves it.
//
// Both knobs default off: hygiene-free runs keep bit-identical view
// trajectories. All state is per-agent and touched only from that agent's
// turn, so the sharded scheduler needs no extra synchronisation.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/ids.hpp"
#include "gossip/view.hpp"

namespace whatsup::gossip {

struct ViewHygieneConfig {
  // Entries older than `max_age` cycles are evicted (0 = no age eviction).
  Cycle max_age = 0;
  // Delivery failures against a peer before it is evicted (0 = suspicion
  // disabled).
  int suspicion_limit = 0;

  bool enabled() const { return max_age > 0 || suspicion_limit > 0; }
};

class ViewHygiene {
 public:
  explicit ViewHygiene(ViewHygieneConfig config = {});

  const ViewHygieneConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  // Reports one delivery failure against `node`; true when the node has
  // crossed the suspicion limit (the caller should remove it from its
  // views and drop pending retransmissions towards it).
  bool report_failure(NodeId node);

  // Evidence of life (ack received, gossip message received): clears the
  // node's suspicion count.
  void absolve(NodeId node);

  // Drops entries of `view` with timestamp < now - max_age, always keeping
  // the freshest entry (ties by smaller node id) so the view never empties.
  // Returns the number evicted. No-op when age eviction is off.
  std::size_t evict_stale(View& view, Cycle now);

  int suspicion(NodeId node) const;
  void forget(NodeId node) { suspicion_.erase(node); }
  void clear() { suspicion_.clear(); }

 private:
  ViewHygieneConfig config_;
  std::unordered_map<NodeId, int> suspicion_;
};

}  // namespace whatsup::gossip
