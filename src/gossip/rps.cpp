#include "gossip/rps.hpp"

namespace whatsup::gossip {

Rps::Rps(NodeId self, std::size_t view_size, Cycle period)
    : self_(self), view_(view_size), period_(period) {}

void Rps::bootstrap(std::vector<net::Descriptor> seed) {
  for (net::Descriptor& d : seed) {
    if (d.node == self_) continue;
    view_.insert_or_refresh(std::move(d));
  }
}

net::Descriptor Rps::self_descriptor(Cycle now, const Profile& own_profile) const {
  // The cache reuses one stamp record while (version, cycle) is unchanged,
  // so repeated sends within a cycle share the arena entry.
  return net::Descriptor{self_, snapshot_cache_.stamp(now, own_profile)};
}

net::ViewPayload Rps::make_payload(sim::Context& ctx, const Profile& own_profile) {
  net::ViewPayload payload;
  payload.sender = self_descriptor(ctx.now(), own_profile);
  // Half of the view, as is typical for peer-sampling exchanges (§II),
  // built in a pooled buffer recycled from earlier delivered messages.
  payload.view = ctx.acquire_descriptor_buffer();
  view_.random_subset_into(ctx.rng(), (view_.size() + 1) / 2, payload.view);
  return payload;
}

void Rps::step(sim::Context& ctx, const Profile& own_profile) {
  if (period_ > 1 && ctx.now() % period_ != 0) return;
  const net::Descriptor* target = view_.oldest();
  if (target == nullptr) return;
  const NodeId to = target->node;
  ctx.send(to, net::MsgType::kRpsRequest, make_payload(ctx, own_profile));
}

void Rps::on_request(sim::Context& ctx, const net::ViewPayload& payload,
                     const Profile& own_profile) {
  ctx.send(payload.sender.node, net::MsgType::kRpsReply, make_payload(ctx, own_profile));
  merge(ctx, payload);
}

void Rps::on_reply(sim::Context& ctx, const net::ViewPayload& payload) {
  merge(ctx, payload);
}

void Rps::merge(sim::Context& ctx, const net::ViewPayload& payload) {
  std::vector<net::Descriptor> incoming = payload.view;
  incoming.push_back(payload.sender);
  auto merged = merge_candidates(view_.entries(), incoming, self_);
  view_.assign_random(std::move(merged), ctx.rng());
}

}  // namespace whatsup::gossip
