#include "gossip/hygiene.hpp"

#include <algorithm>

namespace whatsup::gossip {

ViewHygiene::ViewHygiene(ViewHygieneConfig config) : config_(config) {}

bool ViewHygiene::report_failure(NodeId node) {
  if (config_.suspicion_limit <= 0) return false;
  const int count = ++suspicion_[node];
  if (count < config_.suspicion_limit) return false;
  suspicion_.erase(node);  // evicted; a later re-discovery starts clean
  return true;
}

void ViewHygiene::absolve(NodeId node) {
  if (config_.suspicion_limit <= 0) return;
  suspicion_.erase(node);
}

int ViewHygiene::suspicion(NodeId node) const {
  const auto it = suspicion_.find(node);
  return it == suspicion_.end() ? 0 : it->second;
}

std::size_t ViewHygiene::evict_stale(View& view, Cycle now) {
  if (config_.max_age <= 0 || view.empty()) return 0;
  const Cycle cutoff = now - config_.max_age;
  // Freshest entry (ties by smaller node id): always survives, so a view
  // that gossip briefly abandoned never empties and strands the node.
  const net::Descriptor* freshest = nullptr;
  for (const net::Descriptor& d : view.entries()) {
    if (freshest == nullptr || d.timestamp() > freshest->timestamp() ||
        (d.timestamp() == freshest->timestamp() && d.node < freshest->node)) {
      freshest = &d;
    }
  }
  const NodeId keep = freshest->node;
  std::size_t evicted = 0;
  // Collect ids first: View::remove invalidates entry iteration.
  std::vector<NodeId> stale;
  for (const net::Descriptor& d : view.entries()) {
    if (d.timestamp() < cutoff && d.node != keep) stale.push_back(d.node);
  }
  for (const NodeId node : stale) {
    view.remove(node);
    ++evicted;
  }
  return evicted;
}

}  // namespace whatsup::gossip
