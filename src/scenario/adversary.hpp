// Adversarial agents for scenario timelines (`spammers` / `freeriders`
// events). Both are protocol outsiders: they speak only BEEP news on the
// wire and never join the RPS/WUP gossip, so they cannot enter honest
// views — the attack surface is the dissemination channel itself.
//
// Containment expectation (tests/test_scenario.cpp): spam items are liked
// by nobody, so every honest receiver dislikes them and BEEP's dislike
// TTL starves the wave — spam reach stays bounded by the spammers' own
// push budget and honest top-K recall on real items is not dominated.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "sim/engine.hpp"

namespace whatsup::scenario {

// One spam item as injected into the workload (data::Workload::
// append_unscheduled_items keeps trackers and score passes index-aligned).
struct SpamItem {
  ItemIdx index = kNoItem;
  ItemId id = 0;
};

// Floods the network with worthless news. Every active cycle the spammer
// "publishes" one more of its items and pushes `fanout` copies of one
// published item (round-robin) to uniformly chosen active peers, stamping
// the creation cycle to the current cycle — freshness spoofing, so the
// profile window never ages the spam out on its own.
class SpammerAgent : public sim::Agent {
 public:
  SpammerAgent(NodeId self, std::vector<SpamItem> items, std::uint32_t fanout)
      : self_(self), items_(std::move(items)), fanout_(fanout) {}

  void on_cycle(sim::Context& ctx) override;
  void on_message(sim::Context&, const net::Message&) override {}  // sink
  void publish(sim::Context&, ItemIdx, ItemId) override {}  // never legitimate

  NodeId id() const { return self_; }
  std::size_t published() const { return published_; }
  const std::vector<SpamItem>& items() const { return items_; }

 private:
  NodeId self_;
  std::vector<SpamItem> items_;
  std::uint32_t fanout_;
  std::size_t published_ = 0;
  std::size_t next_push_ = 0;
};

// Consumes whatever reaches it and gives nothing back: no gossip replies,
// no forwards, no opinions. Models selfish clients; an active free-rider
// absorbs every message addressed to it.
class FreeRiderAgent : public sim::Agent {
 public:
  explicit FreeRiderAgent(NodeId self) : self_(self) {}

  void on_cycle(sim::Context&) override {}
  void on_message(sim::Context&, const net::Message& message) override {
    ++absorbed_;
    (void)message;
  }
  void publish(sim::Context&, ItemIdx, ItemId) override {}

  NodeId id() const { return self_; }
  std::size_t absorbed() const { return absorbed_; }

 private:
  NodeId self_;
  std::size_t absorbed_ = 0;
};

}  // namespace whatsup::scenario
