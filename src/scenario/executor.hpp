// Applies a scenario::Timeline to a live deployment.
//
// Lifecycle (all main-thread, between cycles):
//   1. construct — binds the timeline to an engine, the run's workload
//      copy and (when the timeline mutates opinions) a MutableOpinions
//      layer; captures the baseline network config for episode restores.
//   2. prepare() — pre-run workload surgery: flash-crowd re-schedules and
//      spam-item appends. Must run BEFORE the publication calendar is
//      built and the tracker is sized.
//   3. register_adversaries() — appends the declared spammer/free-rider
//      nodes after the honest population (initially offline; their events
//      bring them up). Freezes the honest population size.
//   4. begin_cycle(c) — once per cycle, immediately before
//      Engine::run_cycle(): applies episode restores due at c, then every
//      event with cycle <= c in canonical (cycle, seq) order, then the
//      due rotating-churn steps.
//
// Determinism contract: every random choice an event makes is drawn from
// a reserved counter-based substream — a pure function of (scenario seed,
// event seq, event cycle) — and events run on the main thread at cycle
// barriers, so fixed-seed scenario runs are bit-identical for any worker
// thread count and any shard width (tests/test_determinism.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dataset/workload.hpp"
#include "net/network.hpp"
#include "scenario/adversary.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/opinions.hpp"

namespace whatsup::scenario {

class Executor {
 public:
  struct Hooks {
    // §V-C cold start for join-clone events: wire `joiner` from `contact`
    // (protocol-specific — e.g. WhatsUpAgent::cold_start_from). When
    // unset, the joiner comes up with whatever views it was built with.
    std::function<void(sim::Engine&, NodeId joiner, NodeId contact)> cold_start;
  };

  // `opinions` may be null iff the timeline never mutates opinions
  // (throws std::invalid_argument otherwise). `workload` must outlive the
  // executor and is mutated by prepare().
  Executor(const Timeline& timeline, sim::Engine& engine, data::Workload& workload,
           sim::MutableOpinions* opinions, std::uint64_t seed);

  void prepare();
  void register_adversaries();
  void begin_cycle(Cycle cycle);

  Hooks& hooks() { return hooks_; }

  // Honest population size (frozen by register_adversaries, or at the
  // first begin_cycle for adversary-free timelines).
  std::size_t honest_nodes() const { return honest_n_; }

  // Observability for tests: the registered adversaries (engine owns
  // them) and the spam-item index range appended by prepare().
  const std::vector<SpammerAgent*>& spammer_agents() const { return spammers_; }
  const std::vector<FreeRiderAgent*>& free_rider_agents() const { return free_riders_; }
  ItemIdx first_spam_item() const { return first_spam_item_; }
  std::size_t num_spam_items() const { return num_spam_items_; }

 private:
  void apply(const Event& event, Rng& rng);
  void refresh_network();
  // Distinct members of `pool` chosen uniformly (k clamped to pool size).
  std::vector<NodeId> pick(Rng& rng, const std::vector<NodeId>& pool, std::size_t k);

  const Timeline* timeline_;
  sim::Engine* engine_;
  data::Workload* workload_;
  sim::MutableOpinions* opinions_;
  Rng root_;  // pristine; events fork (seq, cycle) substreams
  Hooks hooks_;

  std::size_t honest_n_ = 0;
  bool prepared_ = false;

  // Network episodes active right now, in application order; each expires
  // at its own `until`, and within a kind the most recently applied
  // still-active episode wins — so overlapping bursts nest instead of the
  // first restore wiping a longer-running one.
  net::NetworkConfig baseline_;
  struct ActiveLoss {
    double rate;
    Cycle until;
  };
  struct ActivePartition {
    NodeId boundary;
    double cross_loss;
    Cycle until;
  };
  struct ActiveBurst {
    net::BurstLossModel model;
    Cycle until;
  };
  struct ActiveDegrade {
    Cycle latency;
    Cycle jitter;
    double dup;
    double reorder;
    Cycle until;
  };
  std::vector<ActiveLoss> active_losses_;
  std::vector<ActivePartition> active_partitions_;
  std::vector<ActiveBurst> active_bursts_;
  std::vector<ActiveDegrade> active_degrades_;

  std::size_t next_event_ = 0;
  struct RunningChurn {
    Cycle start;
    ChurnProcess process;
  };
  std::vector<RunningChurn> churns_;

  // Adversary nodes keyed by the declaring event's seq (activated when
  // the event fires).
  std::map<std::uint32_t, std::vector<NodeId>> adversaries_by_event_;
  std::vector<SpammerAgent*> spammers_;
  std::vector<FreeRiderAgent*> free_riders_;
  ItemIdx first_spam_item_ = kNoItem;
  std::size_t num_spam_items_ = 0;
};

}  // namespace whatsup::scenario
