// Deterministic scenario engine: declarative event timelines for the
// paper's §V-C dynamics (joins, interest switches, massive disconnections)
// and everything beyond them — churn processes, flash-crowd bursts,
// network episodes (loss bursts, regional partitions) and adversarial
// agents.
//
// A scenario::Timeline is an ordered list of typed events. Events carry a
// canonical (cycle, seq) key — `seq` is the builder/spec insertion order —
// and are applied by scenario::Executor at the cycle barrier BEFORE the
// deliver phase of their cycle, on the main thread, drawing any randomness
// from a reserved counter-based substream of the run seed. Fixed-seed
// scenario runs are therefore bit-identical for any worker-thread count
// and any shard width, exactly like plain runs (tests/test_determinism.cpp).
//
// Timelines come from either the C++ builder API (`timeline.at(cycle,
// Action{...})`) or the small text spec format parsed by scenario::parse
// (bundled specs live under scenarios/*.scn; grammar in
// docs/architecture.md "Scenario engine"). parse(format(t)) == t.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "metrics/scores.hpp"

namespace whatsup::sim {
class Engine;
}  // namespace whatsup::sim

namespace whatsup::scenario {

// ---- Event actions --------------------------------------------------------
//
// Every action is a plain aggregate with defaulted equality so timelines
// round-trip through the spec format. "Honest nodes" below means the
// non-adversary population (the executor freezes its size before any
// adversaries register).

// `count` uniformly chosen active honest nodes leave abruptly (no goodbye
// messages — the §V-C massive-disconnection experiment).
struct LeaveWave {
  std::uint32_t count = 0;
  friend bool operator==(const LeaveWave&, const LeaveWave&) = default;
};

// `count` uniformly chosen offline honest nodes come (back) online.
struct JoinWave {
  std::uint32_t count = 0;
  friend bool operator==(const JoinWave&, const JoinWave&) = default;
};

// Explicit range [first, first + count) goes offline/online. Spec verbs
// `down` / `up`. The deterministic one-shot form of churn used by the
// churn robustness tests.
struct SetRange {
  NodeId first = 0;
  std::uint32_t count = 0;
  bool active = false;
  friend bool operator==(const SetRange&, const SetRange&) = default;
};

// Rotating-slice churn: starting at the event cycle and every `period`
// cycles until `until` (inclusive), the next `width`-node slice of the
// honest population goes offline and the previous slice returns. This is
// THE churn primitive — the determinism suite and the churn tests drive
// the same `step` the executor does, so churn semantics live in one place.
struct ChurnProcess {
  std::uint32_t width = 10;
  Cycle period = 5;
  Cycle until = 0;

  // Applies rotation step `k` over the honest universe [0, n): slice k
  // (nodes (k*width + j) % n) goes offline, slice k-1 returns. Step 0
  // only takes the first slice down. Must be called between cycles.
  void step(sim::Engine& engine, std::size_t k, std::size_t n) const;

  friend bool operator==(const ChurnProcess&, const ChurnProcess&) = default;
};

// Flash crowd: the next `count` scheduled-but-unpublished items (earliest
// publish_at first, ties by index) are pulled forward and all published at
// the event cycle. Applied to the workload before the run starts.
struct FlashCrowd {
  std::uint32_t count = 0;
  friend bool operator==(const FlashCrowd&, const FlashCrowd&) = default;
};

// Interest drift: `count` uniformly chosen honest nodes each start
// expressing the opinions of a uniformly chosen other user
// (sim::MutableOpinions aliasing).
struct InterestDrift {
  std::uint32_t count = 0;
  friend bool operator==(const InterestDrift&, const InterestDrift&) = default;
};

// `pairs` uniformly chosen disjoint honest pairs swap interests (the §V-C
// "changing node" experiment, randomized).
struct InterestSwap {
  std::uint32_t pairs = 0;
  friend bool operator==(const InterestSwap&, const InterestSwap&) = default;
};

// Explicit pair swap (the deterministic §V-C form used by run_dynamics).
struct SwapPair {
  NodeId a = 0;
  NodeId b = 0;
  friend bool operator==(const SwapPair&, const SwapPair&) = default;
};

// §V-C joining node: `node` comes online as a clone of user `as_user`
// (opinion alias) and cold-starts from a uniformly chosen active contact
// via the executor's protocol-specific cold-start hook.
struct JoinClone {
  NodeId node = 0;
  NodeId as_user = 0;
  friend bool operator==(const JoinClone&, const JoinClone&) = default;
};

// Network episode: uniform loss raised to `rate` for cycles [cycle,
// until); the baseline network config is restored at `until`.
struct LossBurst {
  double rate = 0.0;
  Cycle until = 0;
  friend bool operator==(const LossBurst&, const LossBurst&) = default;
};

// Network episode: regional partition for cycles [cycle, until). The first
// round(fraction * honest nodes) ids form region A, the rest region B;
// cross-region messages are dropped with probability `cross_loss`
// (1.0 = full cut).
struct Partition {
  double fraction = 0.5;
  double cross_loss = 1.0;
  Cycle until = 0;
  friend bool operator==(const Partition&, const Partition&) = default;
};

// Network episode: Gilbert–Elliott bursty loss for cycles [cycle, until).
// Per-directed-link chains enter the bad state with probability `p_enter`
// per cycle, leave with `p_exit`, and drop messages with probability
// `loss` while bad (net::BurstLossModel). Restored at `until`.
struct BurstLoss {
  double p_enter = 0.05;
  double p_exit = 0.3;
  double loss = 0.5;
  Cycle until = 0;
  friend bool operator==(const BurstLoss&, const BurstLoss&) = default;
};

// Network episode: degraded link quality for cycles [cycle, until).
// `latency` and `jitter` ADD to the baseline network's values; `dup` and
// `reorder` OVERRIDE the baseline duplication/reorder probabilities when
// non-zero. Restored at `until`.
struct LinkDegrade {
  Cycle latency = 0;
  Cycle jitter = 0;
  double dup = 0.0;
  double reorder = 0.0;
  Cycle until = 0;
  friend bool operator==(const LinkDegrade&, const LinkDegrade&) = default;
};

// `count` uniformly chosen active honest nodes crash at the event cycle:
// soft state is lost and in-flight messages to them are dropped. With
// `down_for` > 0 each victim recovers (Agent::on_recover — rejoin
// handshake) after that many cycles; 0 = crash-stop.
struct CrashRecovery {
  std::uint32_t count = 1;
  Cycle down_for = 0;
  friend bool operator==(const CrashRecovery&, const CrashRecovery&) = default;
};

// `count` spammer nodes activate at the event cycle. Each spammer injects
// `items` spam items (appended to the workload, liked by nobody), one per
// cycle, and keeps re-pushing them to `fanout` uniformly chosen active
// peers every cycle (src/scenario/adversary.hpp).
struct Spammers {
  std::uint32_t count = 1;
  std::uint32_t items = 4;
  std::uint32_t fanout = 8;
  friend bool operator==(const Spammers&, const Spammers&) = default;
};

// `count` free-rider nodes activate at the event cycle: they consume
// whatever reaches them but never gossip or forward (pure sinks).
struct FreeRiders {
  std::uint32_t count = 1;
  friend bool operator==(const FreeRiders&, const FreeRiders&) = default;
};

using Action = std::variant<LeaveWave, JoinWave, SetRange, ChurnProcess, FlashCrowd,
                            InterestDrift, InterestSwap, SwapPair, JoinClone, LossBurst,
                            Partition, BurstLoss, LinkDegrade, CrashRecovery, Spammers,
                            FreeRiders>;

// One scheduled event. `seq` is the canonical tie-break within a cycle:
// events inserted (or written in the spec) earlier apply earlier.
struct Event {
  Cycle cycle = 0;
  std::uint32_t seq = 0;
  Action action;

  friend bool operator==(const Event&, const Event&) = default;
};

// Spec-verb of the action ("leave", "churn", ...); used by the canonical
// formatter and the window labels.
std::string verb(const Action& action);
// One canonical spec line for the event (without the trailing newline).
std::string to_spec_line(const Event& event);

// ---- Timeline -------------------------------------------------------------

class Timeline {
 public:
  // Builder API: appends an event at `cycle`; `seq` is the insertion
  // index, so same-cycle events apply in the order they were added.
  Timeline& at(Cycle cycle, Action action);

  // Events in canonical (cycle, seq) order.
  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // First cycle strictly after every event and episode end.
  Cycle horizon() const;

  // Adversary population declared by Spammers/FreeRiders events (the
  // executor appends that many nodes after the honest population).
  std::size_t num_spammers() const;
  std::size_t num_free_riders() const;
  std::size_t num_adversaries() const { return num_spammers() + num_free_riders(); }
  // Total spam items the declared spammers will inject.
  std::size_t num_spam_items() const;

  // True when the timeline mutates opinions (drift/swap/join-clone) and
  // therefore needs a sim::MutableOpinions layer.
  bool mutates_opinions() const;

  // Splits [0, total_cycles) at every event cycle and episode end, for
  // per-phase recall/precision around each event. Window labels name the
  // events starting there ("restore" for bare episode ends, "start" for
  // the opening window).
  std::vector<metrics::Window> windows(Cycle total_cycles) const;

  std::string name = "scenario";

  // Same name and same (cycle, action) sequence in canonical order; `seq`
  // is derived bookkeeping (renumbered by the parser) and is ignored.
  friend bool operator==(const Timeline& a, const Timeline& b);

 private:
  std::vector<Event> events_;  // kept sorted by (cycle, seq)
};

// ---- Spec format ----------------------------------------------------------
//
//   # comment / blank lines ignored
//   name <identifier>
//   at <cycle> leave <count>
//   at <cycle> join <count>
//   at <cycle> down <first> <count>
//   at <cycle> up <first> <count>
//   at <cycle> churn <width> every <period> until <cycle>
//   at <cycle> flash <count>
//   at <cycle> drift <count>
//   at <cycle> swap <pairs>
//   at <cycle> swap-pair <a> <b>
//   at <cycle> join-clone <node> <user>
//   at <cycle> loss <rate> until <cycle>
//   at <cycle> partition <fraction> [xloss <rate>] until <cycle>
//   at <cycle> burst <p_enter> <p_exit> <loss> until <cycle>
//   at <cycle> degrade [latency <c>] [jitter <c>] [dup <p>] [reorder <p>] until <cycle>
//   at <cycle> crash <count> [for <cycles>]
//   at <cycle> spammers <count> items <n> fanout <f>
//   at <cycle> freeriders <count>

// Parses a spec; throws std::invalid_argument naming the offending line.
Timeline parse(std::string_view text);
// Reads and parses a .scn file; throws std::runtime_error if unreadable.
Timeline parse_file(const std::string& path);
// Canonical spec text: parse(format(t)) == t for any parseable t.
std::string format(const Timeline& timeline);

}  // namespace whatsup::scenario
