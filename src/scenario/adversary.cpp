#include "scenario/adversary.hpp"

#include "net/message.hpp"

namespace whatsup::scenario {

void SpammerAgent::on_cycle(sim::Context& ctx) {
  if (items_.empty() || fanout_ == 0) return;
  if (published_ < items_.size()) ++published_;
  const SpamItem& item = items_[next_push_ % published_];
  ++next_push_;
  net::NewsPayload news;
  news.id = item.id;
  news.index = item.index;
  news.created = ctx.now();  // freshness spoofing: always looks brand new
  news.origin = self_;
  // Empty item profile: honest receivers dislike the item and never fold
  // their profiles in, so orientation has nothing to aim with either.
  for (std::uint32_t i = 0; i < fanout_; ++i) {
    const NodeId target = ctx.random_active_peer();
    if (target == kNoNode) break;
    ctx.send(target, net::MsgType::kNews, news);
  }
}

}  // namespace whatsup::scenario
