#include "scenario/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "sim/engine.hpp"

namespace whatsup::scenario {

namespace {

// Shortest round-trip decimal for doubles: the canonical formatter must
// satisfy parse(format(t)) == t bit-exactly.
std::string format_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return std::string(buf, ptr);
}

}  // namespace

// ---- ChurnProcess ---------------------------------------------------------

void ChurnProcess::step(sim::Engine& engine, std::size_t k, std::size_t n) const {
  if (n == 0 || width == 0) return;
  const auto w = static_cast<std::size_t>(width);
  const auto slice = [&](std::size_t index, bool active) {
    for (std::size_t j = 0; j < w; ++j) {
      engine.set_active(static_cast<NodeId>((index * w + j) % n), active);
    }
  };
  slice(k, false);
  if (k > 0) slice(k - 1, true);
}

// ---- Timeline -------------------------------------------------------------

Timeline& Timeline::at(Cycle cycle, Action action) {
  Event event;
  event.cycle = cycle;
  event.seq = static_cast<std::uint32_t>(events_.size());
  event.action = std::move(action);
  // Insertion keeps the canonical (cycle, seq) order; seq is globally
  // unique so the sort key is total.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event, [](const Event& a, const Event& b) {
        return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
      });
  events_.insert(pos, std::move(event));
  return *this;
}

bool operator==(const Timeline& a, const Timeline& b) {
  if (a.name != b.name || a.events_.size() != b.events_.size()) return false;
  for (std::size_t i = 0; i < a.events_.size(); ++i) {
    if (a.events_[i].cycle != b.events_[i].cycle ||
        a.events_[i].action != b.events_[i].action) {
      return false;
    }
  }
  return true;
}

Cycle Timeline::horizon() const {
  Cycle last = 0;
  for (const Event& event : events_) {
    last = std::max(last, event.cycle + 1);
    if (const auto* churn = std::get_if<ChurnProcess>(&event.action)) {
      last = std::max(last, churn->until + 1);
    } else if (const auto* loss = std::get_if<LossBurst>(&event.action)) {
      last = std::max(last, loss->until + 1);
    } else if (const auto* part = std::get_if<Partition>(&event.action)) {
      last = std::max(last, part->until + 1);
    } else if (const auto* burst = std::get_if<BurstLoss>(&event.action)) {
      last = std::max(last, burst->until + 1);
    } else if (const auto* degrade = std::get_if<LinkDegrade>(&event.action)) {
      last = std::max(last, degrade->until + 1);
    } else if (const auto* crash = std::get_if<CrashRecovery>(&event.action)) {
      last = std::max(last, event.cycle + crash->down_for + 1);
    }
  }
  return last;
}

std::size_t Timeline::num_spammers() const {
  std::size_t total = 0;
  for (const Event& event : events_) {
    if (const auto* s = std::get_if<Spammers>(&event.action)) total += s->count;
  }
  return total;
}

std::size_t Timeline::num_free_riders() const {
  std::size_t total = 0;
  for (const Event& event : events_) {
    if (const auto* f = std::get_if<FreeRiders>(&event.action)) total += f->count;
  }
  return total;
}

std::size_t Timeline::num_spam_items() const {
  std::size_t total = 0;
  for (const Event& event : events_) {
    if (const auto* s = std::get_if<Spammers>(&event.action)) {
      total += static_cast<std::size_t>(s->count) * s->items;
    }
  }
  return total;
}

bool Timeline::mutates_opinions() const {
  for (const Event& event : events_) {
    if (std::holds_alternative<InterestDrift>(event.action) ||
        std::holds_alternative<InterestSwap>(event.action) ||
        std::holds_alternative<SwapPair>(event.action) ||
        std::holds_alternative<JoinClone>(event.action)) {
      return true;
    }
  }
  return false;
}

std::vector<metrics::Window> Timeline::windows(Cycle total_cycles) const {
  // Boundary -> label. Event cycles label the window they open; bare
  // episode ends read "restore".
  std::map<Cycle, std::string> boundaries;
  const auto add = [&](Cycle cycle, const std::string& label) {
    if (cycle <= 0 || cycle >= total_cycles) return;
    auto& existing = boundaries[cycle];
    if (label.empty()) return;
    if (!existing.empty()) existing += " + ";
    existing += label;
  };
  for (const Event& event : events_) {
    add(event.cycle, verb(event.action));
    if (const auto* loss = std::get_if<LossBurst>(&event.action)) {
      add(loss->until, "");
    } else if (const auto* part = std::get_if<Partition>(&event.action)) {
      add(part->until, "");
    } else if (const auto* churn = std::get_if<ChurnProcess>(&event.action)) {
      add(churn->until + 1, "");
    } else if (const auto* burst = std::get_if<BurstLoss>(&event.action)) {
      add(burst->until, "");
    } else if (const auto* degrade = std::get_if<LinkDegrade>(&event.action)) {
      add(degrade->until, "");
    } else if (const auto* crash = std::get_if<CrashRecovery>(&event.action)) {
      if (crash->down_for > 0) add(event.cycle + crash->down_for, "");
    }
  }
  std::vector<metrics::Window> out;
  Cycle begin = 0;
  std::string label = "start";
  for (const auto& [cycle, name] : boundaries) {
    out.push_back({begin, cycle, label});
    begin = cycle;
    label = name.empty() ? "restore" : name;
  }
  out.push_back({begin, total_cycles, label});
  return out;
}

// ---- Canonical formatter --------------------------------------------------

std::string verb(const Action& action) {
  return std::visit(
      [](const auto& a) -> std::string {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, LeaveWave>) return "leave";
        if constexpr (std::is_same_v<T, JoinWave>) return "join";
        if constexpr (std::is_same_v<T, SetRange>) return a.active ? "up" : "down";
        if constexpr (std::is_same_v<T, ChurnProcess>) return "churn";
        if constexpr (std::is_same_v<T, FlashCrowd>) return "flash";
        if constexpr (std::is_same_v<T, InterestDrift>) return "drift";
        if constexpr (std::is_same_v<T, InterestSwap>) return "swap";
        if constexpr (std::is_same_v<T, SwapPair>) return "swap-pair";
        if constexpr (std::is_same_v<T, JoinClone>) return "join-clone";
        if constexpr (std::is_same_v<T, LossBurst>) return "loss";
        if constexpr (std::is_same_v<T, Partition>) return "partition";
        if constexpr (std::is_same_v<T, BurstLoss>) return "burst";
        if constexpr (std::is_same_v<T, LinkDegrade>) return "degrade";
        if constexpr (std::is_same_v<T, CrashRecovery>) return "crash";
        if constexpr (std::is_same_v<T, Spammers>) return "spammers";
        if constexpr (std::is_same_v<T, FreeRiders>) return "freeriders";
      },
      action);
}

std::string to_spec_line(const Event& event) {
  std::ostringstream os;
  os << "at " << event.cycle << ' ' << verb(event.action);
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, LeaveWave> || std::is_same_v<T, JoinWave>) {
          os << ' ' << a.count;
        } else if constexpr (std::is_same_v<T, SetRange>) {
          os << ' ' << a.first << ' ' << a.count;
        } else if constexpr (std::is_same_v<T, ChurnProcess>) {
          os << ' ' << a.width << " every " << a.period << " until " << a.until;
        } else if constexpr (std::is_same_v<T, FlashCrowd> ||
                             std::is_same_v<T, InterestDrift>) {
          os << ' ' << a.count;
        } else if constexpr (std::is_same_v<T, InterestSwap>) {
          os << ' ' << a.pairs;
        } else if constexpr (std::is_same_v<T, SwapPair>) {
          os << ' ' << a.a << ' ' << a.b;
        } else if constexpr (std::is_same_v<T, JoinClone>) {
          os << ' ' << a.node << ' ' << a.as_user;
        } else if constexpr (std::is_same_v<T, LossBurst>) {
          os << ' ' << format_double(a.rate) << " until " << a.until;
        } else if constexpr (std::is_same_v<T, Partition>) {
          os << ' ' << format_double(a.fraction);
          if (a.cross_loss != 1.0) os << " xloss " << format_double(a.cross_loss);
          os << " until " << a.until;
        } else if constexpr (std::is_same_v<T, BurstLoss>) {
          os << ' ' << format_double(a.p_enter) << ' ' << format_double(a.p_exit) << ' '
             << format_double(a.loss) << " until " << a.until;
        } else if constexpr (std::is_same_v<T, LinkDegrade>) {
          // Canonical clause order; zero-valued clauses are omitted.
          if (a.latency != 0) os << " latency " << a.latency;
          if (a.jitter != 0) os << " jitter " << a.jitter;
          if (a.dup != 0.0) os << " dup " << format_double(a.dup);
          if (a.reorder != 0.0) os << " reorder " << format_double(a.reorder);
          os << " until " << a.until;
        } else if constexpr (std::is_same_v<T, CrashRecovery>) {
          os << ' ' << a.count;
          if (a.down_for > 0) os << " for " << a.down_for;
        } else if constexpr (std::is_same_v<T, Spammers>) {
          os << ' ' << a.count << " items " << a.items << " fanout " << a.fanout;
        } else if constexpr (std::is_same_v<T, FreeRiders>) {
          os << ' ' << a.count;
        }
      },
      event.action);
  return os.str();
}

std::string format(const Timeline& timeline) {
  std::ostringstream os;
  os << "name " << timeline.name << '\n';
  for (const Event& event : timeline.events()) {
    os << to_spec_line(event) << '\n';
  }
  return os.str();
}

// ---- Parser ---------------------------------------------------------------

namespace {

// One spec line split into whitespace tokens, with typed accessors that
// raise uniform errors naming the line.
class Line {
 public:
  Line(std::vector<std::string> tokens, int number)
      : tokens_(std::move(tokens)), number_(number) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("scenario spec line " + std::to_string(number_) + ": " +
                                what);
  }

  const std::string& word() {
    if (next_ >= tokens_.size()) fail("unexpected end of line");
    return tokens_[next_++];
  }

  // Consumes `keyword` if it is the next token; false otherwise.
  bool accept(std::string_view keyword) {
    if (next_ < tokens_.size() && tokens_[next_] == keyword) {
      ++next_;
      return true;
    }
    return false;
  }

  void expect(std::string_view keyword) {
    if (!accept(keyword)) fail("expected '" + std::string(keyword) + "'");
  }

  std::int64_t integer() {
    const std::string& token = word();
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("expected integer, got '" + token + "'");
    }
    return value;
  }

  std::uint32_t count() {
    const std::int64_t value = integer();
    if (value < 0 || value > std::numeric_limits<std::uint32_t>::max()) {
      fail("count out of range: " + std::to_string(value));
    }
    return static_cast<std::uint32_t>(value);
  }

  Cycle cycle() {
    const std::int64_t value = integer();
    if (value < std::numeric_limits<Cycle>::min() ||
        value > std::numeric_limits<Cycle>::max()) {
      fail("cycle out of range: " + std::to_string(value));
    }
    return static_cast<Cycle>(value);
  }

  double real() {
    const std::string& token = word();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("expected number, got '" + token + "'");
    }
    return value;
  }

  void done() {
    if (next_ < tokens_.size()) fail("trailing tokens after '" + tokens_[next_ - 1] + "'");
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t next_ = 0;
  int number_;
};

Action parse_action(Line& line, const std::string& verb) {
  if (verb == "leave") return LeaveWave{line.count()};
  if (verb == "join") return JoinWave{line.count()};
  if (verb == "down" || verb == "up") {
    SetRange range;
    range.first = static_cast<NodeId>(line.count());
    range.count = line.count();
    range.active = verb == "up";
    return range;
  }
  if (verb == "churn") {
    ChurnProcess churn;
    churn.width = line.count();
    line.expect("every");
    churn.period = line.cycle();
    if (churn.period <= 0) line.fail("churn period must be positive");
    line.expect("until");
    churn.until = line.cycle();
    return churn;
  }
  if (verb == "flash") return FlashCrowd{line.count()};
  if (verb == "drift") return InterestDrift{line.count()};
  if (verb == "swap") return InterestSwap{line.count()};
  if (verb == "swap-pair") {
    SwapPair swap;
    swap.a = static_cast<NodeId>(line.count());
    swap.b = static_cast<NodeId>(line.count());
    return swap;
  }
  if (verb == "join-clone") {
    JoinClone join;
    join.node = static_cast<NodeId>(line.count());
    join.as_user = static_cast<NodeId>(line.count());
    return join;
  }
  if (verb == "loss") {
    LossBurst loss;
    loss.rate = line.real();
    if (loss.rate < 0.0 || loss.rate > 1.0) line.fail("loss rate must be in [0, 1]");
    line.expect("until");
    loss.until = line.cycle();
    return loss;
  }
  if (verb == "partition") {
    Partition part;
    part.fraction = line.real();
    if (part.fraction <= 0.0 || part.fraction >= 1.0) {
      line.fail("partition fraction must be in (0, 1)");
    }
    if (line.accept("xloss")) {
      part.cross_loss = line.real();
      if (part.cross_loss < 0.0 || part.cross_loss > 1.0) {
        line.fail("partition xloss must be in [0, 1]");
      }
    }
    line.expect("until");
    part.until = line.cycle();
    return part;
  }
  if (verb == "burst") {
    BurstLoss burst;
    burst.p_enter = line.real();
    burst.p_exit = line.real();
    burst.loss = line.real();
    if (burst.p_enter <= 0.0 || burst.p_enter > 1.0) {
      line.fail("burst p_enter must be in (0, 1]");
    }
    if (burst.p_exit <= 0.0 || burst.p_exit > 1.0) {
      line.fail("burst p_exit must be in (0, 1]");
    }
    if (burst.loss <= 0.0 || burst.loss > 1.0) line.fail("burst loss must be in (0, 1]");
    line.expect("until");
    burst.until = line.cycle();
    return burst;
  }
  if (verb == "degrade") {
    LinkDegrade degrade;
    bool any = false;
    if (line.accept("latency")) {
      degrade.latency = line.cycle();
      if (degrade.latency < 0) line.fail("degrade latency must be non-negative");
      any = true;
    }
    if (line.accept("jitter")) {
      degrade.jitter = line.cycle();
      if (degrade.jitter < 0) line.fail("degrade jitter must be non-negative");
      any = true;
    }
    if (line.accept("dup")) {
      degrade.dup = line.real();
      if (degrade.dup < 0.0 || degrade.dup > 1.0) {
        line.fail("degrade dup must be in [0, 1]");
      }
      any = true;
    }
    if (line.accept("reorder")) {
      degrade.reorder = line.real();
      if (degrade.reorder < 0.0 || degrade.reorder > 1.0) {
        line.fail("degrade reorder must be in [0, 1]");
      }
      any = true;
    }
    if (!any) line.fail("degrade needs at least one of latency/jitter/dup/reorder");
    line.expect("until");
    degrade.until = line.cycle();
    return degrade;
  }
  if (verb == "crash") {
    CrashRecovery crash;
    crash.count = line.count();
    if (crash.count == 0) line.fail("crash count must be positive");
    if (line.accept("for")) {
      crash.down_for = line.cycle();
      if (crash.down_for <= 0) line.fail("crash 'for' must be positive");
    }
    return crash;
  }
  if (verb == "spammers") {
    Spammers spam;
    spam.count = line.count();
    line.expect("items");
    spam.items = line.count();
    line.expect("fanout");
    spam.fanout = line.count();
    return spam;
  }
  if (verb == "freeriders") return FreeRiders{line.count()};
  line.fail("unknown event '" + verb + "'");
}

}  // namespace

Timeline parse(std::string_view text) {
  Timeline timeline;
  std::istringstream input{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(input, raw)) {
    ++number;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    std::istringstream words(raw);
    std::vector<std::string> tokens;
    for (std::string token; words >> token;) tokens.push_back(std::move(token));
    if (tokens.empty()) continue;
    Line line(std::move(tokens), number);
    const std::string head = line.word();
    if (head == "name") {
      timeline.name = line.word();
      line.done();
      continue;
    }
    if (head != "at") line.fail("expected 'at' or 'name', got '" + head + "'");
    const Cycle cycle = line.cycle();
    if (cycle < 0) line.fail("event cycle must be non-negative");
    const std::string event_verb = line.word();
    Action action = parse_action(line, event_verb);
    line.done();
    if (const auto* churn = std::get_if<ChurnProcess>(&action);
        churn != nullptr && churn->until < cycle) {
      line.fail("churn 'until' precedes the event cycle");
    }
    if (const auto* loss = std::get_if<LossBurst>(&action);
        loss != nullptr && loss->until <= cycle) {
      line.fail("loss 'until' must follow the event cycle");
    }
    if (const auto* part = std::get_if<Partition>(&action);
        part != nullptr && part->until <= cycle) {
      line.fail("partition 'until' must follow the event cycle");
    }
    if (const auto* burst = std::get_if<BurstLoss>(&action);
        burst != nullptr && burst->until <= cycle) {
      line.fail("burst 'until' must follow the event cycle");
    }
    if (const auto* degrade = std::get_if<LinkDegrade>(&action);
        degrade != nullptr && degrade->until <= cycle) {
      line.fail("degrade 'until' must follow the event cycle");
    }
    timeline.at(cycle, std::move(action));
  }
  return timeline;
}

Timeline parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read scenario spec: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse(text.str());
}

}  // namespace whatsup::scenario
