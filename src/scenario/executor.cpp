#include "scenario/executor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace whatsup::scenario {

namespace {

// Reserved stream tag deriving the scenario stream space from the run
// seed: events can never collide with the engine or node streams, which
// fork from differently-tagged roots (sim/engine.cpp).
constexpr std::uint64_t kScenarioStreamTag = 0x5ce'7a71'0ULL;

}  // namespace

Executor::Executor(const Timeline& timeline, sim::Engine& engine,
                   data::Workload& workload, sim::MutableOpinions* opinions,
                   std::uint64_t seed)
    : timeline_(&timeline),
      engine_(&engine),
      workload_(&workload),
      opinions_(opinions),
      root_(Rng(seed).fork(kScenarioStreamTag)),
      baseline_(engine.network()) {
  if (timeline.mutates_opinions() && opinions_ == nullptr) {
    throw std::invalid_argument(
        "scenario timeline mutates opinions but no MutableOpinions layer was given");
  }
}

void Executor::prepare() {
  if (prepared_) return;  // workload surgery must run exactly once
  prepared_ = true;
  // Flash crowds: pull the next `count` scheduled items forward to the
  // event cycle, earliest publish_at first (ties by index) — the "next
  // news wave lands at once" reading. Canonical event order, so multiple
  // flashes compose deterministically.
  for (const Event& event : timeline_->events()) {
    const auto* flash = std::get_if<FlashCrowd>(&event.action);
    if (flash == nullptr) continue;
    std::vector<ItemIdx> candidates;
    for (const data::NewsSpec& spec : workload_->news) {
      if (spec.publish_at != kNoCycle && spec.publish_at > event.cycle) {
        candidates.push_back(spec.index);
      }
    }
    std::sort(candidates.begin(), candidates.end(), [&](ItemIdx a, ItemIdx b) {
      const Cycle ca = workload_->news[a].publish_at;
      const Cycle cb = workload_->news[b].publish_at;
      return ca != cb ? ca < cb : a < b;
    });
    const std::size_t take = std::min<std::size_t>(flash->count, candidates.size());
    for (std::size_t i = 0; i < take; ++i) {
      workload_->news[candidates[i]].publish_at = event.cycle;
    }
  }
  // Spam items: appended past the honest item space so trackers and score
  // passes stay index-aligned; sources are patched to the actual spammer
  // node ids by register_adversaries().
  num_spam_items_ = timeline_->num_spam_items();
  if (num_spam_items_ > 0) {
    first_spam_item_ = workload_->append_unscheduled_items(num_spam_items_, kNoNode);
  }
}

void Executor::register_adversaries() {
  if (!prepared_) prepare();
  honest_n_ = engine_->num_nodes();
  ItemIdx next_spam = first_spam_item_;
  for (const Event& event : timeline_->events()) {
    if (const auto* spam = std::get_if<Spammers>(&event.action)) {
      auto& ids = adversaries_by_event_[event.seq];
      for (std::uint32_t i = 0; i < spam->count; ++i) {
        std::vector<SpamItem> items;
        items.reserve(spam->items);
        for (std::uint32_t j = 0; j < spam->items; ++j) {
          items.push_back(SpamItem{next_spam, workload_->news[next_spam].id});
          ++next_spam;
        }
        const auto id = static_cast<NodeId>(engine_->num_nodes());
        auto agent = std::make_unique<SpammerAgent>(id, std::move(items), spam->fanout);
        for (const SpamItem& item : agent->items()) {
          workload_->news[item.index].source = id;
        }
        spammers_.push_back(agent.get());
        engine_->add_agent(std::move(agent));
        engine_->set_active(id, false);  // the event brings it up
        ids.push_back(id);
      }
    } else if (const auto* riders = std::get_if<FreeRiders>(&event.action)) {
      auto& ids = adversaries_by_event_[event.seq];
      for (std::uint32_t i = 0; i < riders->count; ++i) {
        const auto id = static_cast<NodeId>(engine_->num_nodes());
        auto agent = std::make_unique<FreeRiderAgent>(id);
        free_riders_.push_back(agent.get());
        engine_->add_agent(std::move(agent));
        engine_->set_active(id, false);
        ids.push_back(id);
      }
    }
  }
}

std::vector<NodeId> Executor::pick(Rng& rng, const std::vector<NodeId>& pool,
                                   std::size_t k) {
  const auto indices = rng.sample_indices(pool.size(), std::min(k, pool.size()));
  std::vector<NodeId> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(pool[i]);
  return out;
}

void Executor::refresh_network() {
  net::NetworkConfig config = baseline_;
  if (!active_losses_.empty()) config.loss_rate = active_losses_.back().rate;
  if (!active_partitions_.empty()) {
    config.partition_nodes = active_partitions_.back().boundary;
    config.partition_cross_loss = active_partitions_.back().cross_loss;
  }
  if (!active_bursts_.empty()) config.burst = active_bursts_.back().model;
  if (!active_degrades_.empty()) {
    // Latency/jitter degrade ADDITIVELY over the baseline (the degraded
    // path still pays its usual delay); dup/reorder override when set.
    const ActiveDegrade& d = active_degrades_.back();
    config.latency = baseline_.latency + d.latency;
    config.jitter = baseline_.jitter + d.jitter;
    if (d.dup > 0.0) config.duplicate_rate = d.dup;
    if (d.reorder > 0.0) config.reorder_rate = d.reorder;
  }
  engine_->set_network(config);
}

void Executor::begin_cycle(Cycle cycle) {
  if (honest_n_ == 0) honest_n_ = engine_->num_nodes();
  // 1. Expire episodes whose `until` has arrived. Each episode carries
  // its own end, so an inner burst ending cannot wipe an outer one that
  // is still running — the survivors' most recent entry wins in
  // refresh_network().
  bool changed = false;
  const auto expire = [&](auto& episodes) {
    const auto dead = [&](const auto& e) { return e.until <= cycle; };
    const auto removed = std::erase_if(episodes, dead);
    changed |= removed > 0;
  };
  expire(active_losses_);
  expire(active_partitions_);
  expire(active_bursts_);
  expire(active_degrades_);
  if (changed) refresh_network();
  // 2. Due events in canonical (cycle, seq) order, each with its own
  // counter-based substream.
  const auto& events = timeline_->events();
  while (next_event_ < events.size() && events[next_event_].cycle <= cycle) {
    const Event& event = events[next_event_++];
    Rng rng = root_.fork(event.seq, static_cast<std::uint64_t>(
                                        static_cast<std::int64_t>(event.cycle)));
    apply(event, rng);
  }
  // 3. Rotating-churn steps due this cycle (registered by their events
  // above; step 0 fires at the event cycle itself).
  for (const RunningChurn& churn : churns_) {
    if (cycle < churn.start || cycle > churn.process.until) continue;
    const auto elapsed = static_cast<std::size_t>(cycle - churn.start);
    const auto period = static_cast<std::size_t>(churn.process.period);
    if (elapsed % period != 0) continue;
    churn.process.step(*engine_, elapsed / period, honest_n_);
  }
}

void Executor::apply(const Event& event, Rng& rng) {
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, LeaveWave>) {
          std::vector<NodeId> pool;
          for (const NodeId id : engine_->active_ids()) {
            if (id < honest_n_) pool.push_back(id);
          }
          for (const NodeId id : pick(rng, pool, a.count)) {
            engine_->set_active(id, false);
          }
        } else if constexpr (std::is_same_v<T, JoinWave>) {
          std::vector<NodeId> pool;
          for (NodeId id = 0; id < honest_n_; ++id) {
            if (!engine_->is_active(id)) pool.push_back(id);
          }
          for (const NodeId id : pick(rng, pool, a.count)) {
            engine_->set_active(id, true);
          }
        } else if constexpr (std::is_same_v<T, SetRange>) {
          const auto limit = engine_->num_nodes();
          for (std::uint32_t j = 0; j < a.count; ++j) {
            const NodeId id = a.first + j;
            if (id < limit) engine_->set_active(id, a.active);
          }
        } else if constexpr (std::is_same_v<T, ChurnProcess>) {
          churns_.push_back(RunningChurn{event.cycle, a});
        } else if constexpr (std::is_same_v<T, FlashCrowd>) {
          // Applied by prepare() (publication re-schedule); nothing to do
          // at run time.
        } else if constexpr (std::is_same_v<T, InterestDrift>) {
          std::vector<NodeId> pool(honest_n_);
          for (NodeId id = 0; id < honest_n_; ++id) pool[id] = id;
          for (const NodeId node : pick(rng, pool, a.count)) {
            NodeId target = node;
            while (target == node && honest_n_ > 1) {
              target = static_cast<NodeId>(rng.index(honest_n_));
            }
            opinions_->set_alias(node, target);
          }
        } else if constexpr (std::is_same_v<T, InterestSwap>) {
          std::vector<NodeId> pool(honest_n_);
          for (NodeId id = 0; id < honest_n_; ++id) pool[id] = id;
          const auto picked = pick(rng, pool, static_cast<std::size_t>(a.pairs) * 2);
          for (std::size_t i = 0; i + 1 < picked.size(); i += 2) {
            opinions_->swap_interests(picked[i], picked[i + 1]);
          }
        } else if constexpr (std::is_same_v<T, SwapPair>) {
          opinions_->swap_interests(a.a, a.b);
        } else if constexpr (std::is_same_v<T, JoinClone>) {
          opinions_->set_alias(a.node, a.as_user);
          engine_->set_active(a.node, true);
          const NodeId contact = engine_->draw_active(rng, a.node);
          if (hooks_.cold_start && contact != kNoNode) {
            hooks_.cold_start(*engine_, a.node, contact);
          }
        } else if constexpr (std::is_same_v<T, LossBurst>) {
          active_losses_.push_back(ActiveLoss{a.rate, a.until});
          refresh_network();
        } else if constexpr (std::is_same_v<T, Partition>) {
          const auto raw = std::llround(a.fraction * static_cast<double>(honest_n_));
          const auto boundary = static_cast<NodeId>(std::clamp<long long>(
              raw, 1, static_cast<long long>(honest_n_ > 1 ? honest_n_ - 1 : 1)));
          active_partitions_.push_back(ActivePartition{boundary, a.cross_loss, a.until});
          refresh_network();
        } else if constexpr (std::is_same_v<T, BurstLoss>) {
          net::BurstLossModel model;
          model.p_enter = a.p_enter;
          model.p_exit = a.p_exit;
          model.loss_bad = a.loss;
          active_bursts_.push_back(ActiveBurst{model, a.until});
          refresh_network();
        } else if constexpr (std::is_same_v<T, LinkDegrade>) {
          active_degrades_.push_back(
              ActiveDegrade{a.latency, a.jitter, a.dup, a.reorder, a.until});
          refresh_network();
        } else if constexpr (std::is_same_v<T, CrashRecovery>) {
          std::vector<NodeId> pool;
          for (const NodeId id : engine_->active_ids()) {
            if (id < honest_n_) pool.push_back(id);
          }
          const Cycle recover_at =
              a.down_for > 0 ? event.cycle + a.down_for : kNoCycle;
          for (const NodeId id : pick(rng, pool, a.count)) {
            engine_->crash(id, recover_at);
          }
        } else if constexpr (std::is_same_v<T, Spammers> ||
                             std::is_same_v<T, FreeRiders>) {
          if (const auto it = adversaries_by_event_.find(event.seq);
              it != adversaries_by_event_.end()) {
            for (const NodeId id : it->second) engine_->set_active(id, true);
          }
        }
      },
      event.action);
}

}  // namespace whatsup::scenario
