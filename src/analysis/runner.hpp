// Experiment runner: builds a simulated deployment of one approach over a
// workload, drives the publication schedule, and collects every statistic
// the paper reports (scores, message/bandwidth accounting, overlay graph
// structure, hop and dislike histograms, per-user scores).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "dataset/workload.hpp"
#include "gossip/hygiene.hpp"
#include "metrics/scores.hpp"
#include "metrics/tracker.hpp"
#include "net/network.hpp"
#include "obs/snapshot.hpp"
#include "profile/obfuscation.hpp"
#include "profile/similarity.hpp"
#include "scenario/scenario.hpp"
#include "sim/opinions.hpp"
#include "sim/reliability.hpp"
#include "sim/transport.hpp"
#include "whatsup/params.hpp"

namespace whatsup::analysis {

// The competitors of §IV-B that run on the simulator (C-Pub/Sub and
// C-WhatsUp are closed-form / centralized and evaluated separately).
enum class Approach {
  kWhatsUp,     // WUP metric + BEEP
  kWhatsUpCos,  // cosine metric + BEEP
  kCfWup,       // k-NN CF, WUP metric
  kCfCos,       // k-NN CF, cosine metric
  kGossip,      // homogeneous SIR gossip
  kCascade,     // explicit social cascading (needs workload.social)
};

std::string to_string(Approach approach);
Metric metric_of(Approach approach);

struct RunConfig {
  Approach approach = Approach::kWhatsUp;
  // fLIKE for WhatsUp*, k for CF*, fanout for Gossip; ignored by Cascade.
  int fanout = 10;
  Params params;
  net::NetworkConfig network;
  std::uint64_t seed = 1;
  // Worker threads for the engine's parallel phases (0 = hardware
  // concurrency). Results are bit-identical for any value.
  unsigned threads = 1;
  // Nodes per shard (0 = engine default). Results are bit-identical for
  // any width; exposed so the determinism suite can pin widths.
  std::size_t shard_nodes = 0;

  Cycle warmup_cycles = 5;    // gossip-only cycles before the first item
  Cycle publish_cycles = 50;  // length of the publication phase
  Cycle drain_cycles = 12;    // tail for in-flight items
  // Publication-storm spreading window (cycles): > 1 staggers each cycle's
  // publication burst over the next `publish_spread` cycles after the
  // calendar is drawn (Workload::spread_publication_storms), flattening the
  // synchronized-burst RSS peak. 0/1 = the classic dense calendar.
  Cycle publish_spread = 0;
  // Items published before warmup_cycles + measure_margin are excluded
  // from the user metrics (profiles start empty; the paper measures
  // steady state).
  Cycle measure_margin = 13;

  double cycle_seconds = 30.0;  // wall-clock per cycle (bandwidth reports)

  // BEEP ablation switches (bench/ablation_beep).
  bool beep_amplification = true;
  bool beep_orientation = true;

  // Overrides the approach's default similarity metric (WhatsUp/CF only);
  // used by bench/ablation_metric to slot Jaccard/overlap/Pearson into the
  // same clustering stack.
  std::optional<Metric> metric_override;

  // Profile obfuscation for gossiped snapshots (WhatsUp only, §VII).
  ObfuscationConfig obfuscation;

  // Ack/retransmit reliability layer for BEEP forwards (WhatsUp only;
  // sim/reliability.hpp). Off by default — fault-free runs are bit-
  // identical with the layer compiled in but disabled.
  sim::ReliabilityConfig reliability;
  // Failure-aware view hygiene (WhatsUp only; gossip/hygiene.hpp).
  gossip::ViewHygieneConfig view_hygiene;

  // Declarative event timeline applied at cycle barriers (churn waves,
  // flash crowds, interest drift, network episodes, adversaries — see
  // src/scenario/). When set, the run wraps opinions in a mutable layer
  // as needed, registers the declared adversary nodes after the honest
  // population, and reports per-window scores in RunResult::windows.
  // Events beyond total_cycles() never fire.
  std::optional<scenario::Timeline> scenario;

  // Record metrics::Tracker::digest() after every cycle into
  // RunResult::cycle_digests (the determinism suite's trajectory pin).
  bool collect_cycle_digests = false;

  // Fragment partitioning (sim/transport.hpp). `partitions` is the
  // launcher-level knob (how many lockstep worker processes/threads to
  // run; 1 = the classic single-process engine); each worker passes its
  // own connected Transport here. With a multi-fragment transport the run
  // executes only the owned node fragment, and RunResult carries this
  // worker's PARTIAL per-cycle digests (summing all workers' series mod
  // 2^64 yields the single-process series — Tracker::digest is
  // commutative) plus partial traffic; the agent-dereferencing collection
  // passes (scores, overlay, per-user reductions) are skipped. The
  // transport is not owned and must outlive the run.
  int partitions = 1;
  sim::Transport* transport = nullptr;

  // Observability (src/obs/): heartbeat + per-cycle registry sampling.
  // Pure telemetry — enabling any knob leaves fixed-seed trajectories
  // bit-identical (the obs registry contract). In fragment mode the
  // heartbeat prints from fragment 0 only and the end-of-run stats
  // snapshot is skipped (a fragment would read peers' live lanes).
  obs::RunOptions observability;

  Cycle total_cycles() const { return warmup_cycles + publish_cycles + drain_cycles; }

  // Grows the drain tail so every scenario event fires inside the run
  // (timeline horizon + `margin` settle cycles fit in total_cycles()).
  // No-op without a scenario or when the run is already long enough.
  void fit_scenario_horizon(Cycle margin = 5);
};

struct OverlayStats {
  double lscc_fraction = 0.0;   // Fig. 4
  double clustering = 0.0;      // §V-A clustering coefficient
  std::size_t components = 0;   // §V-A weakly-connected component count
};

// Reliability-layer accounting for the robustness experiments: retransmit
// queue totals summed over all WhatsUp agents, ack control traffic, and
// the tracker's redundancy/latency reductions.
struct ReliabilityStats {
  std::size_t tracked = 0;      // news copies registered for ack
  std::size_t retransmits = 0;  // copies resent on timeout
  std::size_t acked = 0;        // entries cleared by an ack
  std::size_t expired = 0;      // entries dropped after max_retries
  std::size_t ack_messages = 0;  // kCtrl messages on the wire
  std::uint64_t duplicates = 0;  // repeat receipts (multi-path/dup/retx)
  std::uint64_t deliveries = 0;  // unique deliveries
  double redundancy_ratio = 0.0;  // duplicates per unique delivery
  double mean_latency = 0.0;      // cycles, publication -> unique delivery
  // Mean delivery latency per scenario window, aligned with
  // RunResult::windows (NaN-free: windows without deliveries read 0).
  std::vector<double> window_latency;
};

struct RunResult {
  metrics::Scores scores;
  std::vector<ItemIdx> measured;
  // Per item (for Fig. 10 / Fig. 11 post-analysis). Hybrid sparse→dense
  // sets straight from the tracker — resident size scales with actual
  // deliveries, not items × n (common/hybrid_set.hpp).
  std::vector<HybridSet> reached;

  std::size_t news_messages = 0;
  std::size_t gossip_messages = 0;  // RPS + WUP
  double msgs_per_user = 0.0;           // Table III "Mess./User"
  double msgs_per_cycle_node = 0.0;     // Fig. 3d-f x-axis
  double kbps_total = 0.0;              // Fig. 8b
  double kbps_gossip = 0.0;             // RPS + WUP maintenance share
  double kbps_beep = 0.0;               // news share

  OverlayStats overlay;

  std::array<double, 5> dislike_fractions{};  // Table IV (0..4 dislikes)
  metrics::HopCounts hops_per_item;           // Fig. 6 (avg per measured item)
  metrics::PerUserScores per_user;            // Fig. 11

  // Scenario-mode extras (empty without RunConfig::scenario /
  // collect_cycle_digests): per-phase scores around each timeline event,
  // and the per-cycle tracker digest series.
  std::vector<metrics::WindowScores> windows;
  std::vector<std::uint64_t> cycle_digests;

  ReliabilityStats reliability;

  // Observability extras (empty unless RunConfig::observability asks):
  // per-cycle registry samples and the end-of-run merged snapshot
  // (registry + engine memory + tracker + arena).
  std::vector<obs::CycleSample> stats_series;
  obs::Snapshot stats;
};

// Adapter exposing workload ground truth as a sim::Opinions source.
class WorkloadOpinions : public sim::Opinions {
 public:
  explicit WorkloadOpinions(const data::Workload& workload) : workload_(&workload) {}
  bool likes(NodeId user, ItemIdx item) const override {
    return user < workload_->num_users() && workload_->likes(user, item);
  }

 private:
  const data::Workload* workload_;
};

// Runs one full experiment. The workload is copied internally so the
// publication schedule can be (re)drawn from `config.seed`.
RunResult run_protocol(const data::Workload& workload, const RunConfig& config);

}  // namespace whatsup::analysis
