// One driver per paper table/figure. Each bench binary is a thin main()
// that parses flags and calls one of these printers; tests call them too
// (on reduced scales) to assert the qualitative claims.
//
// `scale` shrinks/grows the workloads relative to the paper's sizes
// (scale=1 reproduces Table I); `trials` averages runs over that many
// seeds. Output format: ASCII tables for tables, gnuplot-style series for
// figures.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "analysis/runner.hpp"
#include "analysis/sweeps.hpp"

namespace whatsup::analysis {

// ---- Workload factories -------------------------------------------------

// `name` in {"synthetic", "digg", "survey"}; scale=1 matches Table I.
data::Workload standard_workload(const std::string& name, std::uint64_t seed,
                                 double scale = 1.0);

// Baseline run configuration shared by the experiments (§IV-D timeline:
// profile window = 13 cycles ≈ 1/5 of the run).
RunConfig default_run_config(std::uint64_t seed);

// ---- Fig. 7 dynamics (joining / interest-switching nodes) ---------------

struct DynamicsSeries {
  std::vector<double> cycle;
  std::vector<double> ref_sim, join_sim, change_sim;        // Fig. 7a/7b
  std::vector<double> ref_liked, join_liked, change_liked;  // Fig. 7c
};

// `threads` is the engine worker-thread count (0 = hardware concurrency);
// the series are bit-identical for any value.
DynamicsSeries run_dynamics(const data::Workload& workload, Metric metric,
                            std::uint64_t seed, Cycle event_cycle, Cycle total_cycles,
                            int trials, unsigned threads = 1);

// ---- Table printers ------------------------------------------------------

void print_table1(std::ostream& os, std::uint64_t seed, double scale);
void print_table2(std::ostream& os);
void print_table3(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_table4(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_table5(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_table6(std::ostream& os, std::uint64_t seed, double scale, int trials);

// ---- Figure printers -----------------------------------------------------

// Fig. 3: prints both the F1-vs-fanout series (3a-c) and the
// F1-vs-messages series (3d-f) from one sweep of the given dataset.
void print_fig3(std::ostream& os, const std::string& dataset, std::uint64_t seed,
                double scale, int trials);
void print_fig4(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig5(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig6(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig7(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig8(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig9(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig10(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_fig11(std::ostream& os, std::uint64_t seed, double scale, int trials);

// ---- Ablations beyond the paper ------------------------------------------

void print_ablation_beep(std::ostream& os, std::uint64_t seed, double scale, int trials);
void print_ablation_metric(std::ostream& os, std::uint64_t seed, double scale,
                           int trials);
// §VII privacy extension: recommendation quality vs profile-obfuscation
// level (randomized response + entry suppression on gossiped snapshots).
void print_ablation_privacy(std::ostream& os, std::uint64_t seed, double scale,
                            int trials);

}  // namespace whatsup::analysis
