#include "analysis/runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "baselines/cascade_agent.hpp"
#include "baselines/cf_agent.hpp"
#include "baselines/gossip_agent.hpp"
#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/scc.hpp"
#include "sim/engine.hpp"
#include "whatsup/node.hpp"

namespace whatsup::analysis {

std::string to_string(Approach approach) {
  switch (approach) {
    case Approach::kWhatsUp: return "WhatsUp";
    case Approach::kWhatsUpCos: return "WhatsUp-Cos";
    case Approach::kCfWup: return "CF-Wup";
    case Approach::kCfCos: return "CF-Cos";
    case Approach::kGossip: return "Gossip";
    case Approach::kCascade: return "Cascade";
  }
  return "unknown";
}

Metric metric_of(Approach approach) {
  switch (approach) {
    case Approach::kWhatsUpCos:
    case Approach::kCfCos:
      return Metric::kCosine;
    default:
      return Metric::kWup;
  }
}

namespace {

// Builds the overlay digraph from the per-agent neighbor views at the end
// of a run: node -> members of its WUP/kNN view (RPS for gossip, the
// social graph for cascading).
graph::Digraph overlay_graph(const sim::Engine& engine, Approach approach,
                             const data::Workload& workload) {
  graph::Digraph g(engine.num_nodes());
  for (NodeId v = 0; v < engine.num_nodes(); ++v) {
    const sim::Agent& agent = engine.agent(v);
    switch (approach) {
      case Approach::kWhatsUp:
      case Approach::kWhatsUpCos: {
        const auto& node = dynamic_cast<const WhatsUpAgent&>(agent);
        for (NodeId w : node.wup_view().members()) g.add_edge(v, w);
        break;
      }
      case Approach::kCfWup:
      case Approach::kCfCos: {
        const auto& node = dynamic_cast<const baselines::CfAgent&>(agent);
        for (NodeId w : node.knn_view().members()) g.add_edge(v, w);
        break;
      }
      case Approach::kGossip: {
        const auto& node = dynamic_cast<const baselines::GossipAgent&>(agent);
        for (NodeId w : node.rps_view().members()) g.add_edge(v, w);
        break;
      }
      case Approach::kCascade: {
        if (workload.social.has_value()) {
          for (NodeId w : workload.social->neighbors(v)) g.add_edge(v, w);
        }
        break;
      }
    }
  }
  g.dedupe();
  return g;
}

}  // namespace

RunResult run_protocol(const data::Workload& base_workload, const RunConfig& config) {
  data::Workload workload = base_workload;  // local copy: we draw a schedule
  Rng rng(config.seed);

  // Publication schedule: uniform over the publication phase.
  const Cycle first_pub = config.warmup_cycles;
  const Cycle last_pub = config.warmup_cycles + config.publish_cycles - 1;
  workload.schedule_publications(first_pub, last_pub, rng);

  sim::Engine::Config engine_config;
  engine_config.seed = rng.next_u64();
  engine_config.network = config.network;
  engine_config.threads = config.threads;
  sim::Engine engine(engine_config);

  WorkloadOpinions opinions(workload);

  Params params = config.params;
  params.f_like = config.fanout;

  const std::size_t n = workload.num_users();
  if (config.approach == Approach::kCascade && !workload.social.has_value()) {
    throw std::invalid_argument("cascade requires a workload with a social graph");
  }

  std::vector<WhatsUpAgent*> whatsup_agents;
  std::vector<baselines::GossipAgent*> gossip_agents;
  std::vector<baselines::CfAgent*> cf_agents;
  for (NodeId v = 0; v < n; ++v) {
    switch (config.approach) {
      case Approach::kWhatsUp:
      case Approach::kWhatsUpCos: {
        WhatsUpConfig wu;
        wu.params = params;
        wu.metric = config.metric_override.value_or(metric_of(config.approach));
        wu.beep_amplification = config.beep_amplification;
        wu.beep_orientation = config.beep_orientation;
        wu.obfuscation = config.obfuscation;
        auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
        whatsup_agents.push_back(agent.get());
        engine.add_agent(std::move(agent));
        break;
      }
      case Approach::kCfWup:
      case Approach::kCfCos: {
        auto agent = std::make_unique<baselines::CfAgent>(
            v, config.fanout, config.metric_override.value_or(metric_of(config.approach)),
            params, opinions);
        cf_agents.push_back(agent.get());
        engine.add_agent(std::move(agent));
        break;
      }
      case Approach::kGossip: {
        auto agent = std::make_unique<baselines::GossipAgent>(
            v, config.fanout, params.rps_view_size, params.rps_period, opinions);
        gossip_agents.push_back(agent.get());
        engine.add_agent(std::move(agent));
        break;
      }
      case Approach::kCascade: {
        const auto friends_span = workload.social->neighbors(v);
        std::vector<NodeId> friends(friends_span.begin(), friends_span.end());
        engine.add_agent(
            std::make_unique<baselines::CascadeAgent>(v, std::move(friends), opinions));
        break;
      }
    }
  }

  // Bootstrap: every node's RPS view starts with random peers (the role of
  // the bootstrap server in the deployed system).
  const auto seed_view = [&](auto* agent, NodeId self) {
    std::vector<net::Descriptor> seed;
    const auto k = static_cast<std::size_t>(params.rps_view_size);
    for (std::size_t picked = 0; picked < k && n > 1; ++picked) {
      NodeId peer = self;
      while (peer == self) peer = static_cast<NodeId>(rng.index(n));
      seed.push_back(net::Descriptor{peer, -1, nullptr});
    }
    agent->bootstrap_rps(std::move(seed));
  };
  for (auto* a : whatsup_agents) seed_view(a, a->id());
  for (NodeId v = 0; v < gossip_agents.size(); ++v) seed_view(gossip_agents[v], v);
  for (NodeId v = 0; v < cf_agents.size(); ++v) seed_view(cf_agents[v], v);

  metrics::Tracker tracker(n, workload.num_items());
  tracker.attach(engine);

  // Publication calendar.
  std::map<Cycle, std::vector<ItemIdx>> calendar;
  for (const data::NewsSpec& spec : workload.news) {
    calendar[spec.publish_at].push_back(spec.index);
  }

  const Cycle total = config.total_cycles();
  for (Cycle c = 0; c < total; ++c) {
    if (const auto it = calendar.find(c); it != calendar.end()) {
      for (ItemIdx item : it->second) {
        engine.publish(workload.news[item].source, item, workload.news[item].id);
      }
    }
    engine.run_cycle();
  }

  // ---- Collect results ----
  RunResult result;
  const Cycle measure_from = config.warmup_cycles + config.measure_margin;
  for (const data::NewsSpec& spec : workload.news) {
    if (spec.publish_at >= measure_from) result.measured.push_back(spec.index);
  }
  result.reached = tracker.reached_sets();
  result.scores = metrics::compute_scores(workload, result.reached, result.measured);
  result.per_user = metrics::per_user_scores(workload, result.reached, result.measured);

  const net::Traffic& traffic = engine.traffic();
  result.news_messages = traffic.messages(net::Protocol::kBeep);
  result.gossip_messages =
      traffic.messages(net::Protocol::kRps) + traffic.messages(net::Protocol::kWup);
  result.msgs_per_user =
      static_cast<double>(traffic.total_messages()) / static_cast<double>(n);
  result.msgs_per_cycle_node = static_cast<double>(traffic.total_messages()) /
                               static_cast<double>(total) / static_cast<double>(n);
  result.kbps_total =
      traffic.kbps_per_node_total(n, static_cast<double>(total), config.cycle_seconds,
                                  /*since_mark=*/false);
  result.kbps_gossip =
      traffic.kbps_per_node(net::Protocol::kRps, n, static_cast<double>(total),
                            config.cycle_seconds, false) +
      traffic.kbps_per_node(net::Protocol::kWup, n, static_cast<double>(total),
                            config.cycle_seconds, false);
  result.kbps_beep = traffic.kbps_per_node(net::Protocol::kBeep, n,
                                           static_cast<double>(total),
                                           config.cycle_seconds, false);

  const graph::Digraph overlay = overlay_graph(engine, config.approach, workload);
  result.overlay.lscc_fraction = graph::largest_scc_fraction(overlay);
  result.overlay.clustering = graph::avg_clustering_coefficient(overlay);
  result.overlay.components = graph::weak_components(overlay).count;

  // Table IV: distribution of the dislike counter carried by the copies
  // that reached likers, over measured items.
  std::array<double, 5> dislike_counts{};
  double dislike_total = 0.0;
  for (ItemIdx item : result.measured) {
    const auto& hist = tracker.dislikes_at_liked(item);
    for (std::size_t bin = 0; bin < hist.size(); ++bin) {
      const std::size_t clipped = std::min<std::size_t>(bin, 4);
      dislike_counts[clipped] += static_cast<double>(hist[bin]);
      dislike_total += static_cast<double>(hist[bin]);
    }
  }
  if (dislike_total > 0.0) {
    for (double& c : dislike_counts) c /= dislike_total;
  }
  result.dislike_fractions = dislike_counts;

  // Fig. 6: average per-item hop histograms.
  for (ItemIdx item : result.measured) {
    result.hops_per_item.accumulate(tracker.hops(item));
  }
  if (!result.measured.empty()) {
    const double inv = 1.0 / static_cast<double>(result.measured.size());
    for (auto* hist : {&result.hops_per_item.forward_like, &result.hops_per_item.infect_like,
                       &result.hops_per_item.forward_dislike,
                       &result.hops_per_item.infect_dislike}) {
      for (double& x : *hist) x *= inv;
    }
  }
  return result;
}

}  // namespace whatsup::analysis
