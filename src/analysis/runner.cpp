#include "analysis/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>

#include "baselines/cascade_agent.hpp"
#include "baselines/cf_agent.hpp"
#include "baselines/gossip_agent.hpp"
#include "common/parallel.hpp"
#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/scc.hpp"
#include "graph/static_graph.hpp"
#include "scenario/executor.hpp"
#include "sim/engine.hpp"
#include "whatsup/node.hpp"

namespace whatsup::analysis {

std::string to_string(Approach approach) {
  switch (approach) {
    case Approach::kWhatsUp: return "WhatsUp";
    case Approach::kWhatsUpCos: return "WhatsUp-Cos";
    case Approach::kCfWup: return "CF-Wup";
    case Approach::kCfCos: return "CF-Cos";
    case Approach::kGossip: return "Gossip";
    case Approach::kCascade: return "Cascade";
  }
  return "unknown";
}

Metric metric_of(Approach approach) {
  switch (approach) {
    case Approach::kWhatsUpCos:
    case Approach::kCfCos:
      return Metric::kCosine;
    default:
      return Metric::kWup;
  }
}

void RunConfig::fit_scenario_horizon(Cycle margin) {
  if (!scenario.has_value()) return;
  const Cycle needed = scenario->horizon() + margin;
  if (needed > total_cycles()) drain_cycles += needed - total_cycles();
}

namespace {

// Node-range width for the collection passes below. A constant (never a
// function of the thread count) so partial merges happen in the same
// order under any executor; see common/parallel.hpp.
constexpr std::size_t kCollectChunk = 1024;

// The overlay edge source of one node at the end of a run: members of its
// WUP/kNN view (RPS for gossip, the social graph for cascading).
// Scenario-registered adversary nodes are not protocol agents (the casts
// miss) and contribute no overlay edges.
std::span<const net::Descriptor> overlay_view(const sim::Agent& agent,
                                              Approach approach) {
  switch (approach) {
    case Approach::kWhatsUp:
    case Approach::kWhatsUpCos:
      if (const auto* wu = dynamic_cast<const WhatsUpAgent*>(&agent)) {
        return wu->wup_view().entries();
      }
      return {};
    case Approach::kCfWup:
    case Approach::kCfCos:
      if (const auto* cf = dynamic_cast<const baselines::CfAgent*>(&agent)) {
        return cf->knn_view().entries();
      }
      return {};
    case Approach::kGossip:
      if (const auto* gossip = dynamic_cast<const baselines::GossipAgent*>(&agent)) {
        return gossip->rps_view().entries();
      }
      return {};
    case Approach::kCascade:
      return {};
  }
  return {};
}

// Builds the end-of-run overlay as a CSR StaticGraph, streaming view
// edges straight out of every agent into the pre-reserved edge slab —
// degree count, fill and per-row dedupe all run over disjoint node ranges
// on the engine's worker pool, and no intermediate adjacency-list graph
// is ever materialized (the old Digraph path cost one heap block per node
// plus a full resort on dedupe, all on the main thread).
graph::StaticGraph overlay_graph(sim::Engine& engine, Approach approach,
                                 const data::Workload& workload) {
  const std::size_t n = engine.num_nodes();
  const bool social = approach == Approach::kCascade && workload.social.has_value();
  graph::StaticGraph::Builder builder(n);
  parallel_chunks(&engine, n, kCollectChunk,
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t v = lo; v < hi; ++v) {
                      const auto id = static_cast<NodeId>(v);
                      const std::size_t degree =
                          social ? workload.social->neighbors(id).size()
                                 : overlay_view(engine.agent(id), approach).size();
                      builder.set_degree(id, degree);
                    }
                  });
  builder.finish_degrees();
  parallel_chunks(&engine, n, kCollectChunk,
                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t v = lo; v < hi; ++v) {
                      const auto id = static_cast<NodeId>(v);
                      if (social) {
                        for (const NodeId w : workload.social->neighbors(id)) {
                          builder.add_edge(id, w);
                        }
                      } else {
                        for (const net::Descriptor& d :
                             overlay_view(engine.agent(id), approach)) {
                          builder.add_edge(id, d.node);
                        }
                      }
                    }
                    builder.dedupe_rows(static_cast<NodeId>(lo),
                                        static_cast<NodeId>(hi));
                  });
  return builder.build();
}

}  // namespace

RunResult run_protocol(const data::Workload& base_workload, const RunConfig& config) {
  data::Workload workload = base_workload;  // local copy: we draw a schedule
  Rng rng(config.seed);

  // Publication schedule: uniform over the publication phase, optionally
  // de-synchronized (items of one burst staggered over the next
  // publish_spread cycles; late stragglers publish into the drain tail).
  // Computed identically on every fragment worker — pure function of the
  // calendar, no extra RNG draws.
  const Cycle first_pub = config.warmup_cycles;
  const Cycle last_pub = config.warmup_cycles + config.publish_cycles - 1;
  workload.schedule_publications(first_pub, last_pub, rng);
  workload.spread_publication_storms(config.publish_spread);

  sim::Engine::Config engine_config;
  engine_config.seed = rng.next_u64();
  engine_config.network = config.network;
  engine_config.threads = config.threads;
  engine_config.shard_nodes = config.shard_nodes;
  engine_config.transport = config.transport;
  sim::Engine engine(engine_config);
  // Fragment mode: this process runs one lockstep worker of a partitioned
  // run (sim/transport.hpp). The whole setup below executes identically on
  // every worker — same workload copy, same schedule, same scenario — and
  // the engine partitions agent execution by ownership.
  const bool fragmented = engine.fragments() > 1;

  // Scenario wiring: prepare() rewrites the publication schedule (flash
  // crowds) and appends spam items BEFORE the calendar is built and the
  // tracker is sized; opinions gain a mutable alias layer only when the
  // timeline needs one, so scenario-free runs keep the exact opinion
  // object graph they had.
  WorkloadOpinions ground_truth(workload);
  std::optional<sim::MutableOpinions> dynamic_opinions;
  std::optional<scenario::Executor> scenario_exec;
  if (config.scenario.has_value()) {
    if (config.scenario->mutates_opinions()) dynamic_opinions.emplace(ground_truth);
    const std::uint64_t scenario_seed = rng.next_u64();
    scenario_exec.emplace(*config.scenario, engine, workload,
                          dynamic_opinions.has_value() ? &*dynamic_opinions : nullptr,
                          scenario_seed);
    scenario_exec->prepare();
  }
  const sim::Opinions& opinions =
      dynamic_opinions.has_value() ? static_cast<const sim::Opinions&>(*dynamic_opinions)
                                   : ground_truth;

  Params params = config.params;
  params.f_like = config.fanout;

  const std::size_t n = workload.num_users();
  if (config.approach == Approach::kCascade && !workload.social.has_value()) {
    throw std::invalid_argument("cascade requires a workload with a social graph");
  }

  // BOOTSTRAP phase: agents are constructed AND their RPS/kNN views
  // seeded with random peers (the role of the bootstrap server in the
  // deployed system) per shard on the worker pool. Every node draws its
  // seed peers from its own counter-based bootstrap stream, so the wiring
  // is bit-identical for any thread count and shard width — this replaced
  // the sequential per-node seeding loops that serialized 100k-node
  // startup on the main thread (one re-baseline of fixed-seed digests).
  const auto seed_view = [&](auto& agent, NodeId self, Rng& boot_rng) {
    std::vector<net::Descriptor> seed;
    const auto k = static_cast<std::size_t>(params.rps_view_size);
    seed.reserve(k);
    for (std::size_t picked = 0; picked < k && n > 1; ++picked) {
      NodeId peer = self;
      while (peer == self) peer = static_cast<NodeId>(boot_rng.index(n));
      seed.push_back(net::Descriptor{peer, -1, nullptr});
    }
    agent.bootstrap_rps(std::move(seed));
  };

  WhatsUpConfig wu;
  wu.params = params;
  wu.metric = config.metric_override.value_or(metric_of(config.approach));
  wu.beep_amplification = config.beep_amplification;
  wu.beep_orientation = config.beep_orientation;
  wu.obfuscation = config.obfuscation;
  wu.reliability = config.reliability;
  wu.hygiene = config.view_hygiene;
  const Metric cf_metric = config.metric_override.value_or(metric_of(config.approach));

  engine.bootstrap(n, [&](NodeId v, Rng& boot_rng) -> std::unique_ptr<sim::Agent> {
    switch (config.approach) {
      case Approach::kWhatsUp:
      case Approach::kWhatsUpCos: {
        auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
        seed_view(*agent, v, boot_rng);
        return agent;
      }
      case Approach::kCfWup:
      case Approach::kCfCos: {
        auto agent = std::make_unique<baselines::CfAgent>(v, config.fanout, cf_metric,
                                                          params, opinions);
        seed_view(*agent, v, boot_rng);
        return agent;
      }
      case Approach::kGossip: {
        auto agent = std::make_unique<baselines::GossipAgent>(
            v, config.fanout, params.rps_view_size, params.rps_period, opinions);
        seed_view(*agent, v, boot_rng);
        return agent;
      }
      case Approach::kCascade: {
        const auto friends_span = workload.social->neighbors(v);
        std::vector<NodeId> friends(friends_span.begin(), friends_span.end());
        return std::make_unique<baselines::CascadeAgent>(v, std::move(friends),
                                                         opinions);
      }
    }
    return nullptr;
  });

  // Adversary nodes (if the scenario declares any) register after the
  // honest population, initially offline; their events bring them up.
  if (scenario_exec.has_value()) scenario_exec->register_adversaries();

  metrics::Tracker tracker(n, workload.num_items());
  tracker.attach(engine);

  std::vector<std::uint64_t> cycle_digests;
  if (config.collect_cycle_digests) {
    engine.add_cycle_hook([&tracker, &cycle_digests](sim::Engine&, Cycle) {
      cycle_digests.push_back(tracker.digest());
    });
  }

  // Observability hooks (src/obs/): all run at the cycle barrier on the
  // main thread and feed nothing back into the simulation, so fixed-seed
  // trajectories are untouched (tests/test_obs.cpp pins this).
  const obs::RunOptions& observability = config.observability;
  if (observability.enabled()) obs::set_enabled(true);
  std::shared_ptr<obs::Heartbeat> heartbeat;
  if (observability.progress_every > 0 && engine.fragment() == 0) {
    heartbeat = std::make_shared<obs::Heartbeat>(config.total_cycles(),
                                                 observability.progress_every);
    engine.add_cycle_hook(
        [heartbeat](sim::Engine&, Cycle c) { heartbeat->tick(c); });
  }
  std::vector<obs::CycleSample> stats_series;
  if (observability.stats_every > 0) {
    const Cycle every = observability.stats_every;
    engine.add_cycle_hook([&stats_series, every](sim::Engine&, Cycle c) {
      if ((c + 1) % every != 0) return;
      obs::CycleSample sample;
      sample.cycle = c;
      // Cumulative registry totals plus the arena's cheap counters; the
      // expensive engine.memory_stats() walk stays end-of-run only.
      sample.snapshot = obs::Snapshot::collect();
      sample.snapshot.absorb_arena();
      stats_series.push_back(std::move(sample));
    });
  }

  // Publication calendar (spam items carry publish_at == kNoCycle and are
  // injected by their spammers, never by the calendar).
  std::map<Cycle, std::vector<ItemIdx>> calendar;
  for (const data::NewsSpec& spec : workload.news) {
    if (spec.publish_at != kNoCycle) {
      calendar[spec.publish_at].push_back(spec.index);
      // Declare publication cycles so the tracker can latency-score each
      // unique delivery (publication -> delivery, in cycles).
      tracker.set_publish_cycle(spec.index, spec.publish_at);
    }
  }

  const Cycle total = config.total_cycles();
  for (Cycle c = 0; c < total; ++c) {
    if (scenario_exec.has_value()) scenario_exec->begin_cycle(c);
    if (const auto it = calendar.find(c); it != calendar.end()) {
      for (ItemIdx item : it->second) {
        engine.publish(workload.news[item].source, item, workload.news[item].id);
      }
    }
    engine.run_cycle();
  }

  // Per-layer footprint attribution for the perf docs' "Memory map"
  // (capacity accounting, not RSS — see Engine::memory_stats), emitted
  // through the unified obs::Snapshot reporting path.
  if (std::getenv("WHATSUP_MEM_STATS") != nullptr) {
    obs::Snapshot snap;
    snap.absorb(engine);
    snap.absorb(tracker);
    snap.write_text(stderr, "[mem_stats]");
  }

  // ---- Collect results ----
  RunResult result;
  const Cycle measure_from = config.warmup_cycles + config.measure_margin;
  for (const data::NewsSpec& spec : workload.news) {
    if (spec.publish_at >= measure_from) result.measured.push_back(spec.index);
  }
  if (fragmented) {
    // Partial results only: this worker's tracker saw just the owned
    // nodes' events, and the full collection passes below dereference
    // every agent (outer slots are null here). The per-cycle digests are
    // the payload — commutative partials that sum (mod 2^64) across
    // workers to the single-process series — plus partial traffic for
    // observability.
    result.cycle_digests = std::move(cycle_digests);
    result.news_messages = engine.traffic().messages(net::Protocol::kBeep);
    result.gossip_messages = engine.traffic().messages(net::Protocol::kRps) +
                             engine.traffic().messages(net::Protocol::kWup);
    // No stats snapshot here: an in-process fragment worker merging the
    // registry would read lanes that sibling fragments are still writing.
    return result;
  }
  if (observability.enabled()) {
    result.stats_series = std::move(stats_series);
    result.stats = obs::Snapshot::collect();
    result.stats.absorb(engine);
    result.stats.absorb(tracker);
    result.stats.absorb_arena();
  }
  result.reached = tracker.reached_sets();
  // Score reduction fans out over the engine's worker pool (fixed chunk
  // widths, in-order merges: bit-identical for any thread count).
  result.scores = metrics::compute_scores(workload, result.reached, result.measured,
                                          &engine);
  result.per_user = metrics::per_user_scores(workload, result.reached,
                                             result.measured, &engine);
  result.cycle_digests = std::move(cycle_digests);
  if (config.scenario.has_value()) {
    // Per-phase scores around each timeline event (windows split at every
    // event cycle and episode end).
    const std::vector<metrics::Window> windows = config.scenario->windows(total);
    result.windows = metrics::windowed_scores(workload, result.reached,
                                              result.measured, windows, &engine);
  }

  const net::Traffic& traffic = engine.traffic();
  result.news_messages = traffic.messages(net::Protocol::kBeep);
  result.gossip_messages =
      traffic.messages(net::Protocol::kRps) + traffic.messages(net::Protocol::kWup);
  result.msgs_per_user =
      static_cast<double>(traffic.total_messages()) / static_cast<double>(n);
  result.msgs_per_cycle_node = static_cast<double>(traffic.total_messages()) /
                               static_cast<double>(total) / static_cast<double>(n);
  result.kbps_total =
      traffic.kbps_per_node_total(n, static_cast<double>(total), config.cycle_seconds,
                                  /*since_mark=*/false);
  result.kbps_gossip =
      traffic.kbps_per_node(net::Protocol::kRps, n, static_cast<double>(total),
                            config.cycle_seconds, false) +
      traffic.kbps_per_node(net::Protocol::kWup, n, static_cast<double>(total),
                            config.cycle_seconds, false);
  result.kbps_beep = traffic.kbps_per_node(net::Protocol::kBeep, n,
                                           static_cast<double>(total),
                                           config.cycle_seconds, false);

  // Reliability accounting: retransmit-queue totals over all WhatsUp
  // agents (other approaches have no reliability layer and contribute
  // zeros), ack control traffic, and the tracker's redundancy/latency
  // reductions. Cheap relative to the run; always collected.
  for (NodeId v = 0; v < n; ++v) {
    if (const auto* wu_agent = dynamic_cast<const WhatsUpAgent*>(&engine.agent(v))) {
      const sim::RetransmitQueue::Stats& s = wu_agent->retransmit_queue().stats();
      result.reliability.tracked += s.tracked;
      result.reliability.retransmits += s.retransmits;
      result.reliability.acked += s.acked;
      result.reliability.expired += s.expired;
    } else {
      break;  // homogeneous honest population: no WhatsUp agents at all
    }
  }
  result.reliability.ack_messages = traffic.messages(net::Protocol::kCtrl);
  result.reliability.duplicates = tracker.total_duplicates();
  result.reliability.deliveries = tracker.total_deliveries();
  result.reliability.redundancy_ratio = tracker.redundancy_ratio();
  result.reliability.mean_latency = tracker.mean_latency();
  if (config.scenario.has_value()) {
    const auto& by_cycle = tracker.latency_by_cycle();
    const std::vector<metrics::Window> windows = config.scenario->windows(total);
    result.reliability.window_latency.reserve(windows.size());
    for (const metrics::Window& w : windows) {
      std::uint64_t sum = 0;
      std::uint64_t count = 0;
      for (Cycle c = w.begin; c < w.end; ++c) {
        const auto idx = static_cast<std::size_t>(c);
        if (idx >= by_cycle.size()) break;
        sum += by_cycle[idx].first;
        count += by_cycle[idx].second;
      }
      result.reliability.window_latency.push_back(
          count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count));
    }
  }

  const graph::StaticGraph overlay = overlay_graph(engine, config.approach, workload);
  result.overlay.lscc_fraction = graph::largest_scc_fraction(overlay);
  result.overlay.clustering = graph::avg_clustering_coefficient(overlay);
  result.overlay.components = graph::weak_components(overlay).count;

  // Table IV (dislike histograms) and Fig. 6 (hop histograms): per-item
  // reduction over fixed item chunks on the worker pool, partials merged
  // in ascending chunk order on this thread.
  constexpr std::size_t kItemChunk = 64;
  const std::size_t n_chunks =
      result.measured.empty() ? 0 : (result.measured.size() + kItemChunk - 1) / kItemChunk;
  std::vector<std::array<double, 5>> dislike_partial(n_chunks);
  std::vector<double> dislike_partial_total(n_chunks, 0.0);
  std::vector<metrics::HopCounts> hops_partial(n_chunks);
  parallel_chunks(&engine, result.measured.size(), kItemChunk,
                  [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
                    auto& counts = dislike_partial[chunk];
                    counts.fill(0.0);
                    for (std::size_t i = lo; i < hi; ++i) {
                      const ItemIdx item = result.measured[i];
                      const auto& hist = tracker.dislikes_at_liked(item);
                      for (std::size_t bin = 0; bin < hist.size(); ++bin) {
                        const std::size_t clipped = std::min<std::size_t>(bin, 4);
                        counts[clipped] += static_cast<double>(hist[bin]);
                        dislike_partial_total[chunk] += static_cast<double>(hist[bin]);
                      }
                      hops_partial[chunk].accumulate(tracker.hops(item));
                    }
                  });
  std::array<double, 5> dislike_counts{};
  double dislike_total = 0.0;
  for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
    for (std::size_t bin = 0; bin < dislike_counts.size(); ++bin) {
      dislike_counts[bin] += dislike_partial[chunk][bin];
    }
    dislike_total += dislike_partial_total[chunk];
    result.hops_per_item.accumulate(hops_partial[chunk]);
  }
  if (dislike_total > 0.0) {
    for (double& c : dislike_counts) c /= dislike_total;
  }
  result.dislike_fractions = dislike_counts;

  if (!result.measured.empty()) {
    const double inv = 1.0 / static_cast<double>(result.measured.size());
    for (auto* hist : {&result.hops_per_item.forward_like, &result.hops_per_item.infect_like,
                       &result.hops_per_item.forward_dislike,
                       &result.hops_per_item.infect_dislike}) {
      for (double& x : *hist) x *= inv;
    }
  }
  return result;
}

}  // namespace whatsup::analysis
