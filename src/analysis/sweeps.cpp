#include "analysis/sweeps.hpp"

#include <utility>

namespace whatsup::analysis {

RunResult average_runs(std::vector<RunResult> runs) {
  if (runs.empty()) return {};
  RunResult avg = std::move(runs.front());
  const double inv = 1.0 / static_cast<double>(runs.size());
  auto scale0 = [&](auto&&...) {};
  (void)scale0;
  // Accumulate scalars from the remaining trials.
  for (std::size_t t = 1; t < runs.size(); ++t) {
    const RunResult& r = runs[t];
    avg.scores.precision += r.scores.precision;
    avg.scores.recall += r.scores.recall;
    avg.scores.f1 += r.scores.f1;
    avg.news_messages += r.news_messages;
    avg.gossip_messages += r.gossip_messages;
    avg.msgs_per_user += r.msgs_per_user;
    avg.msgs_per_cycle_node += r.msgs_per_cycle_node;
    avg.kbps_total += r.kbps_total;
    avg.kbps_gossip += r.kbps_gossip;
    avg.kbps_beep += r.kbps_beep;
    avg.overlay.lscc_fraction += r.overlay.lscc_fraction;
    avg.overlay.clustering += r.overlay.clustering;
    avg.overlay.components += r.overlay.components;
    for (std::size_t b = 0; b < avg.dislike_fractions.size(); ++b) {
      avg.dislike_fractions[b] += r.dislike_fractions[b];
    }
    avg.hops_per_item.accumulate(r.hops_per_item);
  }
  avg.scores.precision *= inv;
  avg.scores.recall *= inv;
  avg.scores.f1 *= inv;
  avg.news_messages = static_cast<std::size_t>(static_cast<double>(avg.news_messages) * inv);
  avg.gossip_messages =
      static_cast<std::size_t>(static_cast<double>(avg.gossip_messages) * inv);
  avg.msgs_per_user *= inv;
  avg.msgs_per_cycle_node *= inv;
  avg.kbps_total *= inv;
  avg.kbps_gossip *= inv;
  avg.kbps_beep *= inv;
  avg.overlay.lscc_fraction *= inv;
  avg.overlay.clustering *= inv;
  avg.overlay.components =
      static_cast<std::size_t>(static_cast<double>(avg.overlay.components) * inv);
  for (double& b : avg.dislike_fractions) b *= inv;
  for (auto* hist :
       {&avg.hops_per_item.forward_like, &avg.hops_per_item.infect_like,
        &avg.hops_per_item.forward_dislike, &avg.hops_per_item.infect_dislike}) {
    for (double& x : *hist) x *= inv;
  }
  return avg;
}

std::vector<std::vector<SweepCell>> fanout_sweep(const data::Workload& workload,
                                                 const RunConfig& base,
                                                 std::span<const Approach> approaches,
                                                 std::span<const int> fanouts,
                                                 int trials) {
  std::vector<std::vector<SweepCell>> results(approaches.size());
  for (std::size_t a = 0; a < approaches.size(); ++a) {
    results[a].reserve(fanouts.size());
    for (int fanout : fanouts) {
      RunConfig config = base;
      config.approach = approaches[a];
      config.fanout = fanout;
      std::vector<RunResult> runs;
      runs.reserve(static_cast<std::size_t>(trials));
      for (int t = 0; t < trials; ++t) {
        config.seed = base.seed + static_cast<std::uint64_t>(t) * 1000003ULL;
        runs.push_back(run_protocol(workload, config));
      }
      results[a].push_back(SweepCell{fanout, average_runs(std::move(runs))});
    }
  }
  return results;
}

}  // namespace whatsup::analysis
