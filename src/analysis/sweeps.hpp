// Parameter sweeps: fanout scans across approaches (Figs. 3, 4, 8, 9) with
// optional multi-seed averaging.
#pragma once

#include <span>
#include <vector>

#include "analysis/runner.hpp"

namespace whatsup::analysis {

struct SweepCell {
  int fanout = 0;
  RunResult result;  // trial-averaged scalars live in `scores` etc.
};

// results[a][f] = run of approaches[a] at fanouts[f]. When trials > 1 the
// scalar fields (scores, message counts, overlay stats) are averaged over
// `trials` seeds; vector-valued fields come from the first trial.
std::vector<std::vector<SweepCell>> fanout_sweep(const data::Workload& workload,
                                                 const RunConfig& base,
                                                 std::span<const Approach> approaches,
                                                 std::span<const int> fanouts,
                                                 int trials = 1);

// Averages the scalar summary statistics of several runs (same config,
// different seeds) into `into`.
RunResult average_runs(std::vector<RunResult> runs);

}  // namespace whatsup::analysis
