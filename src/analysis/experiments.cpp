#include "analysis/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <stdexcept>

#include "baselines/cpubsub.hpp"
#include "baselines/cwhatsup.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dataset/digg.hpp"
#include "dataset/survey.hpp"
#include "dataset/synthetic.hpp"
#include "scenario/executor.hpp"
#include "sim/engine.hpp"
#include "whatsup/node.hpp"

namespace whatsup::analysis {

namespace {

std::size_t scaled(std::size_t base, double scale, std::size_t min_value = 1) {
  return std::max<std::size_t>(
      min_value, static_cast<std::size_t>(std::lround(static_cast<double>(base) * scale)));
}

}  // namespace

data::Workload standard_workload(const std::string& name, std::uint64_t seed,
                                 double scale) {
  Rng rng(seed ^ 0xda7a5e7ULL);
  if (name == "synthetic") {
    data::SyntheticConfig config;
    config.n_authors = scaled(config.n_authors, scale, 120);
    config.max_community = scaled(config.max_community, scale, 40);
    config.min_community = std::max<std::size_t>(8, scaled(config.min_community, scale, 8));
    config.total_items = scaled(config.total_items, scale, 105);
    return data::make_synthetic(config, rng);
  }
  if (name == "digg") {
    data::DiggConfig config;
    config.users = scaled(config.users, scale, 60);
    config.items = scaled(config.items, scale, 100);
    return data::make_digg(config, rng);
  }
  if (name == "survey") {
    data::SurveyConfig config;
    // Scale acts on the replication factor (the paper's ×4) and leaves the
    // base survey population untouched.
    config.replication = scaled(config.replication, scale, 1);
    return data::make_survey(config, rng);
  }
  throw std::invalid_argument("unknown workload: " + name);
}

RunConfig default_run_config(std::uint64_t seed) {
  RunConfig config;
  config.seed = seed;
  return config;
}

// ---------------------------------------------------------------------------
// Fig. 7 dynamics
// ---------------------------------------------------------------------------

DynamicsSeries run_dynamics(const data::Workload& base_workload, Metric metric,
                            std::uint64_t seed, Cycle event_cycle, Cycle total_cycles,
                            int trials, unsigned threads) {
  DynamicsSeries out;
  const auto cycles = static_cast<std::size_t>(total_cycles);
  out.cycle.resize(cycles);
  for (std::size_t c = 0; c < cycles; ++c) out.cycle[c] = static_cast<double>(c);
  out.ref_sim.assign(cycles, 0.0);
  out.join_sim.assign(cycles, 0.0);
  out.change_sim.assign(cycles, 0.0);
  out.ref_liked.assign(cycles, 0.0);
  out.join_liked.assign(cycles, 0.0);
  out.change_liked.assign(cycles, 0.0);

  for (int trial = 0; trial < trials; ++trial) {
    data::Workload workload = base_workload;
    Rng rng(seed + static_cast<std::uint64_t>(trial) * 7919ULL);
    workload.schedule_publications(3, total_cycles - 10, rng);

    const std::size_t n = workload.num_users();
    const NodeId joiner = static_cast<NodeId>(n);
    const NodeId reference = static_cast<NodeId>(rng.index(n));
    NodeId changer_a = static_cast<NodeId>(rng.index(n));
    while (changer_a == reference) changer_a = static_cast<NodeId>(rng.index(n));
    NodeId changer_b = static_cast<NodeId>(rng.index(n));
    while (changer_b == reference || changer_b == changer_a) {
      changer_b = static_cast<NodeId>(rng.index(n));
    }

    sim::Engine::Config engine_config;
    engine_config.seed = rng.next_u64();
    engine_config.threads = threads;
    sim::Engine engine(engine_config);

    WorkloadOpinions ground_truth(workload);
    sim::MutableOpinions opinions(ground_truth);

    WhatsUpConfig wu;
    wu.metric = metric;
    // BOOTSTRAP phase: construction + RPS seeding per shard on the worker
    // pool, each node drawing peers from its own bootstrap stream (the
    // factory writes into pre-sized slots, so concurrent trials of the
    // same shape stay bit-identical for any thread count).
    std::vector<WhatsUpAgent*> agents(n + 1, nullptr);
    engine.bootstrap(n + 1, [&](NodeId v, Rng& boot_rng) -> std::unique_ptr<sim::Agent> {
      auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
      agents[v] = agent.get();
      if (v < n) {  // the joining node starts offline and unseeded (§V-C)
        std::vector<net::Descriptor> view_seed;
        view_seed.reserve(static_cast<std::size_t>(wu.params.rps_view_size));
        for (int i = 0; i < wu.params.rps_view_size; ++i) {
          NodeId peer = v;
          while (peer == v) peer = static_cast<NodeId>(boot_rng.index(n));
          view_seed.push_back(net::Descriptor{peer, -1, nullptr});
        }
        agent->bootstrap_rps(std::move(view_seed));
      }
      return agent;
    });
    engine.set_active(joiner, false);

    // The §V-C events as a declarative scenario timeline: the joiner
    // comes up as a clone of the reference user (cold-starting from a
    // random contact via the hook below) and the chosen pair swaps
    // interests — both at the event cycle, in this order. The executor
    // replaces the bespoke per-trial event code this driver used to
    // carry (scenario/executor.hpp).
    scenario::Timeline timeline;
    timeline.name = "fig7-dynamics";
    timeline.at(event_cycle, scenario::JoinClone{joiner, reference});
    timeline.at(event_cycle, scenario::SwapPair{changer_a, changer_b});
    scenario::Executor executor(timeline, engine, workload, &opinions, rng.next_u64());
    executor.register_adversaries();
    executor.hooks().cold_start = [&agents](sim::Engine& eng, NodeId who,
                                            NodeId contact) {
      sim::Context ctx(eng, who);
      agents[who]->cold_start_from(ctx, *agents[contact]);
    };

    metrics::Tracker tracker(n, workload.num_items());
    tracker.attach(engine);
    tracker.track_node(reference);
    tracker.track_node(joiner);
    tracker.track_node(changer_a);

    std::map<Cycle, std::vector<ItemIdx>> calendar;
    for (const data::NewsSpec& spec : workload.news) {
      calendar[spec.publish_at].push_back(spec.index);
    }

    for (Cycle c = 0; c < total_cycles; ++c) {
      executor.begin_cycle(c);
      if (const auto it = calendar.find(c); it != calendar.end()) {
        for (ItemIdx item : it->second) {
          engine.publish(workload.news[item].source, item, workload.news[item].id);
        }
      }
      engine.run_cycle();
      const auto cc = static_cast<std::size_t>(c);
      out.ref_sim[cc] += agents[reference]->avg_wup_similarity();
      out.join_sim[cc] += engine.is_active(joiner) ? agents[joiner]->avg_wup_similarity() : 0.0;
      out.change_sim[cc] += agents[changer_a]->avg_wup_similarity();
    }
    auto add_series = [cycles](std::vector<double>& into,
                               const std::vector<std::uint32_t>& from) {
      for (std::size_t c = 0; c < cycles && c < from.size(); ++c) {
        into[c] += static_cast<double>(from[c]);
      }
    };
    add_series(out.ref_liked, tracker.liked_series(reference));
    add_series(out.join_liked, tracker.liked_series(joiner));
    add_series(out.change_liked, tracker.liked_series(changer_a));
  }

  const double inv = 1.0 / static_cast<double>(std::max(trials, 1));
  for (auto* series : {&out.ref_sim, &out.join_sim, &out.change_sim, &out.ref_liked,
                       &out.join_liked, &out.change_liked}) {
    for (double& x : *series) x *= inv;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

void print_table1(std::ostream& os, std::uint64_t seed, double scale) {
  Table table({"Name", "Number of users", "Number of news", "Topics", "Mean popularity"});
  for (const std::string name : {"synthetic", "digg", "survey"}) {
    const data::Workload w = standard_workload(name, seed, scale);
    RunningStat pop;
    for (ItemIdx i = 0; i < w.num_items(); ++i) pop.add(w.popularity(i));
    table.add_row({w.name, std::to_string(w.num_users()), std::to_string(w.num_items()),
                   std::to_string(w.n_topics), fixed(pop.mean(), 3)});
  }
  table.print(os, "Table I: Summary of the workloads (paper: 3180/2000, 750/2500, 480/1000)");
}

void print_table2(std::ostream& os) {
  Params params;
  params.to_table().print(os, "Table II: WhatsUp parameters - on each node");
}

namespace {

void add_perf_row(Table& table, const std::string& label, const RunResult& r) {
  table.add_row({label, fixed(r.scores.precision, 2), fixed(r.scores.recall, 2),
                 fixed(r.scores.f1, 2), si_count(r.msgs_per_user)});
}

RunResult run_averaged(const data::Workload& w, RunConfig config, int trials) {
  std::vector<RunResult> runs;
  for (int t = 0; t < trials; ++t) {
    RunConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(t) * 1000003ULL;
    runs.push_back(run_protocol(w, c));
  }
  return average_runs(std::move(runs));
}

}  // namespace

void print_table3(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload survey = standard_workload("survey", seed, scale);
  const RunConfig base = default_run_config(seed);

  struct Row {
    std::string label;
    Approach approach;
    int fanout;
  };
  // The paper's per-approach best operating points.
  const Row rows[] = {
      {"Gossip (f=4)", Approach::kGossip, 4},
      {"CF-Cos (k=29)", Approach::kCfCos, 29},
      {"CF-Wup (k=19)", Approach::kCfWup, 19},
      {"WhatsUp-Cos (fLIKE=24)", Approach::kWhatsUpCos, 24},
      {"WhatsUp (fLIKE=10)", Approach::kWhatsUp, 10},
  };
  Table table({"Algorithm", "Precision", "Recall", "F1-Score", "Mess./User"});
  for (const Row& row : rows) {
    RunConfig config = base;
    config.approach = row.approach;
    config.fanout = row.fanout;
    add_perf_row(table, row.label, run_averaged(survey, config, trials));
  }
  table.print(os, "Table III: Survey: best performance of each approach");
}

void print_table4(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload survey = standard_workload("survey", seed, scale);
  RunConfig config = default_run_config(seed);
  config.approach = Approach::kWhatsUp;
  config.fanout = 10;
  const RunResult r = run_averaged(survey, config, trials);
  Table table({"Number of dislikes", "0", "1", "2", "3", "4"});
  table.add_row({"Fraction of news", fixed(r.dislike_fractions[0] * 100, 0) + "%",
                 fixed(r.dislike_fractions[1] * 100, 0) + "%",
                 fixed(r.dislike_fractions[2] * 100, 0) + "%",
                 fixed(r.dislike_fractions[3] * 100, 0) + "%",
                 fixed(r.dislike_fractions[4] * 100, 0) + "%"});
  table.print(os,
              "Table IV: News received and liked via dislike (paper: 54/31/10/3/2%)");
}

void print_table5(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  Table table({"Dataset", "Approach", "Precision", "Recall", "F1-Score", "Messages"});

  {  // Digg: cascading vs WhatsUp.
    const data::Workload digg = standard_workload("digg", seed, scale);
    RunConfig config = default_run_config(seed);
    config.approach = Approach::kCascade;
    const RunResult cascade = run_averaged(digg, config, trials);
    config.approach = Approach::kWhatsUp;
    config.fanout = 15;
    const RunResult whatsup = run_averaged(digg, config, trials);
    table.add_row({"Digg", "Cascade", fixed(cascade.scores.precision, 2),
                   fixed(cascade.scores.recall, 2), fixed(cascade.scores.f1, 2),
                   si_count(static_cast<double>(cascade.news_messages))});
    table.add_row({"Digg", "WhatsUp", fixed(whatsup.scores.precision, 2),
                   fixed(whatsup.scores.recall, 2), fixed(whatsup.scores.f1, 2),
                   si_count(static_cast<double>(whatsup.news_messages +
                                                whatsup.gossip_messages))});
  }
  {  // Survey: C-Pub/Sub vs WhatsUp.
    const data::Workload survey = standard_workload("survey", seed, scale);
    RunConfig config = default_run_config(seed);
    config.approach = Approach::kWhatsUp;
    config.fanout = 10;
    const RunResult whatsup = run_averaged(survey, config, trials);
    const auto cps = baselines::evaluate_cpubsub(
        survey, std::span<const ItemIdx>(whatsup.measured));
    table.add_row({"Survey", "C-Pub/Sub", fixed(cps.precision, 2), fixed(cps.recall, 2),
                   fixed(cps.f1, 2), si_count(static_cast<double>(cps.messages))});
    table.add_row({"Survey", "WhatsUp", fixed(whatsup.scores.precision, 2),
                   fixed(whatsup.scores.recall, 2), fixed(whatsup.scores.f1, 2),
                   si_count(static_cast<double>(whatsup.news_messages +
                                                whatsup.gossip_messages))});
  }
  table.print(os, "Table V: WhatsUp vs C-Pub/Sub and Cascading");
}

void print_table6(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  // The 245-user deployment trace (§V-D/E).
  Rng rng(seed);
  const data::Workload survey =
      standard_workload("survey", seed, scale).subsample_users(245, rng);
  const double losses[] = {0.0, 0.05, 0.20, 0.50};
  const int fanouts[] = {3, 6};
  Table table({"Loss rate", "Fanout", "Recall", "Precision", "F1-Score"});
  for (double loss : losses) {
    for (int fanout : fanouts) {
      RunConfig config = default_run_config(seed);
      config.approach = Approach::kWhatsUp;
      config.fanout = fanout;
      config.network = net::NetworkConfig::lossy(loss);
      const RunResult r = run_averaged(survey, config, trials);
      table.add_row({fixed(loss * 100, 0) + "%", std::to_string(fanout),
                     fixed(r.scores.recall, 2), fixed(r.scores.precision, 2),
                     fixed(r.scores.f1, 2)});
    }
  }
  table.print(os, "Table VI: Survey: Performance versus message-loss rate");
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

namespace {

constexpr Approach kFig3Approaches[] = {Approach::kCfWup, Approach::kCfCos,
                                        Approach::kWhatsUp, Approach::kWhatsUpCos};

std::vector<int> fig3_fanouts(const std::string& dataset) {
  if (dataset == "synthetic") return {5, 10, 15, 20, 25, 30, 35, 40, 45};
  if (dataset == "digg") return {3, 5, 8, 12, 16, 20, 25};
  return {3, 5, 8, 10, 15, 20, 25, 30};
}

}  // namespace

void print_fig3(std::ostream& os, const std::string& dataset, std::uint64_t seed,
                double scale, int trials) {
  const data::Workload w = standard_workload(dataset, seed, scale);
  const auto fanouts = fig3_fanouts(dataset);
  const RunConfig base = default_run_config(seed);
  const auto results = fanout_sweep(w, base, kFig3Approaches, fanouts, trials);

  Series by_fanout("fanout", {"CF-Wup", "CF-Cos", "WhatsUp", "WhatsUp-Cos"});
  for (std::size_t f = 0; f < fanouts.size(); ++f) {
    by_fanout.add(fanouts[f], {results[0][f].result.scores.f1,
                               results[1][f].result.scores.f1,
                               results[2][f].result.scores.f1,
                               results[3][f].result.scores.f1});
  }
  by_fanout.print(os, "Fig 3 (" + w.name + "): F1-Score vs fanout (fLIKE)");

  os << '\n';
  for (std::size_t a = 0; a < std::size(kFig3Approaches); ++a) {
    Series by_msg("messages/cycle/node", {"F1"});
    for (std::size_t f = 0; f < fanouts.size(); ++f) {
      by_msg.add(results[a][f].result.msgs_per_cycle_node,
                 {results[a][f].result.scores.f1});
    }
    by_msg.print(os, "Fig 3 (" + w.name + "): F1-Score vs message cost - " +
                         to_string(kFig3Approaches[a]));
  }
}

void print_fig4(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  const std::vector<int> fanouts = {2, 3, 4, 6, 8, 10, 12};
  const RunConfig base = default_run_config(seed);
  const auto results = fanout_sweep(w, base, kFig3Approaches, fanouts, trials);
  Series series("fanout", {"CF-Wup", "CF-Cos", "WhatsUp", "WhatsUp-Cos"});
  for (std::size_t f = 0; f < fanouts.size(); ++f) {
    series.add(fanouts[f], {results[0][f].result.overlay.lscc_fraction,
                            results[1][f].result.overlay.lscc_fraction,
                            results[2][f].result.overlay.lscc_fraction,
                            results[3][f].result.overlay.lscc_fraction});
  }
  series.print(os, "Fig 4 (survey): fraction of nodes in the largest SCC vs fanout");
  os << "# clustering coefficient at fanout=" << fanouts.back() << ": CF-Wup="
     << fixed(results[0].back().result.overlay.clustering, 2)
     << " CF-Cos=" << fixed(results[1].back().result.overlay.clustering, 2)
     << " WhatsUp=" << fixed(results[2].back().result.overlay.clustering, 2)
     << " WhatsUp-Cos=" << fixed(results[3].back().result.overlay.clustering, 2)
     << " (paper: 0.15 WUP vs 0.40 cosine)\n";
  os << "# weak components at fanout=3: run with --fanout-detail for per-fanout dump\n";
}

void print_fig5(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  Series series("max TTL", {"Precision", "Recall", "F1-Score"});
  for (int ttl = 0; ttl <= 8; ++ttl) {
    RunConfig config = default_run_config(seed);
    config.approach = Approach::kWhatsUp;
    config.fanout = 10;
    config.params.beep_ttl = ttl;
    const RunResult r = run_averaged(w, config, trials);
    series.add(ttl, {r.scores.precision, r.scores.recall, r.scores.f1});
  }
  series.print(os, "Fig 5 (survey): impact of the dislike TTL of BEEP");
}

void print_fig6(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  RunConfig config = default_run_config(seed);
  config.approach = Approach::kWhatsUp;
  config.fanout = 5;  // the paper's fLIKE for this figure
  const RunResult r = run_averaged(w, config, trials);
  const metrics::HopCounts& hops = r.hops_per_item;
  Series series("hops", {"Forward by like", "Infection by like", "Forward by dislike",
                         "Infection by dislike"});
  const std::size_t max_hop = hops.max_hop();
  auto at = [](const std::vector<double>& v, std::size_t h) {
    return h < v.size() ? v[h] : 0.0;
  };
  for (std::size_t h = 0; h < max_hop; ++h) {
    series.add(static_cast<double>(h),
               {at(hops.forward_like, h), at(hops.infect_like, h),
                at(hops.forward_dislike, h), at(hops.infect_dislike, h)});
  }
  series.print(os, "Fig 6 (survey, fLIKE=5): dissemination actions per hop "
                   "(avg per item)");
}

void print_fig7(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  const Cycle event_cycle = 100;
  const Cycle total = 200;
  const DynamicsSeries wup = run_dynamics(w, Metric::kWup, seed, event_cycle, total, trials);
  const DynamicsSeries cos =
      run_dynamics(w, Metric::kCosine, seed, event_cycle, total, trials);

  Series sim_wup("cycle", {"Reference node", "Changing node", "Joining node"});
  Series sim_cos("cycle", {"Reference node", "Changing node", "Joining node"});
  Series liked("cycle", {"Reference node", "Changing node", "Joining node"});
  for (std::size_t c = 0; c < wup.cycle.size(); ++c) {
    sim_wup.add(wup.cycle[c], {wup.ref_sim[c], wup.change_sim[c], wup.join_sim[c]});
    sim_cos.add(cos.cycle[c], {cos.ref_sim[c], cos.change_sim[c], cos.join_sim[c]});
    liked.add(wup.cycle[c], {wup.ref_liked[c], wup.change_liked[c], wup.join_liked[c]});
  }
  sim_wup.print(os, "Fig 7a (survey): similarity in WUP view (WhatsUp), join/switch at cycle 100");
  os << '\n';
  sim_cos.print(os, "Fig 7b (survey): similarity in WUP view (WhatsUp-Cos)");
  os << '\n';
  liked.print(os, "Fig 7c (survey): liked news received per cycle (WhatsUp)");
}

void print_fig8(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  Rng rng(seed);
  const data::Workload w =
      standard_workload("survey", seed, scale).subsample_users(245, rng);
  const std::vector<int> fanouts = {2, 3, 4, 6, 8, 10, 12};

  struct Deployment {
    std::string label;
    net::NetworkConfig network;
  };
  const Deployment deployments[] = {
      {"Simulation", net::NetworkConfig::perfect()},
      {"PlanetLab", net::NetworkConfig::planetlab()},
      {"ModelNet", net::NetworkConfig::modelnet()},
  };

  Series f1("fanout", {"Simulation", "PlanetLab", "ModelNet"});
  Series bandwidth("fanout", {"Total", "WUP", "BEEP"});
  for (std::size_t f = 0; f < fanouts.size(); ++f) {
    std::vector<double> row;
    double kbps_total = 0, kbps_gossip = 0, kbps_beep = 0;
    for (const Deployment& dep : deployments) {
      RunConfig config = default_run_config(seed);
      config.approach = Approach::kWhatsUp;
      config.fanout = fanouts[f];
      config.network = dep.network;
      config.cycle_seconds = 30.0;  // the deployment's 30 s gossip cycle
      const RunResult r = run_averaged(w, config, trials);
      row.push_back(r.scores.f1);
      if (dep.label == "PlanetLab") {
        kbps_total = r.kbps_total;
        kbps_gossip = r.kbps_gossip;
        kbps_beep = r.kbps_beep;
      }
    }
    f1.add(fanouts[f], row);
    bandwidth.add(fanouts[f], {kbps_total, kbps_gossip, kbps_beep});
  }
  f1.print(os, "Fig 8a (survey, 245 users): F1-Score by deployment");
  os << '\n';
  bandwidth.print(os, "Fig 8b (PlanetLab model): bandwidth per node (Kbps)");
}

void print_fig9(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload base = standard_workload("survey", seed, scale);
  const std::vector<int> fanouts = {2, 4, 6, 8, 10, 12, 14};

  Series series("fanout", {"Centralized", "WhatsUp-Cos", "WhatsUp"});
  for (int fanout : fanouts) {
    // Decentralized runs.
    RunConfig config = default_run_config(seed);
    config.fanout = fanout;
    config.approach = Approach::kWhatsUp;
    const RunResult wup = run_averaged(base, config, trials);
    config.approach = Approach::kWhatsUpCos;
    const RunResult cos = run_averaged(base, config, trials);

    // Centralized complete-search variant, same schedule rules.
    data::Workload scheduled = base;
    Rng rng(seed);
    RunConfig sched_cfg = default_run_config(seed);
    scheduled.schedule_publications(sched_cfg.warmup_cycles,
                                    sched_cfg.warmup_cycles + sched_cfg.publish_cycles - 1,
                                    rng);
    baselines::CWhatsUpConfig cw;
    cw.f_like = fanout;
    const auto central = baselines::run_cwhatsup(scheduled, cw, rng);
    std::vector<ItemIdx> measured;
    const Cycle measure_from = sched_cfg.warmup_cycles + sched_cfg.measure_margin;
    for (const data::NewsSpec& spec : scheduled.news) {
      if (spec.publish_at >= measure_from) measured.push_back(spec.index);
    }
    const metrics::Scores central_scores =
        metrics::compute_scores(scheduled, central.reached, measured);

    series.add(fanout, {central_scores.f1, cos.scores.f1, wup.scores.f1});
  }
  series.print(os, "Fig 9 (survey): centralized vs decentralized");
}

void print_fig10(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  (void)trials;  // the per-bucket curves come from single (first-seed) runs
  const data::Workload w = standard_workload("survey", seed, scale);
  RunConfig config = default_run_config(seed);
  config.approach = Approach::kWhatsUp;
  config.fanout = 10;
  const RunResult wup = run_protocol(w, config);
  config.approach = Approach::kCfWup;
  config.fanout = 19;
  const RunResult cf = run_protocol(w, config);

  const auto wup_curve = metrics::recall_by_popularity(
      w, wup.reached, std::span<const ItemIdx>(wup.measured));
  const auto cf_curve = metrics::recall_by_popularity(
      w, cf.reached, std::span<const ItemIdx>(cf.measured));

  Series series("popularity", {"WhatsUp", "CF WUP", "Popularity distribution"});
  for (std::size_t b = 0; b < wup_curve.center.size(); ++b) {
    series.add(wup_curve.center[b],
               {wup_curve.recall[b], cf_curve.recall[b], wup_curve.item_fraction[b]});
  }
  series.print(os, "Fig 10 (survey): recall vs item popularity");
}

void print_fig11(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  (void)trials;
  const data::Workload w = standard_workload("survey", seed, scale);
  RunConfig config = default_run_config(seed);
  config.approach = Approach::kWhatsUp;
  config.fanout = 10;
  const RunResult r = run_protocol(w, config);
  const std::vector<double> soc = metrics::sociability(w);

  constexpr std::size_t kBuckets = 10;
  std::vector<double> f1_sum(kBuckets, 0.0);
  std::vector<std::size_t> node_count(kBuckets, 0);
  std::size_t valid_nodes = 0;
  for (NodeId u = 0; u < w.num_users(); ++u) {
    if (!r.per_user.valid[u]) continue;
    auto b = static_cast<std::size_t>(soc[u] * kBuckets);
    b = std::min(b, kBuckets - 1);
    f1_sum[b] += r.per_user.f1[u];
    ++node_count[b];
    ++valid_nodes;
  }
  Series series("sociability", {"Nodes (avg F1)", "Sociability distribution"});
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double center = (static_cast<double>(b) + 0.5) / kBuckets;
    const double f1 = node_count[b] > 0 ? f1_sum[b] / static_cast<double>(node_count[b]) : 0.0;
    const double frac =
        valid_nodes > 0 ? static_cast<double>(node_count[b]) / static_cast<double>(valid_nodes)
                        : 0.0;
    series.add(center, {f1, frac});
  }
  series.print(os, "Fig 11 (survey): F1-Score vs sociability");
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

void print_ablation_beep(std::ostream& os, std::uint64_t seed, double scale, int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  Table table({"Amplification", "Orientation", "Precision", "Recall", "F1-Score",
               "News msgs"});
  for (bool amplification : {true, false}) {
    for (bool orientation : {true, false}) {
      RunConfig config = default_run_config(seed);
      config.approach = Approach::kWhatsUp;
      config.fanout = 10;
      config.beep_amplification = amplification;
      config.beep_orientation = orientation;
      const RunResult r = run_averaged(w, config, trials);
      table.add_row({amplification ? "on" : "off", orientation ? "on" : "off",
                     fixed(r.scores.precision, 2), fixed(r.scores.recall, 2),
                     fixed(r.scores.f1, 2),
                     si_count(static_cast<double>(r.news_messages))});
    }
  }
  table.print(os, "Ablation: BEEP amplification / orientation (survey, fLIKE=10)");
}

void print_ablation_privacy(std::ostream& os, std::uint64_t seed, double scale,
                            int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  Table table({"Flip prob", "Drop prob", "Deniability", "Precision", "Recall",
               "F1-Score"});
  struct Level {
    double flip;
    double drop;
  };
  const Level levels[] = {{0.0, 0.0}, {0.1, 0.0}, {0.3, 0.0}, {0.5, 0.0},
                          {0.3, 0.2}, {0.0, 0.5}};
  for (const Level& level : levels) {
    RunConfig config = default_run_config(seed);
    config.approach = Approach::kWhatsUp;
    config.fanout = 10;
    config.obfuscation.flip_prob = level.flip;
    config.obfuscation.drop_prob = level.drop;
    const RunResult r = run_averaged(w, config, trials);
    table.add_row({fixed(level.flip, 1), fixed(level.drop, 1),
                   fixed(deniability(config.obfuscation), 2),
                   fixed(r.scores.precision, 2), fixed(r.scores.recall, 2),
                   fixed(r.scores.f1, 2)});
  }
  table.print(os,
              "Privacy extension (§VII): obfuscated gossip profiles "
              "(survey, fLIKE=10)");
}

void print_ablation_metric(std::ostream& os, std::uint64_t seed, double scale,
                           int trials) {
  const data::Workload w = standard_workload("survey", seed, scale);
  Table table({"Metric", "Precision", "Recall", "F1-Score"});
  for (Metric metric : {Metric::kWup, Metric::kCosine, Metric::kJaccard,
                        Metric::kOverlap, Metric::kPearson}) {
    RunConfig config = default_run_config(seed);
    config.approach = Approach::kWhatsUp;
    config.fanout = 10;
    config.metric_override = metric;
    const RunResult r = run_averaged(w, config, trials);
    table.add_row({to_string(metric), fixed(r.scores.precision, 2),
                   fixed(r.scores.recall, 2), fixed(r.scores.f1, 2)});
  }
  table.print(os, "Ablation: similarity metric inside WhatsUp (survey, fLIKE=10)");
}

}  // namespace whatsup::analysis
