// Scoped span tracing into per-thread ring buffers with a Chrome
// trace-event / Perfetto JSON exporter.
//
// Usage at an instrumentation site:
//
//     void Engine::run_cycle() {
//       WUP_TRACE_SCOPE("cycle");
//       ...
//     }
//
// Two gates, independent of the stats registry:
//
//  * Compile-time: the CMake option WHATSUP_TRACING (default ON) defines
//    WHATSUP_TRACING=0 to compile WUP_TRACE_SCOPE to `((void)0)` — zero
//    code, zero data, for builds that want the guarantee rather than the
//    measurement.
//  * Runtime: spans are recorded only between trace_start() and
//    trace_stop(). Inactive cost is one relaxed atomic load and a branch;
//    no clock is read.
//
// Determinism: same contract as the stats registry — recording reads the
// wall clock and writes the calling thread's own ring; it never draws RNG,
// synchronizes, or reorders work, so fixed-seed trajectories are
// bit-identical traced or not.
//
// Rings are bounded (drop-oldest on wrap) and owned by shared_ptr in a
// process-global table, so spans recorded by worker threads survive their
// thread's death (WorkerPool threads die with their Engine) until export.
// Span names must be string literals (or otherwise outlive the session):
// the ring stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#ifndef WHATSUP_TRACING
#define WHATSUP_TRACING 1
#endif

namespace whatsup::obs {

namespace detail {
inline std::atomic<bool> g_tracing_active{false};
void trace_record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);
}  // namespace detail

inline bool tracing_active() {
  return detail::g_tracing_active.load(std::memory_order_relaxed);
}

// Begins a session: clears previously captured spans and opens the gate.
// `ring_capacity` bounds events per thread; oldest spans drop on overflow.
void trace_start(std::size_t ring_capacity = 1 << 16);

// Closes the gate. Captured spans remain available for export.
void trace_stop();

// Writes every captured span as Chrome trace-event JSON (chrome://tracing,
// https://ui.perfetto.dev). Call after trace_stop(); returns the number of
// events written. Timestamps are microseconds relative to trace_start().
std::size_t trace_write_json(std::ostream& out);

// Spans currently buffered across all rings (post-stop bookkeeping/tests).
std::size_t trace_event_count();

class TraceScope {
 public:
  explicit TraceScope(const char* name)
      : name_(name), start_(tracing_active() ? clock_ns() : 0) {}
  ~TraceScope() {
    if (start_ != 0) detail::trace_record(name_, start_, clock_ns() - start_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  static std::uint64_t clock_ns();
  const char* name_;
  std::uint64_t start_;
};

}  // namespace whatsup::obs

#if WHATSUP_TRACING
#define WUP_TRACE_CONCAT2(a, b) a##b
#define WUP_TRACE_CONCAT(a, b) WUP_TRACE_CONCAT2(a, b)
#define WUP_TRACE_SCOPE(name) \
  ::whatsup::obs::TraceScope WUP_TRACE_CONCAT(wup_trace_scope_, __LINE__)(name)
#else
#define WUP_TRACE_SCOPE(name) ((void)0)
#endif
