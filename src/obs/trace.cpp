#include "obs/trace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/registry.hpp"  // now_ns

namespace whatsup::obs {

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

// Per-thread bounded ring. Written by its owner thread only; read at
// export time, after trace_stop() has closed the gate and instrumented
// work has quiesced.
struct TraceRing {
  explicit TraceRing(std::size_t capacity, std::size_t tid)
      : events(capacity), tid(tid) {}

  void record(const char* name, std::uint64_t start, std::uint64_t dur) {
    TraceEvent& e = events[head % events.size()];
    e.name = name;
    e.start_ns = start;
    e.dur_ns = dur;
    ++head;
  }

  std::vector<TraceEvent> events;
  std::size_t head = 0;  // total records; min(head, size) are valid
  std::size_t tid = 0;   // stable export thread id (acquisition order)
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceRing>> rings;  // acquisition order
  std::size_t ring_capacity = 1 << 16;
  std::uint64_t session_t0_ns = 0;
};

TraceState& state() {
  // Leaked: rings must outlive the threads that filled them.
  static TraceState* g = new TraceState();
  return *g;
}

thread_local TraceRing* t_ring = nullptr;
// Sessions invalidate rings by bumping an epoch rather than touching other
// threads' TLS; a thread re-acquires when its cached epoch is stale.
std::atomic<std::uint64_t> g_epoch{0};
thread_local std::uint64_t t_ring_epoch = ~std::uint64_t{0};

TraceRing& local_ring() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto ring = std::make_shared<TraceRing>(s.ring_capacity, s.rings.size());
  t_ring = ring.get();
  t_ring_epoch = g_epoch.load(std::memory_order_relaxed);
  s.rings.push_back(std::move(ring));
  return *t_ring;
}

}  // namespace

std::uint64_t TraceScope::clock_ns() { return now_ns(); }

void detail::trace_record(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns) {
  if (!tracing_active()) return;  // stopped between scope entry and exit
  TraceRing* ring = t_ring;
  if (ring == nullptr ||
      t_ring_epoch != g_epoch.load(std::memory_order_relaxed)) {
    ring = &local_ring();
  }
  ring->record(name, start_ns, dur_ns);
}

void trace_start(std::size_t ring_capacity) {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.rings.clear();  // drop spans from any previous session
    s.ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
    s.session_t0_ns = now_ns();
  }
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_tracing_active.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  detail::g_tracing_active.store(false, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = 0;
  for (const auto& ring : s.rings) {
    n += std::min(ring->head, ring->events.size());
  }
  return n;
}

std::size_t trace_write_json(std::ostream& out) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Emits nanoseconds as a fixed-point microsecond value ("12.345").
  const auto emit_us = [&out](std::uint64_t ns) {
    const std::uint64_t frac = ns % 1000;
    out << (ns / 1000) << '.' << char('0' + frac / 100)
        << char('0' + (frac / 10) % 10) << char('0' + frac % 10);
  };
  std::size_t written = 0;
  for (const auto& ring : s.rings) {
    const std::size_t n = std::min(ring->head, ring->events.size());
    // On wrap, the oldest surviving event sits at `head % size`.
    const std::size_t first = ring->head > ring->events.size()
                                  ? ring->head % ring->events.size()
                                  : 0;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(first + i) % ring->events.size()];
      const std::uint64_t rel_ns =
          e.start_ns >= s.session_t0_ns ? e.start_ns - s.session_t0_ns : 0;
      if (written != 0) out << ",";
      out << "{\"name\":\"" << e.name << "\",\"cat\":\"whatsup\",\"ph\":\"X\""
          << ",\"pid\":0,\"tid\":" << ring->tid << ",\"ts\":";
      emit_us(rel_ns);
      out << ",\"dur\":";
      emit_us(e.dur_ns);
      out << "}";
      ++written;
    }
  }
  out << "]}";
  return written;
}

}  // namespace whatsup::obs
