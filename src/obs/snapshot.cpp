#include "obs/snapshot.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>

#include "metrics/tracker.hpp"
#include "profile/compact.hpp"
#include "sim/engine.hpp"

namespace whatsup::obs {

namespace {

// Metric names contain only [a-z0-9._] today; escape defensively anyway.
void write_escaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

void write_metric_json(std::ostream& out, const MetricValue& m) {
  out << '"';
  write_escaped(out, m.name);
  out << "\":";
  if (m.kind == Kind::kHistogram) {
    out << "{\"count\":" << m.count << ",\"sum\":" << m.sum << ",\"bounds\":[";
    for (std::size_t i = 0; i < m.bounds.size(); ++i) {
      if (i != 0) out << ',';
      out << m.bounds[i];
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < m.buckets.size(); ++i) {
      if (i != 0) out << ',';
      out << m.buckets[i];
    }
    out << "]}";
  } else {
    out << m.value;
  }
}

void write_metrics_object(std::ostream& out, const Snapshot& snap) {
  out << "{\"metrics\":{";
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    if (i != 0) out << ',';
    write_metric_json(out, snap.metrics[i]);
  }
  out << "}}";
}

}  // namespace

Snapshot Snapshot::collect() {
  Snapshot s;
  s.metrics = Registry::instance().merge();
  return s;
}

void Snapshot::set_gauge(std::string_view name, std::uint64_t value,
                         std::string_view unit) {
  // Keep `metrics` sorted by name so absorbed gauges and registry metrics
  // share one canonical order.
  MetricValue v;
  v.name = std::string(name);
  v.kind = Kind::kGauge;
  v.unit = std::string(unit);
  v.value = value;
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), v.name,
      [](const MetricValue& m, const std::string& n) { return m.name < n; });
  if (it != metrics.end() && it->name == v.name) {
    *it = std::move(v);
  } else {
    metrics.insert(it, std::move(v));
  }
}

void Snapshot::absorb(const sim::Engine& engine) {
  const sim::Engine::MemoryStats m = engine.memory_stats();
  set_gauge("engine.mem.mailbox_bytes", m.mailbox_bytes, "bytes");
  set_gauge("engine.mem.payload_bytes", m.payload_bytes, "bytes");
  set_gauge("engine.mem.outbox_bytes", m.outbox_bytes, "bytes");
  set_gauge("engine.mem.pool_bytes", m.pool_bytes, "bytes");
  set_gauge("engine.mem.scratch_bytes", m.scratch_bytes, "bytes");
  set_gauge("engine.mem.arena_bytes", m.arena_bytes, "bytes");
  set_gauge("engine.mem.materialize_slots", m.materialize_slots);
  set_gauge("engine.mem.materialize_bytes_per_thread",
            m.materialize_bytes_per_thread, "bytes");
  set_gauge("engine.mem.total_bytes", m.total(), "bytes");
  const sim::Engine::PoolStats p = engine.descriptor_pool_stats();
  set_gauge("engine.pool.reused", p.reused);
  set_gauge("engine.pool.fresh", p.fresh);
  set_gauge("engine.pool.recycled", p.recycled);
  set_gauge("engine.pool.available", p.available);
}

void Snapshot::absorb(const metrics::Tracker& tracker) {
  set_gauge("tracker.resident_bytes", tracker.resident_bytes(), "bytes");
}

void Snapshot::absorb_arena() {
  const SnapshotArena::Stats a = SnapshotArena::instance().stats();
  set_gauge("arena.entries", a.entries);
  set_gauge("arena.live", a.live);
  set_gauge("arena.interned", a.interned);
  set_gauge("arena.intern_hits", a.reused);
  set_gauge("arena.purged", a.purged);
  set_gauge("arena.blob_resident_bytes", a.blobs.resident_bytes, "bytes");
  set_gauge("arena.stamp_resident_bytes", a.stamps.resident_bytes, "bytes");
}

const MetricValue* Snapshot::find(std::string_view name) const {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
  if (it != metrics.end() && it->name == name) return &*it;
  return nullptr;
}

std::uint64_t Snapshot::value(std::string_view name) const {
  const MetricValue* m = find(name);
  return m != nullptr ? (m->kind == Kind::kHistogram ? m->count : m->value) : 0;
}

void Snapshot::write_json(std::ostream& out) const {
  write_metrics_object(out, *this);
}

void Snapshot::write_text(std::FILE* out, const char* prefix) const {
  std::fputs(prefix, out);
  for (const MetricValue& m : metrics) {
    if (m.kind == Kind::kHistogram) {
      std::fprintf(out, " %s.count=%" PRIu64 " %s.sum=%" PRIu64, m.name.c_str(),
                   m.count, m.name.c_str(), m.sum);
    } else {
      std::fprintf(out, " %s=%" PRIu64, m.name.c_str(), m.value);
    }
  }
  std::fputc('\n', out);
}

void write_stats_json(std::ostream& out, const std::vector<CycleSample>& series,
                      const Snapshot& final_snapshot) {
  out << "{\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"cycle\":" << series[i].cycle << ",\"metrics\":{";
    const Snapshot& s = series[i].snapshot;
    for (std::size_t j = 0; j < s.metrics.size(); ++j) {
      if (j != 0) out << ',';
      write_metric_json(out, s.metrics[j]);
    }
    out << "}}";
  }
  out << "],\"final\":";
  write_metrics_object(out, final_snapshot);
  out << "}";
}

std::uint64_t resident_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::uint64_t>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

Heartbeat::Heartbeat(Cycle total_cycles, Cycle every)
    : total_(total_cycles),
      every_(every > 0 ? every : 1),
      start_ns_(now_ns()),
      rss_gauge_(gauge("run.rss_peak_kib", "KiB")) {}

void Heartbeat::tick(Cycle cycle) {
  const Cycle done = cycle + 1;  // tick fires after the cycle completed
  if (done % every_ != 0 && done != total_) return;
  const std::uint64_t rss = resident_kib();
  gauge_max(rss_gauge_, rss);
  const double elapsed_s =
      static_cast<double>(now_ns() - start_ns_) / 1e9;
  const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0;
  const double eta_s =
      rate > 0 ? static_cast<double>(total_ - done) / rate : 0;
  if (enabled()) {
    // Routed through the registry: message totals come from the merged
    // lanes, not a side channel.
    const Snapshot s = Snapshot::collect();
    std::fprintf(stderr,
                 "[progress] cycle %d/%d  %.1f cyc/s  eta %.0fs  rss %.1f MiB"
                 "  delivered=%" PRIu64 " routed=%" PRIu64 "\n",
                 done, total_, rate, eta_s, static_cast<double>(rss) / 1024.0,
                 s.value("engine.deliver.messages"),
                 s.value("engine.route.messages"));
  } else {
    std::fprintf(stderr,
                 "[progress] cycle %d/%d  %.1f cyc/s  eta %.0fs  rss %.1f MiB\n",
                 done, total_, rate, eta_s, static_cast<double>(rss) / 1024.0);
  }
}

}  // namespace whatsup::obs
