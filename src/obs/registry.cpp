#include "obs/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace whatsup::obs {

namespace {
constexpr std::uint64_t kTimeBoundsNs[] = {
    1'000,       4'000,       16'000,      64'000,        256'000,      1'000'000,
    4'000'000,   16'000'000,  64'000'000,  256'000'000,   1'000'000'000};
}  // namespace

std::span<const std::uint64_t> time_bounds_ns() { return kTimeBoundsNs; }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// All mutable registry state. Guarded by `mutex` except for lane slot
// values, which are written lock-free by their owning thread and read only
// from quiescent points (see header contract).
struct Registry::Impl {
  mutable std::mutex mutex;
  std::vector<Metric> metrics;                   // registration order
  std::uint32_t next_slot = 0;                   // first unassigned lane slot
  std::vector<std::unique_ptr<std::uint64_t[]>> lanes;  // acquisition order
};

Registry& Registry::instance() {
  // Leaked: lanes must outlive every thread that ever acquired one.
  static Registry* g = new Registry();
  return *g;
}

Registry::Impl& Registry::impl() const {
  static Impl* g = new Impl();
  return *g;
}

void set_enabled(bool on) {
  detail::g_stats_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t* detail::acquire_lane_slots() {
  Registry::Impl& impl = Registry::instance().impl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  auto lane = std::make_unique<std::uint64_t[]>(Registry::kMaxSlots);
  std::memset(lane.get(), 0, Registry::kMaxSlots * sizeof(std::uint64_t));
  t_lane_slots = lane.get();
  impl.lanes.push_back(std::move(lane));
  return t_lane_slots;
}

MetricId Registry::register_metric(std::string_view name, Kind kind,
                                   std::span<const std::uint64_t> bounds,
                                   std::string_view unit,
                                   std::uint32_t* index_out) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (std::uint32_t i = 0; i < im.metrics.size(); ++i) {
    const Metric& m = im.metrics[i];
    if (m.name == name) {
      if (m.kind != kind) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      if (index_out != nullptr) *index_out = i;
      return m.offset;
    }
  }
  const std::uint32_t slots =
      kind == Kind::kHistogram ? 2 + static_cast<std::uint32_t>(bounds.size()) + 1
                               : 1;
  if (im.metrics.size() >= kMaxMetrics || im.next_slot + slots > kMaxSlots) {
    throw std::logic_error("obs: metric table full (raise kMaxMetrics/kMaxSlots)");
  }
  Metric m;
  m.name = std::string(name);
  m.unit = std::string(unit);
  m.kind = kind;
  m.offset = im.next_slot;
  m.slots = slots;
  m.bounds.assign(bounds.begin(), bounds.end());
  im.next_slot += slots;
  im.metrics.push_back(std::move(m));
  if (index_out != nullptr) {
    *index_out = static_cast<std::uint32_t>(im.metrics.size()) - 1;
  }
  return im.metrics.back().offset;
}

MetricId counter(std::string_view name, std::string_view unit) {
  return Registry::instance().register_metric(name, Kind::kCounter, {}, unit,
                                              nullptr);
}

MetricId gauge(std::string_view name, std::string_view unit) {
  return Registry::instance().register_metric(name, Kind::kGauge, {}, unit,
                                              nullptr);
}

HistogramId histogram(std::string_view name, std::span<const std::uint64_t> bounds,
                      std::string_view unit) {
  HistogramId h;
  h.offset = Registry::instance().register_metric(name, Kind::kHistogram, bounds,
                                                  unit, &h.index);
  return h;
}

void observe(HistogramId h, std::uint64_t value) {
  if (!enabled()) return;
  std::uint64_t* slots = detail::t_lane_slots;
  if (slots == nullptr) [[unlikely]] slots = detail::acquire_lane_slots();
  Registry::Impl& im = Registry::instance().impl();
  // Metric entries are immutable once registered and h.index came from a
  // completed registration, so this read needs no lock.
  const Registry::Metric& m = im.metrics[h.index];
  slots[h.offset] += 1;          // count
  slots[h.offset + 1] += value;  // sum
  std::size_t b = 0;
  while (b < m.bounds.size() && value > m.bounds[b]) ++b;
  slots[h.offset + 2 + b] += 1;
}

std::vector<MetricValue> Registry::merge() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  std::vector<MetricValue> out;
  out.reserve(im.metrics.size());
  for (const Metric& m : im.metrics) {
    MetricValue v;
    v.name = m.name;
    v.kind = m.kind;
    v.unit = m.unit;
    if (m.kind == Kind::kHistogram) {
      v.bounds = m.bounds;
      v.buckets.assign(m.bounds.size() + 1, 0);
    }
    for (const auto& lane : im.lanes) {
      const std::uint64_t* slots = lane.get();
      switch (m.kind) {
        case Kind::kCounter:
          v.value += slots[m.offset];
          break;
        case Kind::kGauge:
          v.value = std::max(v.value, slots[m.offset]);
          break;
        case Kind::kHistogram:
          v.count += slots[m.offset];
          v.sum += slots[m.offset + 1];
          for (std::size_t b = 0; b < v.buckets.size(); ++b) {
            v.buckets[b] += slots[m.offset + 2 + b];
          }
          break;
      }
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (const auto& lane : im.lanes) {
    std::memset(lane.get(), 0, kMaxSlots * sizeof(std::uint64_t));
  }
}

std::size_t Registry::lanes() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.lanes.size();
}

std::size_t Registry::metrics() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.metrics.size();
}

}  // namespace whatsup::obs
