// Unified telemetry snapshot and emission surfaces.
//
// `Snapshot` is the one reporting path for run-level numbers: the merged
// stats registry plus the pre-existing one-off sources absorbed as gauges
// (`Engine::memory_stats()`, `Tracker::resident_bytes()`, per-shard
// `descriptor_pool` stats, `SnapshotArena::stats()`). Consumers — the
// `--stats-json` writer, the WHATSUP_MEM_STATS dump, run_bench.sh's stats
// summary — all read the same structure.
//
// `RunOptions` carries the observability knobs through `RunConfig` into
// `run_protocol`: a stderr heartbeat every N cycles and per-cycle registry
// sampling into a time series. Both are cycle hooks — they run at the
// barrier on the main thread, draw no RNG, and never feed back into the
// simulation, so fixed-seed trajectories are unchanged.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "obs/registry.hpp"

namespace whatsup::sim {
class Engine;
}
namespace whatsup::metrics {
class Tracker;
}

namespace whatsup::obs {

struct Snapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  // Merged view of every registry lane (canonical order).
  static Snapshot collect();

  // One-off sources, absorbed as gauges so they ride the same pipe.
  void absorb(const sim::Engine& engine);      // engine.mem.* + engine.pool.*
  void absorb(const metrics::Tracker& tracker);  // tracker.resident_bytes
  void absorb_arena();                         // arena.* (SnapshotArena)

  void set_gauge(std::string_view name, std::uint64_t value,
                 std::string_view unit = "");

  const MetricValue* find(std::string_view name) const;
  std::uint64_t value(std::string_view name) const;  // 0 when absent

  // {"metrics": {...}} — histograms as {count, sum, bounds, buckets}.
  void write_json(std::ostream& out) const;
  // Single `prefix k=v k=v ...` line (the WHATSUP_MEM_STATS format).
  void write_text(std::FILE* out, const char* prefix) const;
};

// One sampled point of the per-cycle time series.
struct CycleSample {
  Cycle cycle = 0;
  Snapshot snapshot;
};

// {"series": [{"cycle": c, "metrics": {...}}...], "final": {...}}
void write_stats_json(std::ostream& out, const std::vector<CycleSample>& series,
                      const Snapshot& final_snapshot);

// Observability knobs carried by analysis::RunConfig.
struct RunOptions {
  Cycle progress_every = 0;  // heartbeat to stderr every N cycles (0 = off)
  Cycle stats_every = 0;     // sample the registry every N cycles (0 = off)
  bool enable_stats = false; // turn the registry on even without sampling

  bool enabled() const {
    return enable_stats || stats_every > 0 || progress_every > 0;
  }
};

// Resident set size from /proc/self/status, in KiB (0 if unavailable).
std::uint64_t resident_kib();

// Prints `[progress] cycle C/T  R cyc/s  eta Es  rss M MiB` to stderr every
// `every` cycles, plus registry-backed message totals when stats are on.
class Heartbeat {
 public:
  Heartbeat(Cycle total_cycles, Cycle every);
  void tick(Cycle cycle);  // call once per completed cycle

 private:
  Cycle total_;
  Cycle every_;
  std::uint64_t start_ns_;
  MetricId rss_gauge_;
};

}  // namespace whatsup::obs
