// Deterministic telemetry registry: typed counters, gauges and fixed-bucket
// histograms accumulated per-thread without locks.
//
// Design contract (the reason this file exists at all): enabling telemetry
// must NEVER change a fixed-seed trajectory. Every rule below serves that:
//
//  * No RNG draws anywhere in this subsystem.
//  * No ordering effects: each thread writes only its own lane (a flat
//    array of u64 slots reached through a `thread_local` pointer), so
//    instrumented code performs no synchronization and takes no locks on
//    the hot path. Which thread executed which shard becomes irrelevant at
//    merge time because every merge operator is commutative and
//    associative over u64 (counters/histograms: wrapping sum; gauges: max).
//  * Merges happen only between phases on a quiescent thread (the cycle
//    barrier, end of run, a cycle hook) — `WorkerPool::run`'s completion
//    handshake establishes the happens-before edge that makes the lane
//    reads race-free.
//  * The disabled path is one relaxed atomic load and a predictable
//    branch; no clocks are read and no TLS is touched, so `--stats` off
//    costs nothing measurable even at scratch-lookup call rates (~1e8
//    calls per macro run).
//
// Canonical output: `Registry::snapshot()` merges lanes in acquisition
// order and emits metrics sorted by name, so two runs that performed the
// same work produce byte-identical stats regardless of thread scheduling.
//
// Registration is idempotent by name and cheap enough to hide behind a
// function-local static at each instrumentation site. Metric storage is
// fixed-capacity (kMaxMetrics / kMaxSlots): slots are assigned once under
// the registry mutex and lanes never reallocate, so readers index without
// synchronization hazards.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace whatsup::obs {

// A metric id IS the metric's slot offset within every lane, so the
// enabled hot path is `lane[id] += v` with no indirection.
using MetricId = std::uint32_t;

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

// Histograms need their bucket bounds at observe time; the id carries the
// metric index so the (out-of-line) observe can find them.
struct HistogramId {
  MetricId offset = 0;       // slot offset of [count, sum, buckets...]
  std::uint32_t index = 0;   // index into the registry's metric table
};

namespace detail {
// Stats master switch. Relaxed is sufficient: the flag only gates whether
// lanes are written, never what the simulation does.
inline std::atomic<bool> g_stats_enabled{false};
// Owning thread's slot array; set on first use via acquire_lane_slots().
inline thread_local std::uint64_t* t_lane_slots = nullptr;
// Out-of-line cold path: registers this thread's lane with the registry.
std::uint64_t* acquire_lane_slots();
}  // namespace detail

inline bool enabled() {
  return detail::g_stats_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// --- registration (idempotent by name; throws on kind mismatch) ---------
MetricId counter(std::string_view name, std::string_view unit = "");
MetricId gauge(std::string_view name, std::string_view unit = "");
HistogramId histogram(std::string_view name, std::span<const std::uint64_t> bounds,
                      std::string_view unit = "");

// Shared bucket bounds for wall-time histograms: 1us .. 1s, x4 per bucket,
// plus an implicit overflow bucket.
std::span<const std::uint64_t> time_bounds_ns();

// --- hot path -----------------------------------------------------------
inline void add(MetricId id, std::uint64_t v = 1) {
  if (!enabled()) return;
  std::uint64_t* slots = detail::t_lane_slots;
  if (slots == nullptr) [[unlikely]] slots = detail::acquire_lane_slots();
  slots[id] += v;
}

inline void gauge_max(MetricId id, std::uint64_t v) {
  if (!enabled()) return;
  std::uint64_t* slots = detail::t_lane_slots;
  if (slots == nullptr) [[unlikely]] slots = detail::acquire_lane_slots();
  if (v > slots[id]) slots[id] = v;
}

// Buckets are upper-inclusive: value <= bounds[i] lands in bucket i; the
// final bucket counts overflow. Out of line — histogram sites fire per
// shard/per barrier slot, not per message.
void observe(HistogramId h, std::uint64_t value);

// Monotonic wall clock in nanoseconds. Telemetry-only: readings feed
// metrics and traces, never simulation decisions.
std::uint64_t now_ns();

// Times a scope into a wall-time histogram; reads no clock when disabled.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(HistogramId h) : h_(h), start_(enabled() ? now_ns() : 0) {}
  ~ScopedTimerNs() {
    if (start_ != 0) observe(h_, now_ns() - start_);
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  HistogramId h_;
  std::uint64_t start_;
};

// --- merged output ------------------------------------------------------
struct MetricValue {
  std::string name;
  Kind kind = Kind::kCounter;
  std::string unit;
  std::uint64_t value = 0;  // counter total / gauge max
  // Histogram only:
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
};

class Registry {
 public:
  // Leaked singleton (same pattern as profile::SnapshotArena): lanes are
  // reachable until process exit, so worker threads that died with their
  // Engine still contribute their totals to later merges.
  static Registry& instance();

  // Canonical merge of every lane; metrics sorted by name. Call only from
  // a thread that is quiescent with respect to instrumented workers.
  std::vector<MetricValue> merge() const;

  // Zeroes every lane slot (counts from dead threads included). Same
  // quiescence requirement as merge().
  void reset();

  std::size_t lanes() const;
  std::size_t metrics() const;

  // Capacity of the fixed metric/slot tables; exceeding either throws at
  // registration time (a programming error, not a runtime condition).
  static constexpr std::size_t kMaxMetrics = 192;
  static constexpr std::size_t kMaxSlots = 2048;

 private:
  Registry() = default;
  friend MetricId counter(std::string_view, std::string_view);
  friend MetricId gauge(std::string_view, std::string_view);
  friend HistogramId histogram(std::string_view, std::span<const std::uint64_t>,
                               std::string_view);
  friend void observe(HistogramId, std::uint64_t);
  friend std::uint64_t* detail::acquire_lane_slots();

  struct Metric {
    std::string name;
    std::string unit;
    Kind kind = Kind::kCounter;
    std::uint32_t offset = 0;  // first lane slot
    std::uint32_t slots = 1;   // 1, or 2 + buckets for histograms
    std::vector<std::uint64_t> bounds;
  };

  MetricId register_metric(std::string_view name, Kind kind,
                           std::span<const std::uint64_t> bounds,
                           std::string_view unit, std::uint32_t* index_out);

  struct Impl;
  Impl& impl() const;
};

}  // namespace whatsup::obs
