#include "common/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace whatsup {
namespace {

TEST(DynBitset, SetTestReset) {
  DynBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_FALSE(bits.test(63));
  bits.set(63);
  bits.set(64);
  bits.set(0);
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(0));
  EXPECT_FALSE(bits.test(1));
  bits.reset(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(DynBitset, CountAndAny) {
  DynBitset bits(130);
  EXPECT_FALSE(bits.any());
  EXPECT_EQ(bits.count(), 0u);
  for (std::size_t i = 0; i < 130; i += 13) bits.set(i);
  EXPECT_TRUE(bits.any());
  EXPECT_EQ(bits.count(), 10u);
  bits.clear();
  EXPECT_FALSE(bits.any());
}

TEST(DynBitset, SetWiseCounts) {
  DynBitset a(200), b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.set(i);    // evens: 100
  for (std::size_t i = 0; i < 200; i += 3) b.set(i);    // multiples of 3: 67
  EXPECT_EQ(a.intersect_count(b), 34u);                 // multiples of 6
  EXPECT_EQ(a.union_count(b), 100u + 67u - 34u);
  EXPECT_EQ(a.difference_count(b), 100u - 34u);
  EXPECT_EQ(b.difference_count(a), 67u - 34u);
}

TEST(DynBitset, ForEachSetVisitsExactlySetBits) {
  DynBitset bits(300);
  const std::vector<std::size_t> expected = {0, 1, 63, 64, 65, 128, 299};
  for (std::size_t i : expected) bits.set(i);
  std::vector<std::size_t> seen;
  bits.for_each_set([&seen](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(bits.indices(), expected);
}

TEST(DynBitset, ResizeClears) {
  DynBitset bits(10);
  bits.set(3);
  bits.resize(20);
  EXPECT_EQ(bits.size(), 20u);
  EXPECT_EQ(bits.count(), 0u);
}

TEST(DynBitset, EqualityComparesContent) {
  DynBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(DynBitset, NonMultipleOf64Sizes) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 127u}) {
    DynBitset bits(n);
    bits.set(n - 1);
    EXPECT_TRUE(bits.test(n - 1));
    EXPECT_EQ(bits.count(), 1u);
  }
}

}  // namespace
}  // namespace whatsup
