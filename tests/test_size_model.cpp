#include "net/size_model.hpp"

#include <gtest/gtest.h>

namespace whatsup::net {
namespace {

Profile profile_with(std::size_t entries) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) p.set(i + 1, 0, 1.0);
  return p;
}

TEST(SizeModel, DescriptorGrowsWithProfile) {
  const SizeModel model;
  const Descriptor empty{1, 0, nullptr};
  EXPECT_EQ(model.descriptor_bytes(empty), model.descriptor_base);
  const Descriptor loaded = make_descriptor(1, 0, profile_with(10));
  EXPECT_EQ(model.descriptor_bytes(loaded),
            model.descriptor_base + 10 * model.profile_entry);
}

TEST(SizeModel, ViewMessageSumsDescriptors) {
  const SizeModel model;
  Message m;
  m.type = MsgType::kRpsRequest;
  ViewPayload payload;
  payload.sender = make_descriptor(0, 0, profile_with(3));
  payload.view.push_back(make_descriptor(1, 0, profile_with(2)));
  payload.view.push_back(Descriptor{2, 0, nullptr});
  m.payload = payload;
  const std::size_t expected = model.transport_header + model.app_header +
                               (model.descriptor_base + 3 * model.profile_entry) +
                               (model.descriptor_base + 2 * model.profile_entry) +
                               model.descriptor_base;
  EXPECT_EQ(model.bytes(m), expected);
}

TEST(SizeModel, NewsMessageCarriesItemProfile) {
  const SizeModel model;
  Message m;
  m.type = MsgType::kNews;
  NewsPayload news;
  news.item_profile = profile_with(7);
  m.payload = news;
  EXPECT_EQ(model.bytes(m), model.transport_header + model.app_header + model.news_base +
                                model.news_meta + 7 * model.item_profile_entry);
}

TEST(SizeModel, NewsHeavierThanEmptyGossip) {
  const SizeModel model;
  Message news;
  news.type = MsgType::kNews;
  news.payload = NewsPayload{};
  Message gossip;
  gossip.type = MsgType::kWupRequest;
  gossip.payload = ViewPayload{};
  EXPECT_GT(model.bytes(news), model.bytes(gossip));
}

TEST(Protocols, MessageTypeMapping) {
  EXPECT_EQ(protocol_of(MsgType::kRpsRequest), Protocol::kRps);
  EXPECT_EQ(protocol_of(MsgType::kRpsReply), Protocol::kRps);
  EXPECT_EQ(protocol_of(MsgType::kWupRequest), Protocol::kWup);
  EXPECT_EQ(protocol_of(MsgType::kWupReply), Protocol::kWup);
  EXPECT_EQ(protocol_of(MsgType::kNews), Protocol::kBeep);
  EXPECT_EQ(to_string(MsgType::kNews), "news");
  EXPECT_EQ(to_string(Protocol::kWup), "wup");
}

}  // namespace
}  // namespace whatsup::net
