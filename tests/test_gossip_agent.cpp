#include "baselines/gossip_agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "whatsup_test_utils.hpp"

namespace whatsup::baselines {
namespace {

using whatsup::testing::CaptureAgent;
using whatsup::testing::FixedOpinions;

net::Message news_to(NodeId from, NodeId to, ItemIdx index) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.type = net::MsgType::kNews;
  net::NewsPayload payload;
  payload.index = index;
  payload.id = 10000 + index;
  m.payload = payload;
  return m;
}

struct GossipFixture {
  GossipFixture() : engine({17, {}, {}}) {
    for (int i = 0; i < 3; ++i) {
      auto sink = std::make_unique<CaptureAgent>();
      sinks.push_back(sink.get());
      engine.add_agent(std::move(sink));
    }
    auto agent = std::make_unique<GossipAgent>(3, /*fanout=*/3, /*rps_view_size=*/8,
                                               /*rps_period=*/1 << 20, opinions);
    node = agent.get();
    engine.add_agent(std::move(agent));
    node->bootstrap_rps({net::Descriptor{0, 0, nullptr}, net::Descriptor{1, 0, nullptr},
                         net::Descriptor{2, 0, nullptr}});
  }
  sim::Engine engine;
  FixedOpinions opinions;
  std::vector<CaptureAgent*> sinks;
  GossipAgent* node = nullptr;
};

TEST(GossipAgent, ForwardsRegardlessOfDislike) {
  GossipFixture fx;  // node 3 dislikes everything by default
  fx.engine.send(news_to(0, 3, 5));
  fx.engine.run_cycles(3);
  std::size_t delivered = 0;
  for (auto* sink : fx.sinks) delivered += sink->news.size();
  EXPECT_EQ(delivered, 3u);  // homogeneous gossip is opinion-blind
}

TEST(GossipAgent, ForwardsWhenLikedToo) {
  GossipFixture fx;
  fx.opinions.like(3, 5);
  fx.engine.send(news_to(0, 3, 5));
  fx.engine.run_cycles(3);
  std::size_t delivered = 0;
  for (auto* sink : fx.sinks) delivered += sink->news.size();
  EXPECT_EQ(delivered, 3u);
}

TEST(GossipAgent, InfectAndDieForwardsOnlyOnce) {
  GossipFixture fx;
  fx.engine.send(news_to(0, 3, 5));
  fx.engine.send(news_to(1, 3, 5));  // duplicate
  fx.engine.run_cycles(3);
  std::size_t delivered = 0;
  for (auto* sink : fx.sinks) delivered += sink->news.size();
  EXPECT_EQ(delivered, 3u);
}

TEST(GossipAgent, PublishSpreadsToFanoutPeers) {
  GossipFixture fx;
  fx.engine.publish(3, 9, 10009);
  fx.engine.run_cycles(3);
  std::size_t delivered = 0;
  for (auto* sink : fx.sinks) delivered += sink->news.size();
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(fx.sinks[0]->news.empty() ? fx.sinks[1]->news[0].hops
                                      : fx.sinks[0]->news[0].hops,
            1);
}

TEST(GossipAgent, FanoutClampedToViewSize) {
  sim::Engine engine({18, {}, {}});
  FixedOpinions opinions;
  auto sink = std::make_unique<CaptureAgent>();
  CaptureAgent* sink_ptr = sink.get();
  engine.add_agent(std::move(sink));
  auto agent = std::make_unique<GossipAgent>(1, /*fanout=*/10, 8, 1 << 20, opinions);
  GossipAgent* node = agent.get();
  engine.add_agent(std::move(agent));
  node->bootstrap_rps({net::Descriptor{0, 0, nullptr}});
  engine.send(news_to(0, 1, 4));
  engine.run_cycles(3);
  EXPECT_EQ(sink_ptr->news.size(), 1u);
}

}  // namespace
}  // namespace whatsup::baselines
