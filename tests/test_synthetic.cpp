#include "dataset/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace whatsup::data {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig config;
  config.n_authors = 400;
  config.communities = 6;
  config.min_community = 20;
  config.max_community = 150;
  config.total_items = 120;
  return config;
}

TEST(Synthetic, BasicShape) {
  Rng rng(1);
  const Workload w = make_synthetic(small_config(), rng);
  EXPECT_NO_THROW(w.validate());
  EXPECT_GT(w.num_users(), 200u);
  EXPECT_GT(w.num_items(), 60u);
  EXPECT_GE(w.n_topics, 3u);
  EXPECT_FALSE(w.social.has_value());
}

TEST(Synthetic, ItemsLikedByExactlyOneCommunity) {
  Rng rng(2);
  const Workload w = make_synthetic(small_config(), rng);
  // Two items of the same topic have identical audiences; items of
  // different topics have disjoint audiences (clearly separated interests).
  for (ItemIdx a = 0; a < w.num_items(); a += 7) {
    for (ItemIdx b = a + 1; b < w.num_items(); b += 11) {
      const auto common = w.interested(a).intersect_count(w.interested(b));
      if (w.topic_of(a) == w.topic_of(b)) {
        EXPECT_EQ(common, w.interested(a).count());
      } else {
        EXPECT_EQ(common, 0u);
      }
    }
  }
}

TEST(Synthetic, EveryUserBelongsToOneCommunity) {
  Rng rng(3);
  const Workload w = make_synthetic(small_config(), rng);
  std::vector<std::size_t> liked_topics(w.num_users(), 0);
  std::vector<std::set<int>> topics(w.num_users());
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    w.interested(i).for_each_set(
        [&](std::size_t u) { topics[u].insert(w.topic_of(i)); });
  }
  for (NodeId u = 0; u < w.num_users(); ++u) {
    EXPECT_LE(topics[u].size(), 1u) << "user " << u;
  }
}

TEST(Synthetic, SourcesBelongToTheItemCommunity) {
  Rng rng(4);
  const Workload w = make_synthetic(small_config(), rng);
  for (const NewsSpec& spec : w.news) {
    EXPECT_TRUE(w.likes(spec.source, spec.index));
  }
}

TEST(Synthetic, PaperScaleProducesTableIShape) {
  Rng rng(5);
  SyntheticConfig config;  // paper-scale defaults
  const Workload w = make_synthetic(config, rng);
  // Table I: 3180 users (we keep all detected-community members, ~3.7k),
  // ~2000 items, 21 communities.
  EXPECT_GT(w.num_users(), 2500u);
  EXPECT_LT(w.num_users(), 4200u);
  EXPECT_GT(w.num_items(), 1500u);
  EXPECT_LE(w.num_items(), 2200u);
  EXPECT_GE(w.n_topics, 10u);
  EXPECT_LE(w.n_topics, 40u);
}

TEST(Synthetic, DeterministicForSameSeed) {
  Rng rng_a(7), rng_b(7);
  const Workload a = make_synthetic(small_config(), rng_a);
  const Workload b = make_synthetic(small_config(), rng_b);
  EXPECT_EQ(a.num_users(), b.num_users());
  EXPECT_EQ(a.num_items(), b.num_items());
  for (ItemIdx i = 0; i < a.num_items(); ++i) {
    EXPECT_EQ(a.news[i].source, b.news[i].source);
  }
}

}  // namespace
}  // namespace whatsup::data
