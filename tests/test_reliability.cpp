// Reliability layer: dedup-log and retransmit-queue unit semantics
// (backoff schedule, retry exhaustion, ack loss, overflow), engine-level
// crash/recovery, Gilbert–Elliott bursty loss, view hygiene, and the
// headline robustness claim — under ~20% bursty loss, enabling the
// ack/retransmit layer strictly improves recall over fire-and-forget BEEP.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "gossip/hygiene.hpp"
#include "sim/engine.hpp"
#include "sim/reliability.hpp"
#include "whatsup/node.hpp"

namespace whatsup {
namespace {

// ---- DedupLog -------------------------------------------------------------

TEST(DedupLog, DetectsExactCopyRepeats) {
  sim::DedupLog log(8);
  EXPECT_FALSE(log.seen_or_insert(101, 2));
  EXPECT_TRUE(log.seen_or_insert(101, 2));  // same (item, hop): duplicate
  EXPECT_FALSE(log.seen_or_insert(101, 3));  // same item, other hop: fresh copy
  EXPECT_FALSE(log.seen_or_insert(202, 2));
  EXPECT_EQ(log.size(), 3u);
}

TEST(DedupLog, EvictsFifoAtCapacity) {
  sim::DedupLog log(2);
  EXPECT_FALSE(log.seen_or_insert(1, 0));
  EXPECT_FALSE(log.seen_or_insert(2, 0));
  EXPECT_FALSE(log.seen_or_insert(3, 0));  // evicts (1, 0)
  EXPECT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.seen_or_insert(1, 0));  // forgotten, re-inserted
  EXPECT_TRUE(log.seen_or_insert(3, 0));   // still remembered
}

TEST(DedupLog, ClearForgetsEverything) {
  sim::DedupLog log(4);
  log.seen_or_insert(7, 1);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.seen_or_insert(7, 1));
}

// ---- RetransmitQueue ------------------------------------------------------

net::NewsPayload news_of(ItemId id) {
  net::NewsPayload news;
  news.id = id;
  news.index = static_cast<ItemIdx>(id);
  return news;
}

sim::ReliabilityConfig fast_config() {
  sim::ReliabilityConfig config;
  config.enabled = true;
  config.ack_timeout = 2;
  config.backoff = 2.0;
  config.max_timeout = 8;
  config.max_retries = 2;
  return config;
}

TEST(RetransmitQueue, AckClearsPendingEntry) {
  sim::RetransmitQueue queue(fast_config());
  queue.track(0, 5, news_of(77));
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_TRUE(queue.ack(5, 77));
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().acked, 1u);
  // Late ack of an already-cleared entry is a no-op, not an error.
  EXPECT_FALSE(queue.ack(5, 77));
}

TEST(RetransmitQueue, BackoffDoublesUpToCapAndRetriesExhaust) {
  sim::RetransmitQueue queue(fast_config());
  Rng rng = Rng(1).fork(2);  // jitter stream; any fixed stream works
  queue.track(0, 9, news_of(42));
  std::vector<NodeId> expired;

  // Nothing due before the first timeout.
  EXPECT_TRUE(queue.collect_due(1, rng, &expired).empty());
  // First timeout at cycle 2: one resend, timeout backs off to 4.
  auto due = queue.collect_due(2, rng, &expired);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].to, 9u);
  EXPECT_EQ(due[0].news.id, 42u);
  // Second resend comes 4 (+jitter 0..1) cycles later, not before.
  EXPECT_TRUE(queue.collect_due(4, rng, &expired).empty());
  due = queue.collect_due(7, rng, &expired);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(queue.stats().retransmits, 2u);
  // Retries exhausted: the next due surfaces the target and drops the
  // entry instead of resending again.
  EXPECT_TRUE(expired.empty());
  due = queue.collect_due(40, rng, &expired);
  EXPECT_TRUE(due.empty());
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 9u);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().expired, 1u);
}

TEST(RetransmitQueue, LostAckIsRecoveredByLaterAck) {
  // The receiver acks every receipt, so even if the first ack is lost the
  // retransmission provokes a second one — which must still clear the
  // (by then backed-off) entry.
  sim::RetransmitQueue queue(fast_config());
  Rng rng = Rng(3).fork(7);
  queue.track(0, 4, news_of(11));
  ASSERT_EQ(queue.collect_due(2, rng, nullptr).size(), 1u);  // resend
  EXPECT_TRUE(queue.ack(4, 11));  // ack of the retransmitted copy
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_TRUE(queue.collect_due(40, rng, nullptr).empty());
  EXPECT_EQ(queue.stats().expired, 0u);
}

TEST(RetransmitQueue, QueueLimitEvictsOldestAndDropTargetPurges) {
  sim::ReliabilityConfig config = fast_config();
  config.queue_limit = 2;
  sim::RetransmitQueue queue(config);
  queue.track(0, 1, news_of(1));
  queue.track(0, 2, news_of(2));
  queue.track(0, 3, news_of(3));  // evicts the (1, 1) entry
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_EQ(queue.stats().overflowed, 1u);
  EXPECT_FALSE(queue.ack(1, 1));
  EXPECT_EQ(queue.drop_target(2), 1u);
  EXPECT_EQ(queue.pending(), 1u);
}

// ---- ViewHygiene ----------------------------------------------------------

net::Descriptor bare(NodeId node, Cycle ts) { return net::Descriptor{node, ts, nullptr}; }

TEST(ViewHygiene, SuspicionCrossesLimitUnlessAbsolved) {
  gossip::ViewHygiene hygiene({.max_age = 0, .suspicion_limit = 3});
  EXPECT_FALSE(hygiene.report_failure(7));
  EXPECT_FALSE(hygiene.report_failure(7));
  hygiene.absolve(7);  // evidence of life resets the count
  EXPECT_FALSE(hygiene.report_failure(7));
  EXPECT_FALSE(hygiene.report_failure(7));
  EXPECT_TRUE(hygiene.report_failure(7));
  // Eviction clears the counter: a re-discovered peer starts clean.
  EXPECT_EQ(hygiene.suspicion(7), 0);
}

TEST(ViewHygiene, EvictStaleKeepsFreshestEntry) {
  gossip::ViewHygiene hygiene({.max_age = 5, .suspicion_limit = 0});
  gossip::View view(8);
  view.insert_or_refresh(bare(1, 0));
  view.insert_or_refresh(bare(2, 3));
  view.insert_or_refresh(bare(3, 10));
  EXPECT_EQ(hygiene.evict_stale(view, 20), 2u);  // cutoff 15: all stale…
  EXPECT_EQ(view.size(), 1u);                    // …but the freshest survives
  EXPECT_TRUE(view.contains(3));
  // No-op when everything is fresh enough.
  EXPECT_EQ(hygiene.evict_stale(view, 12), 0u);
}

// ---- Engine crash / recovery ----------------------------------------------

struct RecoverProbe : sim::Agent {
  int recoveries = 0;
  int received = 0;
  void on_cycle(sim::Context&) override {}
  void on_message(sim::Context&, const net::Message&) override { ++received; }
  void publish(sim::Context&, ItemIdx, ItemId) override {}
  void on_recover(sim::Context&) override { ++recoveries; }
};

net::Message news_message(NodeId from, NodeId to) {
  net::Message message;
  message.from = from;
  message.to = to;
  message.type = net::MsgType::kNews;
  message.payload = net::NewsPayload{};
  return message;
}

TEST(EngineCrash, CrashRecoverInvokesHookAndChurnDoesNot) {
  sim::Engine engine(sim::Engine::Config{.seed = 5});
  std::vector<RecoverProbe*> probes;
  for (int i = 0; i < 4; ++i) {
    auto probe = std::make_unique<RecoverProbe>();
    probes.push_back(probe.get());
    engine.add_agent(std::move(probe));
  }
  // Crash with scheduled recovery: inactive + crashed until the cycle
  // arrives, then reactivated through on_recover.
  engine.crash(1, /*recover_at=*/2);
  EXPECT_FALSE(engine.is_active(1));
  EXPECT_TRUE(engine.is_crashed(1));
  engine.run_cycle();  // cycle 0
  engine.run_cycle();  // cycle 1
  EXPECT_TRUE(engine.is_crashed(1));
  engine.run_cycle();  // cycle 2: recovery fires at the cycle start
  EXPECT_TRUE(engine.is_active(1));
  EXPECT_FALSE(engine.is_crashed(1));
  EXPECT_EQ(probes[1]->recoveries, 1);
  // Crash-stop: no recovery ever fires.
  engine.crash(2);
  engine.run_cycle();
  EXPECT_TRUE(engine.is_crashed(2));
  EXPECT_EQ(probes[2]->recoveries, 0);
  // Churn-style reactivation clears the crash flag WITHOUT the hook.
  engine.set_active(2, true);
  EXPECT_FALSE(engine.is_crashed(2));
  EXPECT_EQ(probes[2]->recoveries, 0);
  // In-flight messages to a crashed node are lost, not queued.
  engine.crash(3);
  engine.send(news_message(0, 3));
  engine.run_cycle();
  engine.run_cycle();
  EXPECT_EQ(probes[3]->received, 0);
}

// ---- Gilbert–Elliott bursty loss ------------------------------------------

struct CountingAgent : sim::Agent {
  int received = 0;
  void on_cycle(sim::Context&) override {}
  void on_message(sim::Context&, const net::Message&) override { ++received; }
  void publish(sim::Context&, ItemIdx, ItemId) override {}
};

TEST(BurstLoss, BadStateDropsAndChainIsDeterministic) {
  // p_enter = 1 forces every link into the bad state from cycle 1 on;
  // loss_bad = 1 then drops everything, while cycle-0 sends (chains start
  // in the good state with loss_good = 0) get through.
  const auto run = [](std::uint64_t seed) {
    net::NetworkConfig network;
    network.burst.p_enter = 1.0;
    network.burst.p_exit = 1e-9;
    network.burst.loss_bad = 1.0;
    sim::Engine engine(sim::Engine::Config{.seed = seed, .network = network});
    engine.add_agent(std::make_unique<CountingAgent>());
    auto sink_owner = std::make_unique<CountingAgent>();
    CountingAgent* sink = sink_owner.get();
    engine.add_agent(std::move(sink_owner));
    const auto send_one = [&engine]() { engine.send(news_message(0, 1)); };
    send_one();          // cycle 0: good state, delivered
    engine.run_cycle();  // now 1
    for (int i = 0; i < 5; ++i) {
      send_one();  // bad state from cycle 1 on: dropped
      engine.run_cycle();
    }
    return sink->received;
  };
  EXPECT_EQ(run(9), 1);
  EXPECT_EQ(run(9), run(9));  // chain is a pure function of the seed
}

// ---- End-to-end robustness ------------------------------------------------

data::Workload hostile_workload(std::uint64_t seed) {
  Rng rng(seed);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 80;
  sc.replication = 2;
  return data::make_survey(sc, rng);
}

// The acceptance claim of the reliability layer: under ~20% average bursty
// loss (stationary bad fraction 1/2 at loss_bad 0.4), ack/retransmit
// strictly improves recall over fire-and-forget BEEP.
TEST(Reliability, RetransmitsRecoverRecallUnderBurstyLoss) {
  const data::Workload workload = hostile_workload(17);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.seed = 23;
  config.network.burst.p_enter = 0.2;
  config.network.burst.p_exit = 0.2;
  config.network.burst.loss_bad = 0.4;
  config.threads = 2;

  const analysis::RunResult plain = analysis::run_protocol(workload, config);
  config.reliability.enabled = true;
  const analysis::RunResult reliable = analysis::run_protocol(workload, config);

  EXPECT_GT(reliable.scores.recall, plain.scores.recall)
      << "plain=" << plain.scores.recall << " reliable=" << reliable.scores.recall;
  // The layer actually worked for its recall: copies were tracked, some
  // acks came back, and timeouts drove retransmissions.
  EXPECT_GT(reliable.reliability.tracked, 0u);
  EXPECT_GT(reliable.reliability.acked, 0u);
  EXPECT_GT(reliable.reliability.retransmits, 0u);
  EXPECT_GT(reliable.reliability.ack_messages, 0u);
  // The fire-and-forget run pays none of the control overhead.
  EXPECT_EQ(plain.reliability.tracked, 0u);
  EXPECT_EQ(plain.reliability.ack_messages, 0u);
}

// Crash-recovery end to end: a WhatsUp node crashes mid-run, recovers via
// the rejoin handshake, and ends up with a repopulated RPS view.
TEST(Reliability, CrashedWhatsUpNodeRejoinsWithFreshViews) {
  const data::Workload workload = hostile_workload(3);
  analysis::WorkloadOpinions opinions(workload);
  sim::Engine engine(sim::Engine::Config{.seed = 41});
  WhatsUpConfig wu;
  wu.reliability.enabled = true;
  const std::size_t n = workload.num_users();
  Rng rng(77);
  std::vector<WhatsUpAgent*> agents;
  for (NodeId v = 0; v < n; ++v) {
    auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
    agents.push_back(agent.get());
    engine.add_agent(std::move(agent));
  }
  for (NodeId v = 0; v < n; ++v) {
    std::vector<net::Descriptor> seed_view;
    for (int i = 0; i < wu.params.rps_view_size; ++i) {
      NodeId peer = v;
      while (peer == v) peer = static_cast<NodeId>(rng.index(n));
      seed_view.push_back(net::Descriptor{peer, -1, nullptr});
    }
    agents[v]->bootstrap_rps(std::move(seed_view));
  }
  for (int c = 0; c < 5; ++c) engine.run_cycle();
  ASSERT_GT(agents[7]->rps_view().size(), 0u);
  engine.crash(7, /*recover_at=*/9);
  for (int c = 0; c < 4; ++c) engine.run_cycle();  // cycles 5..8
  EXPECT_TRUE(engine.is_crashed(7));
  // Recovery at cycle 9 clears the views and fires the rejoin request; the
  // contact's kRejoinReply lands a cycle later and repopulates the view.
  for (int c = 0; c < 4; ++c) engine.run_cycle();
  EXPECT_FALSE(engine.is_crashed(7));
  EXPECT_TRUE(engine.is_active(7));
  EXPECT_GT(agents[7]->rps_view().size(), 0u);
}

}  // namespace
}  // namespace whatsup
