#include "profile/obfuscation.hpp"

#include <gtest/gtest.h>

namespace whatsup {
namespace {

Profile big_profile(std::size_t n) {
  Profile p;
  for (std::size_t i = 0; i < n; ++i) p.set(i + 1, 0, i % 2 == 0 ? 1.0 : 0.0);
  return p;
}

TEST(Obfuscation, DisabledIsIdentity) {
  const Profile p = big_profile(20);
  const ObfuscationConfig config;  // all zeros
  EXPECT_FALSE(config.enabled());
  EXPECT_EQ(obfuscate_profile(p, config, 1, 5), p);
}

TEST(Obfuscation, DropRateRemovesEntries) {
  const Profile p = big_profile(2000);
  ObfuscationConfig config;
  config.drop_prob = 0.5;
  const Profile out = obfuscate_profile(p, config, 1, 0);
  EXPECT_NEAR(static_cast<double>(out.size()), 1000.0, 120.0);
}

TEST(Obfuscation, FlipRateChangesScores) {
  const Profile p = big_profile(2000);
  ObfuscationConfig config;
  config.flip_prob = 0.4;
  const Profile out = obfuscate_profile(p, config, 1, 0);
  EXPECT_EQ(out.size(), p.size());  // nothing dropped
  std::size_t changed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (out.score(p.ids()[i]).value() != p.scores()[i]) ++changed;
  }
  // flip 0.4 × coin 0.5 -> ~20% visibly changed.
  EXPECT_NEAR(static_cast<double>(changed) / 2000.0, 0.2, 0.05);
}

TEST(Obfuscation, StableWithinEpochFreshAcrossEpochs) {
  const Profile p = big_profile(500);
  ObfuscationConfig config;
  config.flip_prob = 0.5;
  config.epoch_length = 10;
  const Profile a = obfuscate_profile(p, config, 1, 3);
  const Profile b = obfuscate_profile(p, config, 1, 7);   // same epoch
  const Profile c = obfuscate_profile(p, config, 1, 13);  // next epoch
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Obfuscation, DifferentNodesDifferentNoise) {
  const Profile p = big_profile(500);
  ObfuscationConfig config;
  config.flip_prob = 0.5;
  EXPECT_NE(obfuscate_profile(p, config, 1, 0), obfuscate_profile(p, config, 2, 0));
}

TEST(Obfuscation, DeniabilityFormula) {
  ObfuscationConfig config;
  EXPECT_EQ(deniability(config), 0.0);
  config.flip_prob = 0.4;
  EXPECT_DOUBLE_EQ(deniability(config), 0.2);
  config.drop_prob = 0.5;
  EXPECT_DOUBLE_EQ(deniability(config), 0.5 + 0.5 * 0.2);
}

TEST(Obfuscation, TimestampsPreserved) {
  Profile p;
  p.set(1, 42, 1.0);
  ObfuscationConfig config;
  config.flip_prob = 1.0;  // always rerolled
  const Profile out = obfuscate_profile(p, config, 1, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.find(1)->timestamp, 42);
}

}  // namespace
}  // namespace whatsup
