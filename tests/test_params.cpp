#include "whatsup/params.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace whatsup {
namespace {

TEST(Params, PaperDefaults) {
  const Params p;  // Table II
  EXPECT_EQ(p.rps_view_size, 30);
  EXPECT_EQ(p.beep_ttl, 4);
  EXPECT_EQ(p.profile_window, 13);
  EXPECT_EQ(p.f_dislike, 1);
  EXPECT_EQ(p.cold_start_items, 3);
}

TEST(Params, WupViewDefaultsToTwiceFLike) {
  Params p;
  p.f_like = 7;
  EXPECT_EQ(p.effective_wup_view_size(), 14);
  p.wup_view_size = 5;  // explicit override wins
  EXPECT_EQ(p.effective_wup_view_size(), 5);
}

TEST(Params, TableListsEveryParameter) {
  std::ostringstream os;
  Params().to_table().print(os, "Table II");
  const std::string out = os.str();
  for (const char* key : {"RPSvs", "RPSf", "WUPvs", "Profile window", "BEEP TTL",
                          "fLIKE", "fDISLIKE"}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  EXPECT_NE(out.find("2*fLIKE"), std::string::npos);
}

}  // namespace
}  // namespace whatsup
