// CSR StaticGraph (graph/static_graph.hpp): builder contract plus
// property tests asserting the CSR ports of scc / weak_components /
// avg_clustering_coefficient match the legacy Digraph implementations on
// graph::generators random instances.
#include "graph/static_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "graph/clustering.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"

namespace whatsup::graph {
namespace {

// Overlay-shaped random digraph: every node draws `k` random out-edges
// (duplicates and self-draws allowed, to exercise dedupe and the
// self-loop filter — exactly what a gossip view dump produces).
Digraph random_view_digraph(std::size_t n, std::size_t k, Rng& rng) {
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < k; ++i) {
      g.add_edge(v, static_cast<NodeId>(rng.index(n)));
    }
  }
  return g;
}

Digraph directed_copy(const UGraph& u) {
  Digraph g(u.num_nodes());
  for (NodeId v = 0; v < u.num_nodes(); ++v) {
    for (const NodeId w : u.neighbors(v)) g.add_edge(v, w);
  }
  return g;
}

void expect_same_analysis(const Digraph& legacy_raw) {
  Digraph legacy = legacy_raw;
  legacy.dedupe();
  const StaticGraph csr = StaticGraph::from_digraph(legacy_raw);

  ASSERT_EQ(csr.num_nodes(), legacy.num_nodes());
  ASSERT_EQ(csr.num_edges(), legacy.num_edges());
  for (NodeId v = 0; v < legacy.num_nodes(); ++v) {
    const auto want = legacy.out(v);
    const auto got = csr.out(v);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
        << "row " << v;
  }

  const SccResult scc_legacy = strongly_connected_components(legacy);
  const SccResult scc_csr = strongly_connected_components(csr);
  EXPECT_EQ(scc_legacy.count, scc_csr.count);
  EXPECT_EQ(scc_legacy.largest, scc_csr.largest);
  EXPECT_EQ(scc_legacy.component, scc_csr.component);
  EXPECT_EQ(largest_scc_fraction(legacy), largest_scc_fraction(csr));

  const ComponentsResult wc_legacy = weak_components(legacy);
  const ComponentsResult wc_csr = weak_components(csr);
  EXPECT_EQ(wc_legacy.count, wc_csr.count);
  EXPECT_EQ(wc_legacy.largest, wc_csr.largest);
  EXPECT_EQ(wc_legacy.component, wc_csr.component);

  // Same closure sets, same iteration order, same summation order:
  // exact double equality, not an approximation.
  EXPECT_EQ(avg_clustering_coefficient(legacy), avg_clustering_coefficient(csr));
}

TEST(StaticGraph, EmptyAndSingleton) {
  const StaticGraph empty = StaticGraph::from_digraph(Digraph(0));
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_EQ(empty.num_edges(), 0u);
  EXPECT_EQ(largest_scc_fraction(empty), 0.0);

  const StaticGraph one = StaticGraph::from_digraph(Digraph(1));
  EXPECT_EQ(one.num_nodes(), 1u);
  EXPECT_EQ(one.out(0).size(), 0u);
  EXPECT_EQ(weak_components(one).count, 1u);
}

TEST(StaticGraph, BuilderDropsSelfLoopsDuplicatesAndSlack) {
  StaticGraph::Builder b(3);
  b.set_degree(0, 6);  // deliberate over-reservation
  b.set_degree(1, 2);
  b.set_degree(2, 1);
  b.finish_degrees();
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  b.add_edge(0, 0);  // self-loop: ignored
  b.add_edge(0, 2);  // duplicate: deduped
  b.add_edge(1, 0);
  b.add_edge(2, 1);
  b.dedupe_rows(0, 3);
  const StaticGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 4u);
  ASSERT_EQ(g.out(0).size(), 2u);
  EXPECT_EQ(g.out(0)[0], 1u);  // sorted
  EXPECT_EQ(g.out(0)[1], 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 1u);
}

TEST(StaticGraph, BuilderChunkedDedupeMatchesWholeGraphDedupe) {
  // dedupe_rows over disjoint partitions (how the overlay collection
  // calls it from worker chunks) must equal one whole-range call.
  Rng rng(7);
  const Digraph raw = random_view_digraph(97, 5, rng);
  const StaticGraph whole = StaticGraph::from_digraph(raw);

  StaticGraph::Builder b(raw.num_nodes());
  for (NodeId v = 0; v < raw.num_nodes(); ++v) b.set_degree(v, raw.out(v).size());
  b.finish_degrees();
  for (NodeId v = 0; v < raw.num_nodes(); ++v) {
    for (const NodeId w : raw.out(v)) b.add_edge(v, w);
  }
  for (NodeId lo = 0; lo < raw.num_nodes(); lo += 10) {
    b.dedupe_rows(lo, std::min<NodeId>(lo + 10, static_cast<NodeId>(raw.num_nodes())));
  }
  const StaticGraph chunked = b.build();
  ASSERT_EQ(chunked.num_edges(), whole.num_edges());
  for (NodeId v = 0; v < whole.num_nodes(); ++v) {
    const auto a = whole.out(v);
    const auto c = chunked.out(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), c.begin(), c.end()));
  }
}

TEST(StaticGraphProperty, MatchesDigraphOnRandomViewOverlays) {
  Rng rng(20260731);
  for (const std::size_t n : {2u, 17u, 64u, 300u}) {
    for (const std::size_t k : {1u, 4u, 12u}) {
      expect_same_analysis(random_view_digraph(n, k, rng));
    }
  }
}

TEST(StaticGraphProperty, MatchesDigraphOnErdosRenyi) {
  Rng rng(42);
  for (const double p : {0.01, 0.05, 0.2}) {
    expect_same_analysis(directed_copy(erdos_renyi(120, p, rng)));
  }
}

TEST(StaticGraphProperty, MatchesDigraphOnWattsStrogatzAndBarabasiAlbert) {
  Rng rng(99);
  expect_same_analysis(directed_copy(watts_strogatz(150, 6, 0.1, rng)));
  expect_same_analysis(directed_copy(barabasi_albert(150, 3, rng)));
}

TEST(StaticGraphProperty, MatchesDigraphOnPlantedPartition) {
  Rng rng(5);
  std::vector<int> membership;
  const std::vector<std::size_t> sizes{40, 35, 25};
  expect_same_analysis(
      directed_copy(planted_partition(sizes, 0.3, 0.02, rng, membership)));
}

}  // namespace
}  // namespace whatsup::graph
