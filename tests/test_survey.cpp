#include "dataset/survey.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace whatsup::data {
namespace {

TEST(Survey, PaperScaleMatchesTableI) {
  Rng rng(1);
  const SurveyConfig config;  // defaults = Table I
  const Workload w = make_survey(config, rng);
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.num_users(), 480u);
  EXPECT_EQ(w.num_items(), 1000u);
}

TEST(Survey, ReplicationMakesExactCopies) {
  Rng rng(2);
  SurveyConfig config;
  config.base_users = 30;
  config.base_items = 40;
  config.replication = 3;
  const Workload w = make_survey(config, rng);
  EXPECT_EQ(w.num_users(), 90u);
  EXPECT_EQ(w.num_items(), 120u);
  // Instance (u, r) likes instance (i, s) iff base u likes base i: compare
  // replica blocks of the interest bitsets.
  for (ItemIdx i = 0; i < 40; ++i) {
    for (std::size_t s = 1; s < 3; ++s) {
      const ItemIdx replica = static_cast<ItemIdx>(s * 40 + i);
      EXPECT_EQ(w.interested(i), w.interested(replica)) << "item " << i;
    }
    for (NodeId u = 0; u < 30; ++u) {
      for (std::size_t r = 1; r < 3; ++r) {
        EXPECT_EQ(w.likes(u, i), w.likes(static_cast<NodeId>(r * 30 + u), i));
      }
    }
  }
}

TEST(Survey, MeanPopularityNearGossipPrecisionAnchor) {
  Rng rng(3);
  const SurveyConfig config;
  const Workload w = make_survey(config, rng);
  RunningStat pop;
  for (ItemIdx i = 0; i < w.num_items(); ++i) pop.add(w.popularity(i));
  // Table III anchors homogeneous-gossip precision at 0.35 — the mean item
  // popularity of the survey.
  EXPECT_GT(pop.mean(), 0.25);
  EXPECT_LT(pop.mean(), 0.45);
}

TEST(Survey, PopularitySpreadMatchesFig10Shape) {
  Rng rng(4);
  const SurveyConfig config;
  const Workload w = make_survey(config, rng);
  std::size_t low = 0, high = 0;
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    const double p = w.popularity(i);
    low += p < 0.5;
    high += p >= 0.8;
  }
  // Fig. 10: mass concentrated below 0.5 with a thin popular tail.
  EXPECT_GT(low, w.num_items() / 2);
  EXPECT_LT(high, w.num_items() / 5);
  EXPECT_GT(high, 0u);
}

TEST(Survey, EveryItemHasAFan) {
  Rng rng(5);
  SurveyConfig config;
  config.base_users = 25;
  config.base_items = 60;
  const Workload w = make_survey(config, rng);
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    EXPECT_GT(w.interested(i).count(), 0u);
  }
}

TEST(Survey, UsersHaveHeterogeneousTastes) {
  Rng rng(6);
  const SurveyConfig config;
  const Workload w = make_survey(config, rng);
  // Per-user like counts should spread out (sociability axis of Fig. 11).
  RunningStat likes_per_user;
  std::vector<std::size_t> count(w.num_users(), 0);
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    w.interested(i).for_each_set([&](std::size_t u) { ++count[u]; });
  }
  for (std::size_t c : count) likes_per_user.add(static_cast<double>(c));
  EXPECT_GT(likes_per_user.stddev(), 20.0);
}

TEST(Survey, DeterministicForSameSeed) {
  Rng a(7), b(7);
  SurveyConfig config;
  config.base_users = 20;
  config.base_items = 30;
  const Workload wa = make_survey(config, a);
  const Workload wb = make_survey(config, b);
  for (ItemIdx i = 0; i < wa.num_items(); ++i) {
    EXPECT_EQ(wa.interested(i), wb.interested(i));
  }
}

}  // namespace
}  // namespace whatsup::data
