#include "baselines/cascade_agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "whatsup_test_utils.hpp"

namespace whatsup::baselines {
namespace {

using whatsup::testing::CaptureAgent;
using whatsup::testing::FixedOpinions;

net::Message news_to(NodeId from, NodeId to, ItemIdx index) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.type = net::MsgType::kNews;
  net::NewsPayload payload;
  payload.index = index;
  payload.id = 40000 + index;
  m.payload = payload;
  return m;
}

struct CascadeFixture {
  CascadeFixture() : engine({31, {}, {}}) {
    for (int i = 0; i < 2; ++i) {
      auto sink = std::make_unique<CaptureAgent>();
      sinks.push_back(sink.get());
      engine.add_agent(std::move(sink));
    }
    auto agent = std::make_unique<CascadeAgent>(2, std::vector<NodeId>{0, 1}, opinions);
    node = agent.get();
    engine.add_agent(std::move(agent));
  }
  sim::Engine engine;
  FixedOpinions opinions;
  std::vector<CaptureAgent*> sinks;
  CascadeAgent* node = nullptr;
};

TEST(CascadeAgent, LikedItemCascadesToAllFriends) {
  CascadeFixture fx;
  fx.opinions.like(2, 1);
  fx.engine.send(news_to(0, 2, 1));
  fx.engine.run_cycles(3);
  for (auto* sink : fx.sinks) {
    ASSERT_EQ(sink->news.size(), 1u);
    EXPECT_EQ(sink->news[0].hops, 1);
  }
}

TEST(CascadeAgent, DislikedItemStops) {
  CascadeFixture fx;
  fx.engine.send(news_to(0, 2, 1));
  fx.engine.run_cycles(3);
  for (auto* sink : fx.sinks) EXPECT_TRUE(sink->news.empty());
}

TEST(CascadeAgent, PublishAlwaysCascades) {
  CascadeFixture fx;
  fx.engine.publish(2, 3, 40003);
  fx.engine.run_cycles(3);
  for (auto* sink : fx.sinks) EXPECT_EQ(sink->news.size(), 1u);
}

TEST(CascadeAgent, DuplicatesDropped) {
  CascadeFixture fx;
  fx.opinions.like(2, 1);
  fx.engine.send(news_to(0, 2, 1));
  fx.engine.send(news_to(1, 2, 1));
  fx.engine.run_cycles(3);
  for (auto* sink : fx.sinks) EXPECT_EQ(sink->news.size(), 1u);
}

TEST(CascadeAgent, NoFriendsNoMessages) {
  sim::Engine engine({32, {}, {}});
  FixedOpinions opinions;
  opinions.like(0, 1);
  auto agent = std::make_unique<CascadeAgent>(0, std::vector<NodeId>{}, opinions);
  engine.add_agent(std::move(agent));
  engine.publish(0, 1, 40001);
  engine.run_cycles(3);
  EXPECT_EQ(engine.traffic().total_messages(), 0u);
}

}  // namespace
}  // namespace whatsup::baselines
