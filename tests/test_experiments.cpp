// Smoke tests for the experiment printers backing the bench binaries:
// every driver must produce non-empty, well-formed output at tiny scale.
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace whatsup::analysis {
namespace {

constexpr std::uint64_t kSeed = 21;
constexpr double kTinyScale = 0.15;

TEST(Experiments, StandardWorkloadFactories) {
  const data::Workload synthetic = standard_workload("synthetic", kSeed, 0.15);
  const data::Workload digg = standard_workload("digg", kSeed, 0.2);
  const data::Workload survey = standard_workload("survey", kSeed, 0.25);
  EXPECT_NO_THROW(synthetic.validate());
  EXPECT_NO_THROW(digg.validate());
  EXPECT_NO_THROW(survey.validate());
  EXPECT_GT(synthetic.num_users(), 50u);
  EXPECT_EQ(digg.num_users(), 150u);
  EXPECT_EQ(survey.num_users(), 120u);  // replication 1
  EXPECT_THROW(standard_workload("nope", kSeed, 1.0), std::invalid_argument);
}

TEST(Experiments, Table1PrintsAllThreeWorkloads) {
  std::ostringstream os;
  print_table1(os, kSeed, kTinyScale);
  const std::string out = os.str();
  EXPECT_NE(out.find("synthetic-arxiv"), std::string::npos);
  EXPECT_NE(out.find("digg"), std::string::npos);
  EXPECT_NE(out.find("survey"), std::string::npos);
}

TEST(Experiments, Table2PrintsParameterSheet) {
  std::ostringstream os;
  print_table2(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("RPSvs"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_NE(out.find("BEEP TTL"), std::string::npos);
}

TEST(Experiments, Table4DislikeDistribution) {
  std::ostringstream os;
  print_table4(os, kSeed, 0.25, 1);
  const std::string out = os.str();
  EXPECT_NE(out.find("Number of dislikes"), std::string::npos);
  EXPECT_NE(out.find('%'), std::string::npos);
}

TEST(Experiments, Fig5TtlSeries) {
  std::ostringstream os;
  print_fig5(os, kSeed, 0.25, 1);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig 5"), std::string::npos);
  EXPECT_NE(out.find("Precision"), std::string::npos);
  // TTL sweep 0..8 -> 9 data rows.
  std::size_t rows = 0;
  for (char c : out) rows += c == '\n';
  EXPECT_GE(rows, 10u);
}

TEST(Experiments, Fig11Sociability) {
  std::ostringstream os;
  print_fig11(os, kSeed, 0.25, 1);
  EXPECT_NE(os.str().find("sociability"), std::string::npos);
}

TEST(Experiments, AblationMetricCoversAllFive) {
  std::ostringstream os;
  print_ablation_metric(os, kSeed, 0.25, 1);
  const std::string out = os.str();
  for (const char* name : {"wup", "cosine", "jaccard", "overlap", "pearson"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(Experiments, DynamicsSeriesShapes) {
  const data::Workload w = standard_workload("survey", kSeed, 0.25);
  const DynamicsSeries series = run_dynamics(w, Metric::kWup, kSeed, 20, 50, 1);
  EXPECT_EQ(series.cycle.size(), 50u);
  EXPECT_EQ(series.join_sim.size(), 50u);
  // Joiner inactive before the event: zero similarity.
  EXPECT_EQ(series.join_sim[5], 0.0);
  // Right after the event the joiner holds the inherited views plus the
  // cold-start profile (alive for >= 2 cycles by the timestamp clamp), so
  // its WUP similarity is positive. Whether it then bootstraps into the
  // overlay for good is a seed lottery — at scale 0.25 most seeds starve
  // the joiner under both the sequential and the sharded scheduler — so
  // the long-run tail is deliberately not asserted here.
  double post = 0.0;
  for (std::size_t c = 20; c < 23; ++c) post += series.join_sim[c];
  EXPECT_GT(post, 0.0);
}

}  // namespace
}  // namespace whatsup::analysis
