#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/components.hpp"

namespace whatsup::graph {
namespace {

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  Rng rng(1);
  const std::size_t n = 500;
  const double p = 0.02;
  const UGraph g = erdos_renyi(n, p, rng);
  const double expected = p * static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.2 * expected);
}

TEST(ErdosRenyi, ZeroProbabilityIsEmpty) {
  Rng rng(1);
  EXPECT_EQ(erdos_renyi(100, 0.0, rng).num_edges(), 0u);
}

TEST(BarabasiAlbert, MinimumDegreeIsM) {
  Rng rng(2);
  const UGraph g = barabasi_albert(300, 4, rng);
  for (NodeId v = 0; v < 300; ++v) EXPECT_GE(g.degree(v), 4u);
  // n*m edges up to the seed clique correction.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 300.0 * 4.0, 40.0);
}

TEST(BarabasiAlbert, ProducesHubs) {
  Rng rng(3);
  const UGraph g = barabasi_albert(1000, 3, rng);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < 1000; ++v) max_degree = std::max(max_degree, g.degree(v));
  // Preferential attachment yields hubs far above the mean degree (6).
  EXPECT_GE(max_degree, 30u);
}

TEST(WattsStrogatz, DegreePreservedWithoutRewiring) {
  Rng rng(4);
  const UGraph g = watts_strogatz(100, 6, 0.0, rng);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(WattsStrogatz, RewiringKeepsEdgeCount) {
  Rng rng(5);
  const UGraph g = watts_strogatz(200, 4, 0.3, rng);
  EXPECT_EQ(g.num_edges(), 400u);
}

TEST(PlantedPartition, IntraDenserThanInter) {
  Rng rng(6);
  std::vector<int> membership;
  const std::vector<std::size_t> sizes = {60, 60};
  const UGraph g = planted_partition(sizes, 0.3, 0.01, rng, membership);
  ASSERT_EQ(membership.size(), 120u);
  std::size_t intra = 0, inter = 0;
  for (const auto& [a, b] : g.edges()) {
    (membership[a] == membership[b] ? intra : inter) += 1;
  }
  EXPECT_GT(intra, inter * 5);
}

TEST(CollaborationGraph, CommunitiesAreDenseAndBridged) {
  Rng rng(7);
  std::vector<int> membership;
  const std::vector<std::size_t> sizes = {80, 80, 80};
  const UGraph g = collaboration_graph(sizes, 2.0, 0.05, rng, membership);
  ASSERT_EQ(g.num_nodes(), 240u);
  std::size_t intra = 0, inter = 0;
  for (const auto& [a, b] : g.edges()) {
    (membership[a] == membership[b] ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 10 * std::max<std::size_t>(inter, 1));
  EXPECT_GT(inter, 0u);  // bridges exist
  // Triangle-based construction yields high local clustering.
}

TEST(CollaborationGraph, TinyCommunitiesStayConnectedAsChains) {
  Rng rng(8);
  std::vector<int> membership;
  const std::vector<std::size_t> sizes = {2, 3};
  const UGraph g = collaboration_graph(sizes, 1.0, 0.0, rng, membership);
  const auto comps = connected_components(g);
  EXPECT_LE(comps.count, 2u);
}

}  // namespace
}  // namespace whatsup::graph
