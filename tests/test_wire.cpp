// Wire-codec contract (net/wire.hpp): every payload kind round-trips
// bit-exactly through the fragment-exchange byte format, truncated input
// is rejected (never read past the buffer, never fabricate a message),
// and the frame layer detects corruption. The socket transport and the
// distributed-smoke CI job both stand on these properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/wire.hpp"
#include "profile/compact.hpp"
#include "profile/profile.hpp"

namespace whatsup::net {
namespace {

Profile binary_profile() {
  Profile p;
  p.set(3, 5, 1.0);
  p.set(17, 6, 0.0);
  p.set(90000, 7, 1.0);
  p.set(90001, -2, 1.0);  // negative timestamp (pre-warmup relative clock)
  return p;
}

Profile real_profile() {
  Profile p;
  p.set(1, 4, 0.25);
  p.set(2, 4, 1.0);  // mixed: one binary-looking score among reals
  p.set(1000000007ULL, 9, 0.6180339887498949);
  return p;
}

// Nine entries: forces a second bit-mask byte on the binary path.
Profile wide_binary_profile() {
  Profile p;
  for (ItemId id = 0; id < 9; ++id) p.set(id * 7 + 1, static_cast<Cycle>(id), id % 2 ? 1.0 : 0.0);
  return p;
}

Profile roundtrip_profile(const Profile& in) {
  std::vector<std::uint8_t> buf;
  encode_profile(buf, in);
  WireReader r(buf.data(), buf.size());
  Profile out;
  EXPECT_TRUE(decode_profile(r, out));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

TEST(Wire, ProfileRoundTripBinaryRealWideEmpty) {
  EXPECT_EQ(roundtrip_profile(binary_profile()), binary_profile());
  EXPECT_EQ(roundtrip_profile(real_profile()), real_profile());
  EXPECT_EQ(roundtrip_profile(wide_binary_profile()), wide_binary_profile());
  EXPECT_EQ(roundtrip_profile(Profile{}), Profile{});
}

TEST(Wire, ProfileScoresRoundTripToTheBit) {
  // Doubles ship as raw bit patterns; the similarity kernels' last-ulp
  // behavior depends on exact equality, not approximate.
  Profile p;
  p.set(1, 0, 0.1);  // not representable exactly in binary
  p.set(2, 0, 1.0 / 3.0);
  const Profile out = roundtrip_profile(p);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.scores()[0], 0.1);
  EXPECT_EQ(out.scores()[1], 1.0 / 3.0);
}

TEST(Wire, DescriptorRoundTripNullAndSnapshot) {
  // Bootstrap descriptor: address only, no snapshot.
  {
    std::vector<std::uint8_t> buf;
    encode_descriptor(buf, Descriptor{42, -1, ProfileHandle()});
    WireReader r(buf.data(), buf.size());
    Descriptor out;
    ASSERT_TRUE(decode_descriptor(r, out));
    EXPECT_EQ(out.node, 42u);
    EXPECT_EQ(out.timestamp(), -1);
    EXPECT_FALSE(out.has_profile());
  }
  // Snapshot descriptor: contents round-trip; the receiver re-interns
  // locally (content identity, not the sender's handle).
  {
    const Profile p = binary_profile();
    std::vector<std::uint8_t> buf;
    encode_descriptor(buf, make_descriptor(7, 12, p));
    WireReader r(buf.data(), buf.size());
    Descriptor out;
    ASSERT_TRUE(decode_descriptor(r, out));
    EXPECT_EQ(out.node, 7u);
    EXPECT_EQ(out.timestamp(), 12);
    ASSERT_TRUE(out.has_profile());
    EXPECT_EQ(out.profile_ref(), p);
  }
  // Empty-but-present snapshot stays distinct from the null handle.
  {
    std::vector<std::uint8_t> buf;
    encode_descriptor(buf, make_descriptor(9, 3, Profile{}));
    WireReader r(buf.data(), buf.size());
    Descriptor out;
    ASSERT_TRUE(decode_descriptor(r, out));
    ASSERT_TRUE(out.has_profile());
    EXPECT_EQ(out.profile_size(), 0u);
  }
}

TEST(Wire, PackedDescriptorCorpusRoundTrip) {
  // The 8-byte packed descriptor (u32 node + u32 DescriptorRef) has three
  // in-memory encodings — null, inline 31-bit timestamp (profile-less),
  // and arena stamp record — and the wire format must be agnostic to which
  // one the sender held: bytes carry (node, timestamp, profile contents),
  // never arena indices. Sweep a corpus across every encoding and both
  // inline-tag boundaries (±2^30).
  static_assert(sizeof(Descriptor) == 8);
  const Profile snap = binary_profile();
  struct Case {
    NodeId node;
    Cycle ts;
    bool with_profile;
  };
  const Case corpus[] = {
      {0, 0, false},
      {1, -1, false},
      {5, kNoCycle, false},          // null ref: {kNoCycle, no snapshot}
      {42, (1 << 30) - 1, false},    // inline max
      {43, -(1 << 30), false},       // inline min
      {44, 1 << 30, false},          // past inline range -> stamp record
      {45, -(1 << 30) - 1, false},   // past inline range, negative
      {46, std::numeric_limits<Cycle>::max(), false},
      {7, 12, true},                 // snapshots always ride a stamp record
      {8, -40000, true},
      {9, (1 << 30) + 5, true},
      {0xFFFFFFFEu, 77, true},
  };
  for (const Case& c : corpus) {
    const Descriptor in =
        c.with_profile ? make_descriptor(c.node, c.ts, snap)
                       : Descriptor{c.node, c.ts, nullptr};
    ASSERT_EQ(in.timestamp(), c.ts);  // packing itself must not clip
    ASSERT_EQ(in.has_profile(), c.with_profile);
    std::vector<std::uint8_t> buf;
    encode_descriptor(buf, in);
    WireReader r(buf.data(), buf.size());
    Descriptor out;
    ASSERT_TRUE(decode_descriptor(r, out));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(out.node, c.node);
    EXPECT_EQ(out.timestamp(), c.ts);
    EXPECT_EQ(out.has_profile(), c.with_profile);
    if (c.with_profile) EXPECT_EQ(out.profile_ref(), snap);
  }
}

Message roundtrip_message(const Message& in) {
  std::vector<std::uint8_t> buf;
  encode_message(buf, in);
  WireReader r(buf.data(), buf.size());
  Message out;
  EXPECT_TRUE(decode_message(r, out));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(out.from, in.from);
  EXPECT_EQ(out.to, in.to);
  EXPECT_EQ(out.sent_at, in.sent_at);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.payload.index(), in.payload.index());
  return out;
}

Message view_message(MsgType type) {
  Message m;
  m.from = 3;
  m.to = 11;
  m.sent_at = 21;
  m.seq = 2;
  m.type = type;
  ViewPayload v;
  v.sender = make_descriptor(3, 21, binary_profile());
  v.view.push_back(Descriptor{8, -1, ProfileHandle()});
  v.view.push_back(make_descriptor(15, 20, real_profile()));
  v.view.push_back(make_descriptor(2, 19, Profile{}));
  m.payload = std::move(v);
  return m;
}

void expect_view_equal(const ViewPayload& a, const ViewPayload& b) {
  EXPECT_EQ(a.sender.node, b.sender.node);
  EXPECT_EQ(a.sender.timestamp(), b.sender.timestamp());
  ASSERT_EQ(a.view.size(), b.view.size());
  for (std::size_t i = 0; i < a.view.size(); ++i) {
    EXPECT_EQ(a.view[i].node, b.view[i].node);
    EXPECT_EQ(a.view[i].timestamp(), b.view[i].timestamp());
    EXPECT_EQ(a.view[i].has_profile(), b.view[i].has_profile());
    if (a.view[i].has_profile()) {
      EXPECT_EQ(a.view[i].profile_ref(), b.view[i].profile_ref());
    }
  }
}

// Every gossip message kind — RPS/WUP request/reply and the rejoin
// handshake — carries a ViewPayload; each round-trips with its type tag.
TEST(Wire, ViewMessageRoundTripAllGossipTypes) {
  for (MsgType type : {MsgType::kRpsRequest, MsgType::kRpsReply,
                       MsgType::kWupRequest, MsgType::kWupReply,
                       MsgType::kRejoinRequest, MsgType::kRejoinReply}) {
    const Message in = view_message(type);
    const Message out = roundtrip_message(in);
    expect_view_equal(out.view(), in.view());
  }
}

TEST(Wire, NewsMessageRoundTrip) {
  Message m;
  m.from = 5;
  m.to = 6;
  m.sent_at = 30;
  m.seq = 7;
  m.type = MsgType::kNews;
  NewsPayload n;
  n.id = 0xdeadbeefcafeULL;
  n.index = 12;
  n.created = 28;
  n.origin = 2;
  n.dislikes = 3;
  n.hops = 4;
  n.via_dislike = true;
  n.item_profile = real_profile();
  m.payload = std::move(n);
  const Message out = roundtrip_message(m);
  const NewsPayload& r = out.news();
  EXPECT_EQ(r.id, 0xdeadbeefcafeULL);
  EXPECT_EQ(r.index, 12u);
  EXPECT_EQ(r.created, 28);
  EXPECT_EQ(r.origin, 2u);
  EXPECT_EQ(r.dislikes, 3);
  EXPECT_EQ(r.hops, 4);
  EXPECT_TRUE(r.via_dislike);
  EXPECT_EQ(r.item_profile.get(), real_profile());
}

TEST(Wire, NewsMessageRoundTripEmptyItemProfile) {
  // A fresh publication's item profile can be empty; the decoded handle
  // must stay the allocation-free null representation.
  Message m;
  m.type = MsgType::kNews;
  m.from = 1;
  m.to = 2;
  NewsPayload n;
  n.id = 99;
  n.index = 0;
  m.payload = std::move(n);
  const Message out = roundtrip_message(m);
  EXPECT_TRUE(out.news().item_profile.empty());
  EXPECT_FALSE(out.news().via_dislike);
}

TEST(Wire, AckMessageRoundTrip) {
  Message m;
  m.from = 9;
  m.to = 4;
  m.sent_at = 15;
  m.seq = 1;
  m.type = MsgType::kAck;
  m.payload = AckPayload{0x123456789ULL, 6};
  const Message out = roundtrip_message(m);
  EXPECT_EQ(out.ack().item, 0x123456789ULL);
  EXPECT_EQ(out.ack().hop, 6);
}

TEST(Wire, EnvelopeRoundTrip) {
  std::vector<std::uint8_t> buf;
  const Message in = view_message(MsgType::kRpsRequest);
  encode_envelope(buf, 37, in);
  encode_envelope(buf, 38, in);  // batches are plain concatenations
  WireReader r(buf.data(), buf.size());
  Cycle due = 0;
  Message out;
  ASSERT_TRUE(decode_envelope(r, due, out));
  EXPECT_EQ(due, 37);
  ASSERT_TRUE(decode_envelope(r, due, out));
  EXPECT_EQ(due, 38);
  EXPECT_EQ(r.remaining(), 0u);
}

// The core safety property: EVERY strict prefix of a valid encoding is
// rejected. The bounded reader parks instead of reading past the end, so
// no truncation can fabricate a message or crash the decoder.
TEST(Wire, TruncatedMessagesAreRejectedAtEveryLength) {
  std::vector<Message> corpus;
  corpus.push_back(view_message(MsgType::kWupReply));
  {
    Message m;
    m.type = MsgType::kNews;
    m.from = 1;
    m.to = 2;
    NewsPayload n;
    n.id = 7;
    n.index = 3;
    n.item_profile = wide_binary_profile();
    m.payload = std::move(n);
    corpus.push_back(std::move(m));
  }
  {
    Message m;
    m.type = MsgType::kAck;
    m.payload = AckPayload{5, 1};
    corpus.push_back(std::move(m));
  }
  for (const Message& m : corpus) {
    std::vector<std::uint8_t> buf;
    encode_message(buf, m);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      WireReader r(buf.data(), len);
      Message out;
      EXPECT_FALSE(decode_message(r, out)) << "prefix length " << len;
    }
  }
}

TEST(Wire, CorruptFieldsAreRejected) {
  // Out-of-range message type.
  {
    std::vector<std::uint8_t> buf;
    encode_message(buf, view_message(MsgType::kRpsRequest));
    // Header layout: from, to, sent_at, seq (single-byte varints here),
    // then the type byte at offset 4.
    buf[4] = 0xff;
    WireReader r(buf.data(), buf.size());
    Message out;
    EXPECT_FALSE(decode_message(r, out));
  }
  // Out-of-range payload index (offset 5).
  {
    std::vector<std::uint8_t> buf;
    encode_message(buf, view_message(MsgType::kRpsRequest));
    buf[5] = 3;
    WireReader r(buf.data(), buf.size());
    Message out;
    EXPECT_FALSE(decode_message(r, out));
  }
  // Duplicate profile ids (zero delta after the first entry).
  {
    std::vector<std::uint8_t> buf;
    wire_varint(buf, 2);  // count
    wire_varint(buf, 5);  // first id
    wire_varint(buf, 0);  // delta 0 => duplicate id
    WireReader r(buf.data(), buf.size());
    Profile out;
    EXPECT_FALSE(decode_profile(r, out));
  }
  // Entry count beyond the sanity cap must be rejected before any
  // allocation is attempted.
  {
    std::vector<std::uint8_t> buf;
    wire_varint(buf, kMaxWireProfileEntries + 1);
    WireReader r(buf.data(), buf.size());
    Profile out;
    EXPECT_FALSE(decode_profile(r, out));
  }
  // Unknown score-flags byte.
  {
    std::vector<std::uint8_t> buf;
    wire_varint(buf, 1);   // count
    wire_varint(buf, 3);   // id
    wire_zigzag(buf, 0);   // timestamp
    wire_u8(buf, 7);       // flags: only 0/1 defined
    wire_u8(buf, 0);
    WireReader r(buf.data(), buf.size());
    Profile out;
    EXPECT_FALSE(decode_profile(r, out));
  }
  // Over-long varint (continuation bits past 64 bits of payload).
  {
    std::vector<std::uint8_t> buf(10, 0xff);
    buf.push_back(0x01);
    WireReader r(buf.data(), buf.size());
    (void)r.read_varint();
    EXPECT_FALSE(r.ok());
  }
}

TEST(Wire, FrameRoundTripAndStreaming) {
  const std::vector<std::uint8_t> a{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> b{};  // empty frame = barrier token
  const std::vector<std::uint8_t> c(1000, 0xab);
  std::vector<std::uint8_t> stream;
  frame_append(stream, a);
  frame_append(stream, b);
  frame_append(stream, c);

  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
            FrameStatus::kOk);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), a.begin(), a.end()));
  ASSERT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
            FrameStatus::kOk);
  EXPECT_TRUE(payload.empty());
  ASSERT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
            FrameStatus::kOk);
  EXPECT_EQ(payload.size(), c.size());
  EXPECT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
            FrameStatus::kNeedMore);
  EXPECT_EQ(offset, stream.size());
}

TEST(Wire, PartialFramesNeedMore) {
  std::vector<std::uint8_t> stream;
  frame_append(stream, std::vector<std::uint8_t>{9, 8, 7});
  // Every strict prefix of the stream is "need more", never corrupt and
  // never a phantom frame.
  for (std::size_t len = 0; len < stream.size(); ++len) {
    std::size_t offset = 0;
    std::span<const std::uint8_t> payload;
    EXPECT_EQ(frame_extract(stream.data(), len, offset, payload),
              FrameStatus::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Wire, CorruptFramesAreDetected) {
  // Flipped payload byte: checksum mismatch.
  {
    std::vector<std::uint8_t> stream;
    frame_append(stream, std::vector<std::uint8_t>{1, 2, 3, 4});
    stream[8] ^= 0x01;  // first payload byte
    std::size_t offset = 0;
    std::span<const std::uint8_t> payload;
    EXPECT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
              FrameStatus::kCorrupt);
  }
  // Flipped checksum byte.
  {
    std::vector<std::uint8_t> stream;
    frame_append(stream, std::vector<std::uint8_t>{1, 2, 3, 4});
    stream[4] ^= 0x01;
    std::size_t offset = 0;
    std::span<const std::uint8_t> payload;
    EXPECT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
              FrameStatus::kCorrupt);
  }
  // Absurd length prefix: rejected before waiting for gigabytes.
  {
    std::vector<std::uint8_t> stream(8, 0xff);
    std::size_t offset = 0;
    std::span<const std::uint8_t> payload;
    EXPECT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
              FrameStatus::kCorrupt);
  }
}

// An encoded envelope survives the frame layer byte-exactly — the full
// path a cross-fragment message takes (encode -> frame -> socket ->
// extract -> decode).
TEST(Wire, EnvelopeThroughFrameLayer) {
  std::vector<std::uint8_t> batch;
  const Message in = view_message(MsgType::kWupRequest);
  encode_envelope(batch, 41, in);
  std::vector<std::uint8_t> stream;
  frame_append(stream, batch);

  std::size_t offset = 0;
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(frame_extract(stream.data(), stream.size(), offset, payload),
            FrameStatus::kOk);
  WireReader r(payload);
  Cycle due = 0;
  Message out;
  ASSERT_TRUE(decode_envelope(r, due, out));
  EXPECT_EQ(due, 41);
  EXPECT_EQ(out.type, MsgType::kWupRequest);
  expect_view_equal(out.view(), in.view());
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace whatsup::net
