// Shared test harness: minimal agents exposing single protocols so RPS and
// WUP clustering can be exercised in isolation inside a real engine.
#pragma once

#include <memory>
#include <vector>

#include "gossip/clustering_protocol.hpp"
#include "gossip/rps.hpp"
#include "sim/engine.hpp"

namespace whatsup::gossip::testing {

// Agent running only the RPS layer, with a fixed (possibly empty) profile.
class RpsOnlyAgent : public sim::Agent {
 public:
  RpsOnlyAgent(NodeId self, std::size_t view_size, Profile profile = {})
      : profile_(std::move(profile)), rps_(self, view_size, 1) {}

  void on_cycle(sim::Context& ctx) override { rps_.step(ctx, profile_); }
  void on_message(sim::Context& ctx, const net::Message& m) override {
    switch (m.type) {
      case net::MsgType::kRpsRequest: rps_.on_request(ctx, m.view(), profile_); break;
      case net::MsgType::kRpsReply: rps_.on_reply(ctx, m.view()); break;
      default: break;
    }
  }
  void publish(sim::Context&, ItemIdx, ItemId) override {}

  Rps& rps() { return rps_; }
  const View& view() const { return rps_.view(); }

 private:
  Profile profile_;
  Rps rps_;
};

// Agent running RPS + the WUP clustering protocol over a FIXED profile, so
// convergence towards ground-truth neighbors is directly observable.
class ClusteringAgent : public sim::Agent {
 public:
  ClusteringAgent(NodeId self, std::size_t rps_size, std::size_t wup_size,
                  Metric metric, Profile profile)
      : profile_(std::move(profile)),
        rps_(self, rps_size, 1),
        wup_(self, wup_size, metric, 1) {}

  void on_cycle(sim::Context& ctx) override {
    rps_.step(ctx, profile_);
    wup_.step(ctx, profile_, rps_.view());
  }
  void on_message(sim::Context& ctx, const net::Message& m) override {
    switch (m.type) {
      case net::MsgType::kRpsRequest: rps_.on_request(ctx, m.view(), profile_); break;
      case net::MsgType::kRpsReply: rps_.on_reply(ctx, m.view()); break;
      case net::MsgType::kWupRequest:
        wup_.on_request(ctx, m.view(), profile_, rps_.view());
        break;
      case net::MsgType::kWupReply:
        wup_.on_reply(ctx, m.view(), profile_, rps_.view());
        break;
      default: break;
    }
  }
  void publish(sim::Context&, ItemIdx, ItemId) override {}

  Rps& rps() { return rps_; }
  const View& rps_view() const { return rps_.view(); }
  const View& wup_view() const { return wup_.view(); }

 private:
  Profile profile_;
  Rps rps_;
  gossip::ClusteringProtocol wup_;
};

// Seeds each agent's RPS view with `k` random peers (ring offset fallback
// keeps the bootstrap graph connected).
template <typename AgentT>
void bootstrap_ring(std::vector<AgentT*>& agents, std::size_t k) {
  const std::size_t n = agents.size();
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<net::Descriptor> seed;
    for (std::size_t i = 1; i <= k && i < n; ++i) {
      seed.push_back(net::Descriptor{static_cast<NodeId>((v + i) % n), -1, nullptr});
    }
    agents[v]->rps().bootstrap(std::move(seed));
  }
}

}  // namespace whatsup::gossip::testing
