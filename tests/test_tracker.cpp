#include "metrics/tracker.hpp"

#include <gtest/gtest.h>

namespace whatsup::metrics {
namespace {

TEST(Tracker, RecordsReachedAndLiked) {
  Tracker tracker(10, 5);
  tracker.on_delivery(3, 2, 1, false, 0);
  tracker.on_opinion(3, 2, true);
  tracker.on_delivery(4, 2, 2, true, 1);
  tracker.on_opinion(4, 2, false);
  EXPECT_TRUE(tracker.reached(2).test(3));
  EXPECT_TRUE(tracker.reached(2).test(4));
  EXPECT_TRUE(tracker.liked(2).test(3));
  EXPECT_FALSE(tracker.liked(2).test(4));
  EXPECT_FALSE(tracker.reached(1).test(3));
}

TEST(Tracker, HopHistogramsSplitByForwardType) {
  Tracker tracker(10, 3);
  tracker.on_delivery(1, 0, 2, /*via_dislike=*/false, 0);
  tracker.on_delivery(2, 0, 2, /*via_dislike=*/true, 1);
  tracker.on_forward(1, 0, 2, /*liked=*/true, 5);
  tracker.on_forward(2, 0, 2, /*liked=*/false, 1);
  const HopCounts& hops = tracker.hops(0);
  ASSERT_GE(hops.infect_like.size(), 3u);
  EXPECT_EQ(hops.infect_like[2], 1.0);
  EXPECT_EQ(hops.infect_dislike[2], 1.0);
  EXPECT_EQ(hops.forward_like[2], 1.0);
  EXPECT_EQ(hops.forward_dislike[2], 1.0);
}

TEST(Tracker, ZeroTargetForwardsNotCounted) {
  Tracker tracker(10, 3);
  tracker.on_forward(1, 0, 2, true, 0);
  EXPECT_EQ(tracker.hops(0).forward_like.size(), 0u);
}

TEST(Tracker, DislikeHistogramCountsLikedDeliveriesOnly) {
  Tracker tracker(10, 3);
  tracker.on_delivery(1, 0, 1, true, 2);
  tracker.on_opinion(1, 0, true);   // liked after 2 dislikes -> bin 2
  tracker.on_delivery(2, 0, 1, true, 3);
  tracker.on_opinion(2, 0, false);  // not liked: not counted
  const auto& hist = tracker.dislikes_at_liked(0);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 0u);
}

TEST(Tracker, DislikeHistogramClipsAtMaxBin) {
  Tracker tracker(4, 1);
  tracker.on_delivery(1, 0, 1, true, 99);
  tracker.on_opinion(1, 0, true);
  EXPECT_EQ(tracker.dislikes_at_liked(0)[Tracker::kMaxDislikeBin], 1u);
}

TEST(Tracker, OutOfRangeEventsIgnored) {
  Tracker tracker(4, 2);
  tracker.on_delivery(99, 0, 1, false, 0);  // user out of range
  tracker.on_delivery(1, 99, 1, false, 0);  // item out of range
  EXPECT_FALSE(tracker.reached(0).any());
  EXPECT_FALSE(tracker.reached(1).any());
}

TEST(Tracker, TrackedNodeSeriesCountsLikedPerCycle) {
  sim::Engine engine({1, {}, {}});
  Tracker tracker(4, 2);
  tracker.attach(engine);
  tracker.track_node(2);
  tracker.on_opinion(2, 0, true);   // cycle 0
  tracker.on_opinion(2, 1, true);   // cycle 0
  engine.run_cycle();
  tracker.on_opinion(2, 0, false);  // dislikes not counted
  tracker.on_opinion(2, 1, true);   // cycle 1
  const auto& series = tracker.liked_series(2);
  ASSERT_GE(series.size(), 2u);
  EXPECT_EQ(series[0], 2u);
  EXPECT_EQ(series[1], 1u);
}

TEST(Tracker, TrackedSeriesWorksBeyondUserRange) {
  // The Fig. 7 joiner lives outside the workload's user id range.
  sim::Engine engine({1, {}, {}});
  Tracker tracker(4, 2);
  tracker.attach(engine);
  tracker.track_node(100);
  tracker.on_opinion(100, 0, true);
  EXPECT_EQ(tracker.liked_series(100)[0], 1u);
}

TEST(Tracker, UntrackedNodeHasEmptySeries) {
  Tracker tracker(4, 2);
  EXPECT_TRUE(tracker.liked_series(3).empty());
}

TEST(Tracker, ReachSetsPromoteSparseToDenseWithIdenticalCounts) {
  // The per-item sets are hybrid sparse→dense (common/hybrid_set.hpp).
  // Drive one item's deliveries across the promotion threshold and check
  // that nothing observable changes: counts, membership, digest inputs.
  const std::size_t n_users = 4096;  // promotion threshold: 4096/32 = 128
  Tracker tracker(n_users, 2);
  DynBitset mirror(n_users);
  ASSERT_EQ(tracker.reached(0).promote_threshold(), 128u);
  for (std::size_t i = 0; i < 400; ++i) {
    const auto user = static_cast<NodeId>((i * 37) % n_users);
    tracker.on_delivery(user, 0, 1, false, 0);
    mirror.set(user);
    ASSERT_EQ(tracker.reached(0).count(), mirror.count()) << "delivery " << i;
  }
  EXPECT_TRUE(tracker.reached(0).is_dense());
  EXPECT_FALSE(tracker.reached(1).is_dense());  // untouched item stays sparse
  EXPECT_EQ(tracker.reached(0).to_bitset(), mirror);
  // Membership iteration order feeding digest() is ascending either way:
  // a fresh tracker replaying the same users sparse-only (below the
  // threshold) must agree with the dense set on the common prefix.
  Tracker sparse_replay(n_users, 2);
  DynBitset sparse_mirror(n_users);
  std::size_t fed = 0;
  for (std::size_t i = 0; i < 400 && fed < 100; ++i) {
    const auto user = static_cast<NodeId>((i * 37) % n_users);
    if (sparse_mirror.test(user)) continue;
    sparse_replay.on_delivery(user, 0, 1, false, 0);
    sparse_mirror.set(user);
    ++fed;
  }
  EXPECT_FALSE(sparse_replay.reached(0).is_dense());
  EXPECT_EQ(sparse_replay.reached(0).to_bitset().intersect_count(mirror), fed);
  EXPECT_GT(tracker.set_memory_bytes(), 0u);
}

TEST(Tracker, DigestIndependentOfRepresentation) {
  // Two trackers fed the same (user, item) deliveries in different orders
  // hold equal sets — one may promote earlier than the other mid-stream —
  // and must end at the same digest.
  const std::size_t n_users = 2048;  // threshold 64
  Tracker a(n_users, 1), b(n_users, 1);
  std::vector<NodeId> users;
  for (std::size_t i = 0; i < 90; ++i) users.push_back(static_cast<NodeId>(i * 11));
  for (const NodeId u : users) {
    a.on_delivery(u, 0, 1, false, 0);
    a.on_opinion(u, 0, true);
  }
  for (auto it = users.rbegin(); it != users.rend(); ++it) {
    b.on_delivery(*it, 0, 1, false, 0);
    b.on_opinion(*it, 0, true);
  }
  EXPECT_TRUE(a.reached(0).is_dense());
  EXPECT_TRUE(b.reached(0).is_dense());
  EXPECT_EQ(a.reached(0), b.reached(0));
  EXPECT_EQ(a.liked(0), b.liked(0));
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(HopCounts, AccumulateResizesAndWeights) {
  HopCounts a, b;
  b.forward_like = {1.0, 2.0, 3.0};
  b.infect_dislike = {4.0};
  a.accumulate(b, 0.5);
  ASSERT_EQ(a.forward_like.size(), 3u);
  EXPECT_EQ(a.forward_like[1], 1.0);
  EXPECT_EQ(a.infect_dislike[0], 2.0);
  EXPECT_EQ(a.max_hop(), 3u);
}

TEST(Tracker, CompactionFreezesOnlyAfterSettleWindow) {
  Tracker tracker(100000, 2);
  // Spill both items' sets past the inline buffer so freezing can shrink.
  for (NodeId u = 0; u < 40; ++u) {
    tracker.on_delivery(u * 50, 0, 1, false, 0);  // touched at cycle 0
    tracker.on_delivery(u * 50, 1, 1, false, 0);
  }
  const std::uint64_t digest_before = tracker.digest();
  tracker.compact_settled(Tracker::kDefaultSettleCycles - 1);
  EXPECT_EQ(tracker.frozen_sets(), 0u) << "inside the settle window";
  tracker.compact_settled(Tracker::kDefaultSettleCycles);
  EXPECT_GT(tracker.frozen_sets(), 0u) << "window elapsed for both items";
  EXPECT_EQ(tracker.digest(), digest_before) << "freezing is storage-only";
  EXPECT_EQ(tracker.reached(0).count(), 40u);
}

TEST(Tracker, CompactionDisabledNeverFreezes) {
  Tracker tracker(100000, 1);
  tracker.set_compaction(false);
  for (NodeId u = 0; u < 40; ++u) tracker.on_delivery(u * 50, 0, 1, false, 0);
  tracker.compact_settled(1000);
  EXPECT_EQ(tracker.frozen_sets(), 0u);
}

TEST(Tracker, LateDeliveryThawsAndStaysCorrect) {
  Tracker tracker(100000, 1);
  for (NodeId u = 0; u < 40; ++u) tracker.on_delivery(u * 50, 0, 1, false, 0);
  tracker.compact_settled(1000);
  ASSERT_GT(tracker.frozen_sets(), 0u);
  const std::uint64_t frozen_digest = tracker.digest();
  // A straggler copy arrives after the window closed: the set must thaw,
  // record it, and become freezable again after a fresh window.
  tracker.on_delivery(12345, 0, 6, false, 0);
  EXPECT_TRUE(tracker.reached(0).test(12345));
  EXPECT_EQ(tracker.reached(0).count(), 41u);
  EXPECT_NE(tracker.digest(), frozen_digest) << "new member must change state";
  tracker.compact_settled(1000 + 2 * Tracker::kDefaultSettleCycles);
  EXPECT_GT(tracker.frozen_sets(), 0u);
  EXPECT_TRUE(tracker.reached(0).test(12345));
}

TEST(Tracker, DigestIdenticalWithCompactionOnAndOff) {
  // Same event stream, compaction interleaved vs never: every intermediate
  // digest must agree. This is the storage-only contract the determinism
  // suite relies on.
  const auto feed = [](Tracker& t, bool compact) {
    std::vector<std::uint64_t> digests;
    for (int burst = 0; burst < 4; ++burst) {
      for (NodeId u = 0; u < 30; ++u) {
        const NodeId user = u * 97 + burst;
        t.on_delivery(user, burst % 2, 1 + burst, burst % 2 == 1, 0);
        t.on_opinion(user, burst % 2, u % 3 == 0);
        if (u % 7 == 0) t.on_duplicate(user, burst % 2);
      }
      if (compact) t.compact_settled(1000 * (burst + 1));
      digests.push_back(t.digest());
    }
    return digests;
  };
  Tracker with(100000, 2), without(100000, 2);
  without.set_compaction(false);
  EXPECT_EQ(feed(with, true), feed(without, false));
  EXPECT_GT(with.frozen_sets(), 0u) << "the compacted run really froze sets";
  EXPECT_EQ(without.frozen_sets(), 0u);
}

TEST(Tracker, ResidentBytesPinsTheAccounting) {
  Tracker tracker(100000, 3);
  const std::size_t empty_bytes = tracker.resident_bytes();
  EXPECT_GE(empty_bytes, sizeof(Tracker));
  // Spill item 0's reached set and hop histograms.
  for (NodeId u = 0; u < 64; ++u) tracker.on_delivery(u * 100, 0, 3, false, 0);
  const std::size_t grown = tracker.resident_bytes();
  EXPECT_GT(grown, empty_bytes);
  // The growth must cover at least the set spill reported by the sets
  // themselves plus the hop histogram heap.
  EXPECT_GE(grown, sizeof(Tracker) + tracker.set_memory_bytes());
  // Freezing shrinks the resident accounting (that's its whole point), and
  // resident_bytes must follow the representation change.
  tracker.compact_settled(1000);
  ASSERT_GT(tracker.frozen_sets(), 0u);
  EXPECT_LT(tracker.resident_bytes(), grown);
  // Tracked-node series are charged too.
  tracker.track_node(5);
  Tracker probe(10, 1);
  const std::size_t before_series = probe.resident_bytes();
  probe.track_node(7);
  EXPECT_GE(probe.resident_bytes(), before_series);
}

TEST(Tracker, AttachRegistersAsEngineObserver) {
  sim::Engine engine({1, {}, {}});
  Tracker tracker(4, 2);
  tracker.attach(engine);
  EXPECT_EQ(engine.observer(), &tracker);
}

}  // namespace
}  // namespace whatsup::metrics
