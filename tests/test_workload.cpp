#include "dataset/workload.hpp"

#include <gtest/gtest.h>

#include "common/hash.hpp"

namespace whatsup::data {
namespace {

// Hand-built 6-user, 3-topic workload.
Workload tiny_workload() {
  Workload w;
  w.name = "tiny";
  w.n_users = 6;
  w.n_topics = 3;
  for (ItemIdx i = 0; i < 6; ++i) {
    NewsSpec spec;
    spec.index = i;
    spec.id = make_item_id(w.name, i);
    spec.topic = static_cast<int>(i % 3);
    DynBitset interested(6);
    // Items of topic t are liked by users {t, t+3}.
    interested.set(i % 3);
    interested.set(i % 3 + 3);
    spec.source = static_cast<NodeId>(i % 3);
    w.news.push_back(spec);
    w.interested_in.push_back(interested);
  }
  return w;
}

TEST(Workload, ValidatePassesOnConsistentData) {
  EXPECT_NO_THROW(tiny_workload().validate());
}

TEST(Workload, ValidateRejectsSourceWhoDislikesOwnItem) {
  Workload w = tiny_workload();
  w.news[0].source = 1;  // user 1 does not like topic-0 items
  EXPECT_THROW(w.validate(), std::logic_error);
}

TEST(Workload, ValidateRejectsMismatchedBitsets) {
  Workload w = tiny_workload();
  w.interested_in.pop_back();
  EXPECT_THROW(w.validate(), std::logic_error);
}

TEST(Workload, LikesAndPopularity) {
  const Workload w = tiny_workload();
  EXPECT_TRUE(w.likes(0, 0));
  EXPECT_TRUE(w.likes(3, 0));
  EXPECT_FALSE(w.likes(1, 0));
  EXPECT_DOUBLE_EQ(w.popularity(0), 2.0 / 6.0);
}

TEST(Workload, TopicSubscribersFollowLikeClosure) {
  const Workload w = tiny_workload();
  const auto subs = w.topic_subscribers();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(subs[1], (std::vector<NodeId>{1, 4}));
}

TEST(Workload, FullProfileCoversAllItems) {
  const Workload w = tiny_workload();
  const Profile p = w.full_profile(0);
  EXPECT_EQ(p.size(), w.num_items());
  EXPECT_EQ(p.score(w.news[0].id).value(), 1.0);
  EXPECT_EQ(p.score(w.news[1].id).value(), 0.0);
}

TEST(Workload, SchedulePublicationsCoversWindowUniformly) {
  Workload w = tiny_workload();
  Rng rng(3);
  w.schedule_publications(10, 12, rng);
  for (const NewsSpec& spec : w.news) {
    EXPECT_GE(spec.publish_at, 10);
    EXPECT_LE(spec.publish_at, 12);
  }
  // 6 items over 3 cycles: 2 per cycle.
  std::map<Cycle, int> per_cycle;
  for (const NewsSpec& spec : w.news) per_cycle[spec.publish_at]++;
  for (const auto& [cycle, count] : per_cycle) EXPECT_EQ(count, 2) << cycle;
}

TEST(Workload, SubsampleKeepsConsistency) {
  const Workload w = tiny_workload();
  Rng rng(9);
  const Workload sub = w.subsample_users(4, rng);
  EXPECT_EQ(sub.num_users(), 4u);
  EXPECT_LE(sub.num_items(), w.num_items());
  EXPECT_NO_THROW(sub.validate());
  for (ItemIdx i = 0; i < sub.num_items(); ++i) {
    EXPECT_GT(sub.interested(i).count(), 0u);
  }
}

TEST(Workload, SubsampleAllUsersKeepsEverything) {
  const Workload w = tiny_workload();
  Rng rng(9);
  const Workload sub = w.subsample_users(6, rng);
  EXPECT_EQ(sub.num_users(), 6u);
  EXPECT_EQ(sub.num_items(), w.num_items());
}

}  // namespace
}  // namespace whatsup::data
