#include "metrics/scores.hpp"

#include <gtest/gtest.h>

#include "common/hash.hpp"

namespace whatsup::metrics {
namespace {

// 5 users; item 0: users {0,1,2} interested, source 0.
data::Workload scored_workload() {
  data::Workload w;
  w.name = "scored";
  w.n_users = 5;
  w.n_topics = 1;
  for (ItemIdx i = 0; i < 2; ++i) {
    data::NewsSpec spec;
    spec.index = i;
    spec.id = make_item_id(w.name, i);
    spec.source = 0;
    DynBitset interested(5);
    interested.set(0);
    interested.set(1);
    interested.set(2);
    w.news.push_back(spec);
    w.interested_in.push_back(interested);
  }
  return w;
}

TEST(Scores, HandComputedPrecisionRecall) {
  const data::Workload w = scored_workload();
  // Item 0 reached users {1, 3} (plus the source, which is excluded).
  std::vector<DynBitset> reached(2, DynBitset(5));
  reached[0].set(0);  // source: excluded from both sets
  reached[0].set(1);  // interested
  reached[0].set(3);  // not interested
  const std::vector<ItemIdx> measured = {0};
  const Scores s = compute_scores(w, reached, measured);
  // reached\{src} = {1,3}; interested\{src} = {1,2}; hits = {1}.
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
  EXPECT_EQ(s.items, 1u);
}

TEST(Scores, MacroAverageOverItems) {
  const data::Workload w = scored_workload();
  std::vector<DynBitset> reached(2, DynBitset(5));
  reached[0].set(1);
  reached[0].set(2);  // item 0: precision 1, recall 1
  reached[1].set(3);
  reached[1].set(4);  // item 1: precision 0, recall 0
  const std::vector<ItemIdx> measured = {0, 1};
  const Scores s = compute_scores(w, reached, measured);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
}

TEST(Scores, EmptyMeasuredSet) {
  const data::Workload w = scored_workload();
  const std::vector<DynBitset> reached(2, DynBitset(5));
  const Scores s = compute_scores(w, reached, {});
  EXPECT_EQ(s.items, 0u);
  EXPECT_EQ(s.f1, 0.0);
}

TEST(Scores, EmptyDeliveryGetsVacuousPrecision) {
  const data::Workload w = scored_workload();
  const std::vector<DynBitset> reached(2, DynBitset(5));
  const std::vector<ItemIdx> measured = {0};
  const Scores s = compute_scores(w, reached, measured);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(F1, HarmonicMean) {
  EXPECT_DOUBLE_EQ(f1_score(0.5, 0.5), 0.5);
  EXPECT_NEAR(f1_score(0.47, 0.83), 2 * 0.47 * 0.83 / (0.47 + 0.83), 1e-12);
  EXPECT_EQ(f1_score(0.0, 0.0), 0.0);
}

TEST(PerUser, CountsReceivedAndInterested) {
  const data::Workload w = scored_workload();
  std::vector<DynBitset> reached(2, DynBitset(5));
  // User 1 receives both items (interested in both): P=1, R=1.
  reached[0].set(1);
  reached[1].set(1);
  // User 3 receives one item (interested in none): P=0, R=1 by convention.
  reached[0].set(3);
  const std::vector<ItemIdx> measured = {0, 1};
  const PerUserScores scores = per_user_scores(w, reached, measured);
  EXPECT_DOUBLE_EQ(scores.precision[1], 1.0);
  EXPECT_DOUBLE_EQ(scores.recall[1], 1.0);
  EXPECT_TRUE(scores.valid[1]);
  EXPECT_DOUBLE_EQ(scores.precision[3], 0.0);
  EXPECT_FALSE(scores.valid[3]);  // no interested measured item
  // User 2 interested in both, received none: recall 0.
  EXPECT_DOUBLE_EQ(scores.recall[2], 0.0);
}

TEST(Sociability, IdenticalUsersAreMaximallySociable) {
  data::Workload w = scored_workload();  // users 0,1,2 share all likes
  const auto soc = sociability(w, 2);
  EXPECT_NEAR(soc[0], 1.0, 1e-9);
  EXPECT_NEAR(soc[1], 1.0, 1e-9);
  // Users 3, 4 like nothing: similarity 0 everywhere.
  EXPECT_EQ(soc[3], 0.0);
}

TEST(RecallByPopularity, BucketsAndDistribution) {
  const data::Workload w = scored_workload();  // popularity 3/5 = 0.6
  std::vector<DynBitset> reached(2, DynBitset(5));
  reached[0].set(1);
  reached[0].set(2);  // full recall for item 0
  const std::vector<ItemIdx> measured = {0, 1};
  const auto curve = recall_by_popularity(w, reached, measured, 10);
  // Popularity 0.6 lands in bucket 6.
  EXPECT_EQ(curve.items[6], 2u);
  EXPECT_DOUBLE_EQ(curve.item_fraction[6], 1.0);
  EXPECT_DOUBLE_EQ(curve.recall[6], 0.5);  // item0 recall 1, item1 recall 0
  EXPECT_EQ(curve.items[0], 0u);
}

}  // namespace
}  // namespace whatsup::metrics
