#include "analysis/runner.hpp"

#include <gtest/gtest.h>

#include "dataset/survey.hpp"

namespace whatsup::analysis {
namespace {

data::Workload small_survey(std::uint64_t seed = 1) {
  Rng rng(seed);
  data::SurveyConfig config;
  config.base_users = 60;
  config.base_items = 80;
  config.replication = 1;
  return data::make_survey(config, rng);
}

RunConfig quick_config(Approach approach, int fanout) {
  RunConfig config;
  config.approach = approach;
  config.fanout = fanout;
  config.warmup_cycles = 3;
  config.publish_cycles = 25;
  config.drain_cycles = 10;
  config.measure_margin = 8;
  config.seed = 7;
  return config;
}

void expect_sane(const RunResult& r) {
  EXPECT_GE(r.scores.precision, 0.0);
  EXPECT_LE(r.scores.precision, 1.0);
  EXPECT_GE(r.scores.recall, 0.0);
  EXPECT_LE(r.scores.recall, 1.0);
  EXPECT_GE(r.scores.f1, 0.0);
  EXPECT_LE(r.scores.f1, 1.0);
  EXPECT_GT(r.scores.items, 0u);
  EXPECT_GT(r.news_messages, 0u);
  EXPECT_GT(r.msgs_per_user, 0.0);
  EXPECT_GE(r.overlay.lscc_fraction, 0.0);
  EXPECT_LE(r.overlay.lscc_fraction, 1.0);
}

TEST(Runner, WhatsUpProducesSaneResults) {
  const data::Workload w = small_survey();
  const RunResult r = run_protocol(w, quick_config(Approach::kWhatsUp, 6));
  expect_sane(r);
  EXPECT_GT(r.gossip_messages, 0u);
  EXPECT_GT(r.kbps_total, 0.0);
  EXPECT_GT(r.scores.recall, 0.2);  // dissemination actually happens
}

TEST(Runner, AllSimulatedApproachesRun) {
  const data::Workload w = small_survey();
  for (Approach approach : {Approach::kWhatsUp, Approach::kWhatsUpCos, Approach::kCfWup,
                            Approach::kCfCos, Approach::kGossip}) {
    const RunResult r = run_protocol(w, quick_config(approach, 6));
    expect_sane(r);
  }
}

TEST(Runner, DeterministicForSameSeed) {
  const data::Workload w = small_survey();
  const RunResult a = run_protocol(w, quick_config(Approach::kWhatsUp, 6));
  const RunResult b = run_protocol(w, quick_config(Approach::kWhatsUp, 6));
  EXPECT_EQ(a.scores.precision, b.scores.precision);
  EXPECT_EQ(a.scores.recall, b.scores.recall);
  EXPECT_EQ(a.news_messages, b.news_messages);
  EXPECT_EQ(a.overlay.lscc_fraction, b.overlay.lscc_fraction);
}

TEST(Runner, SeedChangesOutcome) {
  const data::Workload w = small_survey();
  RunConfig c1 = quick_config(Approach::kWhatsUp, 6);
  RunConfig c2 = c1;
  c2.seed = 1234;
  const RunResult a = run_protocol(w, c1);
  const RunResult b = run_protocol(w, c2);
  EXPECT_NE(a.news_messages, b.news_messages);
}

TEST(Runner, GossipHasHighRecallLowPrecision) {
  const data::Workload w = small_survey();
  const RunResult gossip = run_protocol(w, quick_config(Approach::kGossip, 5));
  EXPECT_GT(gossip.scores.recall, 0.85);  // floods almost everyone
  // Precision collapses to ~mean popularity.
  EXPECT_LT(gossip.scores.precision, 0.6);
}

TEST(Runner, WhatsUpFiltersBetterThanGossip) {
  // Replicated profiles give the WUP clustering a real signal; at
  // replication 1 (every user unique) the precision gap over blind gossip
  // is inside seed noise for both the sequential and sharded schedulers.
  Rng rng(1);
  data::SurveyConfig sc;
  sc.base_users = 50;
  sc.base_items = 60;
  sc.replication = 3;
  const data::Workload w = data::make_survey(sc, rng);
  RunConfig config = quick_config(Approach::kGossip, 5);
  config.publish_cycles = 30;
  const RunResult gossip = run_protocol(w, config);
  config.approach = Approach::kWhatsUp;
  config.fanout = 8;
  const RunResult whatsup = run_protocol(w, config);
  EXPECT_GT(whatsup.scores.precision, gossip.scores.precision + 0.02);
}

TEST(Runner, CascadeRequiresSocialGraph) {
  const data::Workload w = small_survey();  // no social graph
  EXPECT_THROW(run_protocol(w, quick_config(Approach::kCascade, 1)),
               std::invalid_argument);
}

TEST(Runner, FullLossKillsDissemination) {
  const data::Workload w = small_survey();
  RunConfig config = quick_config(Approach::kWhatsUp, 6);
  config.network.loss_rate = 1.0;
  const RunResult r = run_protocol(w, config);
  // Nothing is ever delivered (items whose only fan is the source still
  // score a vacuous recall of 1, so check the reached sets directly).
  std::size_t delivered = 0;
  for (const auto& bits : r.reached) delivered += bits.count();
  EXPECT_EQ(delivered, 0u);
}

TEST(Runner, MetricOverrideChangesBehaviour) {
  const data::Workload w = small_survey();
  RunConfig config = quick_config(Approach::kWhatsUp, 6);
  config.metric_override = Metric::kJaccard;
  const RunResult r = run_protocol(w, config);
  expect_sane(r);
}

TEST(Runner, DislikeFractionsFormDistribution) {
  const data::Workload w = small_survey();
  const RunResult r = run_protocol(w, quick_config(Approach::kWhatsUp, 6));
  double total = 0.0;
  for (double f : r.dislike_fractions) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Runner, HopHistogramsPopulated) {
  const data::Workload w = small_survey();
  const RunResult r = run_protocol(w, quick_config(Approach::kWhatsUp, 6));
  EXPECT_GT(r.hops_per_item.max_hop(), 1u);
}

TEST(Runner, ApproachNames) {
  EXPECT_EQ(to_string(Approach::kWhatsUp), "WhatsUp");
  EXPECT_EQ(to_string(Approach::kCfCos), "CF-Cos");
  EXPECT_EQ(metric_of(Approach::kWhatsUpCos), Metric::kCosine);
  EXPECT_EQ(metric_of(Approach::kCfWup), Metric::kWup);
}

}  // namespace
}  // namespace whatsup::analysis
