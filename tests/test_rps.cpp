#include "gossip/rps.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "protocol_test_utils.hpp"

namespace whatsup::gossip {
namespace {

using testing::RpsOnlyAgent;
using testing::bootstrap_ring;

struct RpsFixture {
  explicit RpsFixture(std::size_t n, std::size_t view_size, std::uint64_t seed = 1)
      : engine(sim::Engine::Config{seed, {}, {}}) {
    for (std::size_t v = 0; v < n; ++v) {
      auto agent = std::make_unique<RpsOnlyAgent>(static_cast<NodeId>(v), view_size);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    bootstrap_ring(agents, 3);
  }
  sim::Engine engine;
  std::vector<RpsOnlyAgent*> agents;
};

TEST(Rps, ViewsFillToCapacity) {
  RpsFixture fx(60, 8);
  fx.engine.run_cycles(15);
  for (auto* agent : fx.agents) {
    EXPECT_EQ(agent->view().size(), 8u);
  }
}

TEST(Rps, ViewsNeverContainSelf) {
  RpsFixture fx(40, 6);
  fx.engine.run_cycles(20);
  for (NodeId v = 0; v < fx.agents.size(); ++v) {
    EXPECT_FALSE(fx.agents[v]->view().contains(v)) << "node " << v;
  }
}

TEST(Rps, DescriptorsGetFresher) {
  RpsFixture fx(40, 6);
  fx.engine.run_cycles(30);
  // After 30 cycles of gossip, no view should still hold a bootstrap-aged
  // (timestamp -1) descriptor... at least not many.
  std::size_t stale = 0, total = 0;
  for (auto* agent : fx.agents) {
    for (const auto& d : agent->view().entries()) {
      ++total;
      if (d.timestamp() < 10) ++stale;
    }
  }
  EXPECT_LT(static_cast<double>(stale) / static_cast<double>(total), 0.2);
}

TEST(Rps, OverlayMixesBeyondTheBootstrapRing) {
  RpsFixture fx(60, 8);
  fx.engine.run_cycles(25);
  // Bootstrap neighbors were ring offsets 1..3; after mixing, views should
  // mostly contain non-ring nodes.
  std::size_t ring_edges = 0, total = 0;
  for (NodeId v = 0; v < fx.agents.size(); ++v) {
    for (const auto& d : fx.agents[v]->view().entries()) {
      ++total;
      const auto diff = (d.node + fx.agents.size() - v) % fx.agents.size();
      if (diff >= 1 && diff <= 3) ++ring_edges;
    }
  }
  EXPECT_LT(static_cast<double>(ring_edges) / static_cast<double>(total), 0.4);
}

TEST(Rps, InDegreeReasonablyBalanced) {
  RpsFixture fx(80, 8);
  fx.engine.run_cycles(30);
  std::vector<std::size_t> indegree(fx.agents.size(), 0);
  for (auto* agent : fx.agents) {
    for (const auto& d : agent->view().entries()) ++indegree[d.node];
  }
  // Mean in-degree is 8; no node should be absent from the overlay and no
  // node should dominate it (random peer sampling balances in-degrees).
  std::size_t max_in = 0, zero = 0;
  for (std::size_t deg : indegree) {
    max_in = std::max(max_in, deg);
    zero += deg == 0;
  }
  // A node may transiently drop out of every view, but not many at once.
  EXPECT_LE(zero, 2u);
  EXPECT_LE(max_in, 8u * 4);
}

TEST(Rps, ViewsKeepChanging) {
  RpsFixture fx(60, 8);
  fx.engine.run_cycles(10);
  std::vector<std::set<NodeId>> before;
  for (auto* agent : fx.agents) {
    const auto members = agent->view().members();
    before.emplace_back(members.begin(), members.end());
  }
  fx.engine.run_cycles(10);
  std::size_t changed = 0;
  for (std::size_t v = 0; v < fx.agents.size(); ++v) {
    const auto members = fx.agents[v]->view().members();
    const std::set<NodeId> after(members.begin(), members.end());
    if (after != before[v]) ++changed;
  }
  // The random overlay is continuously reshuffled (§II).
  EXPECT_GT(changed, fx.agents.size() / 2);
}

TEST(Rps, PeriodThrottlesGossip) {
  // Same deployment, RPS period 1 vs 3: the slower period sends ~1/3 the
  // requests (RPSf in Table II is a frequency knob).
  auto count_requests = [](Cycle period) {
    sim::Engine engine(sim::Engine::Config{7, {}, {}});
    class PeriodicAgent : public sim::Agent {
     public:
      PeriodicAgent(NodeId self, Cycle period) : rps_(self, 4, period) {}
      void on_cycle(sim::Context& ctx) override { rps_.step(ctx, profile_); }
      void on_message(sim::Context& ctx, const net::Message& m) override {
        if (m.type == net::MsgType::kRpsRequest) rps_.on_request(ctx, m.view(), profile_);
        if (m.type == net::MsgType::kRpsReply) rps_.on_reply(ctx, m.view());
      }
      void publish(sim::Context&, ItemIdx, ItemId) override {}
      Rps rps_;
      Profile profile_;
    };
    std::vector<PeriodicAgent*> agents;
    for (NodeId v = 0; v < 6; ++v) {
      auto agent = std::make_unique<PeriodicAgent>(v, period);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    for (std::size_t v = 0; v < agents.size(); ++v) {
      agents[v]->rps_.bootstrap(
          {net::Descriptor{static_cast<NodeId>((v + 1) % 6), -1, nullptr}});
    }
    engine.run_cycles(12);
    return engine.traffic().messages(net::Protocol::kRps);
  };
  const auto fast = count_requests(1);
  const auto slow = count_requests(3);
  EXPECT_GT(fast, 2 * slow);
}

TEST(Rps, BootstrapIgnoresSelf) {
  Rps rps(5, 10, 1);
  rps.bootstrap({net::Descriptor{5, 0, nullptr}, net::Descriptor{6, 0, nullptr}});
  EXPECT_EQ(rps.view().size(), 1u);
  EXPECT_FALSE(rps.view().contains(5));
}

}  // namespace
}  // namespace whatsup::gossip
