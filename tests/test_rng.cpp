#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace whatsup {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(99);
  Rng c1 = root.fork(7);
  Rng c2 = root.fork(7);
  Rng c3 = root.fork(8);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  Rng c1b = root.fork(7);
  EXPECT_NE(c1b.next_u64(), c3.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 3.0, 8.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.15 * shape + 0.05) << "shape=" << shape;
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(23);
  const std::vector<double> alpha(6, 0.4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto draw = rng.dirichlet(alpha);
    ASSERT_EQ(draw.size(), alpha.size());
    const double total = std::accumulate(draw.begin(), draw.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double x : draw) EXPECT_GE(x, 0.0);
  }
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(29);
  for (std::size_t n : {1u, 5u, 50u, 500u}) {
    for (std::size_t k : {0u, 1u, 3u, 50u}) {
      const auto sample = rng.sample_indices(n, k);
      EXPECT_EQ(sample.size(), std::min(n, static_cast<std::size_t>(k)));
      std::set<std::size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), sample.size());
      for (std::size_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(Rng, SampleIndicesUniformCoverage) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (std::size_t i : rng.sample_indices(10, 2)) counts[i]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 4000, 400);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), copy.begin()));  // vanishing prob
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Zipf, PmfMonotoneAndNormalized) {
  const ZipfDistribution zipf(20, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < 20; ++r) {
    total += zipf.pmf(r);
    if (r > 0) EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.pmf(20), 0.0);
}

TEST(Zipf, SamplingMatchesPmf) {
  Rng rng(41);
  const ZipfDistribution zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf(rng)]++;
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

// Property sweep: the URBG contract holds for a range of seeds.
class RngSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedProperty, UniformIntNeverEscapesBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 9);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 9);
  }
}

TEST_P(RngSeedProperty, ForkDiffersFromParentStream) {
  Rng parent(GetParam());
  Rng child = parent.fork(1);
  Rng parent2(GetParam());
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child.next_u64() == parent2.next_u64();
  EXPECT_LT(equal, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedProperty,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace whatsup
