// Units for the small-buffer-optimized vector backing the Profile arrays
// (common/small_vector.hpp): std::vector-equivalent semantics for the
// operations the Profile layer uses, across the inline→heap boundary.
#include "common/small_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

namespace whatsup {
namespace {

using Vec = SmallVector<std::uint64_t, 4>;

Vec iota(std::size_t n) {
  Vec v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(i + 1);
  return v;
}

TEST(SmallVector, StartsEmptyWithInlineCapacity) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, StaysInlineUpToN) {
  Vec v = iota(4);
  EXPECT_EQ(v.capacity(), 4u);  // no heap spill yet
  // Inline data lives inside the object.
  const auto* lo = reinterpret_cast<const unsigned char*>(&v);
  const auto* hi = lo + sizeof(Vec);
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  EXPECT_TRUE(p >= lo && p < hi);
}

TEST(SmallVector, SpillsToHeapAndPreservesContents) {
  Vec v = iota(9);
  ASSERT_EQ(v.size(), 9u);
  EXPECT_GT(v.capacity(), 4u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(v[i], i + 1);
}

TEST(SmallVector, InsertShiftsTailAtAnyPosition) {
  Vec v = iota(3);           // 1 2 3
  v.insert(0, 100);          // 100 1 2 3      (inline, full)
  v.insert(2, 200);          // 100 1 200 2 3  (forces the heap spill)
  v.insert(5, 300);          // append via insert at size()
  const std::uint64_t expect[] = {100, 1, 200, 2, 3, 300};
  ASSERT_EQ(v.size(), 6u);
  EXPECT_TRUE(std::equal(v.begin(), v.end(), expect));
}

TEST(SmallVector, ResizeGrowsValueInitializedAndShrinksInPlace) {
  Vec v = iota(2);
  v.resize(6);
  ASSERT_EQ(v.size(), 6u);
  for (std::size_t i = 2; i < 6; ++i) EXPECT_EQ(v[i], 0u);
  const std::size_t cap = v.capacity();
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.capacity(), cap);  // storage retained
  EXPECT_EQ(v[0], 1u);
}

TEST(SmallVector, CopyIsDeepForBothRepresentations) {
  for (const std::size_t n : {3u, 12u}) {
    Vec a = iota(n);
    Vec b = a;
    ASSERT_EQ(b.size(), n);
    b[0] = 999;
    EXPECT_EQ(a[0], 1u);  // unaffected
    EXPECT_NE(a.data(), b.data());
  }
}

TEST(SmallVector, CopyAssignReusesExistingCapacity) {
  Vec a = iota(12);
  const auto* storage = a.data();
  Vec small = iota(2);
  a = small;
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.data(), storage);  // heap block large enough: kept
}

TEST(SmallVector, MoveStealsHeapAndCopiesInline) {
  Vec heap = iota(10);
  const auto* storage = heap.data();
  Vec stolen = std::move(heap);
  EXPECT_EQ(stolen.data(), storage);  // pointer steal, no copy
  EXPECT_EQ(stolen.size(), 10u);
  EXPECT_TRUE(heap.empty());  // NOLINT(bugprone-use-after-move): spec'd empty

  Vec inl = iota(3);
  Vec moved = std::move(inl);
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[2], 3u);
  EXPECT_TRUE(inl.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVector, MoveAssignReleasesOldHeapBlock) {
  Vec a = iota(10);
  Vec b = iota(20);
  b = std::move(a);  // b's old block must be freed (ASan would catch leaks)
  ASSERT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], 10u);
}

TEST(SmallVector, EqualityComparesContentsNotRepresentation) {
  Vec a = iota(5);   // heap
  Vec b;
  for (std::uint64_t i = 1; i <= 5; ++i) b.push_back(i);
  b.reserve(64);     // different capacity, same contents
  EXPECT_TRUE(a == b);
  b.push_back(6);
  EXPECT_FALSE(a == b);
}

TEST(SmallVector, DoubleElementsCompareByValue) {
  SmallVector<double, 2> a, b;
  a.push_back(0.5);
  b.push_back(0.5);
  EXPECT_TRUE(a == b);
  b[0] = 0.25;
  EXPECT_FALSE(a == b);
}

TEST(SmallVector, ClearKeepsStorage) {
  Vec v = iota(10);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

}  // namespace
}  // namespace whatsup
