// Unit tests for the sharded scheduler's building blocks: the worker
// pool, mailbox ring growth, counter-based RNG forks, the canonical
// send/delivery machinery, and the closed-form active-node draws.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "sim/engine.hpp"

namespace whatsup::sim {
namespace {

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  for (int round = 0; round < 5; ++round) {
    constexpr std::size_t kItems = 137;
    std::vector<std::atomic<int>> hits(kItems);
    pool.run(kItems, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " round " << round;
    }
  }
}

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::size_t sum = 0;
  pool.run(10, [&](std::size_t i) { sum += i; });  // no data race: inline
  EXPECT_EQ(sum, 45u);
}

TEST(WorkerPool, MoreThreadsThanItems) {
  WorkerPool pool(8);
  std::atomic<int> count{0};
  pool.run(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(Shard, GrowWindowRebucketsByAbsoluteDueCycle) {
  Shard shard(0, 16, /*window=*/4);
  // The ring stores bare messages; sent_at doubles as a marker so the test
  // can confirm each message landed in its own due bucket after the grow.
  const auto queue_at = [&shard](Cycle due) {
    net::Message m;
    m.to = 1;
    m.sent_at = due;
    shard.bucket(due).push_back(std::move(m));
  };
  queue_at(2);
  queue_at(3);
  queue_at(5);  // shares bucket 1 (5 % 4) with due=1 slots
  // Dues {2, 3, 5} all sit in [now, now + window) for now = 2 — the
  // scheduling invariant grow_window's due recovery relies on.
  shard.grow_window(9, /*now=*/2);
  for (Cycle due : {2, 3, 5}) {
    const auto& bucket = shard.bucket(due);
    ASSERT_EQ(bucket.size(), 1u) << "due " << due;
    EXPECT_EQ(bucket[0].sent_at, due);
  }
}

TEST(Rng, TwoLevelForkIsDeterministicAndOrderSensitive) {
  const Rng root(123);
  Rng a = root.fork(7, 9);
  Rng b = root.fork(7, 9);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  // Distinct (stream, substream) pairs — including swapped ones — give
  // decorrelated streams.
  Rng c = root.fork(9, 7);
  Rng d = root.fork(7, 10);
  const std::uint64_t va = a.next_u64();
  EXPECT_NE(va, c.next_u64());
  EXPECT_NE(va, d.next_u64());
}

TEST(Rng, TwoLevelForkIgnoresParentDrawPosition) {
  // The fork is a function of the parent STATE; a pristine root yields the
  // same children no matter what other streams consumed.
  Rng root1(55);
  Rng root2(55);
  Rng unrelated = root2.fork(1);
  for (int i = 0; i < 100; ++i) unrelated.next_u64();  // burn a sibling
  Rng a = root1.fork(3, 4);
  Rng b = root2.fork(3, 4);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// Minimal recording agent for engine-level scheduling tests.
class ProbeAgent : public Agent {
 public:
  void on_cycle(Context&) override {}
  void on_message(Context& ctx, const net::Message& m) override {
    received.push_back({m.from, ctx.now()});
    seqs.push_back(m.seq);
  }
  void publish(Context&, ItemIdx, ItemId) override {}

  std::vector<std::pair<NodeId, Cycle>> received;
  std::vector<std::uint32_t> seqs;
};

struct ProbeFixture {
  explicit ProbeFixture(Engine::Config config, int n = 8) : engine(config) {
    for (int i = 0; i < n; ++i) {
      auto agent = std::make_unique<ProbeAgent>();
      probes.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
  }
  Engine engine;
  std::vector<ProbeAgent*> probes;
};

net::Message news_message(NodeId from, NodeId to) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.type = net::MsgType::kNews;
  m.payload = net::NewsPayload{};
  return m;
}

TEST(ShardedEngine, DeliveryOrderIdenticalAcrossThreadAndShardConfigs) {
  const auto run_once = [](unsigned threads, std::size_t shard_nodes) {
    Engine::Config config;
    config.seed = 77;
    config.network.jitter = 2;
    config.threads = threads;
    config.shard_nodes = shard_nodes;
    ProbeFixture fx(config, 12);
    for (int c = 0; c < 4; ++c) {
      for (NodeId from = 0; from < 12; ++from) {
        for (NodeId to = 0; to < 12; ++to) {
          if (from != to) fx.engine.send(news_message(from, to));
        }
      }
      fx.engine.run_cycle();
    }
    fx.engine.run_cycles(4);
    std::vector<std::vector<std::pair<NodeId, Cycle>>> out;
    for (auto* probe : fx.probes) out.push_back(probe->received);
    return out;
  };
  const auto base = run_once(1, 4);
  EXPECT_EQ(base, run_once(4, 4));
  EXPECT_EQ(base, run_once(8, 4));
  EXPECT_EQ(base, run_once(4, 3));   // different width, same trajectory
  EXPECT_EQ(base, run_once(2, 64));  // single shard
}

// An agent that fans several messages out of one turn.
class BurstAgent : public Agent {
 public:
  void on_cycle(Context& ctx) override {
    if (ctx.self() != 0) return;
    for (int i = 0; i < 3; ++i) {
      net::NewsPayload news;
      news.id = static_cast<ItemId>(i);
      ctx.send(1, net::MsgType::kNews, news);
    }
  }
  void on_message(Context&, const net::Message& m) override {
    seqs.push_back(m.seq);
  }
  void publish(Context&, ItemIdx, ItemId) override {}

  std::vector<std::uint32_t> seqs;
};

TEST(ShardedEngine, SeqLabelsPositionWithinTheSendersTurn) {
  Engine::Config config;
  config.seed = 13;
  Engine engine(config);
  std::vector<BurstAgent*> agents;
  for (int i = 0; i < 2; ++i) {
    auto agent = std::make_unique<BurstAgent>();
    agents.push_back(agent.get());
    engine.add_agent(std::move(agent));
  }
  engine.run_cycles(2);
  // Node 0's turn emitted seq 0,1,2; node 1 received them in its own
  // (shuffled) delivery order, so the labels form a permutation.
  std::vector<std::uint32_t> sorted = agents[1]->seqs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(ShardedEngine, RaisingLatencyMidRunGrowsTheMailboxWindow) {
  Engine::Config config;
  ProbeFixture fx(config, 4);
  fx.engine.run_cycle();  // materialize shards at the small window
  fx.engine.send(news_message(0, 1));
  net::NetworkConfig slow;
  slow.latency = 7;
  fx.engine.set_network(slow);
  fx.engine.send(news_message(0, 2));
  fx.engine.run_cycles(2);
  EXPECT_EQ(fx.probes[1]->received.size(), 1u);  // pre-change message intact
  EXPECT_TRUE(fx.probes[2]->received.empty());
  fx.engine.run_cycles(6);
  EXPECT_EQ(fx.probes[2]->received.size(), 1u);
}

// ---- closed-form active draws (regression for the biased retry loop) ----

TEST(RandomActive, ExactlyUniformOverNonExcludedActives) {
  Engine::Config config;
  config.seed = 9;
  ProbeFixture fx(config, 5);
  fx.engine.set_active(1, false);
  // Active: {0, 2, 3, 4}; excluding 3 leaves {0, 2, 4}.
  std::array<int, 5> counts{};
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    const NodeId pick = fx.engine.random_active(3);
    ASSERT_LT(pick, 5u);
    ++counts[pick];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[3], 0);
  for (const NodeId v : {0u, 2u, 4u}) {
    EXPECT_NEAR(counts[v], kDraws / 3.0, kDraws * 0.02) << "node " << v;
  }
}

TEST(RandomActive, OnlyExcludedActiveTerminatesWithNoNode) {
  ProbeFixture fx({}, 4);
  for (NodeId v : {0u, 1u, 2u}) fx.engine.set_active(v, false);
  // The old rejection loop had only its attempt bound between this call
  // and spinning forever; the closed-form draw answers immediately.
  EXPECT_EQ(fx.engine.random_active(3), kNoNode);
  EXPECT_NE(fx.engine.random_active(0), kNoNode);  // inactive exclusion: fine
  fx.engine.set_active(3, false);
  EXPECT_EQ(fx.engine.random_active(kNoNode), kNoNode);  // nobody active
}

TEST(RandomActive, SingleDrawConsumedPerCall) {
  // The closed-form draw must consume exactly one index draw, so engine
  // randomness does not depend on the activity pattern's shape.
  Engine::Config config;
  config.seed = 31;
  ProbeFixture fx(config, 6);
  Rng reference(0);
  {
    Engine::Config c2;
    c2.seed = 31;
    ProbeFixture fx2(c2, 6);
    fx2.engine.random_active(2);
    // Both engines' streams must still agree after one draw each.
    fx.engine.random_active(4);
    EXPECT_EQ(fx.engine.rng().next_u64(), fx2.engine.rng().next_u64());
  }
}

TEST(RandomActive, ContextPeerDrawExcludesSelfAndUsesNodeStream) {
  Engine::Config config;
  config.seed = 5;
  ProbeFixture fx(config, 4);
  Context ctx(fx.engine, 2);
  for (int i = 0; i < 200; ++i) {
    const NodeId pick = ctx.random_active_peer();
    ASSERT_NE(pick, 2u);
    ASSERT_LT(pick, 4u);
  }
  // Excluding a second node narrows the support accordingly.
  for (int i = 0; i < 200; ++i) {
    const NodeId pick = ctx.random_active_peer(0);
    ASSERT_TRUE(pick == 1u || pick == 3u);
  }
  // Engine-level stream untouched by Context draws.
  Engine::Config c2;
  c2.seed = 5;
  ProbeFixture fx2(c2, 4);
  EXPECT_EQ(fx.engine.rng().next_u64(), fx2.engine.rng().next_u64());
}

TEST(DescriptorBufferPool, AcquireRecyclesCapacityAndTracksStats) {
  DescriptorBufferPool pool;
  std::vector<net::Descriptor> fresh = pool.acquire();
  EXPECT_EQ(pool.stats().fresh, 1u);
  fresh.reserve(32);
  fresh.push_back(net::Descriptor{1, 0, nullptr});
  pool.recycle(std::move(fresh));
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.available(), 1u);

  std::vector<net::Descriptor> reused = pool.acquire();
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_TRUE(reused.empty());          // elements released...
  EXPECT_GE(reused.capacity(), 32u);    // ...capacity retained
  // Capacity-less buffers are not worth keeping.
  pool.recycle(std::vector<net::Descriptor>{});
  EXPECT_EQ(pool.available(), 0u);
}

// A gossiping agent whose payload buffers should start cycling through the
// shard pools once messages flow: sender acquires, receiver harvests.
class GossipingAgent : public Agent {
 public:
  void on_cycle(Context& ctx) override {
    net::ViewPayload payload;
    payload.sender = net::Descriptor{ctx.self(), ctx.now(), nullptr};
    payload.view = ctx.acquire_descriptor_buffer();
    payload.view.push_back(net::Descriptor{ctx.self(), ctx.now(), nullptr});
    const NodeId peer = ctx.random_active_peer();
    if (peer != kNoNode) ctx.send(peer, net::MsgType::kRpsRequest, std::move(payload));
  }
  void on_message(Context&, const net::Message&) override {}
  void publish(Context&, ItemIdx, ItemId) override {}
};

TEST(DescriptorBufferPool, EngineRecyclesPayloadBuffersAcrossCycles) {
  Engine::Config config;
  config.seed = 21;
  Engine engine(config);
  for (int i = 0; i < 8; ++i) engine.add_agent(std::make_unique<GossipingAgent>());
  engine.run_cycles(10);
  const Engine::PoolStats stats = engine.descriptor_pool_stats();
  EXPECT_GT(stats.recycled, 0u);  // delivered payload storage harvested
  EXPECT_GT(stats.reused, 0u);    // and handed back to later sends
  // Steady state: far fewer allocator round-trips than messages sent.
  EXPECT_LT(stats.fresh, 8u * 10u / 2u);
}

TEST(RandomActive, DrawActiveExcludingBothIds) {
  ProbeFixture fx({}, 5);
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const NodeId pick = fx.engine.draw_active_excluding(rng, 1, 3);
    ASSERT_TRUE(pick == 0u || pick == 2u || pick == 4u);
  }
  for (NodeId v : {0u, 2u, 4u}) fx.engine.set_active(v, false);
  EXPECT_EQ(fx.engine.draw_active_excluding(rng, 1, 3), kNoNode);
}

}  // namespace
}  // namespace whatsup::sim
