// Shared helpers for WhatsUp-node-level tests: a news-capturing sink agent
// and a table-driven opinion stub.
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/opinions.hpp"

namespace whatsup::testing {

// Records every news payload it receives; never forwards.
class CaptureAgent : public sim::Agent {
 public:
  void on_cycle(sim::Context&) override {}
  void on_message(sim::Context&, const net::Message& m) override {
    if (m.type == net::MsgType::kNews) news.push_back(m.news());
  }
  void publish(sim::Context&, ItemIdx, ItemId) override {}

  std::vector<net::NewsPayload> news;
};

// Explicit (user, item) like table.
class FixedOpinions : public sim::Opinions {
 public:
  bool likes(NodeId user, ItemIdx item) const override {
    return likes_set.count({user, item}) != 0;
  }
  void like(NodeId user, ItemIdx item) { likes_set.insert({user, item}); }

  std::set<std::pair<NodeId, ItemIdx>> likes_set;
};

}  // namespace whatsup::testing
