// Cold-start behaviour (§II-D): a joining node inherits the RPS and WUP
// views of a contact and builds a fresh profile from the most popular items
// it can observe in those views.
#include <gtest/gtest.h>

#include <memory>

#include "whatsup/node.hpp"
#include "whatsup_test_utils.hpp"

namespace whatsup {
namespace {

using testing::FixedOpinions;

Profile liked(std::initializer_list<ItemId> ids) {
  Profile p;
  for (ItemId id : ids) p.set(id, 3, 1.0);
  return p;
}

WhatsUpConfig quiet_config() {
  WhatsUpConfig config;
  config.params.rps_period = 1 << 20;
  config.params.wup_period = 1 << 20;
  return config;
}

struct ColdStartFixture {
  ColdStartFixture() : engine({55, {}, {}}) {
    auto contact_owner = std::make_unique<WhatsUpAgent>(0, quiet_config(), opinions);
    contact = contact_owner.get();
    engine.add_agent(std::move(contact_owner));
    auto joiner_owner = std::make_unique<WhatsUpAgent>(1, quiet_config(), opinions);
    joiner = joiner_owner.get();
    engine.add_agent(std::move(joiner_owner));

    // Contact's RPS view holds profiles with a clear popularity ranking:
    // item 100 liked by 3 peers, 200 by 2, 300 by 1, 400 by 1.
    contact->bootstrap_rps({
        net::make_descriptor(10, 0, liked({100, 200, 300})),
        net::make_descriptor(11, 0, liked({100, 200})),
        net::make_descriptor(12, 0, liked({100, 400})),
    });
    contact->bootstrap_wup({net::make_descriptor(10, 0, liked({100}))});
  }

  sim::Engine engine;
  FixedOpinions opinions;
  WhatsUpAgent* contact = nullptr;
  WhatsUpAgent* joiner = nullptr;

  void join() {
    sim::Context ctx(engine, 1);
    joiner->cold_start_from(ctx, *contact);
  }
};

TEST(ColdStart, InheritsBothViews) {
  ColdStartFixture fx;
  fx.join();
  EXPECT_EQ(fx.joiner->rps_view().size(), 3u);
  EXPECT_TRUE(fx.joiner->rps_view().contains(10));
  EXPECT_TRUE(fx.joiner->rps_view().contains(12));
  EXPECT_EQ(fx.joiner->wup_view().size(), 1u);
  EXPECT_TRUE(fx.joiner->wup_view().contains(10));
}

TEST(ColdStart, RatesThreeMostPopularItems) {
  ColdStartFixture fx;
  fx.join();
  const Profile& profile = fx.joiner->user_profile();
  EXPECT_EQ(profile.size(), 3u);
  EXPECT_TRUE(profile.contains(100));  // popularity 3
  EXPECT_TRUE(profile.contains(200));  // popularity 2
  // Exactly one of the popularity-1 items (deterministic tie-break by id).
  EXPECT_TRUE(profile.contains(300));
  EXPECT_FALSE(profile.contains(400));
  for (const double score : profile.scores()) EXPECT_EQ(score, 1.0);
}

TEST(ColdStart, ColdStartItemCountHonorsParameter) {
  ColdStartFixture fx;
  WhatsUpConfig config = quiet_config();
  config.params.cold_start_items = 1;
  auto small = std::make_unique<WhatsUpAgent>(2, config, fx.opinions);
  WhatsUpAgent* small_ptr = small.get();
  fx.engine.add_agent(std::move(small));
  sim::Context ctx(fx.engine, 2);
  small_ptr->cold_start_from(ctx, *fx.contact);
  EXPECT_EQ(small_ptr->user_profile().size(), 1u);
  EXPECT_TRUE(small_ptr->user_profile().contains(100));
}

TEST(ColdStart, ResetsPreviousState) {
  ColdStartFixture fx;
  // Give the joiner prior state, then cold-start: it must be replaced.
  fx.joiner->bootstrap_rps({net::Descriptor{42, 0, nullptr}});
  fx.join();
  EXPECT_FALSE(fx.joiner->rps_view().contains(42));
}

TEST(ColdStart, RatedItemsMarkedSeen) {
  ColdStartFixture fx;
  fx.join();
  EXPECT_TRUE(fx.joiner->has_seen(100));
  EXPECT_TRUE(fx.joiner->has_seen(200));
  EXPECT_FALSE(fx.joiner->has_seen(999));
}

TEST(ColdStart, EmptyContactViewsYieldEmptyProfile) {
  sim::Engine engine({56, {}, {}});
  FixedOpinions opinions;
  auto a = std::make_unique<WhatsUpAgent>(0, quiet_config(), opinions);
  auto b = std::make_unique<WhatsUpAgent>(1, quiet_config(), opinions);
  WhatsUpAgent* contact = a.get();
  WhatsUpAgent* joiner = b.get();
  engine.add_agent(std::move(a));
  engine.add_agent(std::move(b));
  sim::Context ctx(engine, 1);
  joiner->cold_start_from(ctx, *contact);
  EXPECT_TRUE(joiner->user_profile().empty());
  EXPECT_EQ(joiner->rps_view().size(), 0u);
}

}  // namespace
}  // namespace whatsup
