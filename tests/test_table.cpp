#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace whatsup {
namespace {

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(0.5), "0.50");
  EXPECT_EQ(fixed(1.23456, 3), "1.235");
  EXPECT_EQ(fixed(-2.0, 0), "-2");
}

TEST(Format, SiCount) {
  EXPECT_EQ(si_count(950), "950");
  EXPECT_EQ(si_count(4600), "4.6k");
  EXPECT_EQ(si_count(1100000), "1.1M");
}

TEST(Table, PrintsHeadersAndRowsAligned) {
  Table t({"Algorithm", "F1"});
  t.add_row({"WhatsUp", "0.60"});
  t.add_row({"Gossip", "0.51"});
  std::ostringstream os;
  t.print(os, "Demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Algorithm"), std::string::npos);
  EXPECT_NE(out.find("WhatsUp"), std::string::npos);
  EXPECT_NE(out.find("0.51"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Series, PrintsGnuplotStyle) {
  Series s("fanout", {"WhatsUp", "CF"});
  s.add(5, {0.5, 0.4});
  s.add(10, {0.6, 0.5});
  std::ostringstream os;
  s.print(os, "F1 vs fanout");
  const std::string out = os.str();
  EXPECT_NE(out.find("# F1 vs fanout"), std::string::npos);
  EXPECT_NE(out.find("# fanout\tWhatsUp\tCF"), std::string::npos);
  EXPECT_NE(out.find("5.000\t0.5000\t0.4000"), std::string::npos);
  EXPECT_EQ(s.points(), 2u);
}

}  // namespace
}  // namespace whatsup
