#include "gossip/view.hpp"

#include <gtest/gtest.h>

#include <set>

namespace whatsup::gossip {
namespace {

Profile liked(std::initializer_list<ItemId> ids) {
  Profile p;
  for (ItemId id : ids) p.set(id, 0, 1.0);
  return p;
}

net::Descriptor desc(NodeId node, Cycle ts, std::initializer_list<ItemId> likes = {}) {
  return net::make_descriptor(node, ts, liked(likes));
}

TEST(View, InsertAndLookup) {
  View view(5);
  EXPECT_TRUE(view.empty());
  view.insert_or_refresh(desc(1, 10));
  view.insert_or_refresh(desc(2, 20));
  EXPECT_EQ(view.size(), 2u);
  EXPECT_TRUE(view.contains(1));
  EXPECT_FALSE(view.contains(3));
  ASSERT_NE(view.find(2), nullptr);
  EXPECT_EQ(view.find(2)->timestamp(), 20);
}

TEST(View, RefreshKeepsFreshest) {
  View view(5);
  view.insert_or_refresh(desc(1, 10, {7}));
  view.insert_or_refresh(desc(1, 5, {8}));  // stale: ignored
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.find(1)->timestamp(), 10);
  EXPECT_TRUE(view.find(1)->profile_ref().contains(7));
  view.insert_or_refresh(desc(1, 30, {9}));  // fresher: replaces
  EXPECT_EQ(view.find(1)->timestamp(), 30);
  EXPECT_TRUE(view.find(1)->profile_ref().contains(9));
}

// Regression: a fresher descriptor with a NULL profile snapshot used to
// replace the whole entry, silently downgrading a peer we had profile
// contents for. The refresh must keep the newer timestamp but retain the
// previously known snapshot.
TEST(View, RefreshWithNullSnapshotKeepsKnownProfile) {
  View view(5);
  view.insert_or_refresh(desc(1, 10, {7}));
  view.insert_or_refresh(net::Descriptor{1, 20, nullptr});  // fresher, bare
  ASSERT_NE(view.find(1), nullptr);
  EXPECT_EQ(view.find(1)->timestamp(), 20);          // timestamp refreshed
  ASSERT_TRUE(view.find(1)->has_profile());        // snapshot retained
  EXPECT_TRUE(view.find(1)->profile_ref().contains(7));
  // A fresher descriptor WITH a snapshot still replaces normally.
  view.insert_or_refresh(desc(1, 30, {9}));
  EXPECT_TRUE(view.find(1)->profile_ref().contains(9));
  EXPECT_FALSE(view.find(1)->profile_ref().contains(7));
}

TEST(View, StaleNullSnapshotRefreshStillIgnored) {
  View view(5);
  view.insert_or_refresh(desc(1, 10, {7}));
  view.insert_or_refresh(net::Descriptor{1, 5, nullptr});  // stale: ignored
  EXPECT_EQ(view.find(1)->timestamp(), 10);
  EXPECT_TRUE(view.find(1)->profile_ref().contains(7));
}

TEST(View, OldestFindsMinTimestamp) {
  View view(5);
  EXPECT_EQ(view.oldest(), nullptr);
  view.insert_or_refresh(desc(1, 10));
  view.insert_or_refresh(desc(2, 3));
  view.insert_or_refresh(desc(3, 7));
  EXPECT_EQ(view.oldest()->node, 2u);
}

TEST(View, OldestBreaksTimestampTiesByNodeId) {
  // Equal timestamps must resolve to the smallest node id regardless of
  // insertion order — with the old bare-timestamp comparison the winner
  // depended on which entry happened to sit first, which view-eviction
  // machinery (gossip/hygiene.hpp) would have turned into nondeterminism.
  View a(5);
  a.insert_or_refresh(desc(9, 3));
  a.insert_or_refresh(desc(2, 3));
  a.insert_or_refresh(desc(5, 8));
  View b(5);
  b.insert_or_refresh(desc(2, 3));
  b.insert_or_refresh(desc(5, 8));
  b.insert_or_refresh(desc(9, 3));
  EXPECT_EQ(a.oldest()->node, 2u);
  EXPECT_EQ(b.oldest()->node, 2u);
}

TEST(View, RemoveErasesEntry) {
  View view(5);
  view.insert_or_refresh(desc(1, 1));
  view.insert_or_refresh(desc(2, 2));
  view.remove(1);
  EXPECT_FALSE(view.contains(1));
  EXPECT_EQ(view.size(), 1u);
}

TEST(View, RandomSubsetSizeAndDistinctness) {
  Rng rng(3);
  View view(10);
  for (NodeId v = 0; v < 10; ++v) view.insert_or_refresh(desc(v, 0));
  const auto subset = view.random_subset(rng, 4);
  EXPECT_EQ(subset.size(), 4u);
  std::set<NodeId> nodes;
  for (const auto& d : subset) nodes.insert(d.node);
  EXPECT_EQ(nodes.size(), 4u);
  EXPECT_EQ(view.random_subset(rng, 99).size(), 10u);
}

TEST(View, RandomMemberFromEmptyIsNoNode) {
  Rng rng(3);
  View view(4);
  EXPECT_EQ(view.random_member(rng), kNoNode);
  view.insert_or_refresh(desc(7, 0));
  EXPECT_EQ(view.random_member(rng), 7u);
}

TEST(View, AssignRandomRespectsCapacity) {
  Rng rng(5);
  View view(3);
  std::vector<net::Descriptor> candidates;
  for (NodeId v = 0; v < 10; ++v) candidates.push_back(desc(v, 0));
  view.assign_random(candidates, rng);
  EXPECT_EQ(view.size(), 3u);
}

TEST(View, AssignClosestKeepsMostSimilar) {
  Rng rng(7);
  View view(2);
  const Profile own = liked({1, 2, 3});
  std::vector<net::Descriptor> candidates = {
      desc(1, 0, {1, 2, 3}),      // perfect match
      desc(2, 0, {1, 2}),         // good match
      desc(3, 0, {50, 51}),       // disjoint
      desc(4, 0, {}),             // empty
  };
  view.assign_closest(candidates, own, Metric::kWup, rng);
  ASSERT_EQ(view.size(), 2u);
  std::set<NodeId> kept;
  for (const auto& d : view.entries()) kept.insert(d.node);
  EXPECT_TRUE(kept.count(1));
  EXPECT_TRUE(kept.count(2));
}

TEST(View, AssignClosestRandomizesTies) {
  const Profile own;  // empty: everything ties at similarity 0
  std::vector<net::Descriptor> candidates;
  for (NodeId v = 0; v < 20; ++v) candidates.push_back(desc(v, 0));
  std::set<NodeId> first_picks;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    View view(1);
    view.assign_closest(candidates, own, Metric::kWup, rng);
    first_picks.insert(view.entries()[0].node);
  }
  EXPECT_GT(first_picks.size(), 3u);  // not stuck on one candidate
}

TEST(MergeCandidates, DeduplicatesKeepingFreshest) {
  const std::vector<net::Descriptor> base = {desc(1, 5), desc(2, 7)};
  const std::vector<net::Descriptor> incoming = {desc(1, 9), desc(3, 2)};
  const auto merged = merge_candidates(base, incoming, /*self=*/99);
  EXPECT_EQ(merged.size(), 3u);
  for (const auto& d : merged) {
    if (d.node == 1) EXPECT_EQ(d.timestamp(), 9);
  }
}

TEST(MergeCandidates, ExcludesSelf) {
  const std::vector<net::Descriptor> base = {desc(1, 5), desc(2, 7)};
  const std::vector<net::Descriptor> incoming = {desc(2, 9)};
  const auto merged = merge_candidates(base, incoming, /*self=*/2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].node, 1u);
}

}  // namespace
}  // namespace whatsup::gossip
