#include "graph/components.hpp"

#include <gtest/gtest.h>

namespace whatsup::graph {
namespace {

TEST(WeakComponents, DirectionIgnored) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 1);  // 0,1,2 weakly connected
  g.add_edge(3, 4);
  const auto result = weak_components(g);
  EXPECT_EQ(result.count, 2u);
  EXPECT_EQ(result.largest, 3u);
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(WeakComponents, AllIsolated) {
  const auto result = weak_components(Digraph(4));
  EXPECT_EQ(result.count, 4u);
  EXPECT_EQ(result.largest, 1u);
}

TEST(ConnectedComponents, UndirectedGraph) {
  UGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(4, 5);
  const auto result = connected_components(g);
  EXPECT_EQ(result.count, 3u);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(result.largest, 3u);
}

TEST(BfsHops, DistancesAndUnreachable) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);  // 2 reachable at distance 2 two ways
  const auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[4], -1);
  EXPECT_EQ(dist[5], -1);
}

TEST(BfsHops, InvalidSource) {
  Digraph g(2);
  const auto dist = bfs_hops(g, 99);
  EXPECT_EQ(dist[0], -1);
  EXPECT_EQ(dist[1], -1);
}

}  // namespace
}  // namespace whatsup::graph
