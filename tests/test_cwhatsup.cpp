#include "baselines/cwhatsup.hpp"

#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "metrics/scores.hpp"

namespace whatsup::baselines {
namespace {

// Two disjoint interest groups of 5; items alternate groups.
data::Workload grouped_workload(std::size_t items_per_group = 6) {
  data::Workload w;
  w.name = "cw";
  w.n_users = 10;
  w.n_topics = 2;
  for (ItemIdx i = 0; i < items_per_group * 2; ++i) {
    const int group = static_cast<int>(i % 2);
    data::NewsSpec spec;
    spec.index = i;
    spec.id = make_item_id(w.name, i);
    spec.topic = group;
    spec.source = static_cast<NodeId>(group * 5);
    spec.publish_at = static_cast<Cycle>(i);
    DynBitset interested(10);
    for (NodeId u = 0; u < 5; ++u) interested.set(group * 5 + u);
    w.news.push_back(spec);
    w.interested_in.push_back(interested);
  }
  w.validate();
  return w;
}

TEST(CWhatsUp, ReachesTheInterestGroupOnceProfilesExist) {
  const data::Workload w = grouped_workload();
  CWhatsUpConfig config;
  config.f_like = 4;
  config.profile_window = 1000;
  Rng rng(1);
  const CWhatsUpResult result = run_cwhatsup(w, config, rng);
  ASSERT_EQ(result.reached.size(), w.num_items());
  // Later items (profiles built) should reach most of their group.
  std::vector<ItemIdx> late;
  for (ItemIdx i = 4; i < w.num_items(); ++i) late.push_back(i);
  const auto scores = metrics::compute_scores(w, result.reached, late);
  EXPECT_GT(scores.recall, 0.6);
  // Ten users, two groups: the cold-start random seeding caps precision
  // well below 1 at this scale, but complete search must beat a coin flip
  // against the 4/9 non-group share.
  EXPECT_GT(scores.precision, 0.40);
}

TEST(CWhatsUp, MessagesCountDeliveries) {
  const data::Workload w = grouped_workload(2);
  CWhatsUpConfig config;
  Rng rng(2);
  const CWhatsUpResult result = run_cwhatsup(w, config, rng);
  std::size_t total_reached = 0;
  for (const auto& bits : result.reached) total_reached += bits.count();
  EXPECT_EQ(result.messages, total_reached);
}

TEST(CWhatsUp, SourceNeverInReachedSet) {
  const data::Workload w = grouped_workload();
  CWhatsUpConfig config;
  Rng rng(3);
  const CWhatsUpResult result = run_cwhatsup(w, config, rng);
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    EXPECT_FALSE(result.reached[i].test(w.news[i].source)) << "item " << i;
  }
}

TEST(CWhatsUp, DeterministicGivenSeed) {
  const data::Workload w = grouped_workload();
  CWhatsUpConfig config;
  Rng a(5), b(5);
  const auto ra = run_cwhatsup(w, config, a);
  const auto rb = run_cwhatsup(w, config, b);
  EXPECT_EQ(ra.messages, rb.messages);
  for (ItemIdx i = 0; i < w.num_items(); ++i) EXPECT_EQ(ra.reached[i], rb.reached[i]);
}

TEST(CWhatsUp, LargerFanoutReachesMore) {
  const data::Workload w = grouped_workload();
  Rng a(7), b(7);
  CWhatsUpConfig small;
  small.f_like = 1;
  CWhatsUpConfig big;
  big.f_like = 6;
  const auto rs = run_cwhatsup(w, small, a);
  const auto rb = run_cwhatsup(w, big, b);
  std::size_t reached_small = 0, reached_big = 0;
  for (const auto& bits : rs.reached) reached_small += bits.count();
  for (const auto& bits : rb.reached) reached_big += bits.count();
  EXPECT_GE(reached_big, reached_small);
}

TEST(CWhatsUp, TtlBoundsDislikeDeliveries) {
  // A workload where only the source likes the item: every other delivery
  // is a dislike, so deliveries are bounded by the TTL budget.
  data::Workload w;
  w.name = "ttl";
  w.n_users = 8;
  w.n_topics = 1;
  data::NewsSpec spec;
  spec.index = 0;
  spec.id = make_item_id(w.name, 0);
  spec.source = 0;
  spec.publish_at = 0;
  DynBitset interested(8);
  interested.set(0);
  w.news.push_back(spec);
  w.interested_in.push_back(interested);

  CWhatsUpConfig config;
  config.ttl = 2;
  config.f_like = 4;
  Rng rng(9);
  const auto result = run_cwhatsup(w, config, rng);
  // The source's like triggers selection (by profile similarity, all zero
  // at the start -> no one) plus at most ttl dislike-driven deliveries.
  EXPECT_LE(result.reached[0].count(), 2u + 8u);
}

}  // namespace
}  // namespace whatsup::baselines
