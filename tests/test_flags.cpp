#include "common/flags.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace whatsup {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EqualsSyntax) {
  Flags f = make_flags({"--users=480", "--scale=0.5", "--name=survey"});
  EXPECT_EQ(f.get_int("users", 0), 480);
  EXPECT_DOUBLE_EQ(f.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(f.get_string("name", ""), "survey");
}

TEST(Flags, SpaceSyntax) {
  Flags f = make_flags({"--users", "750", "--name", "digg"});
  EXPECT_EQ(f.get_int("users", 0), 750);
  EXPECT_EQ(f.get_string("name", ""), "digg");
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = make_flags({});
  EXPECT_EQ(f.get_int("users", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("scale", 1.5), 1.5);
  EXPECT_EQ(f.get_string("name", "x"), "x");
  EXPECT_TRUE(f.get_bool("verbose", true));
}

TEST(Flags, BareBooleanFlag) {
  Flags f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, BoolParsing) {
  Flags f = make_flags({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, HelpRequested) {
  Flags f = make_flags({"--help"});
  EXPECT_TRUE(f.help_requested());
  f.get_int("users", 480, "number of users");
  std::ostringstream os;
  EXPECT_TRUE(f.maybe_print_help(os));
  EXPECT_NE(os.str().find("--users"), std::string::npos);
  EXPECT_NE(os.str().find("number of users"), std::string::npos);
}

TEST(Flags, NoHelpMeansNoOutput) {
  Flags f = make_flags({});
  std::ostringstream os;
  EXPECT_FALSE(f.maybe_print_help(os));
  EXPECT_TRUE(os.str().empty());
}

TEST(Flags, UnknownFlagsReported) {
  Flags f = make_flags({"--known=1", "--typoed=2"});
  f.get_int("known", 0);
  const auto unknown = f.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typoed");
}

}  // namespace
}  // namespace whatsup
