#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace whatsup {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MomentsMatchClosedForm) {
  RunningStat s;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_NEAR(s.variance(), 5.25, 1e-12);  // population variance
  EXPECT_NEAR(s.stddev(), std::sqrt(5.25), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.sum(), 36.0, 1e-12);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(-3.5);
  EXPECT_EQ(s.mean(), -3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), -3.5);
  EXPECT_EQ(s.max(), -3.5);
}

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.35);  // bin 1
  h.add(0.9);   // bin 3
  EXPECT_EQ(h.bins(), 4u);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(1), 2.0);
  EXPECT_EQ(h.count(2), 0.0);
  EXPECT_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 1.0);
  EXPECT_EQ(h.count(1), 1.0);
}

TEST(Histogram, WeightsAndCenters) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0, 2.5);
  EXPECT_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
}

TEST(SpanStats, MeanAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 20.0);
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace whatsup
