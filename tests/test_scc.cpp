#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace whatsup::graph {
namespace {

TEST(Scc, EmptyGraph) {
  const auto result = strongly_connected_components(Digraph{});
  EXPECT_EQ(result.count, 0u);
  EXPECT_EQ(result.largest, 0u);
  EXPECT_EQ(largest_scc_fraction(Digraph{}), 0.0);
}

TEST(Scc, SingleCycleIsOneComponent) {
  Digraph g(5);
  for (NodeId v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.count, 1u);
  EXPECT_EQ(result.largest, 5u);
  EXPECT_DOUBLE_EQ(largest_scc_fraction(g), 1.0);
}

TEST(Scc, DagHasSingletonComponents) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.count, 4u);
  EXPECT_EQ(result.largest, 1u);
  EXPECT_DOUBLE_EQ(largest_scc_fraction(g), 0.25);
}

TEST(Scc, TwoCyclesJoinedByOneWayBridge) {
  Digraph g(6);
  // Cycle A: 0-1-2, cycle B: 3-4-5, bridge 2 -> 3.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.count, 2u);
  EXPECT_EQ(result.largest, 3u);
  // Nodes within each cycle share a component label.
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_EQ(result.component[1], result.component[2]);
  EXPECT_EQ(result.component[3], result.component[4]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(Scc, BidirectionalBridgeMergesComponents) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.count, 1u);
  EXPECT_EQ(result.largest, 6u);
}

TEST(Scc, IsolatedNodesAreSingletons) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.count, 2u);
  EXPECT_EQ(result.largest, 2u);
}

TEST(Scc, LargeRandomGraphTerminatesAndLabelsEveryone) {
  // Deep chains exercise the iterative Tarjan (no stack overflow).
  Rng rng(7);
  Digraph g(20000);
  for (NodeId v = 0; v + 1 < 20000; ++v) g.add_edge(v, v + 1);
  g.add_edge(19999, 0);  // giant cycle
  const auto result = strongly_connected_components(g);
  EXPECT_EQ(result.count, 1u);
  EXPECT_EQ(result.largest, 20000u);
}

}  // namespace
}  // namespace whatsup::graph
