#include "gossip/clustering_protocol.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "protocol_test_utils.hpp"

namespace whatsup::gossip {
namespace {

using testing::ClusteringAgent;
using testing::bootstrap_ring;

Profile group_profile(int group, std::size_t items_per_group = 10) {
  Profile p;
  const ItemId base = static_cast<ItemId>(group) * 1000 + 1;
  for (std::size_t i = 0; i < items_per_group; ++i) {
    p.set(base + i, 0, 1.0);
  }
  return p;
}

struct ClusterFixture {
  ClusterFixture(std::size_t n, int groups, Metric metric, std::uint64_t seed = 1)
      : engine(sim::Engine::Config{seed, {}, {}}) {
    for (std::size_t v = 0; v < n; ++v) {
      const int group = static_cast<int>(v) % groups;
      auto agent = std::make_unique<ClusteringAgent>(static_cast<NodeId>(v), 8, 5,
                                                     metric, group_profile(group));
      group_of.push_back(group);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    bootstrap_ring(agents, 3);
  }

  // Fraction of WUP-view edges that stay within the node's interest group.
  double homophily() const {
    std::size_t same = 0, total = 0;
    for (std::size_t v = 0; v < agents.size(); ++v) {
      for (const auto& d : agents[v]->wup_view().entries()) {
        ++total;
        if (group_of[d.node] == group_of[v]) ++same;
      }
    }
    return total > 0 ? static_cast<double>(same) / static_cast<double>(total) : 0.0;
  }

  sim::Engine engine;
  std::vector<ClusteringAgent*> agents;
  std::vector<int> group_of;
};

TEST(WupClustering, ConvergesToInterestGroups) {
  ClusterFixture fx(60, 3, Metric::kWup);
  fx.engine.run_cycles(30);
  // 3 groups of 20: random views would have homophily ~1/3.
  EXPECT_GT(fx.homophily(), 0.9);
  for (auto* agent : fx.agents) EXPECT_EQ(agent->wup_view().size(), 5u);
}

TEST(WupClustering, CosineMetricAlsoClusters) {
  ClusterFixture fx(60, 3, Metric::kCosine);
  fx.engine.run_cycles(30);
  EXPECT_GT(fx.homophily(), 0.9);
}

TEST(WupClustering, ViewsExcludeSelf) {
  ClusterFixture fx(30, 2, Metric::kWup);
  fx.engine.run_cycles(20);
  for (NodeId v = 0; v < fx.agents.size(); ++v) {
    EXPECT_FALSE(fx.agents[v]->wup_view().contains(v));
  }
}

TEST(WupClustering, EmptyProfilesStillFillViews) {
  // Cold start: all similarities are 0, the view fills with random peers
  // drawn from the RPS candidate stream.
  sim::Engine engine(sim::Engine::Config{3, {}, {}});
  std::vector<ClusteringAgent*> agents;
  for (NodeId v = 0; v < 20; ++v) {
    auto agent = std::make_unique<ClusteringAgent>(v, 6, 4, Metric::kWup, Profile{});
    agents.push_back(agent.get());
    engine.add_agent(std::move(agent));
  }
  bootstrap_ring(agents, 2);
  engine.run_cycles(15);
  for (auto* agent : agents) EXPECT_EQ(agent->wup_view().size(), 4u);
}

TEST(WupClustering, AvgSimilarityGrowsDuringConvergence) {
  ClusterFixture fx(60, 3, Metric::kWup);
  fx.engine.run_cycles(3);
  const Profile probe = group_profile(fx.group_of[0]);
  // Measure through an agent's own average (its profile is fixed).
  double early = 0.0;
  for (auto* a : fx.agents) early += a->wup_view().size();
  fx.engine.run_cycles(27);
  double late_homophily = fx.homophily();
  EXPECT_GT(late_homophily, 0.8);
  (void)probe;
  (void)early;
}

TEST(WupClustering, GossipTrafficTagged) {
  ClusterFixture fx(20, 2, Metric::kWup);
  fx.engine.run_cycles(5);
  EXPECT_GT(fx.engine.traffic().messages(net::Protocol::kWup), 0u);
  EXPECT_GT(fx.engine.traffic().messages(net::Protocol::kRps), 0u);
  EXPECT_EQ(fx.engine.traffic().messages(net::Protocol::kBeep), 0u);
}

}  // namespace
}  // namespace whatsup::gossip
