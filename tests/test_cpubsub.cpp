#include "baselines/cpubsub.hpp"

#include <gtest/gtest.h>

#include "common/hash.hpp"

namespace whatsup::baselines {
namespace {

// 6 users, 2 topics. Topic 0 items liked by {0,1,2}; topic 1 by {3,4}.
// User 5 likes nothing. One "cross" item of topic 0 additionally liked by 3,
// which subscribes user 3 to topic 0 and dilutes precision.
data::Workload pubsub_workload() {
  data::Workload w;
  w.name = "pubsub";
  w.n_users = 6;
  w.n_topics = 2;
  auto add_item = [&w](int topic, std::initializer_list<NodeId> fans, NodeId source) {
    data::NewsSpec spec;
    spec.index = static_cast<ItemIdx>(w.news.size());
    spec.id = make_item_id(w.name, spec.index);
    spec.topic = topic;
    spec.source = source;
    DynBitset interested(6);
    for (NodeId u : fans) interested.set(u);
    w.news.push_back(spec);
    w.interested_in.push_back(interested);
  };
  add_item(0, {0, 1, 2}, 0);
  add_item(0, {0, 1, 2}, 1);
  add_item(0, {0, 1, 2, 3}, 2);  // the cross item
  add_item(1, {3, 4}, 3);
  w.validate();
  return w;
}

TEST(CPubSub, RecallIsAlwaysOne) {
  const data::Workload w = pubsub_workload();
  const std::vector<ItemIdx> measured = {0, 1, 2, 3};
  const CentralizedResult r = evaluate_cpubsub(w, measured);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);  // complete dissemination by construction
}

TEST(CPubSub, PrecisionLimitedByTopicGranularity) {
  const data::Workload w = pubsub_workload();
  // Topic-0 subscribers: {0,1,2,3} (user 3 via the cross item).
  // Item 0 (source 0): reached {1,2,3}, interested {1,2} -> precision 2/3.
  const std::vector<ItemIdx> measured = {0};
  const CentralizedResult r = evaluate_cpubsub(w, measured);
  EXPECT_NEAR(r.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_NEAR(r.f1, 2 * (2.0 / 3.0) / (2.0 / 3.0 + 1.0), 1e-12);
}

TEST(CPubSub, MessageCountIsSubscriberCount) {
  const data::Workload w = pubsub_workload();
  const std::vector<ItemIdx> measured = {0, 3};
  const CentralizedResult r = evaluate_cpubsub(w, measured);
  // Item 0: 3 non-source subscribers; item 3: topic-1 subscribers {3,4},
  // source 3 excluded -> 1.
  EXPECT_EQ(r.messages, 4u);
}

TEST(CPubSub, EmptyMeasuredSetIsZero) {
  const data::Workload w = pubsub_workload();
  const CentralizedResult r = evaluate_cpubsub(w, {});
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.f1, 0.0);
}

TEST(CPubSub, PerfectTopicsGivePerfectScores) {
  // Without the cross item, topics == audiences: precision = recall = 1.
  data::Workload w = pubsub_workload();
  w.news.pop_back();
  w.interested_in.pop_back();
  w.news.pop_back();  // drop the cross item (index 2)
  w.interested_in.pop_back();
  const std::vector<ItemIdx> measured = {0, 1};
  const CentralizedResult r = evaluate_cpubsub(w, measured);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

}  // namespace
}  // namespace whatsup::baselines
