#include "net/network.hpp"

#include <gtest/gtest.h>

namespace whatsup::net {
namespace {

TEST(NetworkConfig, PerfectDefaults) {
  const NetworkConfig c = NetworkConfig::perfect();
  EXPECT_EQ(c.loss_rate, 0.0);
  EXPECT_EQ(c.latency, 1);
  EXPECT_EQ(c.jitter, 0);
  EXPECT_EQ(c.inbox_capacity, 0u);
}

TEST(NetworkConfig, LossyPreset) {
  const NetworkConfig c = NetworkConfig::lossy(0.2);
  EXPECT_DOUBLE_EQ(c.loss_rate, 0.2);
}

TEST(NetworkConfig, ModelNetHasSmallResidualLoss) {
  const NetworkConfig c = NetworkConfig::modelnet();
  EXPECT_GT(c.loss_rate, 0.0);
  EXPECT_LT(c.loss_rate, 0.05);
}

TEST(NetworkConfig, PlanetLabIsCongested) {
  const NetworkConfig c = NetworkConfig::planetlab();
  // §V-D: up to ~30% of news never reached their targets.
  EXPECT_GE(c.loss_rate, 0.2);
  EXPECT_LE(c.loss_rate, 0.35);
  EXPECT_GT(c.inbox_capacity, 0u);
}

TEST(NetworkConfig, DescribeMentionsParameters) {
  const std::string text = describe(NetworkConfig::planetlab());
  EXPECT_NE(text.find("loss=0.28"), std::string::npos);
  EXPECT_NE(text.find("inbox"), std::string::npos);
}

}  // namespace
}  // namespace whatsup::net
