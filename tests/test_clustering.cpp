#include "graph/clustering.hpp"

#include <gtest/gtest.h>

namespace whatsup::graph {
namespace {

TEST(Clustering, TriangleIsOne) {
  UGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(avg_clustering_coefficient(g), 1.0);
}

TEST(Clustering, StarIsZero) {
  UGraph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  EXPECT_DOUBLE_EQ(avg_clustering_coefficient(g), 0.0);
}

TEST(Clustering, PathIgnoresDegreeOneNodes) {
  UGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // Only node 1 has degree >= 2; its neighbors are not linked.
  EXPECT_DOUBLE_EQ(avg_clustering_coefficient(g), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  UGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  // Nodes 0,1: coefficient 1. Node 2: 1 link among 3 pairs = 1/3. Node 3 skipped.
  EXPECT_NEAR(avg_clustering_coefficient(g), (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-12);
}

TEST(Clustering, DigraphUsesUndirectedClosure) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // directed 3-cycle closes into a triangle
  EXPECT_DOUBLE_EQ(avg_clustering_coefficient(g), 1.0);
}

TEST(Clustering, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(avg_clustering_coefficient(UGraph{}), 0.0);
  EXPECT_DOUBLE_EQ(avg_clustering_coefficient(Digraph{}), 0.0);
}

}  // namespace
}  // namespace whatsup::graph
