// Property tests for the profile stat caches (norm / liked_count /
// version), the snapshot + similarity caches built on top of them, and the
// obfuscated-profile cache. The contract under test: cached values are
// indistinguishable — bit-for-bit — from recomputing everything from
// scratch, after ARBITRARY sequences of set / fold / fold_profile /
// purge_older_than.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "profile/obfuscation.hpp"
#include "profile/profile.hpp"
#include "profile/snapshot.hpp"

namespace whatsup {
namespace {

// Fresh recomputation of the cached stats, straight from the entry arrays.
double fresh_norm(const Profile& p) {
  double sum = 0.0;
  for (const double s : p.scores()) sum += s * s;
  return std::sqrt(sum);
}

std::size_t fresh_liked(const Profile& p) {
  std::size_t liked = 0;
  for (const double s : p.scores()) liked += s > 0.5 ? 1 : 0;
  return liked;
}

void expect_caches_fresh(const Profile& p) {
  // Bit-equality, not tolerance: norm() recomputes with the same summation
  // order as a fresh scan, and liked_count is exact integer bookkeeping.
  EXPECT_EQ(p.norm(), fresh_norm(p));
  EXPECT_EQ(p.liked_count(), fresh_liked(p));
  EXPECT_EQ(p.version() == 0, p.empty());
}

Profile random_profile(Rng& rng, std::size_t entries, ItemId universe) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) {
    p.set(rng.index(universe) + 1, static_cast<Cycle>(rng.index(40)), rng.uniform());
  }
  return p;
}

TEST(ProfileCache, CachesMatchFreshRecomputeUnderRandomOps) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    Profile p;
    std::uint64_t last_version = p.version();
    EXPECT_EQ(last_version, 0u);
    for (int op = 0; op < 200; ++op) {
      const Profile before = p;
      switch (rng.index(4)) {
        case 0:
          p.set(rng.index(60) + 1, static_cast<Cycle>(rng.index(40)),
                rng.bernoulli(0.5) ? 1.0 : 0.0);
          break;
        case 1:
          p.fold(rng.index(60) + 1, static_cast<Cycle>(rng.index(40)), rng.uniform());
          break;
        case 2:
          p.fold_profile(random_profile(rng, rng.index(20), 60));
          break;
        case 3:
          p.purge_older_than(static_cast<Cycle>(rng.index(45)));
          break;
      }
      expect_caches_fresh(p);
      // Version moves exactly when the contents may have changed; equal
      // versions must imply equal contents.
      if (p.version() == before.version()) EXPECT_EQ(p, before);
      last_version = p.version();
    }
  }
}

TEST(ProfileCache, NoOpPurgeKeepsVersion) {
  Profile p;
  p.set(1, 10, 1.0);
  p.set(2, 20, 0.0);
  const std::uint64_t v = p.version();
  p.purge_older_than(5);  // removes nothing
  EXPECT_EQ(p.version(), v);
  p.purge_older_than(15);  // removes id 1
  EXPECT_NE(p.version(), v);
  EXPECT_EQ(p.size(), 1u);
  expect_caches_fresh(p);
}

TEST(ProfileCache, EmptyAlwaysVersionZero) {
  Profile p;
  EXPECT_EQ(p.version(), 0u);
  p.set(1, 0, 1.0);
  EXPECT_NE(p.version(), 0u);
  p.purge_older_than(100);  // empties the profile
  EXPECT_EQ(p.version(), 0u);
  p.set(2, 0, 1.0);
  p.clear();
  EXPECT_EQ(p.version(), 0u);
}

TEST(ProfileCache, EqualVersionImpliesEqualContentAcrossInstances) {
  // Two profiles built through identical operations still get DIFFERENT
  // versions (stamps are globally unique), so version collisions cannot
  // alias distinct contents.
  Profile a, b;
  a.set(1, 0, 1.0);
  b.set(1, 0, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.version(), b.version());
  // Copies share both contents and version.
  const Profile c = a;
  EXPECT_EQ(c, a);
  EXPECT_EQ(c.version(), a.version());
}

TEST(ProfileCache, FoldProfileMatchesPerEntryFolds) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    Profile item = random_profile(rng, rng.index(30), 80);
    const Profile user = random_profile(rng, rng.index(30), 80);
    Profile reference = item;
    for (std::size_t i = 0; i < user.size(); ++i) {
      const ProfileEntry e = user.entry(i);
      reference.fold(e.id, e.timestamp, e.score);
    }
    item.fold_profile(user);  // single linear merge
    EXPECT_EQ(item, reference);
    EXPECT_EQ(item.norm(), reference.norm());
    EXPECT_EQ(item.liked_count(), reference.liked_count());
  }
}

TEST(SnapshotCache, ReusesSnapshotUntilVersionChanges) {
  ProfileSnapshotCache cache;
  Profile p;
  p.set(1, 0, 1.0);
  const auto s1 = cache.get(p);
  const auto s2 = cache.get(p);
  EXPECT_EQ(s1.record(), s2.record());  // shared, not re-encoded
  EXPECT_EQ(s1.materialize(), p);
  p.set(2, 0, 0.0);
  const auto s3 = cache.get(p);
  EXPECT_NE(s3.record(), s1.record());
  EXPECT_EQ(s3.materialize(), p);
  EXPECT_EQ(s1.materialize(),
            (([] { Profile q; q.set(1, 0, 1.0); return q; })()));  // immutable
}

TEST(SnapshotCache, EmptyProfilesShareOneSnapshot) {
  ProfileSnapshotCache cache_a, cache_b;
  const Profile empty_a, empty_b;
  EXPECT_EQ(cache_a.get(empty_a).record(), cache_b.get(empty_b).record());
  EXPECT_EQ(cache_a.get(empty_a).record(), empty_profile_handle().record());
}

TEST(SimilarityMemo, MatchesDirectSimilarityThroughMutations) {
  Rng rng(9);
  SimilarityMemo memo;
  Profile subject = random_profile(rng, 20, 60);
  std::vector<Profile> candidates;
  for (NodeId v = 0; v < 8; ++v) candidates.push_back(random_profile(rng, 20, 60));
  for (int round = 0; round < 50; ++round) {
    for (NodeId v = 0; v < candidates.size(); ++v) {
      for (const Metric metric : {Metric::kWup, Metric::kCosine, Metric::kJaccard}) {
        EXPECT_EQ(memo.score(metric, subject, v, candidates[v]),
                  similarity(metric, subject, candidates[v]));
      }
    }
    // Mutate someone: the memo must pick up the change on the next query.
    if (rng.bernoulli(0.3)) {
      subject.set(rng.index(60) + 1, 0, rng.bernoulli(0.5) ? 1.0 : 0.0);
    } else {
      candidates[rng.index(candidates.size())].set(rng.index(60) + 1, 0,
                                                   rng.bernoulli(0.5) ? 1.0 : 0.0);
    }
  }
}

TEST(ObfuscationCache, MatchesDirectObfuscation) {
  Rng rng(21);
  ObfuscationConfig config;
  config.flip_prob = 0.3;
  config.drop_prob = 0.2;
  config.epoch_length = 5;
  ObfuscatedProfileCache cache;
  Profile p = random_profile(rng, 30, 100);
  for (Cycle now = 0; now < 40; ++now) {
    EXPECT_EQ(cache.get(p, config, 7, now), obfuscate_profile(p, config, 7, now));
    if (rng.bernoulli(0.25)) p.set(rng.index(100) + 1, now, 1.0);
    EXPECT_EQ(cache.get(p, config, 7, now), obfuscate_profile(p, config, 7, now));
  }
}

}  // namespace
}  // namespace whatsup
