#include "profile/profile.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace whatsup {
namespace {

TEST(Profile, StartsEmpty) {
  Profile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_FALSE(p.contains(1));
  EXPECT_FALSE(p.score(1).has_value());
  EXPECT_EQ(p.norm(), 0.0);
}

TEST(Profile, SetInsertsAndOverwrites) {
  Profile p;
  p.set(10, 5, 1.0);
  EXPECT_TRUE(p.contains(10));
  EXPECT_EQ(p.score(10).value(), 1.0);
  p.set(10, 7, 0.0);  // a single entry per id (§II-B)
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.score(10).value(), 0.0);
  EXPECT_EQ(p.find(10)->timestamp, 7);
}

TEST(Profile, EntriesSortedById) {
  Profile p;
  p.set(30, 0, 1.0);
  p.set(10, 0, 1.0);
  p.set(20, 0, 1.0);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.ids()[0], 10u);
  EXPECT_EQ(p.ids()[1], 20u);
  EXPECT_EQ(p.ids()[2], 30u);
}

TEST(Profile, FoldAveragesExistingScore) {
  // addToNewsProfile (Alg. 1 lines 18-22).
  Profile item;
  item.fold(1, 0, 1.0);
  EXPECT_EQ(item.score(1).value(), 1.0);  // inserted as-is
  item.fold(1, 1, 0.0);
  EXPECT_EQ(item.score(1).value(), 0.5);  // averaged
  item.fold(1, 2, 0.5);
  EXPECT_EQ(item.score(1).value(), 0.5);
}

TEST(Profile, FoldKeepsFreshestTimestamp) {
  Profile item;
  item.fold(1, 9, 1.0);
  item.fold(1, 3, 0.0);
  EXPECT_EQ(item.find(1)->timestamp, 9);
}

TEST(Profile, FoldProfileMergesAllEntries) {
  Profile user;
  user.set(1, 0, 1.0);
  user.set(2, 0, 0.0);
  user.set(3, 0, 1.0);
  Profile item;
  item.set(2, 0, 1.0);
  item.fold_profile(user);
  EXPECT_EQ(item.size(), 3u);
  EXPECT_EQ(item.score(1).value(), 1.0);
  EXPECT_EQ(item.score(2).value(), 0.5);  // (1 + 0) / 2
  EXPECT_EQ(item.score(3).value(), 1.0);
}

TEST(Profile, PurgeRemovesStrictlyOlder) {
  Profile p;
  p.set(1, 5, 1.0);
  p.set(2, 10, 1.0);
  p.set(3, 15, 0.0);
  p.purge_older_than(10);
  EXPECT_FALSE(p.contains(1));
  EXPECT_TRUE(p.contains(2));
  EXPECT_TRUE(p.contains(3));
}

TEST(Profile, PurgeAllAndNone) {
  Profile p;
  p.set(1, 5, 1.0);
  p.purge_older_than(-100);
  EXPECT_EQ(p.size(), 1u);
  p.purge_older_than(100);
  EXPECT_TRUE(p.empty());
}

TEST(Profile, LikedCountThresholdsAtHalf) {
  Profile p;
  p.set(1, 0, 1.0);
  p.set(2, 0, 0.0);
  p.set(3, 0, 0.6);
  p.set(4, 0, 0.5);
  EXPECT_EQ(p.liked_count(), 2u);  // 1.0 and 0.6
}

TEST(Profile, NormIsEuclidean) {
  Profile p;
  p.set(1, 0, 1.0);
  p.set(2, 0, 0.0);
  p.set(3, 0, 1.0);
  EXPECT_DOUBLE_EQ(p.norm(), std::sqrt(2.0));
  p.set(4, 0, 0.5);
  EXPECT_DOUBLE_EQ(p.norm(), std::sqrt(2.25));
}

TEST(Profile, EqualityByContent) {
  Profile a, b;
  a.set(1, 2, 1.0);
  b.set(1, 2, 1.0);
  EXPECT_EQ(a, b);
  b.set(2, 0, 0.0);
  EXPECT_NE(a, b);
}

// User-profile semantics of Algorithm 1: entries keyed by the item's
// creation timestamp, so the window measures item age.
TEST(Profile, WindowDropsOldItemsEvenIfRecentlyRated) {
  Profile p;
  const Cycle item_created = 2;
  const Cycle rated_at = 50;
  (void)rated_at;  // the rating time is NOT stored (Alg. 1 line 5 uses tI)
  p.set(123, item_created, 1.0);
  p.purge_older_than(50 - 13);
  EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace whatsup
