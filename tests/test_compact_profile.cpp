// Property tests for the compact-profile storage layer: the varint/delta
// codec underneath it, bit-exact encode/decode round trips, the
// thread-local materialize scratch ring, and the global snapshot intern
// table (refcounts, reuse, epoch purge, cross-thread isolation).
//
// The contract that everything else in this PR leans on: a Profile decoded
// from its CompactProfile is indistinguishable — contents, version, cached
// norm, liked count — from a plain copy of the original. Anything less and
// fixed-seed digest trajectories would drift.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/varint.hpp"
#include "profile/compact.hpp"
#include "profile/profile.hpp"

namespace whatsup {
namespace {

// ---- varint / delta codec -------------------------------------------------

std::vector<std::uint8_t> delta_bytes(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint8_t> out;
  delta_encode(out, values.data(), values.size());
  return out;
}

std::vector<std::uint64_t> delta_back(const std::vector<std::uint8_t>& bytes,
                                      std::size_t n) {
  std::vector<std::uint64_t> out(n);
  const std::uint8_t* p = bytes.data();
  delta_decode(p, out.data(), n);
  EXPECT_EQ(p, bytes.data() + bytes.size());
  return out;
}

TEST(VarintCodec, SingleValueRoundTrip) {
  const std::uint64_t probes[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63),
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    std::vector<std::uint8_t> buf;
    varint_append(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v));
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(varint_read(p), v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(VarintCodec, ZigzagIsAnInvolutionOnBoundaries) {
  const std::int64_t probes[] = {0, 1, -1, 63, -64,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : probes) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes must stay small after mapping (that's the point).
  EXPECT_LE(zigzag_encode(-3), 8u);
  EXPECT_LE(zigzag_encode(3), 8u);
}

TEST(DeltaCodec, AscendingSequences) {
  Rng rng(100);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values;
    std::uint64_t cur = rng.index(1000);
    const std::size_t n = rng.index(64);
    for (std::size_t i = 0; i < n; ++i) {
      cur += rng.index(5000);
      values.push_back(cur);
    }
    const auto bytes = delta_bytes(values);
    EXPECT_EQ(bytes.size(), delta_encoded_size(values.data(), values.size()));
    EXPECT_EQ(delta_back(bytes, values.size()), values);
  }
}

TEST(DeltaCodec, NonAscendingAndDuplicateAdjacent) {
  // The codec is mod-2^64 arithmetic, so it must be lossless for ARBITRARY
  // sequences — descending runs, repeats, zig-zags.
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values;
    const std::size_t n = rng.index(64);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.index(3)) {
        case 0:
          values.push_back(rng.next_u64());
          break;
        case 1:  // duplicate-adjacent
          values.push_back(values.empty() ? 7 : values.back());
          break;
        case 2:  // strictly below the previous value
          values.push_back(values.empty() ? 0 : values.back() - rng.index(100) - 1);
          break;
      }
    }
    EXPECT_EQ(delta_back(delta_bytes(values), values.size()), values);
  }
}

TEST(DeltaCodec, BoundaryValues) {
  const std::vector<std::uint64_t> values = {
      std::numeric_limits<std::uint64_t>::max(),
      0,
      std::numeric_limits<std::uint64_t>::max(),
      1ull << 63,
      (1ull << 63) - 1,
      0,
      0};
  EXPECT_EQ(delta_back(delta_bytes(values), values.size()), values);
}

TEST(DeltaCodec, EmptySequence) {
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(delta_encoded_size(empty.data(), 0), 0u);
  EXPECT_TRUE(delta_bytes(empty).empty());
}

// ---- CompactProfile round trips -------------------------------------------

Profile random_profile(Rng& rng, std::size_t entries, ItemId universe,
                       bool binary_scores) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) {
    const double score = binary_scores ? (rng.bernoulli(0.5) ? 1.0 : 0.0)
                                       : rng.uniform();
    p.set(rng.index(universe) + 1, static_cast<Cycle>(rng.index(50)), score);
  }
  return p;
}

void expect_bit_identical(const Profile& original, const Profile& decoded) {
  ASSERT_EQ(decoded, original);
  EXPECT_EQ(decoded.version(), original.version());
  EXPECT_EQ(decoded.liked_count(), original.liked_count());
  EXPECT_EQ(decoded.norm(), original.norm());  // bit-equal, not approximate
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded.entry(i).id, original.entry(i).id);
    EXPECT_EQ(decoded.entry(i).timestamp, original.entry(i).timestamp);
    EXPECT_EQ(decoded.entry(i).score, original.entry(i).score);
  }
}

TEST(CompactProfile, RoundTripIsBitIdenticalToCopy) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const bool binary = rng.bernoulli(0.5);
    const Profile p = random_profile(rng, rng.index(60), 200, binary);
    const auto compact = CompactProfile::encode(p);
    Profile decoded;
    compact->decode_into(decoded);
    expect_bit_identical(p, decoded);
    // Header-only reads agree without decoding.
    EXPECT_EQ(compact->size(), p.size());
    EXPECT_EQ(compact->version(), p.version());
    EXPECT_EQ(compact->liked_count(), p.liked_count());
    EXPECT_EQ(compact->norm(), p.norm());
  }
}

TEST(CompactProfile, BinaryScoresPackToBitmask) {
  // All-binary scores encode as one bit each; real-valued scores fall back
  // to raw 8-byte doubles. The binary form must be ~8x smaller on scores.
  Rng rng(8);
  Profile binary, real;
  for (int i = 1; i <= 64; ++i) {
    binary.set(i, 0, i % 2 == 0 ? 1.0 : 0.0);
    real.set(i, 0, 0.25 + i * 1e-3);
  }
  const auto cb = CompactProfile::encode(binary);
  const auto cr = CompactProfile::encode(real);
  EXPECT_LT(cb->encoded_bytes() + 64 * 7, cr->encoded_bytes());
  Profile db, dr;
  cb->decode_into(db);
  cr->decode_into(dr);
  expect_bit_identical(binary, db);
  expect_bit_identical(real, dr);
}

TEST(CompactProfile, NonFiniteAndNegativeScoresSurvive) {
  Profile p;
  p.set(1, 0, -0.0);
  p.set(2, 0, std::numeric_limits<double>::infinity());
  p.set(3, 0, std::numeric_limits<double>::denorm_min());
  Profile decoded;
  CompactProfile::encode(p)->decode_into(decoded);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.entry(i).score),
              std::bit_cast<std::uint64_t>(p.entry(i).score));
  }
}

TEST(CompactProfile, NegativeTimestampsSurvive) {
  Profile p;
  p.set(5, -3, 1.0);
  p.set(9, 40, 0.0);
  Profile decoded;
  CompactProfile::encode(p)->decode_into(decoded);
  expect_bit_identical(p, decoded);
}

// ---- ProfileHandle + scratch ring -----------------------------------------

TEST(ProfileHandle, NullVersusEmptyAreDistinct) {
  const ProfileHandle null_handle;
  EXPECT_TRUE(null_handle == nullptr);
  EXPECT_FALSE(static_cast<bool>(null_handle));
  const ProfileHandle& empty = empty_profile_handle();
  EXPECT_FALSE(empty == nullptr);
  EXPECT_TRUE(static_cast<bool>(empty));
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.version(), 0u);
  EXPECT_TRUE(empty.materialize().empty());
}

TEST(ProfileHandle, HandleIsFourBytesWide) {
  // Records live in slab chunks addressed by a 32-bit arena index, so a
  // handle is a u32 (PR 7's pointer handle was 8 bytes; a shared_ptr 16).
  EXPECT_EQ(sizeof(ProfileHandle), 4u);
}

TEST(ProfileHandle, ScratchCacheSurvivesInterleavedMaterializes) {
  // Many live versions hammered in random order: whether a materialize()
  // hits the thread-local decode cache or decodes fresh (including
  // direct-mapped slot collisions), the returned reference must always
  // match the snapshot taken.
  Rng rng(31);
  std::vector<Profile> originals;
  std::vector<ProfileHandle> handles;
  for (int i = 0; i < 7; ++i) {
    originals.push_back(random_profile(rng, 12, 80, false));
    handles.push_back(ProfileHandle::snapshot(originals.back()));
  }
  for (int round = 0; round < 30; ++round) {
    const std::size_t k = rng.index(handles.size());
    const Profile& view = handles[k].materialize();
    expect_bit_identical(originals[k], view);
  }
}

TEST(ProfileHandle, SnapshotIsImmutableUnderSourceMutation) {
  Profile p;
  p.set(1, 0, 1.0);
  const ProfileHandle h = ProfileHandle::snapshot(p);
  const Profile before = p;
  p.set(2, 0, 1.0);
  p.set(3, 5, 0.0);
  expect_bit_identical(before, h.materialize());
}

// ---- SnapshotArena --------------------------------------------------------

TEST(SnapshotArena, SameVersionSharesOneRecord) {
  Profile p;
  p.set(1, 0, 1.0);
  const ProfileHandle a = ProfileHandle::snapshot(p);
  const ProfileHandle b = ProfileHandle::snapshot(p);
  EXPECT_EQ(a.record(), b.record());
  EXPECT_GE(a.use_count(), 2);
  p.set(2, 0, 1.0);  // content change → new version → new record
  const ProfileHandle c = ProfileHandle::snapshot(p);
  EXPECT_NE(c.record(), a.record());
}

TEST(SnapshotArena, PurgeDropsDeadEntriesKeepsLive) {
  auto& intern = SnapshotArena::instance();
  Profile keep, drop;
  keep.set(1, 0, 1.0);
  drop.set(2, 0, 1.0);
  ProfileHandle live = ProfileHandle::snapshot(keep);
  {
    const ProfileHandle dead = ProfileHandle::snapshot(drop);
    EXPECT_TRUE(static_cast<bool>(dead));
  }  // `drop`'s record now has zero strong refs; only the weak entry remains
  intern.purge_dead();
  const auto stats = intern.stats();
  EXPECT_EQ(stats.entries, stats.live);
  // The live version must still intern to the SAME record after a purge.
  const ProfileHandle again = ProfileHandle::snapshot(keep);
  EXPECT_EQ(again.record(), live.record());
  // The dead version re-interns to a fresh record (old one really was freed).
  const ProfileHandle fresh = ProfileHandle::snapshot(drop);
  EXPECT_TRUE(static_cast<bool>(fresh));
}

TEST(SnapshotArena, EpochAdvanceEventuallySweepsEveryShard) {
  auto& intern = SnapshotArena::instance();
  // Create dead entries across many shards (versions are sequential, so
  // consecutive snapshots round-robin the shard index).
  for (int i = 0; i < 256; ++i) {
    Profile p;
    p.set(static_cast<ItemId>(i + 1), 0, 1.0);
    const ProfileHandle h = ProfileHandle::snapshot(p);
  }
  // One epoch advance sweeps one shard; a full lap covers all of them.
  for (int i = 0; i < 64; ++i) intern.advance_epoch();
  const auto stats = intern.stats();
  EXPECT_EQ(stats.entries, stats.live);
  EXPECT_GT(stats.purged, 0u);
}

TEST(SnapshotArena, ThreadedInternAndMaterializeStayIsolated) {
  // Exercised under TSan in CI: concurrent snapshot/materialize across
  // threads must neither race nor bleed scratch state between threads.
  constexpr int kThreads = 4;
  constexpr int kProfiles = 16;
  constexpr int kRounds = 200;
  std::vector<Profile> profiles;
  Rng seed_rng(77);
  for (int i = 0; i < kProfiles; ++i) {
    profiles.push_back(random_profile(seed_rng, 10, 64, false));
  }
  std::vector<ProfileHandle> handles;
  for (const Profile& p : profiles) handles.push_back(ProfileHandle::snapshot(p));

  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t k = rng.index(kProfiles);
        // Interning the same version from many threads must converge on the
        // shared record.
        const ProfileHandle h = ProfileHandle::snapshot(profiles[k]);
        if (h.record() != handles[k].record()) ++failures[t];
        const Profile& view = h.materialize();
        if (!(view == profiles[k])) ++failures[t];
        if (view.version() != profiles[k].version()) ++failures[t];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

TEST(SnapshotArena, ThreadedSweepRacesInternCopyDrop) {
  // The hostile schedule for the intrusive refcount: worker threads churn
  // handles (intern, copy, drop — each drop may leave the table's reference
  // as the last one) while a sweeper thread continuously purges. TSan runs
  // this in CI; single-threaded it still pins the invariant that a record
  // can never be reclaimed while an outside handle holds it.
  constexpr int kThreads = 4;
  constexpr int kProfiles = 8;
  constexpr int kRounds = 300;
  std::vector<Profile> profiles;
  Rng seed_rng(78);
  for (int i = 0; i < kProfiles; ++i) {
    profiles.push_back(random_profile(seed_rng, 10, 64, false));
  }

  auto& intern = SnapshotArena::instance();
  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      intern.advance_epoch();
      intern.purge_dead();
    }
  });

  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(2000 + t);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t k = rng.index(kProfiles);
        ProfileHandle h = ProfileHandle::snapshot(profiles[k]);
        ProfileHandle copy = h;        // retain
        ProfileHandle moved = std::move(h);  // steal
        h = copy;                      // re-retain through assignment
        // A sweep may have dropped the table entry between our intern and
        // now; the record we hold must stay valid and intact regardless.
        if (!(copy.materialize() == profiles[k])) ++failures[t];
        if (moved.record() != copy.record()) ++failures[t];
      }  // all three handles drop here — possibly the last references
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  intern.purge_dead();
  const auto stats = intern.stats();
  EXPECT_EQ(stats.entries, stats.live);
}

TEST(SnapshotArena, ResidentBytesTracksEncodedPayload) {
  Profile small, large;
  small.set(1, 0, 1.0);
  for (int i = 1; i <= 300; ++i) large.set(i * 7, i, 0.5 + i * 1e-4);
  const auto cs = CompactProfile::encode(small);
  const auto cl = CompactProfile::encode(large);
  EXPECT_GE(cs->resident_bytes(), sizeof(CompactProfile));
  EXPECT_GT(cl->resident_bytes(), cl->encoded_bytes());
  EXPECT_GT(cl->encoded_bytes(), cs->encoded_bytes());
}

TEST(SnapshotArena, FreedSlotsAreRecycled) {
  // Encode-drop in a loop: the blob pool must hand back freed indices
  // instead of growing unboundedly (the detached records never touch the
  // intern tables, so their lifetime is exactly the handle's).
  Profile p;
  p.set(1, 0, 1.0);
  const auto before = SnapshotArena::instance().stats();
  for (int i = 0; i < 3 * 4096; ++i) {
    const ProfileHandle h = CompactProfile::encode(p);
    EXPECT_TRUE(static_cast<bool>(h));
  }
  const auto after = SnapshotArena::instance().stats();
  // 12k dead records cycled through; live count and slab storage must not
  // have grown by more than one warm chunk's worth.
  EXPECT_LE(after.blobs.live, before.blobs.live + 1);
  EXPECT_LE(after.blobs.chunks, before.blobs.chunks + 1);
}

TEST(SnapshotArena, CompactionRetiresEmptyChunksKeepsLiveAddressable) {
  // Fill several chunks, drop most records, keep a sparse survivor set.
  // Chunk retirement (the compaction step) must free the emptied slabs
  // while every surviving index still dereferences to intact contents.
  Rng rng(91);
  constexpr int kRecords = 3 * 4096;  // ~3 chunks of detached blobs
  std::vector<Profile> originals;
  std::vector<ProfileHandle> survivors;
  {
    std::vector<ProfileHandle> all;
    all.reserve(kRecords);
    for (int i = 0; i < kRecords; ++i) {
      Profile p;
      p.set(static_cast<ItemId>(i % 97 + 1), static_cast<Cycle>(i % 13), 1.0);
      all.push_back(CompactProfile::encode(p));
      // Survivors cluster in the FIRST chunk's index range, so the later
      // chunks die whole and must actually be retired.
      if (i < 2048 && i % 256 == 0) {
        originals.push_back(p);
        survivors.push_back(all.back());
      }
    }
    // `all` drops here: every record except the survivors dies.
  }
  const auto stats = SnapshotArena::instance().stats();
  EXPECT_GT(stats.blobs.retired, 0u);  // at least one slab was compacted away
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    Profile decoded;
    survivors[i]->decode_into(decoded);
    expect_bit_identical(originals[i], decoded);
  }
}

TEST(SnapshotArena, ContentInternDedupesAcrossDistinctVersions) {
  // The wire codec re-interns decoded snapshots BY CONTENT: two local
  // profiles with identical contents but different process-local versions
  // must collapse onto one arena record.
  Profile a, b;
  a.set(3, 1, 1.0);
  a.set(9, 2, 0.0);
  b.set(3, 1, 1.0);
  b.set(9, 2, 0.0);
  ASSERT_NE(a.version(), b.version());
  auto& arena = SnapshotArena::instance();
  const ProfileHandle ha = arena.intern_by_content(a);
  const ProfileHandle hb = arena.intern_by_content(b);
  EXPECT_EQ(ha.record(), hb.record());
  // The shared record reproduces the shared contents (version keeps the
  // first arrival's stamp — versions only key caches, never behavior).
  Profile decoded;
  ha->decode_into(decoded);
  ASSERT_EQ(decoded, a);
  EXPECT_EQ(decoded.norm(), a.norm());
  EXPECT_EQ(decoded.liked_count(), a.liked_count());
  // Different contents stay distinct.
  Profile c;
  c.set(3, 1, 1.0);
  const ProfileHandle hc = arena.intern_by_content(c);
  EXPECT_NE(hc.record(), ha.record());
}

TEST(SnapshotArena, ThreadedContentInternAndSweepConverge) {
  // TSan companion for the content table: many threads decode "the same
  // wire bytes" while a sweeper purges — all arrivals of one content must
  // observe intact records, and dead contents must eventually be swept.
  constexpr int kThreads = 4;
  constexpr int kProfiles = 8;
  constexpr int kRounds = 200;
  std::vector<Profile> profiles;
  Rng seed_rng(79);
  for (int i = 0; i < kProfiles; ++i) {
    profiles.push_back(random_profile(seed_rng, 10, 64, false));
  }
  auto& arena = SnapshotArena::instance();
  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      arena.advance_epoch();
      arena.purge_dead();
    }
  });
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(3000 + t);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t k = rng.index(kProfiles);
        const ProfileHandle h = arena.intern_by_content(profiles[k]);
        if (!(h.materialize() == profiles[k])) ++failures[t];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  arena.purge_dead();
  const auto stats = arena.stats();
  EXPECT_EQ(stats.entries, stats.live);
}

// ---- DescriptorRef --------------------------------------------------------

TEST(DescriptorRef, NullAndInlineEncodingsCostNoArenaRecord) {
  const auto before = SnapshotArena::instance().stats();
  // Null: default-constructed ≡ (kNoCycle, no profile).
  const DescriptorRef null_ref;
  EXPECT_TRUE(null_ref.is_null());
  EXPECT_EQ(null_ref.timestamp(), kNoCycle);
  EXPECT_FALSE(null_ref.has_profile());
  // Profile-less timestamps store inline — bootstrap's t=-1 in particular.
  for (const Cycle t : {Cycle{-1}, Cycle{0}, Cycle{12345}, Cycle{-40000},
                        Cycle{(1 << 30) - 1}, Cycle{-(1 << 30)}}) {
    const DescriptorRef r = DescriptorRef::make(t, ProfileHandle());
    EXPECT_FALSE(r.is_null());
    EXPECT_EQ(r.timestamp(), t);
    EXPECT_FALSE(r.has_profile());
    EXPECT_EQ(r.profile_size(), 0u);
    EXPECT_TRUE(r.profile() == nullptr);
  }
  const auto after = SnapshotArena::instance().stats();
  EXPECT_EQ(after.stamps.live, before.stamps.live);
}

TEST(DescriptorRef, StampRecordsShareTimestampAndBlobByRefcount) {
  Profile p;
  p.set(4, 2, 1.0);
  const ProfileHandle snapshot = ProfileHandle::snapshot(p);
  const auto before = SnapshotArena::instance().stats();
  {
    const DescriptorRef a = DescriptorRef::make(17, snapshot);
    const DescriptorRef b = a;  // copy: shares the record, bumps refs
    DescriptorRef c;
    c = b;
    EXPECT_EQ(a.timestamp(), 17);
    EXPECT_EQ(c.timestamp(), 17);
    EXPECT_TRUE(c.has_profile());
    EXPECT_EQ(c.profile_version(), p.version());
    EXPECT_EQ(c.profile_size(), p.size());
    expect_bit_identical(p, c.materialize());
    const auto during = SnapshotArena::instance().stats();
    EXPECT_EQ(during.stamps.live, before.stamps.live + 1);  // ONE record for 3 copies
  }
  // Last copy dropped: the stamp record frees immediately (no epoch wait).
  const auto after = SnapshotArena::instance().stats();
  EXPECT_EQ(after.stamps.live, before.stamps.live);
  // The blob outlives the stamps through our snapshot handle.
  expect_bit_identical(p, snapshot.materialize());
}

TEST(DescriptorRef, MoveTransfersOwnershipWithoutTouchingRefcount) {
  Profile p;
  p.set(1, 0, 1.0);
  DescriptorRef a = DescriptorRef::make(5, ProfileHandle::snapshot(p));
  const auto live_before = SnapshotArena::instance().stats().stamps.live;
  DescriptorRef b = std::move(a);
  EXPECT_TRUE(a.is_null());
  EXPECT_EQ(b.timestamp(), 5);
  EXPECT_EQ(SnapshotArena::instance().stats().stamps.live, live_before);
}

// ---- materialize scratch sizing -------------------------------------------

TEST(MaterializeScratch, EngineHintResizesWithinBounds) {
  const std::size_t restore = materialize_scratch_slots();
  set_materialize_scratch_slots(64);  // below floor: clamped up
  EXPECT_EQ(materialize_scratch_slots(), kMinMaterializeScratchSlots);
  set_materialize_scratch_slots(1 << 20);  // above ceiling: clamped down
  EXPECT_EQ(materialize_scratch_slots(), kMaxMaterializeScratchSlots);
  set_materialize_scratch_slots(3000);  // rounded up to a power of two
  EXPECT_EQ(materialize_scratch_slots(), 4096u);
  EXPECT_GT(materialize_scratch_bytes_per_thread(), 0u);
  // Resizing mid-run only clears the cache: materialize stays correct.
  Rng rng(55);
  const Profile p = random_profile(rng, 12, 80, false);
  const ProfileHandle h = ProfileHandle::snapshot(p);
  expect_bit_identical(p, h.materialize());
  set_materialize_scratch_slots(kMinMaterializeScratchSlots);
  expect_bit_identical(p, h.materialize());
  set_materialize_scratch_slots(restore);
}

}  // namespace
}  // namespace whatsup
