// Property tests for the compact-profile storage layer: the varint/delta
// codec underneath it, bit-exact encode/decode round trips, the
// thread-local materialize scratch ring, and the global snapshot intern
// table (refcounts, reuse, epoch purge, cross-thread isolation).
//
// The contract that everything else in this PR leans on: a Profile decoded
// from its CompactProfile is indistinguishable — contents, version, cached
// norm, liked count — from a plain copy of the original. Anything less and
// fixed-seed digest trajectories would drift.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/varint.hpp"
#include "profile/compact.hpp"
#include "profile/profile.hpp"

namespace whatsup {
namespace {

// ---- varint / delta codec -------------------------------------------------

std::vector<std::uint8_t> delta_bytes(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint8_t> out;
  delta_encode(out, values.data(), values.size());
  return out;
}

std::vector<std::uint64_t> delta_back(const std::vector<std::uint8_t>& bytes,
                                      std::size_t n) {
  std::vector<std::uint64_t> out(n);
  const std::uint8_t* p = bytes.data();
  delta_decode(p, out.data(), n);
  EXPECT_EQ(p, bytes.data() + bytes.size());
  return out;
}

TEST(VarintCodec, SingleValueRoundTrip) {
  const std::uint64_t probes[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63),
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : probes) {
    std::vector<std::uint8_t> buf;
    varint_append(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v));
    const std::uint8_t* p = buf.data();
    EXPECT_EQ(varint_read(p), v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(VarintCodec, ZigzagIsAnInvolutionOnBoundaries) {
  const std::int64_t probes[] = {0, 1, -1, 63, -64,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : probes) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes must stay small after mapping (that's the point).
  EXPECT_LE(zigzag_encode(-3), 8u);
  EXPECT_LE(zigzag_encode(3), 8u);
}

TEST(DeltaCodec, AscendingSequences) {
  Rng rng(100);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values;
    std::uint64_t cur = rng.index(1000);
    const std::size_t n = rng.index(64);
    for (std::size_t i = 0; i < n; ++i) {
      cur += rng.index(5000);
      values.push_back(cur);
    }
    const auto bytes = delta_bytes(values);
    EXPECT_EQ(bytes.size(), delta_encoded_size(values.data(), values.size()));
    EXPECT_EQ(delta_back(bytes, values.size()), values);
  }
}

TEST(DeltaCodec, NonAscendingAndDuplicateAdjacent) {
  // The codec is mod-2^64 arithmetic, so it must be lossless for ARBITRARY
  // sequences — descending runs, repeats, zig-zags.
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values;
    const std::size_t n = rng.index(64);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.index(3)) {
        case 0:
          values.push_back(rng.next_u64());
          break;
        case 1:  // duplicate-adjacent
          values.push_back(values.empty() ? 7 : values.back());
          break;
        case 2:  // strictly below the previous value
          values.push_back(values.empty() ? 0 : values.back() - rng.index(100) - 1);
          break;
      }
    }
    EXPECT_EQ(delta_back(delta_bytes(values), values.size()), values);
  }
}

TEST(DeltaCodec, BoundaryValues) {
  const std::vector<std::uint64_t> values = {
      std::numeric_limits<std::uint64_t>::max(),
      0,
      std::numeric_limits<std::uint64_t>::max(),
      1ull << 63,
      (1ull << 63) - 1,
      0,
      0};
  EXPECT_EQ(delta_back(delta_bytes(values), values.size()), values);
}

TEST(DeltaCodec, EmptySequence) {
  const std::vector<std::uint64_t> empty;
  EXPECT_EQ(delta_encoded_size(empty.data(), 0), 0u);
  EXPECT_TRUE(delta_bytes(empty).empty());
}

// ---- CompactProfile round trips -------------------------------------------

Profile random_profile(Rng& rng, std::size_t entries, ItemId universe,
                       bool binary_scores) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) {
    const double score = binary_scores ? (rng.bernoulli(0.5) ? 1.0 : 0.0)
                                       : rng.uniform();
    p.set(rng.index(universe) + 1, static_cast<Cycle>(rng.index(50)), score);
  }
  return p;
}

void expect_bit_identical(const Profile& original, const Profile& decoded) {
  ASSERT_EQ(decoded, original);
  EXPECT_EQ(decoded.version(), original.version());
  EXPECT_EQ(decoded.liked_count(), original.liked_count());
  EXPECT_EQ(decoded.norm(), original.norm());  // bit-equal, not approximate
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded.entry(i).id, original.entry(i).id);
    EXPECT_EQ(decoded.entry(i).timestamp, original.entry(i).timestamp);
    EXPECT_EQ(decoded.entry(i).score, original.entry(i).score);
  }
}

TEST(CompactProfile, RoundTripIsBitIdenticalToCopy) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const bool binary = rng.bernoulli(0.5);
    const Profile p = random_profile(rng, rng.index(60), 200, binary);
    const auto compact = CompactProfile::encode(p);
    Profile decoded;
    compact->decode_into(decoded);
    expect_bit_identical(p, decoded);
    // Header-only reads agree without decoding.
    EXPECT_EQ(compact->size(), p.size());
    EXPECT_EQ(compact->version(), p.version());
    EXPECT_EQ(compact->liked_count(), p.liked_count());
    EXPECT_EQ(compact->norm(), p.norm());
  }
}

TEST(CompactProfile, BinaryScoresPackToBitmask) {
  // All-binary scores encode as one bit each; real-valued scores fall back
  // to raw 8-byte doubles. The binary form must be ~8x smaller on scores.
  Rng rng(8);
  Profile binary, real;
  for (int i = 1; i <= 64; ++i) {
    binary.set(i, 0, i % 2 == 0 ? 1.0 : 0.0);
    real.set(i, 0, 0.25 + i * 1e-3);
  }
  const auto cb = CompactProfile::encode(binary);
  const auto cr = CompactProfile::encode(real);
  EXPECT_LT(cb->encoded_bytes() + 64 * 7, cr->encoded_bytes());
  Profile db, dr;
  cb->decode_into(db);
  cr->decode_into(dr);
  expect_bit_identical(binary, db);
  expect_bit_identical(real, dr);
}

TEST(CompactProfile, NonFiniteAndNegativeScoresSurvive) {
  Profile p;
  p.set(1, 0, -0.0);
  p.set(2, 0, std::numeric_limits<double>::infinity());
  p.set(3, 0, std::numeric_limits<double>::denorm_min());
  Profile decoded;
  CompactProfile::encode(p)->decode_into(decoded);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.entry(i).score),
              std::bit_cast<std::uint64_t>(p.entry(i).score));
  }
}

TEST(CompactProfile, NegativeTimestampsSurvive) {
  Profile p;
  p.set(5, -3, 1.0);
  p.set(9, 40, 0.0);
  Profile decoded;
  CompactProfile::encode(p)->decode_into(decoded);
  expect_bit_identical(p, decoded);
}

// ---- ProfileHandle + scratch ring -----------------------------------------

TEST(ProfileHandle, NullVersusEmptyAreDistinct) {
  const ProfileHandle null_handle;
  EXPECT_TRUE(null_handle == nullptr);
  EXPECT_FALSE(static_cast<bool>(null_handle));
  const ProfileHandle& empty = empty_profile_handle();
  EXPECT_FALSE(empty == nullptr);
  EXPECT_TRUE(static_cast<bool>(empty));
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.version(), 0u);
  EXPECT_TRUE(empty.materialize().empty());
}

TEST(ProfileHandle, HandleIsOnePointerWide) {
  // The intrusive refcount lives in the record, so a descriptor pays one
  // pointer per handle (a shared_ptr would pay two).
  EXPECT_EQ(sizeof(ProfileHandle), sizeof(void*));
}

TEST(ProfileHandle, ScratchCacheSurvivesInterleavedMaterializes) {
  // Many live versions hammered in random order: whether a materialize()
  // hits the thread-local decode cache or decodes fresh (including
  // direct-mapped slot collisions), the returned reference must always
  // match the snapshot taken.
  Rng rng(31);
  std::vector<Profile> originals;
  std::vector<ProfileHandle> handles;
  for (int i = 0; i < 7; ++i) {
    originals.push_back(random_profile(rng, 12, 80, false));
    handles.push_back(ProfileHandle::snapshot(originals.back()));
  }
  for (int round = 0; round < 30; ++round) {
    const std::size_t k = rng.index(handles.size());
    const Profile& view = handles[k].materialize();
    expect_bit_identical(originals[k], view);
  }
}

TEST(ProfileHandle, SnapshotIsImmutableUnderSourceMutation) {
  Profile p;
  p.set(1, 0, 1.0);
  const ProfileHandle h = ProfileHandle::snapshot(p);
  const Profile before = p;
  p.set(2, 0, 1.0);
  p.set(3, 5, 0.0);
  expect_bit_identical(before, h.materialize());
}

// ---- SnapshotIntern -------------------------------------------------------

TEST(SnapshotIntern, SameVersionSharesOneRecord) {
  Profile p;
  p.set(1, 0, 1.0);
  const ProfileHandle a = ProfileHandle::snapshot(p);
  const ProfileHandle b = ProfileHandle::snapshot(p);
  EXPECT_EQ(a.record(), b.record());
  EXPECT_GE(a.use_count(), 2);
  p.set(2, 0, 1.0);  // content change → new version → new record
  const ProfileHandle c = ProfileHandle::snapshot(p);
  EXPECT_NE(c.record(), a.record());
}

TEST(SnapshotIntern, PurgeDropsDeadEntriesKeepsLive) {
  auto& intern = SnapshotIntern::instance();
  Profile keep, drop;
  keep.set(1, 0, 1.0);
  drop.set(2, 0, 1.0);
  ProfileHandle live = ProfileHandle::snapshot(keep);
  {
    const ProfileHandle dead = ProfileHandle::snapshot(drop);
    EXPECT_TRUE(static_cast<bool>(dead));
  }  // `drop`'s record now has zero strong refs; only the weak entry remains
  intern.purge_dead();
  const auto stats = intern.stats();
  EXPECT_EQ(stats.entries, stats.live);
  // The live version must still intern to the SAME record after a purge.
  const ProfileHandle again = ProfileHandle::snapshot(keep);
  EXPECT_EQ(again.record(), live.record());
  // The dead version re-interns to a fresh record (old one really was freed).
  const ProfileHandle fresh = ProfileHandle::snapshot(drop);
  EXPECT_TRUE(static_cast<bool>(fresh));
}

TEST(SnapshotIntern, EpochAdvanceEventuallySweepsEveryShard) {
  auto& intern = SnapshotIntern::instance();
  // Create dead entries across many shards (versions are sequential, so
  // consecutive snapshots round-robin the shard index).
  for (int i = 0; i < 256; ++i) {
    Profile p;
    p.set(static_cast<ItemId>(i + 1), 0, 1.0);
    const ProfileHandle h = ProfileHandle::snapshot(p);
  }
  // One epoch advance sweeps one shard; a full lap covers all of them.
  for (int i = 0; i < 64; ++i) intern.advance_epoch();
  const auto stats = intern.stats();
  EXPECT_EQ(stats.entries, stats.live);
  EXPECT_GT(stats.purged, 0u);
}

TEST(SnapshotIntern, ThreadedInternAndMaterializeStayIsolated) {
  // Exercised under TSan in CI: concurrent snapshot/materialize across
  // threads must neither race nor bleed scratch state between threads.
  constexpr int kThreads = 4;
  constexpr int kProfiles = 16;
  constexpr int kRounds = 200;
  std::vector<Profile> profiles;
  Rng seed_rng(77);
  for (int i = 0; i < kProfiles; ++i) {
    profiles.push_back(random_profile(seed_rng, 10, 64, false));
  }
  std::vector<ProfileHandle> handles;
  for (const Profile& p : profiles) handles.push_back(ProfileHandle::snapshot(p));

  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t k = rng.index(kProfiles);
        // Interning the same version from many threads must converge on the
        // shared record.
        const ProfileHandle h = ProfileHandle::snapshot(profiles[k]);
        if (h.record() != handles[k].record()) ++failures[t];
        const Profile& view = h.materialize();
        if (!(view == profiles[k])) ++failures[t];
        if (view.version() != profiles[k].version()) ++failures[t];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

TEST(SnapshotIntern, ThreadedSweepRacesInternCopyDrop) {
  // The hostile schedule for the intrusive refcount: worker threads churn
  // handles (intern, copy, drop — each drop may leave the table's reference
  // as the last one) while a sweeper thread continuously purges. TSan runs
  // this in CI; single-threaded it still pins the invariant that a record
  // can never be reclaimed while an outside handle holds it.
  constexpr int kThreads = 4;
  constexpr int kProfiles = 8;
  constexpr int kRounds = 300;
  std::vector<Profile> profiles;
  Rng seed_rng(78);
  for (int i = 0; i < kProfiles; ++i) {
    profiles.push_back(random_profile(seed_rng, 10, 64, false));
  }

  auto& intern = SnapshotIntern::instance();
  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      intern.advance_epoch();
      intern.purge_dead();
    }
  });

  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(2000 + t);
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t k = rng.index(kProfiles);
        ProfileHandle h = ProfileHandle::snapshot(profiles[k]);
        ProfileHandle copy = h;        // retain
        ProfileHandle moved = std::move(h);  // steal
        h = copy;                      // re-retain through assignment
        // A sweep may have dropped the table entry between our intern and
        // now; the record we hold must stay valid and intact regardless.
        if (!(copy.materialize() == profiles[k])) ++failures[t];
        if (moved.record() != copy.record()) ++failures[t];
      }  // all three handles drop here — possibly the last references
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  intern.purge_dead();
  const auto stats = intern.stats();
  EXPECT_EQ(stats.entries, stats.live);
}

TEST(SnapshotIntern, ResidentBytesTracksEncodedPayload) {
  Profile small, large;
  small.set(1, 0, 1.0);
  for (int i = 1; i <= 300; ++i) large.set(i * 7, i, 0.5 + i * 1e-4);
  const auto cs = CompactProfile::encode(small);
  const auto cl = CompactProfile::encode(large);
  EXPECT_GE(cs->resident_bytes(), sizeof(CompactProfile));
  EXPECT_GT(cl->resident_bytes(), cl->encoded_bytes());
  EXPECT_GT(cl->encoded_bytes(), cs->encoded_bytes());
}

}  // namespace
}  // namespace whatsup
