#include "profile/similarity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace whatsup {
namespace {

Profile liked(std::initializer_list<ItemId> likes,
              std::initializer_list<ItemId> dislikes = {}) {
  Profile p;
  for (ItemId id : likes) p.set(id, 0, 1.0);
  for (ItemId id : dislikes) p.set(id, 0, 0.0);
  return p;
}

// --- WUP metric (paper §II) ------------------------------------------------

TEST(WupMetric, MatchesClosedFormOnBinaryProfiles) {
  // n likes {1,2,3}; c rates {1,2,4}, likes {1,2}.
  // common likes = 2; liked-by-n rated-by-c = 2; liked by c = 2.
  const Profile n = liked({1, 2, 3});
  const Profile c = liked({1, 2}, {4});
  EXPECT_NEAR(wup_similarity(n, c), 2.0 / (std::sqrt(2.0) * std::sqrt(2.0)), 1e-12);
}

TEST(WupMetric, PenalizesCandidatesWhoDislikeWhatSubjectLikes) {
  const Profile n = liked({1, 2, 3, 4});
  const Profile agreeing = liked({1, 2});            // likes 2 of n's items
  const Profile spammy = liked({1, 2}, {3, 4});      // same likes, but dislikes the rest
  EXPECT_GT(wup_similarity(n, agreeing), wup_similarity(n, spammy));
}

TEST(WupMetric, FavorsRestrictiveCandidates) {
  // Both candidates like the two items n likes, but one likes 6 extra items.
  const Profile n = liked({1, 2});
  const Profile restrictive = liked({1, 2});
  const Profile promiscuous = liked({1, 2, 10, 11, 12, 13, 14, 15});
  EXPECT_GT(wup_similarity(n, restrictive), wup_similarity(n, promiscuous));
}

TEST(WupMetric, ColdStartSmallProfilesScoreHigh) {
  // A joining node with a tiny popular profile is attractive to others —
  // the §II-D property that integrates newcomers quickly.
  const Profile established = liked({1, 2, 3, 4, 5, 6, 7, 8});
  const Profile newcomer = liked({1});           // one popular common item
  const Profile peer = liked({1, 20, 21, 22, 23, 24, 25, 26});
  EXPECT_GT(wup_similarity(established, newcomer), wup_similarity(established, peer));
}

TEST(WupMetric, AsymmetricByDesign) {
  const Profile a = liked({1, 2, 3, 4, 5, 6});
  const Profile b = liked({1, 2});
  EXPECT_NE(wup_similarity(a, b), wup_similarity(b, a));
}

TEST(WupMetric, PerfectMatchIsOne) {
  const Profile p = liked({1, 2, 3});
  EXPECT_DOUBLE_EQ(wup_similarity(p, p), 1.0);
}

TEST(WupMetric, DisjointProfilesScoreZero) {
  EXPECT_EQ(wup_similarity(liked({1, 2}), liked({3, 4})), 0.0);
}

TEST(WupMetric, EmptyProfilesScoreZero) {
  EXPECT_EQ(wup_similarity(Profile{}, liked({1})), 0.0);
  EXPECT_EQ(wup_similarity(liked({1}), Profile{}), 0.0);
  EXPECT_EQ(wup_similarity(Profile{}, Profile{}), 0.0);
}

TEST(WupMetric, WorksWithRealValuedItemProfiles) {
  Profile item;  // item profile with fractional path-aggregated scores
  item.set(1, 0, 0.75);
  item.set(2, 0, 0.25);
  const Profile user = liked({1}, {2});
  const double s = wup_similarity(item, user);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

// --- Cosine ---------------------------------------------------------------

TEST(Cosine, SymmetricAndBounded) {
  const Profile a = liked({1, 2, 3});
  const Profile b = liked({2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), cosine_similarity(b, a));
  EXPECT_NEAR(cosine_similarity(a, b), 2.0 / (std::sqrt(3.0) * std::sqrt(4.0)), 1e-12);
}

TEST(Cosine, IdenticalIsOne) {
  const Profile p = liked({1, 2, 3});
  EXPECT_DOUBLE_EQ(cosine_similarity(p, p), 1.0);
}

// --- Jaccard / overlap / Pearson -------------------------------------------

TEST(Jaccard, CountsLikedSets) {
  const Profile a = liked({1, 2, 3});
  const Profile b = liked({2, 3, 4});
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, a), 1.0);
  EXPECT_EQ(jaccard_similarity(Profile{}, Profile{}), 0.0);
}

TEST(Overlap, BoundedAndOneOnSubset) {
  const Profile small = liked({1, 2});
  const Profile big = liked({1, 2, 3, 4, 5});
  EXPECT_NEAR(overlap_similarity(small, big), 1.0, 1e-9);
}

TEST(Pearson, PerfectAgreementAndDisagreement) {
  Profile a, b, c;
  for (ItemId id : {1, 2, 3, 4}) {
    const double score = (id % 2 == 0) ? 1.0 : 0.0;
    a.set(id, 0, score);
    b.set(id, 0, score);
    c.set(id, 0, 1.0 - score);
  }
  EXPECT_NEAR(pearson_similarity(a, b), 1.0, 1e-9);   // r=+1 -> 1
  EXPECT_NEAR(pearson_similarity(a, c), 0.0, 1e-9);   // r=-1 -> 0
}

TEST(Pearson, TooFewCoRatedItemsIsZero) {
  EXPECT_EQ(pearson_similarity(liked({1}), liked({1})), 0.0);
}

// --- Property sweep over all metrics ----------------------------------------

class MetricProperty : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricProperty, BoundedInUnitIntervalOnRandomProfiles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  for (int trial = 0; trial < 500; ++trial) {
    Profile a, b;
    const auto na = rng.index(12);
    const auto nb = rng.index(12);
    for (std::size_t i = 0; i < na; ++i) {
      a.set(rng.index(20), 0, rng.bernoulli(0.5) ? 1.0 : 0.0);
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.set(rng.index(20), 0, rng.bernoulli(0.5) ? 1.0 : 0.0);
    }
    const double s = similarity(GetParam(), a, b);
    ASSERT_GE(s, 0.0) << to_string(GetParam());
    ASSERT_LE(s, 1.0) << to_string(GetParam());
  }
}

TEST_P(MetricProperty, EmptyProfilesNeverCrash) {
  const Profile empty;
  const Profile p = liked({1, 2});
  EXPECT_EQ(similarity(GetParam(), empty, empty), 0.0);
  EXPECT_GE(similarity(GetParam(), p, empty), 0.0);
  EXPECT_GE(similarity(GetParam(), empty, p), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricProperty,
                         ::testing::Values(Metric::kWup, Metric::kCosine,
                                           Metric::kJaccard, Metric::kOverlap,
                                           Metric::kPearson),
                         [](const auto& info) { return to_string(info.param); });

TEST(MetricNames, RoundTrip) {
  EXPECT_EQ(to_string(Metric::kWup), "wup");
  EXPECT_EQ(to_string(Metric::kCosine), "cosine");
  EXPECT_EQ(to_string(Metric::kJaccard), "jaccard");
  EXPECT_EQ(to_string(Metric::kOverlap), "overlap");
  EXPECT_EQ(to_string(Metric::kPearson), "pearson");
}

}  // namespace
}  // namespace whatsup
