#include "beep/beep.hpp"

#include <gtest/gtest.h>

#include <set>

namespace whatsup::beep {
namespace {

Profile liked(std::initializer_list<ItemId> ids,
              std::initializer_list<ItemId> disliked = {}) {
  Profile p;
  for (ItemId id : ids) p.set(id, 0, 1.0);
  for (ItemId id : disliked) p.set(id, 0, 0.0);
  return p;
}

gossip::View make_view(std::initializer_list<NodeId> nodes, std::size_t capacity = 32) {
  gossip::View view(capacity);
  for (NodeId v : nodes) view.insert_or_refresh(net::Descriptor{v, 0, nullptr});
  return view;
}

TEST(Beep, LikedItemAmplifiedToFanoutWupTargets) {
  Rng rng(1);
  BeepConfig config;
  config.f_like = 3;
  net::NewsPayload news;
  const auto wup = make_view({1, 2, 3, 4, 5});
  const auto rps = make_view({6, 7});
  const ForwardPlan plan = plan_forward(rng, config, true, news, wup, rps);
  EXPECT_EQ(plan.targets.size(), 3u);
  const std::set<NodeId> targets(plan.targets.begin(), plan.targets.end());
  EXPECT_EQ(targets.size(), 3u);  // distinct
  for (NodeId t : targets) EXPECT_TRUE(t >= 1 && t <= 5);  // WUP members only
  EXPECT_EQ(news.dislikes, 0);
  EXPECT_FALSE(plan.dropped_by_ttl);
}

TEST(Beep, LikedFanoutClampedToViewSize) {
  Rng rng(2);
  BeepConfig config;
  config.f_like = 10;
  net::NewsPayload news;
  const auto wup = make_view({1, 2});
  const ForwardPlan plan = plan_forward(rng, config, true, news, wup, make_view({}));
  EXPECT_EQ(plan.targets.size(), 2u);
}

TEST(Beep, DislikedItemGetsOneOrientedTarget) {
  Rng rng(3);
  BeepConfig config;
  config.ttl = 4;
  net::NewsPayload news;
  news.item_profile = liked({100, 101});

  gossip::View rps(8);
  rps.insert_or_refresh(net::make_descriptor(1, 0, liked({100, 101})));  // best match
  rps.insert_or_refresh(net::make_descriptor(2, 0, liked({100}, {101})));
  rps.insert_or_refresh(net::make_descriptor(3, 0, liked({555})));

  const ForwardPlan plan =
      plan_forward(rng, config, false, news, make_view({7, 8}), rps);
  ASSERT_EQ(plan.targets.size(), 1u);
  EXPECT_EQ(plan.targets[0], 1u);  // orientation picks the closest profile
  EXPECT_EQ(news.dislikes, 1);     // counter incremented (Alg. 2 line 26)
}

TEST(Beep, TtlDropsExhaustedItems) {
  Rng rng(4);
  BeepConfig config;
  config.ttl = 4;
  net::NewsPayload news;
  news.dislikes = 4;  // already at TTL
  const ForwardPlan plan =
      plan_forward(rng, config, false, news, make_view({1}), make_view({2}));
  EXPECT_TRUE(plan.targets.empty());
  EXPECT_TRUE(plan.dropped_by_ttl);
  EXPECT_EQ(news.dislikes, 4);  // unchanged
}

TEST(Beep, TtlZeroNeverForwardsDislikes) {
  Rng rng(5);
  BeepConfig config;
  config.ttl = 0;
  net::NewsPayload news;
  const ForwardPlan plan =
      plan_forward(rng, config, false, news, make_view({1}), make_view({2}));
  EXPECT_TRUE(plan.targets.empty());
  EXPECT_TRUE(plan.dropped_by_ttl);
}

TEST(Beep, AmplificationOffReducesLikedFanoutToOne) {
  Rng rng(6);
  BeepConfig config;
  config.f_like = 8;
  config.amplification = false;
  net::NewsPayload news;
  const ForwardPlan plan =
      plan_forward(rng, config, true, news, make_view({1, 2, 3, 4, 5}), make_view({}));
  EXPECT_EQ(plan.targets.size(), 1u);
}

TEST(Beep, OrientationOffPicksRandomRpsTarget) {
  BeepConfig config;
  config.orientation = false;
  // With orientation off, the target need not be the most similar node;
  // over many seeds we should see several distinct targets.
  std::set<NodeId> picked;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    net::NewsPayload news;
    news.item_profile = liked({100});
    gossip::View rps(8);
    rps.insert_or_refresh(net::make_descriptor(1, 0, liked({100})));
    rps.insert_or_refresh(net::make_descriptor(2, 0, liked({200})));
    rps.insert_or_refresh(net::make_descriptor(3, 0, liked({300})));
    const auto plan = plan_forward(rng, config, false, news, make_view({}), rps);
    ASSERT_EQ(plan.targets.size(), 1u);
    picked.insert(plan.targets[0]);
  }
  EXPECT_GT(picked.size(), 1u);
}

TEST(Beep, EmptyViewsYieldNoTargets) {
  Rng rng(7);
  BeepConfig config;
  net::NewsPayload news;
  EXPECT_TRUE(plan_forward(rng, config, true, news, make_view({}), make_view({})).targets.empty());
  EXPECT_TRUE(plan_forward(rng, config, false, news, make_view({}), make_view({})).targets.empty());
}

TEST(SelectMostSimilar, EmptyViewReturnsNoNode) {
  Rng rng(8);
  EXPECT_EQ(select_most_similar(gossip::View(4), Profile{}, Metric::kWup, rng), kNoNode);
}

TEST(SelectMostSimilar, TieBreaksUniformly) {
  Profile item;  // empty item profile: every candidate ties at 0
  gossip::View rps(8);
  for (NodeId v = 1; v <= 4; ++v) rps.insert_or_refresh(net::Descriptor{v, 0, nullptr});
  std::set<NodeId> picked;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    picked.insert(select_most_similar(rps, item, Metric::kWup, rng));
  }
  EXPECT_GE(picked.size(), 3u);
}

// Regression: with orientation ON and f_dislike > 1, every loop iteration
// used to re-run select_most_similar over the same view, re-pick the same
// best node, and have the duplicate filter discard it — so the plan could
// never hold more than ONE distinct oriented target. Already-chosen nodes
// must be excluded between iterations.
TEST(Beep, OrientedDislikeFanoutPicksDistinctTargets) {
  Rng rng(10);
  BeepConfig config;
  config.f_dislike = 3;
  config.ttl = 4;
  net::NewsPayload news;
  news.item_profile = liked({100, 101});

  // WUP scores against the item profile: 1 → 1.0 (exact match),
  // 2 → 1/√2 (one extra item inflates ‖b‖), 3 → 1/√3, 4 → 0 (disjoint);
  // strictly ordered, so the plan sequence is deterministic.
  gossip::View rps(8);
  rps.insert_or_refresh(net::make_descriptor(1, 0, liked({100, 101})));
  rps.insert_or_refresh(net::make_descriptor(2, 0, liked({100, 200})));
  rps.insert_or_refresh(net::make_descriptor(3, 0, liked({101, 300, 301})));
  rps.insert_or_refresh(net::make_descriptor(4, 0, liked({555})));

  const ForwardPlan plan =
      plan_forward(rng, config, false, news, make_view({7, 8}), rps);
  ASSERT_EQ(plan.targets.size(), 3u);
  // Best match first, then the next-closest nodes, never the disjoint one.
  EXPECT_EQ(plan.targets, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(news.dislikes, 1);  // still one TTL increment per hop
}

// The exclusion must also terminate cleanly when f_dislike exceeds the
// view: every member gets picked once, then select returns kNoNode.
TEST(Beep, OrientedDislikeFanoutClampedToViewSize) {
  Rng rng(11);
  BeepConfig config;
  config.f_dislike = 5;
  net::NewsPayload news;
  news.item_profile = liked({100});
  gossip::View rps(8);
  rps.insert_or_refresh(net::make_descriptor(1, 0, liked({100})));
  rps.insert_or_refresh(net::make_descriptor(2, 0, liked({200})));
  const ForwardPlan plan =
      plan_forward(rng, config, false, news, make_view({}), rps);
  EXPECT_EQ(plan.targets.size(), 2u);
}

TEST(SelectMostSimilar, ExcludedNodesAreSkipped) {
  Rng rng(12);
  Profile item = liked({100});
  gossip::View rps(8);
  rps.insert_or_refresh(net::make_descriptor(1, 0, liked({100})));
  rps.insert_or_refresh(net::make_descriptor(2, 0, liked({100, 200})));
  const NodeId first = select_most_similar(rps, item, Metric::kWup, rng);
  EXPECT_EQ(first, 1u);
  const std::vector<NodeId> excluded{first};
  EXPECT_EQ(select_most_similar(rps, item, Metric::kWup, rng, excluded), 2u);
  const std::vector<NodeId> all{1, 2};
  EXPECT_EQ(select_most_similar(rps, item, Metric::kWup, rng, all), kNoNode);
}

TEST(Beep, DislikeFanoutParameterHonored) {
  Rng rng(9);
  BeepConfig config;
  config.f_dislike = 2;
  config.orientation = false;
  net::NewsPayload news;
  const auto plan =
      plan_forward(rng, config, false, news, make_view({}), make_view({1, 2, 3, 4}));
  // Up to 2 distinct random targets.
  EXPECT_GE(plan.targets.size(), 1u);
  EXPECT_LE(plan.targets.size(), 2u);
}

}  // namespace
}  // namespace whatsup::beep
