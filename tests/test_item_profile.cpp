// The copy-on-write contract of ItemProfileRef (profile/item_profile.hpp):
// replicating a news payload shares one immutable profile; folding or
// purging through one holder must never mutate the copy held by another —
// in particular not a copy sitting in another shard's mailbox ring. The
// multi-thread end-to-end case also runs in the TSan CI job (ci.yml).
#include "profile/item_profile.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "metrics/tracker.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "whatsup/node.hpp"
#include "whatsup_test_utils.hpp"

namespace whatsup {
namespace {

Profile liked(std::initializer_list<ItemId> ids) {
  Profile p;
  for (ItemId id : ids) p.set(id, 5, 1.0);
  return p;
}

TEST(ItemProfileRef, DefaultIsEmptyAndAllocationFree) {
  ItemProfileRef ref;
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(ref.size(), 0u);
  EXPECT_EQ(ref.use_count(), 0);
  EXPECT_DOUBLE_EQ(ref.get().norm(), 0.0);
}

TEST(ItemProfileRef, AssignFromProfileSnapshots) {
  ItemProfileRef ref;
  ref = liked({1, 2, 3});
  EXPECT_EQ(ref.size(), 3u);
  EXPECT_TRUE(ref.contains(2));
  // Empty profiles normalize back to the null representation.
  ref = Profile{};
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(ref.use_count(), 0);
}

TEST(ItemProfileRef, CopyIsARefcountBumpNotAProfileCopy) {
  ItemProfileRef a;
  a = liked({1, 2});
  const ItemProfileRef b = a;
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_TRUE(a.shared());
  // Both handles alias the same Profile object.
  EXPECT_EQ(&a.get(), &b.get());
}

TEST(ItemProfileRef, FoldClonesWhenSharedAndLeavesTheOtherCopyIntact) {
  ItemProfileRef original;
  original = liked({1, 2});
  ItemProfileRef in_flight = original;  // e.g. a queued message's copy

  original.fold_profile(liked({2, 3}));

  // The mutated handle diverged; the in-flight copy kept the old contents.
  EXPECT_NE(&original.get(), &in_flight.get());
  EXPECT_FALSE(original.shared());
  EXPECT_FALSE(in_flight.shared());
  EXPECT_EQ(in_flight.size(), 2u);
  EXPECT_FALSE(in_flight.contains(3));
  EXPECT_TRUE(original.contains(3));
  EXPECT_DOUBLE_EQ(*original.get().score(2), 1.0);  // (1+1)/2
}

TEST(ItemProfileRef, UniqueHolderMutatesInPlace) {
  ItemProfileRef ref;
  ref = liked({1});
  const Profile* before = &ref.get();
  ref.fold_profile(liked({2}));
  EXPECT_EQ(&ref.get(), before);  // no clone while uniquely held
  EXPECT_EQ(ref.size(), 2u);
}

TEST(ItemProfileRef, FoldOfEmptyUserIsANoOpWithoutClone) {
  ItemProfileRef a;
  a = liked({1});
  const ItemProfileRef b = a;
  a.fold_profile(Profile{});
  EXPECT_EQ(&a.get(), &b.get());  // still sharing
  EXPECT_EQ(a.use_count(), 2);
}

TEST(ItemProfileRef, PurgeSkipsTheCloneWhenNothingWouldDrop) {
  ItemProfileRef a;
  a = liked({1, 2});  // timestamps 5
  const ItemProfileRef b = a;
  a.purge_older_than(3);  // nothing older than 3
  EXPECT_EQ(&a.get(), &b.get());
  EXPECT_EQ(a.use_count(), 2);
}

TEST(ItemProfileRef, PurgeClonesWhenSharedAndDropsOnlyLocally) {
  ItemProfileRef a;
  a = liked({1, 2});
  const ItemProfileRef b = a;
  a.purge_older_than(10);  // drops everything, but only in a's clone
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.size(), 2u);
}

TEST(ItemProfileRef, ClearDropsOnlyTheLocalReference) {
  ItemProfileRef a;
  a = liked({1});
  ItemProfileRef b = a;
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.size(), 1u);
  EXPECT_FALSE(b.shared());
}

TEST(ItemProfileRef, NewsPayloadReplicationSharesTheProfile) {
  net::NewsPayload news;
  news.item_profile = liked({1, 2, 3});
  std::vector<net::NewsPayload> fanout(10, news);  // fLIKE copies
  EXPECT_EQ(news.item_profile.use_count(), 11);
  for (const net::NewsPayload& copy : fanout) {
    EXPECT_EQ(&copy.item_profile.get(), &news.item_profile.get());
  }
}

// End-to-end: a payload committed into the engine's mailbox ring must be
// isolated from post-send mutations of the sender's payload object.
TEST(ItemProfileRef, InFlightMailboxCopyIsIsolatedFromSenderMutation) {
  sim::Engine::Config config;
  sim::Engine engine(config);
  const NodeId sink_id = engine.add_agent(std::make_unique<testing::CaptureAgent>());
  auto* sink = static_cast<testing::CaptureAgent*>(&engine.agent(sink_id));

  net::NewsPayload news;
  news.id = 77;
  news.index = 0;
  news.item_profile = liked({1, 2});

  net::Message m;
  m.from = sink_id;
  m.to = sink_id;
  m.type = net::MsgType::kNews;
  m.payload = news;  // the mailbox now holds a sharing copy
  engine.send(std::move(m));

  // Sender keeps mutating its own handle after the send.
  news.item_profile.fold_profile(liked({3, 4}));
  news.item_profile.purge_older_than(100);

  engine.run_cycles(2);  // unit network latency: due at cycle 1
  ASSERT_EQ(sink->news.size(), 1u);
  const Profile& delivered = sink->news[0].item_profile;
  EXPECT_EQ(delivered.size(), 2u);
  EXPECT_TRUE(delivered.contains(1));
  EXPECT_FALSE(delivered.contains(3));
}

// Full WhatsUp dissemination with several shards and worker threads: the
// trajectory must not depend on the thread count even though concurrent
// receivers fold into payloads cloned from the same shared profile. Runs
// at 1/4/WHATSUP_TEST_THREADS; under TSan this doubles as the race check
// for the CoW + pooled-payload machinery.
TEST(ItemProfileRef, CowTrajectoryIdenticalAcrossThreads) {
  const auto run = [](unsigned threads) {
    Rng rng(99);
    data::SurveyConfig sc;
    sc.base_users = 40;
    sc.base_items = 50;
    sc.replication = 2;
    data::Workload workload = data::make_survey(sc, rng);
    workload.schedule_publications(3, 15, rng);

    sim::Engine::Config ec;
    ec.seed = rng.next_u64();
    ec.threads = threads;
    ec.shard_nodes = 8;  // many shards: payload copies cross shard lines
    sim::Engine engine(ec);

    analysis::WorkloadOpinions opinions(workload);
    WhatsUpConfig wu;
    wu.params.f_like = 8;
    const std::size_t n = workload.num_users();
    std::vector<WhatsUpAgent*> agents;
    for (NodeId v = 0; v < n; ++v) {
      auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    for (NodeId v = 0; v < n; ++v) {
      std::vector<net::Descriptor> seed_view;
      for (int i = 0; i < wu.params.rps_view_size; ++i) {
        NodeId peer = v;
        while (peer == v) peer = static_cast<NodeId>(rng.index(n));
        seed_view.push_back(net::Descriptor{peer, -1, nullptr});
      }
      agents[v]->bootstrap_rps(std::move(seed_view));
    }
    metrics::Tracker tracker(n, workload.num_items());
    tracker.attach(engine);
    for (Cycle c = 0; c < 25; ++c) {
      for (const data::NewsSpec& spec : workload.news) {
        if (spec.publish_at == c) {
          engine.publish(workload.news[spec.index].source, spec.index,
                         workload.news[spec.index].id);
        }
      }
      engine.run_cycle();
    }
    return tracker.digest();
  };

  const std::uint64_t base = run(1);
  EXPECT_EQ(base, run(4));
  if (const char* env = std::getenv("WHATSUP_TEST_THREADS"); env != nullptr) {
    const int extra = std::atoi(env);
    if (extra > 0) EXPECT_EQ(base, run(static_cast<unsigned>(extra)));
  }
}

}  // namespace
}  // namespace whatsup
