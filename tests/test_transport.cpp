// Transport backends (sim/transport.hpp): the in-process identity, and the
// socket mesh the fragment-partitioned engine exchanges envelope batches
// over. The socket tests drive real AF_UNIX socketpairs from threads — the
// same mesh the forking bench launcher hands to worker processes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/transport.hpp"

namespace whatsup::sim {
namespace {

using Batches = std::vector<std::vector<std::uint8_t>>;

TEST(Transport, InProcessIsTheSingleFragmentIdentity) {
  InProcessTransport t;
  EXPECT_EQ(t.fragments(), 1u);
  EXPECT_EQ(t.fragment_id(), 0u);
  const Batches in = t.exchange(Batches(1));
  ASSERT_EQ(in.size(), 1u);
  EXPECT_TRUE(in[0].empty());
}

// A deterministic per-(slot, sender, receiver) payload so every byte of
// every exchanged batch can be verified on the receiving side.
std::vector<std::uint8_t> batch_for(std::size_t slot, std::size_t from,
                                    std::size_t to) {
  // Length varies with the slot so some batches span multiple reads and
  // some are empty (pure barrier tokens).
  const std::size_t len = (slot * 7 + from * 3 + to) % 5 == 0
                              ? 0
                              : (slot * 131 + from * 17 + to * 5) % 3000;
  std::vector<std::uint8_t> bytes(len);
  for (std::size_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<std::uint8_t>(slot * 31 + from * 7 + to * 3 + i);
  }
  return bytes;
}

// Full-duplex lockstep over a mesh of `n` fragments for `slots` barriers:
// every worker ships a distinct batch to every peer each slot and must
// receive exactly its peers' batches for that slot, in order, even when a
// fast peer's next-slot frame arrives early (the per-peer receive buffers
// keep frames strictly FIFO).
void exercise_mesh(std::size_t n, std::size_t slots) {
  std::vector<std::vector<int>> mesh = socketpair_mesh(n);
  std::vector<std::string> errors(n);
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < n; ++w) {
    workers.emplace_back([&, w] {
      try {
        SocketTransport transport(w, std::move(mesh[w]));
        ASSERT_EQ(transport.fragments(), n);
        ASSERT_EQ(transport.fragment_id(), w);
        for (std::size_t slot = 0; slot < slots; ++slot) {
          Batches out(n);
          for (std::size_t to = 0; to < n; ++to) {
            if (to != w) out[to] = batch_for(slot, w, to);
          }
          const Batches in = transport.exchange(out);
          ASSERT_EQ(in.size(), n);
          EXPECT_TRUE(in[w].empty());
          for (std::size_t from = 0; from < n; ++from) {
            if (from == w) continue;
            EXPECT_EQ(in[from], batch_for(slot, from, w))
                << "worker " << w << " slot " << slot << " from " << from;
          }
          // Odd workers lag behind on odd slots so their peers race ahead
          // and ship the next slot's frames early.
          if (w % 2 == 1 && slot % 2 == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        }
      } catch (const std::exception& e) {
        errors[w] = e.what();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (std::size_t w = 0; w < n; ++w) {
    EXPECT_EQ(errors[w], "") << "worker " << w;
  }
}

TEST(Transport, SocketMeshTwoFragments) { exercise_mesh(2, 12); }

TEST(Transport, SocketMeshFourFragmentsManySlots) { exercise_mesh(4, 25); }

TEST(Transport, PeerCloseIsFatal) {
  std::vector<std::vector<int>> mesh = socketpair_mesh(2);
  // Fragment 1 never shows up: close its whole row.
  for (int fd : mesh[1]) {
    if (fd >= 0) ::close(fd);
  }
  SocketTransport transport(0, std::move(mesh[0]));
  EXPECT_THROW(transport.exchange(Batches(2)), std::runtime_error);
}

TEST(Transport, CorruptFrameIsFatal) {
  std::vector<std::vector<int>> mesh = socketpair_mesh(2);
  // Write garbage straight onto fragment 1's socket to fragment 0: an
  // absurd length prefix fails frame validation on the receiving side.
  const std::uint8_t junk[8] = {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0};
  ASSERT_EQ(::write(mesh[1][0], junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  SocketTransport transport(0, std::move(mesh[0]));
  EXPECT_THROW(transport.exchange(Batches(2)), std::runtime_error);
  for (int fd : mesh[1]) {
    if (fd >= 0) ::close(fd);
  }
}

TEST(Transport, MeshShapeAndOwnership) {
  const std::size_t n = 3;
  std::vector<std::vector<int>> mesh = socketpair_mesh(n);
  ASSERT_EQ(mesh.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(mesh[i].size(), n);
    EXPECT_EQ(mesh[i][i], -1);
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) EXPECT_GE(mesh[i][j], 0);
    }
  }
  for (auto& row : mesh) {
    for (int fd : row) {
      if (fd >= 0) ::close(fd);
    }
  }
}

}  // namespace
}  // namespace whatsup::sim
