#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace whatsup {
namespace {

TEST(Hash, Fnv1a64KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, Fnv1a64Deterministic) {
  EXPECT_EQ(fnv1a64("whatsup"), fnv1a64("whatsup"));
  EXPECT_NE(fnv1a64("whatsup"), fnv1a64("whatsdown"));
}

TEST(Hash, CombineIsOrderDependent) {
  const auto ab = hash_combine(fnv1a64("a"), fnv1a64("b"));
  const auto ba = hash_combine(fnv1a64("b"), fnv1a64("a"));
  EXPECT_NE(ab, ba);
}

TEST(Hash, ItemIdsUniquePerWorkloadAndIndex) {
  std::set<ItemId> ids;
  for (ItemIdx i = 0; i < 5000; ++i) {
    ids.insert(make_item_id("survey", i));
    ids.insert(make_item_id("digg", i));
  }
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(Hash, ItemIdStableAcrossCalls) {
  EXPECT_EQ(make_item_id("survey", 7), make_item_id("survey", 7));
  EXPECT_NE(make_item_id("survey", 7), make_item_id("survey", 8));
}

}  // namespace
}  // namespace whatsup
