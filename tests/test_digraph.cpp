#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace whatsup::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, AddEdgeAndOut) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto out0 = g.out(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()), (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(g.out(1).empty());
}

TEST(Digraph, SelfLoopsIgnored) {
  Digraph g(2);
  g.add_edge(0, 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.out(0).empty());
}

TEST(Digraph, DedupeCollapsesParallelEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.num_edges(), 3u);
  g.dedupe();
  EXPECT_EQ(g.num_edges(), 2u);
  const auto out0 = g.out(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()), (std::vector<NodeId>{1, 2}));
}

TEST(Digraph, ReversedFlipsEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph rev = g.reversed();
  EXPECT_EQ(rev.num_edges(), 2u);
  EXPECT_EQ(rev.out(1).size(), 1u);
  EXPECT_EQ(rev.out(1)[0], 0u);
  EXPECT_EQ(rev.out(2)[0], 1u);
  EXPECT_TRUE(rev.out(0).empty());
}

}  // namespace
}  // namespace whatsup::graph
